#!/usr/bin/env python3
"""Plot Figure 1 (HMN mapping time vs. virtual links mapped) from the CSV
that bench_figure1 writes to bench_out/figure1_hmn_torus.csv.

Usage:
    python3 tools/plot_figure1.py [bench_out/figure1_hmn_torus.csv] [out.svg]

Requires matplotlib; falls back to an ASCII rendering when it is missing
(the bench binary already prints one, so this is just a convenience).
"""
import csv
import sys


def load(path):
    rows = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            rows.append((float(row["links_mapped_mean"]),
                         float(row["map_seconds_mean"]),
                         float(row["map_seconds_stddev"]),
                         row["scenario"]))
    rows.sort()
    return rows


def ascii_plot(rows):
    peak = max(m for _, m, _, _ in rows) or 1.0
    for x, mean, std, label in rows:
        bar = "#" * max(1, round(mean / peak * 50))
        print(f"{x:9.0f} |{bar} {mean:.4f}s ±{std:.4f} ({label})")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_out/figure1_hmn_torus.csv"
    out = sys.argv[2] if len(sys.argv) > 2 else "figure1.svg"
    rows = load(path)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; ASCII rendering:")
        ascii_plot(rows)
        return
    xs = [r[0] for r in rows]
    means = [r[1] for r in rows]
    stds = [r[2] for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4))
    ax.errorbar(xs, means, yerr=stds, marker="o", capsize=3)
    ax.set_xlabel("virtual links mapped")
    ax.set_ylabel("HMN mapping time (s)")
    ax.set_title("Figure 1 — HMN execution time vs. links mapped (torus)")
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
