// Include-graph layering for hmn-lint: the whole-repo pass.
//
// The codebase declares a strict module layering (DESIGN.md §6a):
//
//   layer 0  util, graph                      (leaf utilities)
//   layer 1  model, core, topology            (domain types + the heuristic)
//   layer 2  io, workload, availability,      (services over the core)
//            multilevel, extensions, baselines
//   layer 3  orchestrator, emulator, expfw,   (composition roots)
//            sim
//
// A file in module M may `#include "..."` only modules at M's layer or
// below, and the module-level include graph must be acyclic even within a
// layer (same-layer edges are fine — core uses model — but a cycle means
// the layers are a fiction).  Violations are hard findings: unlike the
// per-file rules there is no suppression, because a layering exception is
// an architecture decision, not a local annotation.
//
// The pass also renders the module graph as GraphViz DOT (one rank per
// layer, edges weighted by include count) so CI can publish the actual
// architecture next to the declared one.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace hmn::lint {

/// One `#include "..."` site (project-relative target; system includes are
/// not collected).
struct IncludeSite {
  std::string target;      // text between the quotes
  std::size_t line = 0;
};

/// Extracts `#include "..."` targets from a lexed translation unit.
[[nodiscard]] std::vector<IncludeSite> collect_includes(const LexResult& lex);

/// Module name for a path: the segment after the last `src` segment
/// ("src/core/hosting.cpp" -> "core"), or — for include targets, which are
/// repo-root-relative — the first segment ("core/hosting.h" -> "core").
/// Returns nullopt when the result is not a declared module (tools, bench,
/// examples, and third-party targets do not participate in layering).
[[nodiscard]] std::optional<std::string> module_of_path(std::string_view path);

/// Declared layer of a module, or nullopt for unknown modules.
[[nodiscard]] std::optional<int> layer_of_module(std::string_view module);

class IncludeGraph {
 public:
  /// Registers one scanned file and its include sites.  Files outside any
  /// declared module still register (their outgoing edges are ignored), so
  /// the caller can feed every scanned file unconditionally.
  void add_file(const std::string& path, std::vector<IncludeSite> includes);

  /// Runs the layering checks: upward edges (per include site) and module
  /// cycles (one finding per cycle, deterministically anchored at the
  /// lexicographically smallest module on the cycle).
  [[nodiscard]] std::vector<Finding> check() const;

  /// GraphViz DOT rendering of the module graph.
  [[nodiscard]] std::string to_dot() const;

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  struct FileEntry {
    std::string path;
    std::string module;  // empty: outside the layered tree
    std::vector<IncludeSite> includes;
  };

  /// module -> module -> number of include sites inducing the edge.
  [[nodiscard]] std::map<std::string, std::map<std::string, std::size_t>>
  module_edges() const;

  std::vector<FileEntry> files_;
};

}  // namespace hmn::lint
