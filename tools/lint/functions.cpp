#include "functions.h"

#include <algorithm>
#include <cctype>

namespace hmn::lint {
namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Keywords that look like `name (` but never open a function definition.
constexpr std::string_view kControlKeywords[] = {
    "if",     "for",    "while",  "switch", "catch",  "return",
    "sizeof", "alignof", "decltype", "noexcept", "static_assert",
    "co_await", "co_return", "co_yield", "new", "delete", "throw"};

bool is_control_keyword(std::string_view s) {
  return std::find(std::begin(kControlKeywords), std::end(kControlKeywords),
                   s) != std::end(kControlKeywords);
}

class FunctionScanner {
 public:
  explicit FunctionScanner(const LexResult& lex) : lex_(lex) {}

  std::vector<FunctionBody> run() {
    const auto& T = lex_.tokens;
    std::size_t i = 0;
    while (i < T.size()) {
      const std::size_t next = try_function(i);
      if (next > i) {
        i = next;
      } else {
        ++i;
      }
    }
    attach_annotations();
    return std::move(out_);
  }

 private:
  const Token* at(std::size_t i) const {
    return i < lex_.tokens.size() ? &lex_.tokens[i] : nullptr;
  }

  /// Index one past the brace/paren/bracket group opening at `i`, or `i`
  /// if the group never closes (unterminated input).
  std::size_t skip_balanced(std::size_t i) const {
    const auto& T = lex_.tokens;
    int depth = 0;
    for (std::size_t j = i; j < T.size(); ++j) {
      if (is_punct(T[j], "(") || is_punct(T[j], "{") || is_punct(T[j], "[")) {
        ++depth;
      } else if (is_punct(T[j], ")") || is_punct(T[j], "}") ||
                 is_punct(T[j], "]")) {
        --depth;
        if (depth == 0) return j + 1;
      }
    }
    return i;
  }

  /// Tries to recognize a function definition whose *name* is at token i.
  /// Returns the index one past the body's closing brace on success (so
  /// nested definitions inside the body are not re-reported), or `i` when
  /// the tokens do not spell a definition.
  std::size_t try_function(std::size_t i) {
    const auto& T = lex_.tokens;
    const Token& name = T[i];
    if (name.kind != TokenKind::kIdentifier || is_control_keyword(name.text)) {
      return i;
    }
    const Token* open = at(i + 1);
    if (open == nullptr || !is_punct(*open, "(")) return i;
    // `name (` directly after `.` / `->` / `&` is a call or a pointer
    // expression, not a definition.  `::` is fine (qualified names).
    if (i > 0 && (is_punct(T[i - 1], ".") || is_punct(T[i - 1], "->"))) {
      return i;
    }
    const std::size_t after_params = skip_balanced(i + 1);
    if (after_params == i + 1) return i;  // unbalanced params

    // Walk the post-parameter noise: cv/ref qualifiers, noexcept(+args),
    // attributes, trailing return types, override/final.  A `;` or `,` or
    // `=` (default/delete/initializer) means declaration, not definition.
    std::size_t j = after_params;
    bool ctor_inits = false;
    while (const Token* t = at(j)) {
      if (is_punct(*t, "{")) break;
      if (is_punct(*t, ";") || is_punct(*t, ",") || is_punct(*t, "=") ||
          is_punct(*t, ")")) {
        return i;
      }
      if (is_punct(*t, ":")) {
        ctor_inits = true;
        break;
      }
      if (is_ident(*t, "const") || is_ident(*t, "volatile") ||
          is_ident(*t, "noexcept") || is_ident(*t, "override") ||
          is_ident(*t, "final") || is_ident(*t, "try") ||
          is_ident(*t, "requires") || is_punct(*t, "&") ||
          is_punct(*t, "&&") || is_punct(*t, "->") || is_punct(*t, "::") ||
          t->kind == TokenKind::kIdentifier) {
        ++j;
        continue;
      }
      if (is_punct(*t, "(") || is_punct(*t, "[")) {  // noexcept(...), [[..]]
        const std::size_t skipped = skip_balanced(j);
        if (skipped == j) return i;
        j = skipped;
        continue;
      }
      if (is_punct(*t, "<")) {  // trailing return type template args
        ++j;
        continue;
      }
      if (is_punct(*t, ">") || is_punct(*t, ">>") || is_punct(*t, "*")) {
        ++j;
        continue;
      }
      return i;  // anything else: not a definition
    }
    if (at(j) == nullptr) return i;

    if (ctor_inits) {
      // `: member_(expr), base{expr}, ... {`.  Each initializer is an
      // identifier chain followed by one balanced () or {} group.
      ++j;  // past ':'
      while (true) {
        // identifier chain (qualified / templated base names)
        bool saw_name = false;
        while (const Token* t = at(j)) {
          if (t->kind == TokenKind::kIdentifier || is_punct(*t, "::")) {
            saw_name = true;
            ++j;
            continue;
          }
          if (is_punct(*t, "<")) {  // templated base: skip to matching '>'
            int d = 0;
            while (const Token* u = at(j)) {
              if (is_punct(*u, "<")) ++d;
              if (is_punct(*u, ">")) {
                --d;
                if (d == 0) break;
              }
              if (is_punct(*u, ">>")) {
                d -= 2;
                if (d <= 0) break;
              }
              if (is_punct(*u, "(") || is_punct(*u, "{")) break;
              ++j;
            }
            ++j;
            continue;
          }
          break;
        }
        const Token* g = at(j);
        if (!saw_name || g == nullptr ||
            (!is_punct(*g, "(") && !is_punct(*g, "{"))) {
          return i;  // not actually a ctor-init list
        }
        const std::size_t after_group = skip_balanced(j);
        if (after_group == j) return i;
        j = after_group;
        const Token* sep = at(j);
        if (sep != nullptr && is_punct(*sep, ",")) {
          ++j;
          continue;
        }
        break;
      }
      const Token* body = at(j);
      if (body == nullptr || !is_punct(*body, "{")) return i;
    }

    // j now indexes the body's '{'.
    const std::size_t body_begin = j;
    const std::size_t after_body = skip_balanced(body_begin);
    if (after_body == body_begin) return i;  // unterminated body

    FunctionBody fn;
    fn.name = name.text;
    fn.name_index = i;
    fn.body_begin = body_begin;
    fn.body_end = after_body - 1;
    fn.line = name.line;
    out_.push_back(fn);
    return after_body;
  }

  /// First code line at or after the comment, mirroring the suppression
  /// engine's attachment rule.
  std::size_t next_code_line(const Comment& c) const {
    for (const Token& t : lex_.tokens) {
      if (t.line > c.line || (t.line == c.line && t.col > c.col)) {
        return t.line;
      }
    }
    return c.line;
  }

  void attach_annotations() {
    for (const Comment& c : lex_.comments) {
      const std::size_t marker = live_marker_pos(c.text);
      if (marker == std::string_view::npos) continue;
      if (c.text.find("hot-path", marker) == std::string_view::npos) continue;
      const std::size_t target = c.own_line ? next_code_line(c) : c.line;
      // The annotation marks the function whose signature starts on the
      // target line: match on the name line, or — for multi-line
      // signatures opening with the return type — the first function whose
      // name appears after the target with no other code line between.
      FunctionBody* best = nullptr;
      for (FunctionBody& fn : out_) {
        if (fn.line < target) continue;
        if (best == nullptr || fn.line < best->line) best = &fn;
      }
      if (best != nullptr && best->line <= target + 4) best->hot_path = true;
    }
  }

  const LexResult& lex_;
  std::vector<FunctionBody> out_;
};

}  // namespace

std::vector<FunctionBody> scan_functions(const LexResult& lex) {
  return FunctionScanner(lex).run();
}

std::size_t live_marker_pos(std::string_view comment_text) {
  const std::size_t marker = comment_text.find("hmn-lint:");
  if (marker == std::string_view::npos || marker < 2) {
    return std::string_view::npos;
  }
  for (std::size_t i = 2; i < marker; ++i) {
    if (std::isspace(static_cast<unsigned char>(comment_text[i])) == 0) {
      return std::string_view::npos;
    }
  }
  return marker;
}

void EnumRegistry::merge(const EnumRegistry& other) {
  for (const std::string& name : other.ambiguous) {
    enums.erase(name);
    if (std::find(ambiguous.begin(), ambiguous.end(), name) ==
        ambiguous.end()) {
      ambiguous.push_back(name);
    }
  }
  for (const auto& [name, values] : other.enums) {
    if (std::find(ambiguous.begin(), ambiguous.end(), name) !=
        ambiguous.end()) {
      continue;
    }
    const auto it = enums.find(name);
    if (it == enums.end()) {
      enums.emplace(name, values);
    } else if (it->second != values) {
      enums.erase(it);
      ambiguous.push_back(name);
    }
  }
  std::sort(ambiguous.begin(), ambiguous.end());
}

EnumRegistry collect_enums(const LexResult& lex) {
  EnumRegistry reg;
  const auto& T = lex.tokens;
  auto is_id = [&](std::size_t i, std::string_view s) {
    return i < T.size() && is_ident(T[i], s);
  };
  for (std::size_t i = 0; i + 3 < T.size(); ++i) {
    if (!is_id(i, "enum") || (!is_id(i + 1, "class") && !is_id(i + 1, "struct"))) {
      continue;
    }
    std::size_t j = i + 2;
    if (T[j].kind != TokenKind::kIdentifier) continue;
    const std::string name(T[j].text);
    ++j;
    // Optional underlying type: `: std::uint8_t`
    if (j < T.size() && is_punct(T[j], ":")) {
      ++j;
      while (j < T.size() && !is_punct(T[j], "{") && !is_punct(T[j], ";")) {
        ++j;
      }
    }
    if (j >= T.size() || !is_punct(T[j], "{")) continue;  // fwd declaration
    ++j;
    std::vector<std::string> values;
    while (j < T.size() && !is_punct(T[j], "}")) {
      if (T[j].kind != TokenKind::kIdentifier) break;  // malformed
      values.push_back(std::string(T[j].text));
      ++j;
      // `= expr` initializers: skip to the separating ',' or closing '}'.
      int depth = 0;
      while (j < T.size()) {
        if (is_punct(T[j], "(") || is_punct(T[j], "{") ||
            is_punct(T[j], "[")) {
          ++depth;
        } else if (is_punct(T[j], ")") || is_punct(T[j], "]") ||
                   is_punct(T[j], "}")) {
          if (depth == 0) break;  // the enum's own closing brace
          --depth;
        } else if (depth == 0 && is_punct(T[j], ",")) {
          break;
        }
        ++j;
      }
      if (j < T.size() && is_punct(T[j], ",")) ++j;
    }
    if (j >= T.size() || values.empty()) continue;
    const auto it = reg.enums.find(name);
    if (it == reg.enums.end()) {
      if (std::find(reg.ambiguous.begin(), reg.ambiguous.end(), name) ==
          reg.ambiguous.end()) {
        reg.enums.emplace(name, std::move(values));
      }
    } else if (it->second != values) {
      reg.enums.erase(it);
      reg.ambiguous.push_back(name);
    }
    i = j;
  }
  std::sort(reg.ambiguous.begin(), reg.ambiguous.end());
  return reg;
}

}  // namespace hmn::lint
