#include "report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

namespace hmn::lint {
namespace {

std::string baseline_key(const Finding& f) {
  return f.file + "\x1f" + f.rule + "\x1f" + f.message;
}

/// Minimal scanner for the baseline format: a JSON array of objects with
/// "file"/"rule"/"message" string fields.  Accepts exactly what
/// write_baseline emits; anything structurally surprising fails the load.
class BaselineParser {
 public:
  explicit BaselineParser(std::string_view text) : text_(text) {}

  bool parse(Baseline& out) {
    skip_ws();
    if (!expect('{')) return false;
    if (!expect_key("entries")) return false;
    if (!parse_entry_array(/*want_message=*/true, out.keys)) return false;
    skip_ws();
    if (peek() == ',') {  // version 2: the suppressed-pair ratchet section
      ++pos_;
      if (!expect_key("suppressed")) return false;
      if (!parse_entry_array(/*want_message=*/false, out.suppressed_pairs)) {
        return false;
      }
    }
    return finish();
  }

 private:
  /// `[ {"file": ..., "rule": ..., ("message": ...)} , ... ]`.  Keys may
  /// appear in any order; exactly the expected set must be present.
  bool parse_entry_array(bool want_message, std::vector<std::string>& into) {
    if (!expect('[')) return false;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    const int field_count = want_message ? 3 : 2;
    while (true) {
      std::string file;
      std::string rule;
      std::string message;
      bool saw_message = false;
      if (!expect('{')) return false;
      for (int k = 0; k < field_count; ++k) {
        std::string key;
        std::string value;
        if (!parse_string(key) || !expect(':') || !parse_string(value)) {
          return false;
        }
        if (key == "file") {
          file = value;
        } else if (key == "rule") {
          rule = value;
        } else if (key == "message" && want_message) {
          message = value;
          saw_message = true;
        } else {
          return false;
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
        }
      }
      if (want_message && !saw_message) return false;
      if (!expect('}')) return false;
      into.push_back(want_message
                         ? file + "\x1f" + rule + "\x1f" + message
                         : file + "\x1f" + rule);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return expect(']');
  }

  bool finish() {
    skip_ws();
    return expect('}');
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool expect_key(std::string_view key) {
    std::string got;
    if (!parse_string(got) || got != key) return false;
    return expect(':');
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // Only \u001f (the key separator) is ever emitted.
            if (pos_ + 4 > text_.size()) return false;
            const std::string_view hex = text_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::stoi(std::string(hex), nullptr, 16));
            break;
          }
          default: return false;
        }
      }
      out.push_back(c);
    }
    if (peek() != '"') return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_text(std::ostream& out, const std::vector<Finding>& findings,
                bool show_suppressed) {
  for (const Finding& f : findings) {
    if (f.suppressed && !show_suppressed) continue;
    out << f.file << ':' << f.line << ':' << f.col << ": " << f.rule << ": "
        << f.message;
    if (f.suppressed) out << " [suppressed: " << f.suppression_reason << ']';
    out << '\n';
  }
}

std::string to_json(const std::vector<Finding>& findings) {
  std::size_t unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\", \"suppressed\": "
        << (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      out << ", \"reason\": \"" << json_escape(f.suppression_reason) << '"';
    }
    out << '}';
  }
  out << (first ? "" : "\n  ") << "],\n"
      << "  \"total\": " << findings.size() << ",\n"
      << "  \"unsuppressed\": " << unsuppressed << "\n}\n";
  return out.str();
}

std::string write_baseline(const std::vector<Finding>& findings) {
  std::vector<const Finding*> live;
  std::vector<std::string> pairs;
  for (const Finding& f : findings) {
    if (!f.suppressed) {
      live.push_back(&f);
    } else {
      pairs.push_back(f.file + "\x1f" + f.rule);
    }
  }
  std::sort(live.begin(), live.end(), [](const Finding* a, const Finding* b) {
    return baseline_key(*a) < baseline_key(*b);
  });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::ostringstream out;
  out << "{\"entries\": [";
  bool first = true;
  for (const Finding* f : live) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"file\": \"" << json_escape(f->file) << "\", \"rule\": \""
        << json_escape(f->rule) << "\", \"message\": \""
        << json_escape(f->message) << "\"}";
  }
  out << (first ? "" : "\n") << "],\n\"suppressed\": [";
  first = true;
  for (const std::string& pair : pairs) {
    const std::size_t sep = pair.find('\x1f');
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"file\": \"" << json_escape(pair.substr(0, sep))
        << "\", \"rule\": \"" << json_escape(pair.substr(sep + 1)) << "\"}";
  }
  out << (first ? "" : "\n") << "]}\n";
  return out.str();
}

bool Baseline::absorb(const Finding& f) {
  const std::string key = baseline_key(f);
  const auto it = std::find(keys.begin(), keys.end(), key);
  if (it == keys.end()) return false;
  keys.erase(it);
  return true;
}

bool Baseline::covers_suppressed(const Finding& f) const {
  return std::binary_search(suppressed_pairs.begin(), suppressed_pairs.end(),
                            f.file + "\x1f" + f.rule);
}

bool load_baseline(std::string_view text, Baseline& out) {
  out.keys.clear();
  out.suppressed_pairs.clear();
  BaselineParser parser(text);
  if (!parser.parse(out)) return false;
  std::sort(out.keys.begin(), out.keys.end());
  std::sort(out.suppressed_pairs.begin(), out.suppressed_pairs.end());
  return true;
}

}  // namespace hmn::lint
