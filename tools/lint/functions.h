// Function-body extraction and enum collection for hmn-lint's
// intraprocedural passes (txn-discipline, hot-path-alloc,
// exhaustive-switch).
//
// The scanner is lexical, not syntactic: it recognizes the shape
// `name ( ... ) [noise] [: ctor-inits] {` and pairs the body braces, which
// is exact on the codebase's style (no function-try blocks, no K&R
// definitions) and degrades to "no function found" — never a crash or a
// mis-paired body — on anything it half understands.  Lambdas are *not*
// extracted as functions of their own; their tokens stay inside the
// enclosing body, which is what the allocation and transaction rules want
// (a lambda in a hot path runs on the hot path).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace hmn::lint {

struct FunctionBody {
  std::string_view name;      // unqualified spelling (last identifier)
  std::size_t name_index = 0; // token index of the name
  std::size_t body_begin = 0; // token index of the opening '{'
  std::size_t body_end = 0;   // token index of the matching '}'
  std::size_t line = 0;       // line of the name token
  bool hot_path = false;      // carries a `// hmn-lint: hot-path` annotation
};

/// Extracts every function definition (free functions, member functions,
/// constructors) from a lexed translation unit, in source order.  Bodies
/// never overlap except by nesting (local structs/lambdas); the scanner
/// reports the *outermost* definitions only, so each token belongs to at
/// most one returned body.
[[nodiscard]] std::vector<FunctionBody> scan_functions(const LexResult& lex);

/// Enum registry: `enum class Name { ... }` definitions, name ->
/// enumerators in declaration order.  Used by exhaustive-switch.  A name
/// defined twice with *different* enumerator sets (two namespaces, one
/// spelling) is ambiguous at the lexical level and is dropped from the
/// registry rather than risking a false finding.
struct EnumRegistry {
  std::map<std::string, std::vector<std::string>, std::less<>> enums;
  std::vector<std::string> ambiguous;  // names dropped for conflicting defs

  /// Merges `other` into this registry with the same conflict rule.
  void merge(const EnumRegistry& other);
};

/// Collects `enum class` definitions from one translation unit.  Plain
/// (unscoped) enums are ignored: their enumerators are not referenced as
/// `Name::value`, so switch labels cannot be attributed to them lexically.
[[nodiscard]] EnumRegistry collect_enums(const LexResult& lex);

/// Position of a *live* hmn-lint marker in a comment, or npos.  A marker is
/// live only when it directly follows the comment introducer (`//` or `/*`)
/// with nothing but whitespace between — prose that merely mentions the
/// syntax (docs, this very file) is not a directive.
[[nodiscard]] std::size_t live_marker_pos(std::string_view comment_text);

}  // namespace hmn::lint
