// A minimal C++ tokenizer for hmn-lint.
//
// The linter's rules are lexical: they match token patterns (identifiers,
// punctuation, literals) rather than a parsed AST, so the lexer only has to
// be exact about the things that confuse naive grep-style tools — comments,
// string/char literals, raw strings, preprocessor lines, multi-char
// punctuation, and float-vs-integer literals.  It never allocates copies of
// the source: tokens are string_views into the buffer handed to lex().
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hmn::lint {

enum class TokenKind : unsigned char {
  kIdentifier,    // foo, unordered_map, int
  kNumber,        // 42, 0xff, 1.5e3 (is_float distinguishes)
  kString,        // "...", R"(...)" — value excludes quotes
  kCharLiteral,   // 'x'
  kPunct,         // one token per maximal operator: == != :: -> <= ...
  kPreprocessor,  // one token per directive line (continuations folded)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;   // exact source spelling (directives: full line)
  std::size_t line = 0;    // 1-based
  std::size_t col = 0;     // 1-based byte column
  bool is_float = false;   // kNumber only: has '.', exponent, or f/F suffix
};

/// Comments are lexed out-of-band: rules scan code tokens without tripping
/// over commented-out code, and the suppression engine scans comments alone.
struct Comment {
  std::string_view text;  // includes the // or /* */ delimiters
  std::size_t line = 0;   // line the comment starts on
  std::size_t col = 0;
  bool own_line = false;  // no code token precedes it on its start line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::size_t line_count = 0;
};

/// Tokenizes `source`.  Never fails: unterminated constructs are closed at
/// end-of-file (the linter must degrade gracefully on code it half
/// understands, not crash).  The returned views alias `source`.
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace hmn::lint
