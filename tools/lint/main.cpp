// hmn-lint — determinism, hygiene & architecture static analyzer for the
// HMN codebase.
//
//   hmn-lint [options] <file-or-dir>...
//
//   --json <path>            write the machine-readable report
//   --baseline <path>        subtract a recorded baseline before failing
//   --ratchet <path>         like --baseline, and additionally fail on any
//                            suppressed (file, rule) pair the baseline has
//                            not audited (ratchet-drift findings)
//   --write-baseline <path>  record current unsuppressed findings plus the
//                            suppressed-pair ratchet and exit 0
//   --dot <path>             write the module include graph as GraphViz DOT
//   --root <path>            strip this prefix from reported paths (module
//                            classification always uses the full path)
//   --show-suppressed        print suppressed findings too
//   --list-rules             print rule names and exit
//
// The run is two-pass: every input is lexed once to build the whole-repo
// view (the include graph for the layering rule, the merged enum registry
// for exhaustive-switch), then the per-file rules run with that context.
//
// Exit codes: 0 clean, 1 unsuppressed findings remain, 2 usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "layers.h"
#include "report.h"
#include "rules.h"

namespace fs = std::filesystem;
using hmn::lint::Baseline;
using hmn::lint::Finding;

namespace {

struct Options {
  std::vector<std::string> inputs;
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string dot_path;
  std::string root;
  bool ratchet = false;  // baseline_path doubles as the ratchet document
  bool show_suppressed = false;
  bool list_rules = false;
};

int usage(std::ostream& out, int code) {
  out << "usage: hmn-lint [--json FILE] [--baseline FILE] [--ratchet FILE]\n"
         "                [--write-baseline FILE] [--dot FILE] [--root DIR]\n"
         "                [--show-suppressed] [--list-rules] PATH...\n";
  return code;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (arg == "--json") {
      if (!value(opts.json_path)) return false;
    } else if (arg == "--baseline") {
      if (!value(opts.baseline_path)) return false;
    } else if (arg == "--ratchet") {
      if (!value(opts.baseline_path)) return false;
      opts.ratchet = true;
    } else if (arg == "--dot") {
      if (!value(opts.dot_path)) return false;
    } else if (arg == "--write-baseline") {
      if (!value(opts.write_baseline_path)) return false;
    } else if (arg == "--root") {
      if (!value(opts.root)) return false;
    } else if (arg == "--show-suppressed") {
      opts.show_suppressed = true;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opts.inputs.push_back(arg);
    }
  }
  return opts.list_rules || !opts.inputs.empty();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".hh";
}

/// Deterministic expansion: directories walk in sorted order so runs (and
/// reports, and baselines) are byte-stable across filesystems.
std::vector<fs::path> expand_inputs(const std::vector<std::string>& inputs,
                                    std::string& error) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    const fs::file_status st = fs::status(input, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      error = "no such path: " + input;
      return {};
    }
    if (fs::is_directory(st)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string display_path(const fs::path& p, const std::string& root) {
  std::string s = p.generic_string();
  if (!root.empty()) {
    std::string prefix = fs::path(root).generic_string();
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    if (s.compare(0, prefix.size(), prefix) == 0) s = s.substr(prefix.size());
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage(std::cerr, 2);
  if (opts.list_rules) {
    for (const std::string& r : hmn::lint::rule_names()) {
      std::cout << r << '\n';
    }
    return 0;
  }

  std::string error;
  const std::vector<fs::path> files = expand_inputs(opts.inputs, error);
  if (!error.empty()) {
    std::cerr << "hmn-lint: " << error << '\n';
    return 2;
  }

  // Pass 1: lex everything once; build the whole-repo view (include graph
  // for the layering rule, merged enum registry for exhaustive-switch).
  std::vector<std::string> sources(files.size());
  hmn::lint::IncludeGraph include_graph;
  hmn::lint::RepoContext repo;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      std::cerr << "hmn-lint: cannot read " << files[i] << '\n';
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources[i] = buf.str();
    const hmn::lint::LexResult lexed = hmn::lint::lex(sources[i]);
    include_graph.add_file(display_path(files[i], opts.root),
                           hmn::lint::collect_includes(lexed));
    repo.enums.merge(hmn::lint::collect_enums(lexed));
  }

  // Pass 2: per-file rules with the repo context, then the layering pass.
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < files.size(); ++i) {
    // Classification sees the real path; the report sees the trimmed one.
    const hmn::lint::FileContext ctx =
        hmn::lint::classify_path(files[i].generic_string());
    std::vector<Finding> file_findings = hmn::lint::analyze_source(
        display_path(files[i], opts.root), sources[i], ctx, &repo);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  {
    std::vector<Finding> layering = include_graph.check();
    findings.insert(findings.end(),
                    std::make_move_iterator(layering.begin()),
                    std::make_move_iterator(layering.end()));
  }
  if (!opts.dot_path.empty()) {
    std::ofstream out(opts.dot_path, std::ios::binary);
    if (!out) {
      std::cerr << "hmn-lint: cannot write " << opts.dot_path << '\n';
      return 2;
    }
    out << include_graph.to_dot();
  }

  if (!opts.write_baseline_path.empty()) {
    std::ofstream out(opts.write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "hmn-lint: cannot write " << opts.write_baseline_path
                << '\n';
      return 2;
    }
    out << hmn::lint::write_baseline(findings);
    std::size_t live = 0;
    for (const Finding& f : findings) {
      if (!f.suppressed) ++live;
    }
    std::cout << "hmn-lint: baselined " << live << " finding(s) to "
              << opts.write_baseline_path << '\n';
    return 0;
  }

  Baseline baseline;
  if (!opts.baseline_path.empty()) {
    std::ifstream in(opts.baseline_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in || !hmn::lint::load_baseline(buf.str(), baseline)) {
      std::cerr << "hmn-lint: malformed baseline " << opts.baseline_path
                << '\n';
      return 2;
    }
  }

  std::vector<Finding> active;
  std::size_t baselined = 0;
  std::vector<Finding> drift;
  for (Finding& f : findings) {
    if (!f.suppressed && baseline.absorb(f)) {
      ++baselined;
      continue;
    }
    // The ratchet: a suppressed finding whose (file, rule) pair the
    // committed baseline never audited is drift — someone added an
    // allow() in a new place without re-recording the baseline.
    if (opts.ratchet && f.suppressed && !baseline.covers_suppressed(f)) {
      Finding d;
      d.file = f.file;
      d.line = f.line;
      d.col = f.col;
      d.rule = "ratchet-drift";
      d.message = "suppressed '" + f.rule +
                  "' finding in a (file, rule) pair the committed baseline "
                  "has not audited — review the suppression, then "
                  "regenerate with --write-baseline";
      drift.push_back(std::move(d));
    }
    active.push_back(std::move(f));
  }
  active.insert(active.end(), std::make_move_iterator(drift.begin()),
                std::make_move_iterator(drift.end()));

  hmn::lint::print_text(std::cout, active, opts.show_suppressed);
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::binary);
    if (!out) {
      std::cerr << "hmn-lint: cannot write " << opts.json_path << '\n';
      return 2;
    }
    out << hmn::lint::to_json(active);
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const Finding& f : active) {
    (f.suppressed ? suppressed : unsuppressed)++;
  }
  std::cout << "hmn-lint: " << files.size() << " file(s), " << unsuppressed
            << " finding(s), " << suppressed << " suppressed";
  if (baselined > 0) std::cout << ", " << baselined << " baselined";
  std::cout << '\n';
  return unsuppressed == 0 ? 0 : 1;
}
