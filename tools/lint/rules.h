// hmn-lint rule engine: determinism & hygiene rules for the HMN codebase.
//
// Rules (see DESIGN.md §"Static analysis" for the full rationale):
//
//   unordered-iter   R1  Iterating a hash container observes a pointer- and
//                        seed-dependent order; on a decision path that order
//                        leaks into placements, logs, and hashes.  Any
//                        iteration over an unordered_{map,set,multimap,
//                        multiset} variable anywhere in src/ is flagged, and
//                        merely *declaring* one inside a decision-affecting
//                        module (orchestrator, core, workload, topology,
//                        availability, multilevel)
//                        requires a suppression proving the container is
//                        lookup-only or canonicalized before commit/log/hash.
//   raw-random       R2  rand(), srand(), std::random_device, std::mt19937,
//                        wall-clock seeding (time(), system_clock, ...)
//                        outside src/util.  All randomness must flow through
//                        the seedable util::Rng / util::Timer facades.
//   float-eq         R3  Raw == / != where an operand is a floating literal
//                        or a variable declared double/float in the same
//                        file.  Exact comparisons are occasionally right
//                        (sentinel zeros) — prove it with a suppression.
//   raw-output       R4  std::cout / printf / fprintf / puts in library
//                        code; output goes through the CSV/table writers or
//                        caller-supplied streams.
//   header-hygiene   R5  Headers must open with #pragma once and must not
//                        `using namespace` at namespace scope.
//   txn-discipline   R6  A function that begins a tenancy/healer
//                        transaction (stages a repair against
//                        residual_cluster_excluding, or calls txn_begin)
//                        must commit (update_mappings / txn_commit) or roll
//                        back (release / evict_and_park / txn_abort) on
//                        every return path.  The pass is brace- and
//                        return-aware: a commit inside one branch does not
//                        excuse the other branch.
//   hot-path-alloc   R7  Under a `// hmn-lint: hot-path` function
//                        annotation, allocation is a finding: `new`,
//                        make_unique/make_shared, push_back/emplace_back on
//                        body-local containers that are never reserve()d,
//                        and construction of node-based map/set locals.
//                        Cold-start allocation is suppressed with the usual
//                        audited allow().
//   exhaustive-switch R8 A switch whose case labels name a known `enum
//                        class` must either cover every enumerator or
//                        carry a default.  Enum definitions are collected
//                        repo-wide (RepoContext) so cross-header switches
//                        are checked too.
//   include-layering R9  Emitted by the whole-repo include-graph pass
//                        (layers.h), not by analyze_source: upward include
//                        edges against the declared layer map, and module
//                        cycles.  Not suppressible — a layering exception
//                        is an architecture decision, not an annotation.
//
// Suppression syntax, on the finding's line or alone on the line above:
//
//   // hmn-lint: allow(<rule>, <reason>)
//
// The reason is mandatory: a suppression is a reviewed claim ("lookup-only,
// never iterated"), not a mute button.  Unknown rule names and reason-less
// suppressions are themselves findings (bad-suppression), and suppressions
// that no longer match anything are reported as unused-suppression so stale
// annotations cannot rot in place.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "functions.h"
#include "lexer.h"

namespace hmn::lint {

struct Finding {
  std::string file;     // as given to the analyzer (normally repo-relative)
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppression_reason;  // set iff suppressed
};

/// Rule profile: library code gets every rule; tools/, bench/, and
/// examples/ run the relaxed profile (header-hygiene, unordered-iter, and
/// exhaustive-switch only) — a bench legitimately prints and reads clocks,
/// but its headers and switches still follow house style.
enum class LintProfile : unsigned char { kFull, kRelaxed };

/// Where a file sits in the project layout; drives per-module rule scoping.
struct FileContext {
  bool is_header = false;          // .h / .hpp
  bool is_decision_module = false; // orchestrator/, core/, workload/,
                                   //   topology/, availability/, multilevel/
  bool is_util_module = false;     // util/ — the sanctioned randomness home
  LintProfile profile = LintProfile::kFull;
};

/// Cross-file facts shared by a whole-repo run: today the merged enum
/// registry (exhaustive-switch needs enumerator lists for enums defined in
/// other headers).  Per-file runs pass nullptr and still check enums
/// defined in the same translation unit.
struct RepoContext {
  EnumRegistry enums;
};

/// Derives the context from a path: extension for is_header, path segments
/// for the module flags ("core" anywhere in the directory chain counts, so
/// test fixtures can opt in by mirroring the layout).
[[nodiscard]] FileContext classify_path(std::string_view path);

/// All rule names, in report order.  bad-suppression / unused-suppression
/// are meta-rules emitted by the suppression engine itself.
[[nodiscard]] const std::vector<std::string>& rule_names();
[[nodiscard]] bool is_known_rule(std::string_view rule);

/// Runs every rule over one translation unit.  `file` is used verbatim in
/// findings; `ctx` scopes the per-module rules; `repo` (optional) supplies
/// cross-file facts from a whole-repo pass.  Pure function of its
/// arguments — no filesystem access, no global state.
[[nodiscard]] std::vector<Finding> analyze_source(std::string file,
                                                  std::string_view source,
                                                  const FileContext& ctx,
                                                  const RepoContext* repo =
                                                      nullptr);

/// Convenience: classify_path + analyze_source.
[[nodiscard]] std::vector<Finding> analyze_source(std::string file,
                                                  std::string_view source);

}  // namespace hmn::lint
