#include "layers.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>
#include <utility>

namespace hmn::lint {
namespace {

constexpr std::string_view kRule = "include-layering";

struct ModuleLayer {
  std::string_view module;
  int layer;
};

/// The declared layer map (DESIGN.md §6a).  Order within a layer is
/// cosmetic; the DOT rendering groups by layer.
constexpr std::array<ModuleLayer, 16> kLayers = {{
    {"util", 0},
    {"graph", 0},
    {"model", 1},
    {"core", 1},
    {"topology", 1},
    {"io", 2},
    {"workload", 2},
    {"availability", 2},
    {"multilevel", 2},
    {"extensions", 2},
    {"baselines", 2},
    {"orchestrator", 3},
    {"recovery", 3},
    {"emulator", 3},
    {"expfw", 3},
    {"sim", 3},
}};

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> segs;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) segs.push_back(path.substr(start, slash - start));
    if (slash == path.size()) break;
    start = slash + 1;
  }
  return segs;
}

}  // namespace

std::optional<int> layer_of_module(std::string_view module) {
  for (const ModuleLayer& ml : kLayers) {
    if (ml.module == module) return ml.layer;
  }
  return std::nullopt;
}

std::optional<std::string> module_of_path(std::string_view path) {
  const std::vector<std::string_view> segs = split_path(path);
  // Prefer the segment after the last "src": scanned files are given by
  // filesystem path ("/repo/src/core/x.cpp", "fixtures/layering/src/a/y.h").
  for (std::size_t i = segs.size(); i > 0; --i) {
    if (segs[i - 1] == "src" && i < segs.size()) {
      const std::string_view m = segs[i];
      if (layer_of_module(m)) return std::string(m);
      return std::nullopt;
    }
  }
  // Include targets are repo-root-relative: "core/hosting.h".
  if (!segs.empty() && layer_of_module(segs.front())) {
    return std::string(segs.front());
  }
  return std::nullopt;
}

std::vector<IncludeSite> collect_includes(const LexResult& lex) {
  std::vector<IncludeSite> out;
  for (const Token& t : lex.tokens) {
    if (t.kind != TokenKind::kPreprocessor) continue;
    std::string_view text = t.text;
    const std::size_t inc = text.find("include");
    if (inc == std::string_view::npos) continue;
    // Only quoted includes: <...> names the outside world, which layering
    // does not govern.
    const std::size_t open = text.find('"', inc);
    if (open == std::string_view::npos) continue;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    IncludeSite site;
    site.target = std::string(text.substr(open + 1, close - open - 1));
    site.line = t.line;
    out.push_back(std::move(site));
  }
  return out;
}

void IncludeGraph::add_file(const std::string& path,
                            std::vector<IncludeSite> includes) {
  FileEntry entry;
  entry.path = path;
  entry.module = module_of_path(path).value_or("");
  entry.includes = std::move(includes);
  files_.push_back(std::move(entry));
}

std::map<std::string, std::map<std::string, std::size_t>>
IncludeGraph::module_edges() const {
  std::map<std::string, std::map<std::string, std::size_t>> edges;
  for (const FileEntry& f : files_) {
    if (f.module.empty()) continue;
    edges[f.module];  // ensure isolated modules still render
    for (const IncludeSite& site : f.includes) {
      const std::optional<std::string> to = module_of_path(site.target);
      if (!to || *to == f.module) continue;
      ++edges[f.module][*to];
    }
  }
  return edges;
}

std::vector<Finding> IncludeGraph::check() const {
  std::vector<Finding> findings;

  // Upward edges, one finding per include site.
  for (const FileEntry& f : files_) {
    if (f.module.empty()) continue;
    const int from_layer = *layer_of_module(f.module);
    for (const IncludeSite& site : f.includes) {
      const std::optional<std::string> to = module_of_path(site.target);
      if (!to || *to == f.module) continue;
      const int to_layer = *layer_of_module(*to);
      if (to_layer <= from_layer) continue;
      Finding finding;
      finding.file = f.path;
      finding.line = site.line;
      finding.col = 1;
      finding.rule = std::string(kRule);
      finding.message = "module '" + f.module + "' (layer " +
                        std::to_string(from_layer) + ") includes '" +
                        site.target + "' from module '" + *to + "' (layer " +
                        std::to_string(to_layer) +
                        ") — upward edges invert the declared layering; "
                        "move the shared type down or the dependent code up";
      findings.push_back(std::move(finding));
    }
  }

  // Module-level cycles (within-layer edges are legal only while acyclic).
  const auto edges = module_edges();
  std::map<std::string, int> state;  // 0 unvisited / 1 on stack / 2 done
  std::vector<std::string> stack;
  std::set<std::vector<std::string>> cycles;

  // Iterative DFS with an explicit recursion since the module count is
  // tiny; recursion depth is bounded by the module count.
  auto dfs = [&](auto&& self, const std::string& m) -> void {
    state[m] = 1;
    stack.push_back(m);
    const auto it = edges.find(m);
    if (it != edges.end()) {
      for (const auto& [to, count] : it->second) {
        (void)count;
        if (edges.find(to) == edges.end()) continue;
        if (state[to] == 1) {
          // Extract the cycle m0 -> ... -> to -> m0 and canonicalize it so
          // the same cycle found from different roots dedups.
          const auto pos = std::find(stack.begin(), stack.end(), to);
          std::vector<std::string> cycle(pos, stack.end());
          const auto smallest =
              std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          cycles.insert(std::move(cycle));
        } else if (state[to] == 0) {
          self(self, to);
        }
      }
    }
    stack.pop_back();
    state[m] = 2;
  };
  for (const auto& [m, outs] : edges) {
    (void)outs;
    if (state[m] == 0) dfs(dfs, m);
  }

  for (const std::vector<std::string>& cycle : cycles) {
    std::string path;
    for (const std::string& m : cycle) path += m + " -> ";
    path += cycle.front();
    Finding finding;
    finding.file = "(module graph)";
    finding.line = 0;
    finding.col = 0;
    finding.rule = std::string(kRule);
    finding.message =
        "include cycle between modules: " + path +
        " — the layer map requires the module graph to be a DAG";
    findings.push_back(std::move(finding));
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

std::string IncludeGraph::to_dot() const {
  const auto edges = module_edges();
  std::ostringstream out;
  out << "digraph hmn_includes {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  // One subgraph rank per layer, lowest at the bottom.
  std::map<int, std::vector<std::string>> by_layer;
  for (const auto& [m, outs] : edges) {
    (void)outs;
    by_layer[*layer_of_module(m)].push_back(m);
  }
  for (const auto& [layer, modules] : by_layer) {
    out << "  { rank=same;";
    for (const std::string& m : modules) {
      out << " \"" << m << "\";";
    }
    out << " }  // layer " << layer << "\n";
  }
  for (const auto& [from, outs] : edges) {
    for (const auto& [to, count] : outs) {
      if (edges.find(to) == edges.end()) continue;
      out << "  \"" << from << "\" -> \"" << to << "\" [label=\"" << count
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace hmn::lint
