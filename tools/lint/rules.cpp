#include "rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <set>
#include <utility>

namespace hmn::lint {
namespace {

constexpr std::string_view kUnorderedIter = "unordered-iter";
constexpr std::string_view kRawRandom = "raw-random";
constexpr std::string_view kFloatEq = "float-eq";
constexpr std::string_view kRawOutput = "raw-output";
constexpr std::string_view kHeaderHygiene = "header-hygiene";
constexpr std::string_view kTxnDiscipline = "txn-discipline";
constexpr std::string_view kHotPathAlloc = "hot-path-alloc";
constexpr std::string_view kExhaustiveSwitch = "exhaustive-switch";
constexpr std::string_view kIncludeLayering = "include-layering";
constexpr std::string_view kBadSuppression = "bad-suppression";
constexpr std::string_view kUnusedSuppression = "unused-suppression";

/// The transaction vocabulary (DESIGN.md §6a): begin stages work that the
/// TenancyManager has not yet seen; commit lands it atomically; rollback
/// renounces it (eviction/parking counts — the tenant's old state is
/// released, which IS the documented drop path).  txn_begin/txn_commit/
/// txn_abort are the generic spellings for future transactional APIs.
constexpr std::array<std::string_view, 2> kTxnBegin = {
    "residual_cluster_excluding", "txn_begin"};
constexpr std::array<std::string_view, 3> kTxnCommit = {
    "update_mappings", "txn_commit", "admit"};
constexpr std::array<std::string_view, 3> kTxnRollback = {
    "release", "evict_and_park", "txn_abort"};

bool contains(const std::set<std::string, std::less<>>& s,
              std::string_view v) {
  return s.find(v) != s.end();
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 13> kBannedRandom = {
    "random_device", "srand",        "mt19937",
    "mt19937_64",    "minstd_rand",  "minstd_rand0",
    "default_random_engine",         "knuth_b",
    "ranlux24",      "ranlux48",     "system_clock",
    "steady_clock",  "high_resolution_clock"};

constexpr std::array<std::string_view, 6> kBannedOutput = {
    "cout", "printf", "fprintf", "vprintf", "puts", "putchar"};

constexpr std::array<std::string_view, 4> kBeginNames = {"begin", "cbegin",
                                                         "rbegin", "crbegin"};

template <typename Arr>
bool in(const Arr& arr, std::string_view v) {
  return std::find(arr.begin(), arr.end(), v) != arr.end();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

struct Suppression {
  std::string rule;
  std::string reason;
  std::size_t target_line = 0;   // line of code it covers
  std::size_t comment_line = 0;  // where the annotation itself lives
  bool used = false;
};

class Analyzer {
 public:
  Analyzer(std::string file, std::string_view source, const FileContext& ctx,
           const RepoContext* repo)
      : file_(std::move(file)), ctx_(ctx), repo_(repo), lex_(lex(source)) {}

  std::vector<Finding> run() {
    const bool relaxed = ctx_.profile == LintProfile::kRelaxed;
    collect_suppressions();
    collect_unordered_names();
    if (!relaxed) collect_float_vars();
    rule_unordered_iter();
    if (!relaxed) {
      rule_raw_random();
      rule_float_eq();
      rule_raw_output();
    }
    rule_header_hygiene();
    functions_ = scan_functions(lex_);
    if (!relaxed) {
      rule_txn_discipline();
      rule_hot_path_alloc();
    }
    rule_exhaustive_switch();
    apply_suppressions();
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line != b.line ? a.line < b.line
                                               : a.col < b.col;
                     });
    return std::move(findings_);
  }

 private:
  const std::vector<Token>& toks() const { return lex_.tokens; }

  const Token* at(std::size_t i) const {
    return i < toks().size() ? &toks()[i] : nullptr;
  }

  void report(std::string_view rule, const Token& t, std::string message) {
    Finding f;
    f.file = file_;
    f.line = t.line;
    f.col = t.col;
    f.rule = std::string(rule);
    f.message = std::move(message);
    findings_.push_back(std::move(f));
  }

  // ---- suppressions -----------------------------------------------------

  /// First code line at or after (line, col); used to attach an own-line
  /// annotation to the statement below it.
  std::size_t next_code_line(std::size_t line, std::size_t col) const {
    for (const Token& t : toks()) {
      if (t.line > line || (t.line == line && t.col > col)) return t.line;
    }
    return line;
  }

  void collect_suppressions() {
    for (const Comment& c : lex_.comments) {
      const std::size_t marker = live_marker_pos(c.text);
      if (marker == std::string_view::npos) continue;
      std::string_view rest = c.text.substr(marker + 9);
      // `hot-path` is the function annotation, not a suppression; it is
      // consumed by scan_functions.
      if (trim(rest).substr(0, 8) == "hot-path") continue;
      bool any = false;
      while (true) {
        const std::size_t a = rest.find("allow");
        if (a == std::string_view::npos) break;
        rest.remove_prefix(a + 5);
        const std::size_t open = rest.find('(');
        if (open == std::string_view::npos) break;
        rest.remove_prefix(open + 1);
        // Depth-aware close: reasons legitimately mention calls — the
        // clause ends at the paren balancing the allow( itself.
        std::size_t close = std::string_view::npos;
        int depth = 0;
        for (std::size_t k = 0; k < rest.size(); ++k) {
          if (rest[k] == '(') {
            ++depth;
          } else if (rest[k] == ')') {
            if (depth == 0) {
              close = k;
              break;
            }
            --depth;
          }
        }
        if (close == std::string_view::npos) {
          report_bad(c, "unterminated allow(...) clause");
          return;
        }
        const std::string_view body = rest.substr(0, close);
        rest.remove_prefix(close + 1);
        any = true;

        const std::size_t comma = body.find(',');
        const std::string_view rule =
            trim(comma == std::string_view::npos ? body
                                                 : body.substr(0, comma));
        const std::string_view reason =
            comma == std::string_view::npos
                ? std::string_view{}
                : trim(body.substr(comma + 1));
        if (!is_known_rule(rule) || rule == kBadSuppression ||
            rule == kUnusedSuppression) {
          report_bad(c, "unknown rule '" + std::string(rule) + "'");
          continue;
        }
        if (reason.empty()) {
          report_bad(c, "missing reason for allow(" + std::string(rule) +
                            ", <reason>) — a suppression is a reviewed "
                            "claim, not a mute button");
          continue;
        }
        Suppression s;
        s.rule = std::string(rule);
        s.reason = std::string(reason);
        s.comment_line = c.line;
        s.target_line =
            c.own_line ? next_code_line(c.line, c.col) : c.line;
        suppressions_.push_back(std::move(s));
      }
      if (!any) report_bad(c, "hmn-lint marker without an allow(...) clause");
    }
  }

  void report_bad(const Comment& c, std::string detail) {
    Finding f;
    f.file = file_;
    f.line = c.line;
    f.col = c.col;
    f.rule = std::string(kBadSuppression);
    f.message = "malformed suppression: " + std::move(detail);
    findings_.push_back(std::move(f));
  }

  void apply_suppressions() {
    for (Finding& f : findings_) {
      if (f.rule == kBadSuppression || f.rule == kUnusedSuppression) continue;
      for (Suppression& s : suppressions_) {
        if (s.rule == f.rule && s.target_line == f.line) {
          f.suppressed = true;
          f.suppression_reason = s.reason;
          s.used = true;
        }
      }
    }
    for (const Suppression& s : suppressions_) {
      if (s.used) continue;
      Finding f;
      f.file = file_;
      f.line = s.comment_line;
      f.col = 1;
      f.rule = std::string(kUnusedSuppression);
      f.message = "allow(" + s.rule +
                  ", ...) matches no finding on line " +
                  std::to_string(s.target_line) +
                  " — delete the stale annotation";
      findings_.push_back(std::move(f));
    }
  }

  // ---- shared token scans ----------------------------------------------

  /// Skips a balanced template argument list starting at `i` (which must
  /// point at '<').  Returns the index one past the closing '>'.  `>>` pops
  /// two levels (C++11 closing of nested templates).  Bails at ';' or '{'
  /// so a stray comparison '<' cannot swallow the file.
  std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    while (const Token* t = at(i)) {
      if (is_punct(*t, "<") || is_punct(*t, "<<")) {
        depth += is_punct(*t, "<<") ? 2 : 1;
      } else if (is_punct(*t, ">") || is_punct(*t, ">>")) {
        depth -= is_punct(*t, ">>") ? 2 : 1;
        if (depth <= 0) return i + 1;
      } else if (is_punct(*t, ";") || is_punct(*t, "{")) {
        return i;  // malformed / not actually a template — give up
      }
      ++i;
    }
    return i;
  }

  /// After a type spelling, declarators can be wrapped in cv/ref noise.
  std::size_t skip_declarator_noise(std::size_t i) const {
    while (const Token* t = at(i)) {
      if (is_punct(*t, "&") || is_punct(*t, "*") || is_punct(*t, "&&") ||
          is_ident(*t, "const") || is_ident(*t, "volatile")) {
        ++i;
        continue;
      }
      break;
    }
    return i;
  }

  /// Records names declared with std::unordered_* types (variables, members,
  /// parameters) plus `using`/`typedef` aliases of such types, so iteration
  /// checks see through both direct declarations and project-local aliases.
  void collect_unordered_names() {
    const auto& T = toks();
    for (std::size_t i = 0; i < T.size(); ++i) {
      const bool base = T[i].kind == TokenKind::kIdentifier &&
                        in(kUnorderedTypes, T[i].text);
      const bool alias = T[i].kind == TokenKind::kIdentifier &&
                         contains(unordered_aliases_, T[i].text);
      if (!base && !alias) continue;
      const Token& type_tok = T[i];

      // Index where the type spelling starts (absorb a `std::` qualifier).
      std::size_t type_start = i;
      if (i >= 2 && is_punct(T[i - 1], "::") && is_ident(T[i - 2], "std")) {
        type_start = i - 2;
      }
      // `using Name = [std::]unordered_map<...>;` — record the alias so a
      // later `Name cache;` declaration is still recognized.
      if (type_start >= 3 && is_punct(T[type_start - 1], "=") &&
          T[type_start - 2].kind == TokenKind::kIdentifier &&
          is_ident(T[type_start - 3], "using")) {
        unordered_aliases_.insert(std::string(T[type_start - 2].text));
        if (ctx_.is_decision_module) decl_sites_.push_back(&type_tok);
        if (base && at(i + 1) != nullptr && is_punct(*at(i + 1), "<")) {
          i = skip_template_args(i + 1);
        }
        continue;
      }

      std::size_t j = i + 1;
      if (base) {
        if (at(j) == nullptr || !is_punct(*at(j), "<")) {
          continue;  // bare mention without template args — not a decl
        }
        j = skip_template_args(j);
      }
      j = skip_declarator_noise(j);
      const Token* name = at(j);
      if (name == nullptr || name->kind != TokenKind::kIdentifier) {
        i = j;
        continue;
      }
      const Token* after = at(j + 1);
      if (after != nullptr && is_punct(*after, "(")) {
        // Function returning an unordered container: remember the name so
        // `for (auto& x : make_index())` is still caught, but it is not a
        // declaration site.
        unordered_names_.insert(std::string(name->text));
        i = j;
        continue;
      }
      unordered_names_.insert(std::string(name->text));
      decl_sites_.push_back(&type_tok);
      i = j;
    }
  }

  /// Records identifiers declared `double x` / `float x` (including
  /// multi-declarator lists and cv/ref-qualified spellings).  Function
  /// declarations (`double f(...)`) are deliberately not recorded: the name
  /// alone says nothing about a later comparison.
  void collect_float_vars() {
    const auto& T = toks();
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (!is_ident(T[i], "double") && !is_ident(T[i], "float")) continue;
      std::size_t j = skip_declarator_noise(i + 1);
      while (true) {
        const Token* name = at(j);
        if (name == nullptr || name->kind != TokenKind::kIdentifier) break;
        const Token* after = at(j + 1);
        if (after != nullptr && is_punct(*after, "(")) break;  // function
        float_vars_.insert(std::string(name->text));
        // `double a = .., b = ..;` — hop the initializer to the next comma.
        std::size_t k = j + 1;
        int depth = 0;
        while (const Token* t = at(k)) {
          if (is_punct(*t, "(") || is_punct(*t, "{") || is_punct(*t, "[")) {
            ++depth;
          } else if (is_punct(*t, ")") || is_punct(*t, "}") ||
                     is_punct(*t, "]")) {
            if (depth == 0) break;
            --depth;
          } else if (depth == 0 &&
                     (is_punct(*t, ";") || is_punct(*t, ","))) {
            break;
          }
          ++k;
        }
        if (at(k) == nullptr || !is_punct(*at(k), ",")) break;
        j = skip_declarator_noise(k + 1);
      }
      i = j;
    }
  }

  // ---- R1: unordered-iter ----------------------------------------------

  void rule_unordered_iter() {
    const auto& T = toks();

    // Declaration sites inside decision-affecting modules must justify
    // themselves even when never iterated *today* — the next edit is one
    // range-for away from a nondeterministic decision log.
    if (ctx_.is_decision_module) {
      for (const Token* t : decl_sites_) {
        const bool base_type = in(kUnorderedTypes, t->text);
        report(kUnorderedIter, *t,
               (base_type ? "std::" + std::string(t->text)
                          : std::string(t->text) + " (unordered alias)") +
                   " declared in a decision-affecting module; iteration "
                   "order is seed-dependent — use std::map/std::set, or "
                   "suppress with proof the container is lookup-only or "
                   "canonicalized before any commit/log/hash");
      }
    }

    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      // for ( decl : range-expr )
      if (is_ident(T[i], "for") && is_punct(T[i + 1], "(")) {
        check_range_for(i + 1);
        continue;
      }
      // var.begin() / std::begin(var) — iterator-based traversal.
      if (T[i].kind == TokenKind::kIdentifier &&
          contains(unordered_names_, T[i].text)) {
        const Token* dot = at(i + 1);
        const Token* fn = at(i + 2);
        const Token* paren = at(i + 3);
        if (dot != nullptr && fn != nullptr && paren != nullptr &&
            (is_punct(*dot, ".") || is_punct(*dot, "->")) &&
            fn->kind == TokenKind::kIdentifier &&
            in(kBeginNames, fn->text) && is_punct(*paren, "(")) {
          report(kUnorderedIter, T[i],
                 "'" + std::string(T[i].text) + "." +
                     std::string(fn->text) +
                     "()' starts an unordered traversal; the visit order "
                     "is not deterministic");
        }
      }
      if (T[i].kind == TokenKind::kIdentifier && in(kBeginNames, T[i].text) &&
          at(i + 1) != nullptr && is_punct(*at(i + 1), "(") &&
          at(i + 2) != nullptr &&
          at(i + 2)->kind == TokenKind::kIdentifier &&
          contains(unordered_names_, at(i + 2)->text)) {
        report(kUnorderedIter, T[i],
               "'std::" + std::string(T[i].text) + "(" +
                   std::string(at(i + 2)->text) +
                   ")' starts an unordered traversal; the visit order is "
                   "not deterministic");
      }
    }
  }

  void check_range_for(std::size_t open_paren) {
    const auto& T = toks();
    int depth = 0;
    std::optional<std::size_t> colon;
    std::size_t close = open_paren;
    for (std::size_t i = open_paren; i < T.size(); ++i) {
      if (is_punct(T[i], "(")) {
        ++depth;
      } else if (is_punct(T[i], ")")) {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      } else if (depth == 1 && is_punct(T[i], ";")) {
        return;  // classic three-clause for — ordered by construction
      } else if (depth == 1 && is_punct(T[i], ":") && !colon) {
        colon = i;
      }
    }
    if (!colon) return;
    for (std::size_t i = *colon + 1; i < close; ++i) {
      if (T[i].kind == TokenKind::kIdentifier &&
          contains(unordered_names_, T[i].text)) {
        report(kUnorderedIter, T[i],
               "range-for over unordered container '" +
                   std::string(T[i].text) +
                   "'; iteration order is seed-dependent");
        return;
      }
    }
  }

  // ---- R2: raw-random ---------------------------------------------------

  void rule_raw_random() {
    if (ctx_.is_util_module) return;  // the sanctioned wrapper lives here
    const auto& T = toks();
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (T[i].kind != TokenKind::kIdentifier) continue;
      const Token* prev = i > 0 ? &T[i - 1] : nullptr;
      const bool member_access =
          prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->"));
      if (in(kBannedRandom, T[i].text) && !member_access) {
        report(kRawRandom, T[i],
               "'" + std::string(T[i].text) +
                   "' outside src/util — all randomness and clocks flow "
                   "through the seedable util::Rng / util::Timer facades");
        continue;
      }
      const Token* next = at(i + 1);
      const bool call = next != nullptr && is_punct(*next, "(");
      if (call && !member_access &&
          (T[i].text == "rand" || T[i].text == "time" ||
           T[i].text == "clock" || T[i].text == "getpid")) {
        report(kRawRandom, T[i],
               "'" + std::string(T[i].text) +
                   "()' outside src/util — nondeterministic seed source");
      }
    }
  }

  // ---- R3: float-eq -----------------------------------------------------

  bool is_float_operand(const Token* t) const {
    if (t == nullptr) return false;
    if (t->kind == TokenKind::kNumber) return t->is_float;
    return t->kind == TokenKind::kIdentifier &&
           contains(float_vars_, t->text);
  }

  void rule_float_eq() {
    const auto& T = toks();
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (!is_punct(T[i], "==") && !is_punct(T[i], "!=")) continue;
      const Token* lhs = i > 0 ? &T[i - 1] : nullptr;
      const Token* rhs = at(i + 1);
      // `p == nullptr` is a pointer comparison even when `p` shadows a
      // double elsewhere in the file — name tracking is file-scoped, so
      // let the unambiguous operand win.
      if ((lhs != nullptr &&
           (is_ident(*lhs, "nullptr") || is_ident(*lhs, "NULL"))) ||
          (rhs != nullptr &&
           (is_ident(*rhs, "nullptr") || is_ident(*rhs, "NULL")))) {
        continue;
      }
      if (is_float_operand(lhs) || is_float_operand(rhs)) {
        report(kFloatEq, T[i],
               "raw floating-point '" + std::string(T[i].text) +
                   "' — compare against a tolerance, or suppress with why "
                   "exact equality is sound here");
      }
    }
  }

  // ---- R4: raw-output ---------------------------------------------------

  void rule_raw_output() {
    const auto& T = toks();
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (T[i].kind != TokenKind::kIdentifier ||
          !in(kBannedOutput, T[i].text)) {
        continue;
      }
      const Token* prev = i > 0 ? &T[i - 1] : nullptr;
      if (prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->"))) {
        continue;  // member named e.g. `puts` on some object — not stdio
      }
      if (T[i].text != "cout") {
        const Token* next = at(i + 1);
        if (next == nullptr || !is_punct(*next, "(")) continue;
      }
      report(kRawOutput, T[i],
             "'" + std::string(T[i].text) +
                 "' in library code — route output through the CSV/table "
                 "writers or a caller-supplied std::ostream");
    }
  }

  // ---- R5: header-hygiene ----------------------------------------------

  void rule_header_hygiene() {
    if (!ctx_.is_header) return;
    const auto& T = toks();

    bool pragma_once = false;
    for (const Token& t : T) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      std::string_view text = t.text;
      text.remove_prefix(1);  // '#'
      if (trim(text).substr(0, 6) == "pragma" &&
          trim(trim(text).substr(6)).substr(0, 4) == "once") {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      Token anchor;
      anchor.line = 1;
      anchor.col = 1;
      report(kHeaderHygiene, anchor,
             "header is missing '#pragma once'");
    }

    // `using namespace` is a finding only at namespace scope: inside a
    // function body it pollutes nothing beyond that body.
    std::vector<bool> ns_scope;  // true: brace opened by `namespace ... {`
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (is_punct(T[i], "{")) {
        ns_scope.push_back(opened_by_namespace(i));
        continue;
      }
      if (is_punct(T[i], "}")) {
        if (!ns_scope.empty()) ns_scope.pop_back();
        continue;
      }
      if (is_ident(T[i], "using") && at(i + 1) != nullptr &&
          is_ident(*at(i + 1), "namespace")) {
        const bool at_ns_scope =
            std::all_of(ns_scope.begin(), ns_scope.end(),
                        [](bool b) { return b; });
        if (at_ns_scope) {
          report(kHeaderHygiene, T[i],
                 "'using namespace' at namespace scope in a header leaks "
                 "into every includer");
        }
      }
    }
  }

  // ---- R6: txn-discipline ----------------------------------------------

  /// True when token i spells a call (or member call) of one of `names`.
  template <typename Arr>
  bool is_call_of(std::size_t i, const Arr& names) const {
    const Token& t = toks()[i];
    if (t.kind != TokenKind::kIdentifier || !in(names, t.text)) return false;
    const Token* next = at(i + 1);
    return next != nullptr && is_punct(*next, "(");
  }

  void rule_txn_discipline() {
    for (const FunctionBody& fn : functions_) {
      check_txn_body(fn);
    }
  }

  /// Linear brace-aware walk: `open` is true while a transaction is
  /// pending in the *current* scope.  Entering a brace saves the state;
  /// leaving restores it, so a commit inside one branch does not excuse
  /// the other branch or the code after the conditional.  A commit in a
  /// branch followed by `return` inside that same branch is fine — the
  /// state is branch-local in both directions.
  void check_txn_body(const FunctionBody& fn) {
    const auto& T = toks();
    bool open = false;
    const Token* begin_tok = nullptr;
    std::vector<bool> saved;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = T[i];
      if (is_punct(t, "{")) {
        saved.push_back(open);
        continue;
      }
      if (is_punct(t, "}")) {
        if (!saved.empty()) {
          open = saved.back();
          saved.pop_back();
        }
        continue;
      }
      if (is_call_of(i, kTxnBegin)) {
        open = true;
        begin_tok = &t;
        continue;
      }
      if (is_call_of(i, kTxnCommit) || is_call_of(i, kTxnRollback)) {
        open = false;
        continue;
      }
      if (is_ident(t, "return") && open) {
        // `return commit(...)` closes on the way out: scan the return
        // statement itself before judging.
        bool closes = false;
        for (std::size_t j = i + 1; j < fn.body_end && !is_punct(T[j], ";");
             ++j) {
          if (is_call_of(j, kTxnCommit) || is_call_of(j, kTxnRollback)) {
            closes = true;
            break;
          }
        }
        if (!closes) {
          report(kTxnDiscipline, t,
                 "'" + std::string(fn.name) + "' begins a transaction ('" +
                     std::string(begin_tok ? begin_tok->text : "txn_begin") +
                     "') but this return path neither commits nor rolls "
                     "back — every exit must update_mappings/txn_commit or "
                     "release/evict_and_park/txn_abort");
        }
      }
    }
    if (open) {
      // A function whose final top-level statement is `return ...;` cannot
      // also fall off the end — that return already got its own finding.
      bool ends_in_return = false;
      if (fn.body_end > fn.body_begin + 1 &&
          is_punct(T[fn.body_end - 1], ";")) {
        std::size_t j = fn.body_end - 1;
        while (j > fn.body_begin) {
          --j;
          if (is_punct(T[j], ";") || is_punct(T[j], "{") ||
              is_punct(T[j], "}")) {
            ++j;
            break;
          }
        }
        ends_in_return = is_ident(T[j], "return");
      }
      if (!ends_in_return) {
        report(kTxnDiscipline, T[fn.body_end],
               "'" + std::string(fn.name) +
                   "' begins a transaction ('" +
                   std::string(begin_tok ? begin_tok->text : "txn_begin") +
                   "') and falls off the end without commit or rollback");
      }
    }
  }

  // ---- R7: hot-path-alloc ----------------------------------------------

  void rule_hot_path_alloc() {
    for (const FunctionBody& fn : functions_) {
      if (fn.hot_path) check_hot_body(fn);
    }
  }

  static bool is_container_type(std::string_view s) {
    constexpr std::array<std::string_view, 6> kGrowable = {
        "vector", "deque", "string", "basic_string", "list", "forward_list"};
    return in(kGrowable, s);
  }

  static bool is_node_container_type(std::string_view s) {
    constexpr std::array<std::string_view, 8> kNodeBased = {
        "map",           "set",           "multimap",      "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return in(kNodeBased, s);
  }

  void check_hot_body(const FunctionBody& fn) {
    const auto& T = toks();
    // Pass 1 over the body: locals declared with growable container types,
    // and names that are reserve()d anywhere in the body.
    std::set<std::string, std::less<>> growable_locals;
    std::set<std::string, std::less<>> reserved;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = T[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (is_container_type(t.text)) {
        std::size_t j = i + 1;
        if (at(j) != nullptr && is_punct(*at(j), "<")) {
          j = skip_template_args(j);
        }
        j = skip_declarator_noise(j);
        const Token* name = at(j);
        if (name != nullptr && name->kind == TokenKind::kIdentifier &&
            j < fn.body_end) {
          growable_locals.insert(std::string(name->text));
        }
        continue;
      }
      const Token* dot = at(i + 1);
      const Token* fn_name = at(i + 2);
      const Token* paren = at(i + 3);
      if (dot != nullptr && fn_name != nullptr && paren != nullptr &&
          (is_punct(*dot, ".") || is_punct(*dot, "->")) &&
          is_ident(*fn_name, "reserve") && is_punct(*paren, "(")) {
        reserved.insert(std::string(t.text));
      }
    }

    // Pass 2: report allocations.
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = T[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "new") {
        const Token* prev = i > 0 ? &T[i - 1] : nullptr;
        if (prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->") ||
                                is_ident(*prev, "operator"))) {
          continue;
        }
        report(kHotPathAlloc, t,
               "'new' inside hot-path function '" + std::string(fn.name) +
                   "' — allocate scratch once at setup and reuse it");
        continue;
      }
      if (t.text == "make_unique" || t.text == "make_shared") {
        report(kHotPathAlloc, t,
               "'" + std::string(t.text) + "' inside hot-path function '" +
                   std::string(fn.name) +
                   "' — heap allocation on a hot path; hoist to cold setup");
        continue;
      }
      if (is_node_container_type(t.text)) {
        // A declaration (followed by template args + a declarator), not a
        // qualified mention like std::map<...>::iterator in a cast.
        std::size_t j = i + 1;
        if (at(j) == nullptr || !is_punct(*at(j), "<")) continue;
        j = skip_template_args(j);
        j = skip_declarator_noise(j);
        const Token* name = at(j);
        if (name == nullptr || name->kind != TokenKind::kIdentifier ||
            j >= fn.body_end) {
          continue;
        }
        report(kHotPathAlloc, t,
               "node-based '" + std::string(t.text) +
                   "' constructed inside hot-path function '" +
                   std::string(fn.name) +
                   "' — every insert allocates; use sorted vectors or "
                   "preallocated dense arrays");
        i = j;
        continue;
      }
      // push_back / emplace_back on a non-reserve()d body-local.
      const Token* dot = at(i + 1);
      const Token* call = at(i + 2);
      const Token* paren = at(i + 3);
      if (dot != nullptr && call != nullptr && paren != nullptr &&
          (is_punct(*dot, ".") || is_punct(*dot, "->")) &&
          (is_ident(*call, "push_back") || is_ident(*call, "emplace_back")) &&
          is_punct(*paren, "(") &&
          contains(growable_locals, t.text) && !contains(reserved, t.text)) {
        report(kHotPathAlloc, *call,
               "'" + std::string(t.text) + "." + std::string(call->text) +
                   "' on a local never reserve()d inside hot-path function "
                   "'" + std::string(fn.name) +
                   "' — growth reallocates mid-loop; reserve() up front");
      }
    }
  }

  // ---- R8: exhaustive-switch -------------------------------------------

  const std::vector<std::string>* enum_values(std::string_view name) const {
    if (repo_ != nullptr) {
      if (std::find(repo_->enums.ambiguous.begin(),
                    repo_->enums.ambiguous.end(),
                    std::string(name)) != repo_->enums.ambiguous.end()) {
        return nullptr;
      }
      const auto it = repo_->enums.enums.find(name);
      if (it != repo_->enums.enums.end()) return &it->second;
    }
    if (std::find(file_enums_.ambiguous.begin(), file_enums_.ambiguous.end(),
                  std::string(name)) != file_enums_.ambiguous.end()) {
      return nullptr;
    }
    const auto it = file_enums_.enums.find(name);
    return it != file_enums_.enums.end() ? &it->second : nullptr;
  }

  void rule_exhaustive_switch() {
    file_enums_ = collect_enums(lex_);
    const auto& T = toks();
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!is_ident(T[i], "switch") || !is_punct(T[i + 1], "(")) continue;
      // Find the controlled statement's braces.
      int depth = 0;
      std::size_t body_begin = 0;
      for (std::size_t j = i + 1; j < T.size(); ++j) {
        if (is_punct(T[j], "(")) ++depth;
        if (is_punct(T[j], ")")) {
          --depth;
          if (depth == 0) {
            if (j + 1 < T.size() && is_punct(T[j + 1], "{")) {
              body_begin = j + 1;
            }
            break;
          }
        }
      }
      if (body_begin == 0) continue;
      int brace = 0;
      std::size_t body_end = body_begin;
      for (std::size_t j = body_begin; j < T.size(); ++j) {
        if (is_punct(T[j], "{")) ++brace;
        if (is_punct(T[j], "}")) {
          --brace;
          if (brace == 0) {
            body_end = j;
            break;
          }
        }
      }
      if (body_end == body_begin) continue;

      bool has_default = false;
      std::string enum_name;
      std::set<std::string, std::less<>> used;
      bool mixed = false;
      int nest = 0;
      for (std::size_t j = body_begin + 1; j < body_end; ++j) {
        if (is_punct(T[j], "{")) ++nest;
        if (is_punct(T[j], "}")) --nest;
        if (is_ident(T[j], "switch")) {
          // Labels of a nested switch belong to it; skip its body.
          std::size_t k = j;
          int d = 0;
          bool entered = false;
          while (k < body_end) {
            if (is_punct(T[k], "{")) {
              ++d;
              entered = true;
            }
            if (is_punct(T[k], "}")) {
              --d;
              if (entered && d == 0) break;
            }
            ++k;
          }
          j = k;
          continue;
        }
        if (is_ident(T[j], "default") && at(j + 1) != nullptr &&
            is_punct(*at(j + 1), ":")) {
          has_default = true;
        }
        if (!is_ident(T[j], "case")) continue;
        // Label shape: [quals ::] EnumName :: enumerator :
        std::size_t k = j + 1;
        std::vector<std::string_view> idents;
        while (k < body_end && !is_punct(T[k], ":")) {
          if (T[k].kind == TokenKind::kIdentifier) {
            idents.push_back(T[k].text);
          } else if (!is_punct(T[k], "::")) {
            idents.clear();
            break;
          }
          ++k;
        }
        if (idents.size() < 2) continue;  // integer/char labels etc.
        const std::string this_enum(idents[idents.size() - 2]);
        if (enum_name.empty()) {
          enum_name = this_enum;
        } else if (enum_name != this_enum) {
          mixed = true;
        }
        used.insert(std::string(idents.back()));
        j = k;
      }
      if (mixed || enum_name.empty() || has_default) continue;
      const std::vector<std::string>* values = enum_values(enum_name);
      if (values == nullptr) continue;
      std::string missing;
      for (const std::string& v : *values) {
        if (contains(used, v)) continue;
        if (!missing.empty()) missing += ", ";
        missing += v;
      }
      if (missing.empty()) continue;
      report(kExhaustiveSwitch, T[i],
             "switch over enum '" + enum_name +
                 "' is missing case(s) " + missing +
                 " and has no default — handle every enumerator or add an "
                 "explicit default");
    }
  }

  bool opened_by_namespace(std::size_t brace) const {
    const auto& T = toks();
    std::size_t i = brace;
    while (i > 0) {
      --i;
      const Token& t = T[i];
      if (t.kind == TokenKind::kIdentifier && t.text != "namespace" &&
          t.text != "inline") {
        continue;  // namespace name component
      }
      if (is_punct(t, "::")) continue;  // nested namespace a::b
      return is_ident(t, "namespace");
    }
    return false;
  }

  std::string file_;
  FileContext ctx_;
  const RepoContext* repo_ = nullptr;
  LexResult lex_;
  std::vector<FunctionBody> functions_;
  EnumRegistry file_enums_;
  std::set<std::string, std::less<>> unordered_names_;
  std::set<std::string, std::less<>> unordered_aliases_;
  std::set<std::string, std::less<>> float_vars_;
  std::vector<const Token*> decl_sites_;
  std::vector<Suppression> suppressions_;
  std::vector<Finding> findings_;
};

}  // namespace

FileContext classify_path(std::string_view path) {
  FileContext ctx;
  const std::size_t dot = path.rfind('.');
  if (dot != std::string_view::npos) {
    const std::string_view ext = path.substr(dot);
    ctx.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
  }
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    const std::string_view seg = path.substr(start, slash - start);
    if (seg == "orchestrator" || seg == "core" || seg == "workload" ||
        seg == "topology" || seg == "availability" || seg == "multilevel" ||
        seg == "extensions" || seg == "recovery") {
      ctx.is_decision_module = true;
    }
    if (seg == "util") ctx.is_util_module = true;
    if (seg == "tools" || seg == "bench" || seg == "examples") {
      ctx.profile = LintProfile::kRelaxed;
    }
    if (slash == path.size()) break;
    start = slash + 1;
  }
  return ctx;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      std::string(kUnorderedIter),    std::string(kRawRandom),
      std::string(kFloatEq),          std::string(kRawOutput),
      std::string(kHeaderHygiene),    std::string(kTxnDiscipline),
      std::string(kHotPathAlloc),     std::string(kExhaustiveSwitch),
      std::string(kIncludeLayering),  std::string(kBadSuppression),
      std::string(kUnusedSuppression)};
  return kNames;
}

bool is_known_rule(std::string_view rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

std::vector<Finding> analyze_source(std::string file, std::string_view source,
                                    const FileContext& ctx,
                                    const RepoContext* repo) {
  return Analyzer(std::move(file), source, ctx, repo).run();
}

std::vector<Finding> analyze_source(std::string file,
                                    std::string_view source) {
  const FileContext ctx = classify_path(file);
  return analyze_source(std::move(file), source, ctx);
}

}  // namespace hmn::lint
