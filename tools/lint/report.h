// Finding output and baseline handling for hmn-lint.
//
// Text findings print as `file:line:col: rule: message` (the exact shape
// compilers use, so editors and CI log scrapers pick them up for free).
// The JSON report is a stable machine-readable mirror, and the baseline is
// a JSON subset of it: a recorded set of (file, rule, message) triples a
// later run subtracts before failing — the incremental-adoption ratchet.
// Line numbers are deliberately not part of the baseline key; unrelated
// edits above a grandfathered finding must not resurrect it.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "rules.h"

namespace hmn::lint {

/// `file:line:col: rule: message` (+ reason for suppressed findings).
void print_text(std::ostream& out, const std::vector<Finding>& findings,
                bool show_suppressed);

/// Full machine-readable report: every finding with its suppression state,
/// plus summary counts.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// Serializes unsuppressed findings as a baseline document.  Version 2
/// additionally records the distinct (file, rule) pairs of *suppressed*
/// findings: the ratchet.  A later `--ratchet` run fails when a new
/// suppressed pair appears that the committed baseline has not audited —
/// suppressions cannot silently spread to new files or new rules.
[[nodiscard]] std::string write_baseline(const std::vector<Finding>& findings);

struct Baseline {
  /// Sorted (file, rule, message) keys; duplicates preserved so two
  /// identical findings need two baseline entries.
  std::vector<std::string> keys;

  /// Sorted distinct (file, rule) pairs with at least one audited
  /// suppression.  Absent in version-1 documents (empty vector).
  std::vector<std::string> suppressed_pairs;

  /// True (and consumes one key occurrence) if the finding is
  /// grandfathered.  Call at most once per finding.
  [[nodiscard]] bool absorb(const Finding& f);

  /// True if the suppressed finding's (file, rule) pair is audited.
  [[nodiscard]] bool covers_suppressed(const Finding& f) const;
};

/// Parses a baseline document produced by write_baseline.  Returns false on
/// malformed input (the caller should treat that as a hard error — a silent
/// empty baseline would un-grandfather everything).
[[nodiscard]] bool load_baseline(std::string_view text, Baseline& out);

/// JSON string escaping, exposed for tests.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace hmn::lint
