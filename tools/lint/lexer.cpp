#include "lexer.h"

#include <cctype>

namespace hmn::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool is_hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

/// Maximal-munch operator table, longest first.  Three-char operators that
/// matter lexically (<<=, >>=, ..., ->*) are listed so that two-char
/// prefixes are not split off them incorrectly.
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPunct2[] = {"::", "->", "==", "!=", "<=", ">=",
                                        "&&", "||", "<<", ">>", "+=", "-=",
                                        "*=", "/=", "%=", "&=", "|=", "^=",
                                        "++", "--", ".*"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) step();
    result_.line_count = line_;
    return std::move(result_);
  }

 private:
  char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      code_on_line_ = false;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void advance_n(std::size_t n) {
    for (std::size_t i = 0; i < n && pos_ < src_.size(); ++i) advance();
  }

  void emit(TokenKind kind, std::size_t start, std::size_t start_line,
            std::size_t start_col, bool is_float = false) {
    Token t;
    t.kind = kind;
    t.text = src_.substr(start, pos_ - start);
    t.line = start_line;
    t.col = start_col;
    t.is_float = is_float;
    result_.tokens.push_back(t);
    code_on_line_ = true;
  }

  /// Length of a line continuation at `off` (backslash + newline, with a
  /// CRLF tolerated between — editors on other platforms write them, and a
  /// missed continuation desyncs the whole directive), or 0.
  std::size_t continuation_len(std::size_t off = 0) const {
    if (peek(off) != '\\') return 0;
    if (peek(off + 1) == '\n') return 2;
    if (peek(off + 1) == '\r' && peek(off + 2) == '\n') return 3;
    return 0;
  }

  /// Length of a raw-string introducer at the current position: `R"`,
  /// optionally behind an encoding prefix (`u8R"`, `uR"`, `UR"`, `LR"`).
  /// Without this the prefix lexes as an identifier and the `"` opens an
  /// ordinary string whose first `)` ends it — token-stream desync.
  std::size_t raw_string_intro_len() const {
    std::size_t p = 0;
    if (peek() == 'u' && peek(1) == '8') {
      p = 2;
    } else if (peek() == 'u' || peek() == 'U' || peek() == 'L') {
      p = 1;
    }
    if (peek(p) == 'R' && peek(p + 1) == '"') return p + 2;
    return 0;
  }

  void step() {
    const char c = peek();
    if (continuation_len() > 0) {  // stray line continuation
      advance_n(continuation_len());
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      lex_line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      lex_block_comment();
      return;
    }
    if (c == '#' && !code_on_line_) {
      lex_preprocessor();
      return;
    }
    if (raw_string_intro_len() > 0) {
      lex_raw_string(raw_string_intro_len());
      return;
    }
    if (c == '"') {
      lex_string('"', TokenKind::kString);
      return;
    }
    if (c == '\'' && !is_digit_separator_context()) {
      lex_string('\'', TokenKind::kCharLiteral);
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      lex_number();
      return;
    }
    if (is_ident_start(c)) {
      lex_identifier();
      return;
    }
    lex_punct();
  }

  /// A single-quote directly between alnum chars inside a number has already
  /// been consumed by lex_number; this guard only matters if a quote follows
  /// an identifier/number token boundary, which real code never does — keep
  /// the check trivially false-safe.
  bool is_digit_separator_context() const { return false; }

  void lex_line_comment() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    const bool own = !code_on_line_;
    while (pos_ < src_.size() && peek() != '\n') {
      const std::size_t cont = continuation_len();
      if (cont > 0) advance_n(cont - 1);  // continued comment
      advance();
    }
    result_.comments.push_back(
        {src_.substr(start, pos_ - start), start_line, start_col, own});
  }

  void lex_block_comment() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    const bool own = !code_on_line_;
    advance_n(2);
    while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) advance();
    advance_n(2);
    result_.comments.push_back(
        {src_.substr(start, pos_ - start), start_line, start_col, own});
  }

  void lex_preprocessor() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    while (pos_ < src_.size() && peek() != '\n') {
      if (continuation_len() > 0) {
        advance_n(continuation_len());
        continue;
      }
      if (peek() == '/' && peek(1) == '/') break;  // trailing comment
      if (peek() == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      advance();
    }
    emit(TokenKind::kPreprocessor, start, start_line, start_col);
    // Directives never leave trailing code on the line.
    code_on_line_ = false;
  }

  void lex_raw_string(std::size_t intro_len) {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    advance_n(intro_len);  // [u8|u|U|L]R"
    std::string delim;
    // Delimiters are short and never contain whitespace; a newline here
    // means the source is malformed — stop so the scan cannot swallow the
    // rest of the file looking for '('.
    while (pos_ < src_.size() && peek() != '(' && peek() != '\n' &&
           delim.size() < 16) {
      delim.push_back(peek());
      advance();
    }
    if (pos_ >= src_.size() || peek() != '(') {
      // Malformed: no opener before the line ended.  Emit what we saw and
      // resync at the newline instead of scanning the whole file for a
      // closer that cannot exist.
      emit(TokenKind::kString, start, start_line, start_col);
      return;
    }
    advance();  // (
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      advance();
    }
    advance_n(closer.size());
    emit(TokenKind::kString, start, start_line, start_col);
  }

  void lex_string(char quote, TokenKind kind) {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    advance();  // opening quote
    while (pos_ < src_.size() && peek() != quote && peek() != '\n') {
      if (peek() == '\\') advance();
      advance();
    }
    if (pos_ < src_.size() && peek() == quote) advance();
    emit(kind, start, start_line, start_col);
  }

  void lex_number() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance_n(2);
      while (is_hex_digit(peek()) || peek() == '\'') advance();
      if (peek() == '.' || peek() == 'p' || peek() == 'P') {  // hex float
        is_float = true;
        while (is_hex_digit(peek()) || peek() == '.' || peek() == 'p' ||
               peek() == 'P' || peek() == '+' || peek() == '-') {
          advance();
        }
      }
    } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
      advance_n(2);
      while (peek() == '0' || peek() == '1' || peek() == '\'') advance();
    } else {
      while (is_digit(peek()) || peek() == '\'') advance();
      if (peek() == '.' && peek(1) != '.') {  // not the ... operator
        is_float = true;
        advance();
        while (is_digit(peek()) || peek() == '\'') advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        if (is_digit(peek(1)) ||
            ((peek(1) == '+' || peek(1) == '-') && is_digit(peek(2)))) {
          is_float = true;
          advance();
          if (peek() == '+' || peek() == '-') advance();
          while (is_digit(peek())) advance();
        }
      }
    }
    // Suffixes: f/F forces float; u/U/l/L/z/Z leave integers integral.
    while (is_ident_char(peek())) {
      if (peek() == 'f' || peek() == 'F') is_float = true;
      advance();
    }
    emit(TokenKind::kNumber, start, start_line, start_col, is_float);
  }

  void lex_identifier() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    while (is_ident_char(peek())) advance();
    emit(TokenKind::kIdentifier, start, start_line, start_col);
  }

  void lex_punct() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    for (const std::string_view op : kPunct3) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        advance_n(op.size());
        emit(TokenKind::kPunct, start, start_line, start_col);
        return;
      }
    }
    for (const std::string_view op : kPunct2) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        advance_n(op.size());
        emit(TokenKind::kPunct, start, start_line, start_col);
        return;
      }
    }
    advance();
    emit(TokenKind::kPunct, start, start_line, start_col);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  bool code_on_line_ = false;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace hmn::lint
