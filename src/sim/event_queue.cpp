#include "sim/event_queue.h"

#include <memory>
#include <utility>

namespace hmn::sim {

void EventQueue::push(double at, EventFn fn) {
  heap_.push({at, next_seq_++, std::make_shared<EventFn>(std::move(fn))});
}

EventFn EventQueue::pop() {
  EventFn fn = std::move(*heap_.top().fn);
  heap_.pop();
  return fn;
}

}  // namespace hmn::sim
