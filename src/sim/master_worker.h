// Master-worker application simulator — the second canonical shape of the
// paper's high-level workloads (grid parameter sweeps: a coordinator farms
// tasks to workers and collects results), complementing the BSP pattern in
// experiment.h.
//
// The master guest holds a bag of independent tasks.  Each virtual-link
// neighbor of the master is a worker: the master sends a task (payload
// over the mapped path), the worker computes it at its effective CPU rate
// (cpu_model.h), returns the result, and immediately receives the next
// task.  The experiment ends when every task's result is back — so the
// makespan reflects both the stragglers' CPU contention and the task/
// result transfer times, the same mechanisms Section 5.2's correlation
// argument rests on.
#pragma once

#include <cstdint>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::sim {

struct MasterWorkerSpec {
  /// The coordinating guest; its virtual-link neighbors are the workers.
  GuestId master{0};
  /// Total independent tasks; 0 means 4 tasks per worker.
  std::size_t tasks = 0;
  /// Compute cost per task, in seconds at the worker's requested vproc.
  double task_seconds = 1.0;
  /// Payload sizes for task dispatch and result return.
  double task_kb = 64.0;
  double result_kb = 64.0;
  /// Per-task compute jitter of +-jitter_fraction, drawn from `seed`.
  double jitter_fraction = 0.1;
  std::uint64_t seed = 1;
};

struct MasterWorkerResult {
  double makespan_seconds = 0.0;
  std::size_t tasks_completed = 0;
  std::size_t workers = 0;
  /// Tasks completed per worker, indexed like the master's neighbor list —
  /// fast workers (good hosts, cheap paths) complete more.
  std::vector<std::size_t> tasks_per_worker;
};

/// Simulates the farm over a complete, valid mapping.  A master with no
/// neighbors (or zero tasks) completes instantly.
[[nodiscard]] MasterWorkerResult run_master_worker(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping,
    const MasterWorkerSpec& spec = {});

}  // namespace hmn::sim
