#include "sim/experiment.h"

#include <vector>

#include "sim/cpu_model.h"
#include "sim/engine.h"
#include "sim/network_model.h"
#include "util/rng.h"

namespace hmn::sim {
namespace {

/// Per-guest BSP progress tracking.
struct GuestState {
  std::size_t iteration = 0;       // current iteration, [0, spec.iterations)
  bool compute_done = false;       // this iteration's compute finished
  std::vector<std::uint32_t> arrived;  // messages received, per iteration
  std::size_t expected = 0;        // neighbor count (messages per iteration)
  bool finished = false;
  double finish_time = 0.0;
};

}  // namespace

ExperimentResult run_experiment(const model::PhysicalCluster& cluster,
                                const model::VirtualEnvironment& venv,
                                const core::Mapping& mapping,
                                const ExperimentSpec& spec) {
  ExperimentResult result;
  const std::size_t n = venv.guest_count();
  if (n == 0 || spec.iterations == 0) return result;

  Engine engine;
  const NetworkModel net(cluster, venv, mapping);
  const std::vector<double> rate = effective_guest_mips(cluster, venv, mapping);

  // Per-guest work: spec.compute_seconds at the requested rate, jittered.
  util::Rng rng(spec.seed);
  std::vector<double> compute_time(n);
  for (std::size_t g = 0; g < n; ++g) {
    const double jitter =
        rng.uniform(1.0 - spec.jitter_fraction, 1.0 + spec.jitter_fraction);
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    const double vproc = venv.guest(id).proc_mips;
    // Work in "MI" = compute_seconds * vproc; duration = work / actual rate.
    const double slowdown = rate[g] > 0.0 ? vproc / rate[g] : 1.0;
    compute_time[g] = spec.compute_seconds * jitter * slowdown;
  }

  std::vector<GuestState> state(n);
  for (std::size_t g = 0; g < n; ++g) {
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    state[g].expected = venv.links_of(id).size();
    state[g].arrived.assign(spec.iterations, 0);
  }

  std::uint64_t messages = 0;

  // Forward declaration dance: the three closures are mutually recursive
  // through the event queue, so they capture a shared struct of callbacks.
  struct Hooks {
    std::function<void(std::size_t)> start_iteration;
    std::function<void(std::size_t)> on_compute_done;
    std::function<void(std::size_t)> try_advance;
  };
  auto hooks = std::make_shared<Hooks>();

  hooks->start_iteration = [&, hooks](std::size_t g) {
    engine.schedule(compute_time[g], [g, hooks] { hooks->on_compute_done(g); });
  };

  hooks->on_compute_done = [&, hooks](std::size_t g) {
    GuestState& st = state[g];
    st.compute_done = true;
    // Send this iteration's message to every neighbor.
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    const std::size_t iter = st.iteration;
    for (const VirtLinkId l : venv.links_of(id)) {
      const GuestId peer = venv.endpoints(l).other(id);
      const double delay = net.transfer_seconds(l, spec.message_kb);
      const std::size_t peer_idx = peer.index();
      engine.schedule(delay, [&, hooks, peer_idx, iter] {
        ++messages;
        if (iter < state[peer_idx].arrived.size()) {
          ++state[peer_idx].arrived[iter];
        }
        hooks->try_advance(peer_idx);
      });
    }
    hooks->try_advance(g);
  };

  hooks->try_advance = [&, hooks](std::size_t g) {
    GuestState& st = state[g];
    if (st.finished || !st.compute_done) return;
    if (st.arrived[st.iteration] < st.expected) return;
    // Iteration barrier passed.
    ++st.iteration;
    st.compute_done = false;
    if (st.iteration >= spec.iterations) {
      st.finished = true;
      st.finish_time = engine.now();
      return;
    }
    hooks->start_iteration(g);
  };

  for (std::size_t g = 0; g < n; ++g) hooks->start_iteration(g);
  result.makespan_seconds = engine.run();
  result.events_processed = engine.events_processed();
  result.messages_delivered = messages;
  double sum = 0.0;
  result.guest_finish_seconds.reserve(n);
  for (const GuestState& st : state) {
    sum += st.finish_time;
    result.guest_finish_seconds.push_back(st.finish_time);
  }
  result.mean_guest_seconds = sum / static_cast<double>(n);
  return result;
}

GuestId straggler(const ExperimentResult& result) {
  if (result.guest_finish_seconds.empty()) return GuestId::invalid();
  std::size_t best = 0;
  for (std::size_t g = 1; g < result.guest_finish_seconds.size(); ++g) {
    if (result.guest_finish_seconds[g] > result.guest_finish_seconds[best]) {
      best = g;
    }
  }
  return GuestId{static_cast<GuestId::underlying_type>(best)};
}

}  // namespace hmn::sim
