// Emulated distributed experiment (the paper's "time to run the experiment").
//
// A synthetic bulk-synchronous distributed application runs over the mapped
// virtual environment: each guest alternates compute phases (work drawn per
// guest, executed at the CPU model's effective rate) with message exchanges
// to every virtual-link neighbor, proceeding to the next iteration only
// after its own compute finishes and all neighbor messages for the current
// iteration arrive.  The experiment's execution time is the makespan.
//
// This is the workload family the paper's emulator targets (grid/P2P
// applications are compute+exchange loops), and it reproduces the causal
// chain behind Section 5.2's correlation of 0.7: a poorly balanced mapping
// oversubscribes some host, its guests compute slowly, their neighbors
// wait, and the makespan stretches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::sim {

struct ExperimentSpec {
  /// BSP iterations each guest executes.
  std::size_t iterations = 5;
  /// Compute work per iteration, expressed in seconds of execution at the
  /// guest's requested vproc rate; actual duration stretches when the host
  /// is oversubscribed.  Per-guest jitter of +-jitter_fraction is drawn
  /// from `seed`.
  double compute_seconds = 2.0;
  double jitter_fraction = 0.2;
  /// Message payload exchanged with each neighbor per iteration.
  double message_kb = 64.0;
  std::uint64_t seed = 1;
};

struct ExperimentResult {
  double makespan_seconds = 0.0;       // experiment execution time
  double mean_guest_seconds = 0.0;     // average guest completion time
  std::uint64_t messages_delivered = 0;
  std::uint64_t events_processed = 0;
  /// Per-guest completion times — the straggler profile.  The argmax is
  /// the guest (and via the mapping, the host) that gated the experiment.
  std::vector<double> guest_finish_seconds;
};

/// The guest that finished last (the experiment's critical path end).
/// GuestId::invalid() for an empty result.
[[nodiscard]] GuestId straggler(const ExperimentResult& result);

/// Simulates the experiment over a complete, valid mapping.
[[nodiscard]] ExperimentResult run_experiment(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping,
    const ExperimentSpec& spec = {});

}  // namespace hmn::sim
