#include "sim/master_worker.h"

#include "sim/cpu_model.h"
#include "sim/engine.h"
#include "sim/network_model.h"
#include "util/rng.h"

namespace hmn::sim {

MasterWorkerResult run_master_worker(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     const core::Mapping& mapping,
                                     const MasterWorkerSpec& spec) {
  MasterWorkerResult result;
  if (venv.guest_count() == 0) return result;

  // Workers = the master's virtual-link neighbors (each with the link that
  // carries its traffic).
  struct Worker {
    GuestId guest;
    VirtLinkId link;
  };
  std::vector<Worker> workers;
  for (const VirtLinkId l : venv.links_of(spec.master)) {
    const GuestId other = venv.endpoints(l).other(spec.master);
    if (other != spec.master) workers.push_back({other, l});
  }
  result.workers = workers.size();
  result.tasks_per_worker.assign(workers.size(), 0);
  const std::size_t total_tasks =
      spec.tasks != 0 ? spec.tasks : 4 * workers.size();
  if (workers.empty() || total_tasks == 0) return result;

  Engine engine;
  const NetworkModel net(cluster, venv, mapping);
  const std::vector<double> rate =
      effective_guest_mips(cluster, venv, mapping);
  util::Rng rng(spec.seed);

  std::size_t dispatched = 0;
  std::size_t completed = 0;

  // Mutually recursive through the event queue, as in experiment.cpp.
  struct Hooks {
    std::function<void(std::size_t)> dispatch;  // -> worker index
  };
  auto hooks = std::make_shared<Hooks>();

  auto task_duration = [&](const Worker& worker) {
    const double jitter = rng.uniform(1.0 - spec.jitter_fraction,
                                      1.0 + spec.jitter_fraction);
    const double vproc = venv.guest(worker.guest).proc_mips;
    const double actual = rate[worker.guest.index()];
    const double slowdown = actual > 0.0 ? vproc / actual : 1.0;
    return spec.task_seconds * jitter * slowdown;
  };

  hooks->dispatch = [&, hooks](std::size_t w) {
    if (dispatched >= total_tasks) return;
    ++dispatched;
    const Worker& worker = workers[w];
    const double send = net.transfer_seconds(worker.link, spec.task_kb);
    const double compute = task_duration(worker);
    const double reply = net.transfer_seconds(worker.link, spec.result_kb);
    engine.schedule(send + compute + reply, [&, hooks, w] {
      ++completed;
      ++result.tasks_per_worker[w];
      hooks->dispatch(w);  // next task for the now-idle worker
    });
  };

  for (std::size_t w = 0; w < workers.size(); ++w) hooks->dispatch(w);
  result.makespan_seconds = engine.run();
  result.tasks_completed = completed;
  return result;
}

}  // namespace hmn::sim
