// Virtual-link communication model.
//
// A message over a virtual link experiences the accumulated latency of the
// physical path its link was mapped to, plus serialization at the virtual
// link's granted bandwidth (the mapping reserved vbw on every physical edge
// of the path, so the virtual link owns that much end to end).  Co-located
// guests communicate through the VMM: zero latency, `intra_host_mbps`
// bandwidth (effectively instantaneous for the paper's message sizes).
#pragma once

#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::sim {

class NetworkModel {
 public:
  NetworkModel(const model::PhysicalCluster& cluster,
               const model::VirtualEnvironment& venv,
               const core::Mapping& mapping, double intra_host_mbps = 1e6);

  /// Transfer time (seconds) of a `size_kb` kilobyte message over virtual
  /// link l: path latency + size / granted bandwidth.
  [[nodiscard]] double transfer_seconds(VirtLinkId l, double size_kb) const;

  /// Accumulated physical latency (ms) of the path carrying link l
  /// (0 for co-located endpoints).
  [[nodiscard]] double path_latency_ms(VirtLinkId l) const {
    return path_latency_ms_[l.index()];
  }

 private:
  const model::VirtualEnvironment* venv_;
  std::vector<double> path_latency_ms_;  // per virtual link
  double intra_host_mbps_;
  std::vector<bool> colocated_;
};

}  // namespace hmn::sim
