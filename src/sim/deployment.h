// Deployment-time estimation for a mapped virtual environment.
//
// The paper justifies HMN's 30-minute worst-case mapping time by noting
// that "the time to deploy such virtual environment tend[s] to be greater
// than that" (Section 5.2, citing Quetier et al.'s V-DS experiments).
// This model quantifies that comparison: deploying the emulation means
// transferring every guest's VM image from a repository host to its target
// host across the physical fabric, then booting it.
//
// Model: images are pushed one batch per host (hosts fetch concurrently,
// guests of one host fetch sequentially over the host's ingress path).
// Each transfer uses the bottleneck bandwidth of the latency-shortest
// repository->host path, shared equally among hosts whose shortest paths
// use a common edge (a static fair-share approximation of TCP behavior).
// Boot times add per guest, overlapping across hosts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::sim {

struct DeploymentSpec {
  /// Node holding the image repository; invalid() = host 0.
  NodeId repository = NodeId::invalid();
  /// Image size per guest, derived from its storage footprint:
  /// image_gb = base_image_gb + image_fraction_of_storage * vstor.
  double base_image_gb = 0.5;
  double image_fraction_of_storage = 0.0;
  /// Boot time per guest (sequential within a host).
  double boot_seconds = 20.0;
  /// Guests with index < first_guest are treated as already deployed: they
  /// cost no transfer and no boot.  Lets a grown session deploy only its
  /// increment (ids are append-only, so "new" means "index >=
  /// first_guest").
  std::size_t first_guest = 0;
  /// When non-null, only guests with include[g] true are deployed (applied
  /// on top of first_guest).  Lets failure repair redeploy exactly the
  /// evicted guests.  Must outlive the estimate call.
  const std::vector<bool>* include = nullptr;
};

struct DeploymentResult {
  double total_seconds = 0.0;      // makespan across hosts
  double transfer_seconds = 0.0;   // transfer part of the makespan host
  double boot_seconds = 0.0;       // boot part of the makespan host
  std::size_t bytes_moved_gb = 0;  // total image volume (rounded GB)
};

/// Estimates deployment time for `mapping`.  Guests mapped to the
/// repository node transfer at local-disk speed (no network cost).
[[nodiscard]] DeploymentResult estimate_deployment(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping,
    const DeploymentSpec& spec = {});

}  // namespace hmn::sim
