#include "sim/network_model.h"

namespace hmn::sim {

NetworkModel::NetworkModel(const model::PhysicalCluster& cluster,
                           const model::VirtualEnvironment& venv,
                           const core::Mapping& mapping,
                           double intra_host_mbps)
    : venv_(&venv), intra_host_mbps_(intra_host_mbps) {
  path_latency_ms_.resize(venv.link_count(), 0.0);
  colocated_.resize(venv.link_count(), false);
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    colocated_[l] = mapping.colocated(venv, id);
    double lat = 0.0;
    for (const EdgeId e : mapping.path_of(id)) {
      lat += cluster.link(e).latency_ms;
    }
    path_latency_ms_[l] = lat;
  }
}

double NetworkModel::transfer_seconds(VirtLinkId l, double size_kb) const {
  const double bw_mbps = colocated_[l.index()]
                             ? intra_host_mbps_
                             : venv_->link(l).bandwidth_mbps;
  const double latency_s = path_latency_ms_[l.index()] / 1e3;
  // size_kb kilobytes -> kilobits; bw in Mbps -> kbps.
  const double serialize_s = bw_mbps > 0.0
                                 ? (size_kb * 8.0) / (bw_mbps * 1e3)
                                 : 0.0;
  return latency_s + serialize_s;
}

}  // namespace hmn::sim
