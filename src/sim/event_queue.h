// Future-event list for the discrete-event engine.
//
// A binary heap keyed by (time, sequence).  The sequence number breaks ties
// FIFO so simultaneous events execute in schedule order — without it, heap
// reordering would make runs non-deterministic across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace hmn::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (seconds).
  void push(double at, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Timestamp of the next event.  Precondition: !empty().
  [[nodiscard]] double next_time() const { return heap_.top().time; }

  /// Removes and returns the next event's action.  Precondition: !empty().
  [[nodiscard]] EventFn pop();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    // shared_ptr rather than function by value: priority_queue's internal
    // moves during sift must stay cheap and noexcept.
    std::shared_ptr<EventFn> fn;

    bool operator>(const Entry& o) const {
      // hmn-lint: allow(float-eq, heap comparator tie-break; an epsilon here would break strict weak ordering)
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hmn::sim
