// Host CPU allocation model.
//
// Each host shares its MIPS capacity among resident guests the way a
// time-sharing VMM does: a guest receives its requested vproc while the
// host can cover the sum of requests, and a proportional share of the
// host's capacity once the host is oversubscribed.  This is the mechanism
// behind the paper's premise that "a host [with] high load decreases the
// performance of the virtual machines running on it" — an unbalanced
// mapping oversubscribes small hosts, slowing their guests and stretching
// the experiment's makespan.
#pragma once

#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::sim {

/// Effective MIPS each guest receives under the given mapping.
/// rate(g) = vproc(g) * min(1, proc(host)/sum of vproc on host).
[[nodiscard]] std::vector<double> effective_guest_mips(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping);

/// CPU oversubscription factor of each host: sum of vproc / proc
/// (1.0 = exactly full).  Useful for diagnostics and tests.
[[nodiscard]] std::vector<double> host_cpu_load(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping);

}  // namespace hmn::sim
