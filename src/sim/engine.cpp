#include "sim/engine.h"

#include <cassert>

namespace hmn::sim {

void Engine::schedule(double delay, EventFn fn) {
  assert(delay >= 0.0);
  queue_.push(now_ + delay, std::move(fn));
}

void Engine::schedule_at(double at, EventFn fn) {
  assert(at >= now_);
  queue_.push(at, std::move(fn));
}

double Engine::run(double horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    now_ = queue_.next_time();
    EventFn fn = queue_.pop();
    fn();
    ++processed_;
  }
  return now_;
}

}  // namespace hmn::sim
