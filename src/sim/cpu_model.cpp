#include "sim/cpu_model.h"

#include <algorithm>

namespace hmn::sim {

std::vector<double> effective_guest_mips(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const core::Mapping& mapping) {
  std::vector<double> demand(cluster.node_count(), 0.0);
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    demand[mapping.guest_host[g].index()] +=
        venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}).proc_mips;
  }
  std::vector<double> rate(venv.guest_count(), 0.0);
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const NodeId h = mapping.guest_host[g];
    const double vproc =
        venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}).proc_mips;
    const double cap = cluster.capacity(h).proc_mips;
    const double dem = demand[h.index()];
    const double share = dem > cap && dem > 0.0 ? cap / dem : 1.0;
    rate[g] = vproc * share;
  }
  return rate;
}

std::vector<double> host_cpu_load(const model::PhysicalCluster& cluster,
                                  const model::VirtualEnvironment& venv,
                                  const core::Mapping& mapping) {
  std::vector<double> demand(cluster.node_count(), 0.0);
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    demand[mapping.guest_host[g].index()] +=
        venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}).proc_mips;
  }
  std::vector<double> load;
  load.reserve(cluster.host_count());
  for (const NodeId h : cluster.hosts()) {
    const double cap = cluster.capacity(h).proc_mips;
    load.push_back(cap > 0.0 ? demand[h.index()] / cap : 0.0);
  }
  return load;
}

}  // namespace hmn::sim
