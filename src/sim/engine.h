// Discrete-event simulation engine.
//
// A minimal, deterministic kernel in the style of CloudSim's core: a clock
// and a future-event list.  Entities schedule closures; the engine executes
// them in timestamp order, advancing the clock.  Everything the emulation
// experiment needs (CPU phases completing, messages arriving) is expressed
// as scheduled events.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"

namespace hmn::sim {

class Engine {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }
  /// Events executed so far.
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(double delay, EventFn fn);
  /// Schedules `fn` at absolute time `at` (at >= now()).
  void schedule_at(double at, EventFn fn);

  /// Runs until the event list drains or the clock would pass `horizon`.
  /// Returns the final clock value.
  double run(double horizon = std::numeric_limits<double>::infinity());

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace hmn::sim
