#include "sim/deployment.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"

namespace hmn::sim {

DeploymentResult estimate_deployment(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     const core::Mapping& mapping,
                                     const DeploymentSpec& spec) {
  DeploymentResult result;
  if (venv.guest_count() == 0 || cluster.host_count() == 0) return result;

  const NodeId repo =
      spec.repository.valid() ? spec.repository : cluster.hosts().front();

  // Latency-shortest paths from the repository to every node.
  auto latency = [&](EdgeId e) { return cluster.link(e).latency_ms; };
  const auto sp = graph::dijkstra(cluster.graph(), repo, latency);

  // Image volume per destination host (new guests only).
  std::vector<double> volume_gb(cluster.node_count(), 0.0);
  double total_gb = 0.0;
  auto deployed_now = [&](std::size_t g) {
    return g >= spec.first_guest &&
           (spec.include == nullptr || (*spec.include)[g]);
  };
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    if (!deployed_now(g)) continue;
    const auto id = GuestId{static_cast<GuestId::underlying_type>(g)};
    const double image =
        spec.base_image_gb +
        spec.image_fraction_of_storage * venv.guest(id).stor_gb;
    volume_gb[mapping.guest_host[g].index()] += image;
    total_gb += image;
  }
  result.bytes_moved_gb = static_cast<std::size_t>(std::llround(total_gb));

  // Per-edge sharing: count how many destination hosts' shortest paths use
  // each physical edge; an edge's bandwidth is split equally among them.
  std::vector<std::size_t> users(cluster.link_count(), 0);
  for (const NodeId h : cluster.hosts()) {
    // hmn-lint: allow(float-eq, zero is an exact never-written sentinel in volume_gb, not a computed value)
    if (h == repo || volume_gb[h.index()] == 0.0) continue;
    if (!sp.reachable(h)) continue;
    for (const EdgeId e : graph::extract_path(cluster.graph(), sp, repo, h)) {
      ++users[e.index()];
    }
  }

  // Host transfer time = volume / (bottleneck of fair-shared bandwidth
  // along its path); boots are sequential per host, overlapped across
  // hosts.  The makespan is the slowest host's transfer+boot pipeline.
  for (const NodeId h : cluster.hosts()) {
    std::size_t guests_here = 0;
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      if (deployed_now(g) && mapping.guest_host[g] == h) ++guests_here;
    }
    // hmn-lint: allow(float-eq, zero is an exact never-written sentinel in volume_gb, not a computed value)
    if (guests_here == 0 && volume_gb[h.index()] == 0.0) continue;
    double transfer = 0.0;
    if (h != repo && volume_gb[h.index()] > 0.0) {
      if (!sp.reachable(h)) {
        // Unreachable host with images to deploy: deployment impossible;
        // signal with an infinite estimate.
        result.total_seconds = std::numeric_limits<double>::infinity();
        continue;
      }
      double share_mbps = std::numeric_limits<double>::infinity();
      for (const EdgeId e :
           graph::extract_path(cluster.graph(), sp, repo, h)) {
        const double bw = cluster.link(e).bandwidth_mbps /
                          static_cast<double>(std::max<std::size_t>(1, users[e.index()]));
        share_mbps = std::min(share_mbps, bw);
      }
      // GB -> megabits: x 8 x 1024; bandwidth in Mbps.
      transfer = volume_gb[h.index()] * 8.0 * 1024.0 / share_mbps;
    }
    const double boot = spec.boot_seconds * static_cast<double>(guests_here);
    if (transfer + boot > result.total_seconds) {
      result.total_seconds = transfer + boot;
      result.transfer_seconds = transfer;
      result.boot_seconds = boot;
    }
  }
  return result;
}

}  // namespace hmn::sim
