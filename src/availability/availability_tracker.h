// Per-element availability estimation from the observed failure history.
//
// The orchestrator feeds every substrate transition (fail / recover, for
// hosts, links, and blast groups) into an AvailabilityTracker; admission
// then asks "how reliable has this element been lately?" and biases
// placement away from flaky regions (ROADMAP: repair-aware admission).
//
// The estimate is an interval-weighted EWMA of the element's up fraction:
// whenever element e transitions at time t, the elapsed interval
// [since_e, t] was spent entirely up or entirely down, and we fold that
// observation x ∈ {0, 1} in with weight α = 1 − exp(−Δt/τ):
//
//     avail_e ← (1 − α)·avail_e + α·x
//
// A long stable interval therefore dominates history (α → 1), a rapid
// flap barely moves the needle, and elements that have never failed stay
// at exactly 1.0.  That last property is the module's core invariant:
// *until the first failure is observed the tracker is invisible* — every
// weight is 1.0, no headroom is reserved, and availability-aware admission
// is byte-identical to availability-blind admission.
//
// Determinism: updates arrive in canonical event order from a single
// thread, state is keyed by dense element index, and the arithmetic is
// pure double — identical event streams give identical trackers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmn::availability {

struct AvailabilityOptions {
  /// EWMA time constant: intervals much longer than tau carry weight ≈ 1,
  /// much shorter ones weight ≈ Δt/tau.
  double tau = 50.0;
  /// Floor on the availability estimate, so a relentlessly dead element
  /// still gets a non-zero placement weight (starvation guard: the bias is
  /// a preference, never a hard filter).
  double floor = 0.05;
};

/// One element's tracker state, exposed verbatim for checkpointing: the
/// recovery subsystem snapshots and restores trackers bit-exactly (the
/// doubles travel as IEEE-754 bit patterns), so a recovered orchestrator
/// biases admission identically to the uninterrupted run.
struct ElementSnapshot {
  double avail = 1.0;
  double since = 0.0;
  bool down = false;
  bool ever_failed = false;
};

/// Tracks up/down state and EWMA availability per element of one class
/// (nodes or edges — the owner keeps one tracker per class).
class ClassTracker {
 public:
  ClassTracker() = default;
  explicit ClassTracker(std::size_t count, AvailabilityOptions opts);

  /// Records a transition of `element` at time `now`.  Out-of-range
  /// elements are ignored (a trace may describe a larger cluster).
  void on_fail(std::uint32_t element, double now);
  void on_recover(std::uint32_t element, double now);

  /// EWMA availability in [floor, 1]; exactly 1.0 until the element's
  /// first observed failure.
  [[nodiscard]] double availability(std::uint32_t element) const;

  [[nodiscard]] bool is_down(std::uint32_t element) const;
  [[nodiscard]] std::size_t size() const { return state_.size(); }

  /// Checkpoint support: element states in index order, and their exact
  /// restoration.  restore() requires the same element count the tracker
  /// was constructed with.
  [[nodiscard]] std::vector<ElementSnapshot> snapshot() const;
  void restore(const std::vector<ElementSnapshot>& states);

 private:
  struct ElementState {
    double avail = 1.0;
    double since = 0.0;  // time of the last transition
    bool down = false;
    bool ever_failed = false;
  };

  void fold_interval(ElementState& st, double now, bool was_up);

  std::vector<ElementState> state_;
  AvailabilityOptions opts_;
};

/// The availability view the orchestrator consults at admission time:
/// one ClassTracker for nodes and one for physical links, plus the
/// has_history() gate that keeps the whole mechanism invisible until the
/// substrate first misbehaves.
class AvailabilityTracker {
 public:
  AvailabilityTracker() = default;
  AvailabilityTracker(std::size_t node_count, std::size_t link_count,
                      AvailabilityOptions opts = {});

  void on_node_fail(std::uint32_t node, double now);
  void on_node_recover(std::uint32_t node, double now);
  void on_link_fail(std::uint32_t link, double now);
  void on_link_recover(std::uint32_t link, double now);

  /// Correlated-group convenience for blast/power events whose `element`
  /// is not itself a tracker element (a power-domain id): folds every
  /// member host and link in canonical (ascending-id) event order.
  void on_group_fail(const std::vector<std::uint32_t>& hosts,
                     const std::vector<std::uint32_t>& links, double now);
  void on_group_recover(const std::vector<std::uint32_t>& hosts,
                        const std::vector<std::uint32_t>& links, double now);

  [[nodiscard]] double node_availability(std::uint32_t node) const {
    return nodes_.availability(node);
  }
  [[nodiscard]] double link_availability(std::uint32_t link) const {
    return links_.availability(link);
  }

  /// True once any failure has ever been observed.  While false, every
  /// availability is exactly 1.0 and availability-aware admission must be
  /// byte-identical to blind admission.
  [[nodiscard]] bool has_history() const { return has_history_; }

  /// Per-host placement weights (availability of the host node), indexed
  /// by node id.  All-1.0 before the first failure.
  [[nodiscard]] std::vector<double> node_weights() const;

  /// Checkpoint support (see ClassTracker::snapshot): the whole tracker as
  /// plain state, and its exact restoration into a tracker constructed
  /// with the same (node_count, link_count, opts).
  struct Snapshot {
    std::vector<ElementSnapshot> nodes;
    std::vector<ElementSnapshot> links;
    bool has_history = false;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return {nodes_.snapshot(), links_.snapshot(), has_history_};
  }
  void restore(const Snapshot& snap) {
    nodes_.restore(snap.nodes);
    links_.restore(snap.links);
    has_history_ = snap.has_history;
  }

 private:
  ClassTracker nodes_;
  ClassTracker links_;
  bool has_history_ = false;
};

}  // namespace hmn::availability
