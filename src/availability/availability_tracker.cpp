#include "availability/availability_tracker.h"

#include <algorithm>
#include <cmath>

namespace hmn::availability {

ClassTracker::ClassTracker(std::size_t count, AvailabilityOptions opts)
    : state_(count), opts_(opts) {}

void ClassTracker::fold_interval(ElementState& st, double now, bool was_up) {
  const double dt = std::max(0.0, now - st.since);
  // α = 1 − exp(−Δt/τ): a long interval dominates, a flap barely counts.
  const double alpha = 1.0 - std::exp(-dt / std::max(1e-12, opts_.tau));
  const double x = was_up ? 1.0 : 0.0;
  st.avail = (1.0 - alpha) * st.avail + alpha * x;
  st.avail = std::clamp(st.avail, opts_.floor, 1.0);
  st.since = now;
}

void ClassTracker::on_fail(std::uint32_t element, double now) {
  if (element >= state_.size()) return;
  ElementState& st = state_[element];
  if (st.down) return;  // duplicate fail (overlapping groups): no-op
  fold_interval(st, now, /*was_up=*/true);
  st.down = true;
  st.ever_failed = true;
}

void ClassTracker::on_recover(std::uint32_t element, double now) {
  if (element >= state_.size()) return;
  ElementState& st = state_[element];
  if (!st.down) return;  // spurious recover: no-op
  fold_interval(st, now, /*was_up=*/false);
  st.down = false;
}

double ClassTracker::availability(std::uint32_t element) const {
  if (element >= state_.size()) return 1.0;
  const ElementState& st = state_[element];
  if (!st.ever_failed) return 1.0;  // the invisibility invariant
  // A currently-down element is as unreliable as the floor allows; an up
  // element reports its folded history.
  if (st.down) return opts_.floor;
  return st.avail;
}

bool ClassTracker::is_down(std::uint32_t element) const {
  return element < state_.size() && state_[element].down;
}

std::vector<ElementSnapshot> ClassTracker::snapshot() const {
  std::vector<ElementSnapshot> out;
  out.reserve(state_.size());
  for (const ElementState& st : state_) {
    out.push_back({st.avail, st.since, st.down, st.ever_failed});
  }
  return out;
}

void ClassTracker::restore(const std::vector<ElementSnapshot>& states) {
  if (states.size() != state_.size()) return;  // size mismatch: refuse
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_[i].avail = states[i].avail;
    state_[i].since = states[i].since;
    state_[i].down = states[i].down;
    state_[i].ever_failed = states[i].ever_failed;
  }
}

AvailabilityTracker::AvailabilityTracker(std::size_t node_count,
                                         std::size_t link_count,
                                         AvailabilityOptions opts)
    : nodes_(node_count, opts), links_(link_count, opts) {}

void AvailabilityTracker::on_node_fail(std::uint32_t node, double now) {
  nodes_.on_fail(node, now);
  has_history_ = true;
}

void AvailabilityTracker::on_node_recover(std::uint32_t node, double now) {
  nodes_.on_recover(node, now);
}

void AvailabilityTracker::on_link_fail(std::uint32_t link, double now) {
  links_.on_fail(link, now);
  has_history_ = true;
}

void AvailabilityTracker::on_link_recover(std::uint32_t link, double now) {
  links_.on_recover(link, now);
}

void AvailabilityTracker::on_group_fail(
    const std::vector<std::uint32_t>& hosts,
    const std::vector<std::uint32_t>& links, double now) {
  for (std::uint32_t h : hosts) on_node_fail(h, now);
  for (std::uint32_t l : links) on_link_fail(l, now);
}

void AvailabilityTracker::on_group_recover(
    const std::vector<std::uint32_t>& hosts,
    const std::vector<std::uint32_t>& links, double now) {
  for (std::uint32_t h : hosts) on_node_recover(h, now);
  for (std::uint32_t l : links) on_link_recover(l, now);
}

std::vector<double> AvailabilityTracker::node_weights() const {
  std::vector<double> w(nodes_.size(), 1.0);
  if (!has_history_) return w;
  for (std::size_t n = 0; n < w.size(); ++n) {
    w[n] = nodes_.availability(static_cast<std::uint32_t>(n));
  }
  return w;
}

}  // namespace hmn::availability
