// The paper's three evaluation baselines (Section 5):
//
//   R  — Random placement + DFS path search; the *whole* attempt (both
//        placement and paths) is retried, up to `max_tries` times
//        (100 000 in the paper).
//   RA — Random placement + modified A*Prune; placement is retried when
//        path mapping fails.
//   HS — HMN's Hosting stage (run once) + DFS path search; only the path
//        mapping is retried, which is exactly why the paper observes HS
//        failing far more than R: a hosting that concentrates communicating
//        guests saturates the cut links around loaded hosts, and no amount
//        of DFS retries fixes the placement.
//
// The DFS used here is the constrained backtracking search of
// graph/dfs_path.h with randomized expansion order, bounded by
// `dfs_max_expansions` per link so a single hopeless link cannot stall an
// attempt.
#pragma once

#include <cstddef>

#include "core/mapper.h"

namespace hmn::baselines {

struct BaselineOptions {
  /// Maximum full attempts.  The paper uses 100 000; the bench harness
  /// defaults lower because failing instances are structurally infeasible
  /// and additional tries only add time (see EXPERIMENTS.md).
  std::size_t max_tries = 100000;
  /// Expansion budget per DFS path search (0 = unlimited).
  std::size_t dfs_max_expansions = 20000;
};

/// R: random placement + DFS paths, both retried together.
class RandomDfsMapper final : public core::Mapper {
 public:
  explicit RandomDfsMapper(BaselineOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "R"; }
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  BaselineOptions opts_;
};

/// RA: random placement + modified A*Prune paths; placement retried when
/// routing fails.
class RandomAStarMapper final : public core::Mapper {
 public:
  explicit RandomAStarMapper(BaselineOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "RA"; }
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  BaselineOptions opts_;
};

/// HS: Hosting stage (once) + DFS paths (retried).
class HostingSearchMapper final : public core::Mapper {
 public:
  explicit HostingSearchMapper(BaselineOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "HS"; }
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  BaselineOptions opts_;
};

}  // namespace hmn::baselines
