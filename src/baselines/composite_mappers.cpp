#include "baselines/composite_mappers.h"

#include "baselines/random_host_mapper.h"
#include "core/hosting.h"
#include "core/networking.h"
#include "core/residual.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hmn::baselines {
namespace {

using core::MapErrorCode;
using core::MapOutcome;
using core::Mapping;
using core::NetworkingOptions;
using core::PathAlgorithm;
using core::ResidualState;

NetworkingOptions dfs_networking(std::uint64_t seed,
                                 const BaselineOptions& opts) {
  NetworkingOptions n;
  n.algorithm = PathAlgorithm::kDfsNaive;
  n.randomize_dfs = true;
  n.shuffle_seed = seed;
  n.dfs_max_expansions = opts.dfs_max_expansions;
  return n;
}

MapOutcome success(std::vector<NodeId> placement,
                   core::NetworkingResult routed, std::size_t tries,
                   const util::Timer& total) {
  MapOutcome outcome;
  Mapping mapping;
  mapping.guest_host = std::move(placement);
  mapping.link_paths = std::move(routed.link_paths);
  outcome.mapping = std::move(mapping);
  outcome.stats.links_routed = routed.links_routed;
  outcome.stats.tries = tries;
  outcome.stats.total_seconds = total.elapsed_seconds();
  return outcome;
}

/// Shared retry loop for R and RA: random placement + path mapping, both
/// retried together.
MapOutcome random_then_route(const model::PhysicalCluster& cluster,
                             const model::VirtualEnvironment& venv,
                             std::uint64_t seed, const BaselineOptions& opts,
                             PathAlgorithm algorithm) {
  const util::Timer total;
  util::Rng rng(seed);
  for (std::size_t attempt = 0; attempt < opts.max_tries; ++attempt) {
    ResidualState state(cluster);
    auto placement = random_placement(venv, state, rng);
    if (!placement.has_value()) continue;

    NetworkingOptions n;
    if (algorithm == PathAlgorithm::kDfsNaive) {
      n = dfs_networking(util::derive_seed(seed, attempt), opts);
    } else {
      n.algorithm = PathAlgorithm::kAStarPrune;
    }
    core::NetworkingResult routed =
        core::run_networking(venv, state, *placement, n);
    if (routed.ok) {
      MapOutcome out = success(std::move(*placement), std::move(routed),
                               attempt + 1, total);
      out.stats.networking_seconds = out.stats.total_seconds;
      return out;
    }
  }
  MapOutcome out = MapOutcome::failure(
      MapErrorCode::kTriesExhausted,
      "no valid mapping after " + std::to_string(opts.max_tries) + " tries");
  out.stats.tries = opts.max_tries;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace

MapOutcome RandomDfsMapper::map(const model::PhysicalCluster& cluster,
                                const model::VirtualEnvironment& venv,
                                std::uint64_t seed) const {
  return random_then_route(cluster, venv, seed, opts_, PathAlgorithm::kDfsNaive);
}

MapOutcome RandomAStarMapper::map(const model::PhysicalCluster& cluster,
                                  const model::VirtualEnvironment& venv,
                                  std::uint64_t seed) const {
  return random_then_route(cluster, venv, seed, opts_,
                           PathAlgorithm::kAStarPrune);
}

MapOutcome HostingSearchMapper::map(const model::PhysicalCluster& cluster,
                                    const model::VirtualEnvironment& venv,
                                    std::uint64_t seed) const {
  const util::Timer total;
  if (cluster.host_count() == 0) {
    return MapOutcome::failure(MapErrorCode::kInvalidInput,
                               "cluster has no hosts");
  }

  // Hosting runs once; only the path mapping is retried (Section 5.2).
  util::Timer stage;
  ResidualState hosted_state(cluster);
  core::HostingResult hosted = core::run_hosting(venv, hosted_state);
  const double hosting_seconds = stage.elapsed_seconds();
  if (!hosted.ok) {
    MapOutcome out =
        MapOutcome::failure(MapErrorCode::kHostingFailed, hosted.detail);
    out.stats.hosting_seconds = hosting_seconds;
    out.stats.total_seconds = total.elapsed_seconds();
    return out;
  }

  for (std::size_t attempt = 0; attempt < opts_.max_tries; ++attempt) {
    // Bandwidth reservations must restart fresh each attempt, but guest
    // placements persist: rebuild the residual state from the placement.
    ResidualState state(cluster);
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      state.place(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
                  hosted.guest_host[g]);
    }
    stage.restart();
    core::NetworkingResult routed = core::run_networking(
        venv, state, hosted.guest_host,
        dfs_networking(util::derive_seed(seed, attempt), opts_));
    if (routed.ok) {
      MapOutcome out = success(hosted.guest_host, std::move(routed),
                               attempt + 1, total);
      out.stats.hosting_seconds = hosting_seconds;
      out.stats.networking_seconds = stage.elapsed_seconds();
      return out;
    }
  }
  MapOutcome out = MapOutcome::failure(
      MapErrorCode::kTriesExhausted,
      "no valid link mapping after " + std::to_string(opts_.max_tries) +
          " tries");
  out.stats.hosting_seconds = hosting_seconds;
  out.stats.tries = opts_.max_tries;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace hmn::baselines
