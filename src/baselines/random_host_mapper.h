// Random guest placement — the host-mapping half of the paper's Random (R)
// and Random-with-A*Prune (RA) baselines (Section 5).
//
// One placement attempt assigns guests (in shuffled order) to a uniformly
// random host among those whose residual memory and storage fit the guest.
// An attempt fails when some guest fits nowhere.  Pure uniform choice over
// *all* hosts would almost never produce a feasible packing at the paper's
// utilization levels; choosing uniformly among fitting hosts keeps the
// placement "random" in the sense the baseline needs (no affinity, no load
// balancing) while remaining comparable.
#pragma once

#include <optional>
#include <vector>

#include "core/residual.h"
#include "model/virtual_environment.h"
#include "util/rng.h"

namespace hmn::baselines {

/// Attempts one random placement, mutating `state`.  Returns the placement
/// or nullopt (state then holds partial placements; callers discard it).
[[nodiscard]] std::optional<std::vector<NodeId>> random_placement(
    const model::VirtualEnvironment& venv, core::ResidualState& state,
    util::Rng& rng);

}  // namespace hmn::baselines
