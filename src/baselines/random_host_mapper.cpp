#include "baselines/random_host_mapper.h"

namespace hmn::baselines {

std::optional<std::vector<NodeId>> random_placement(
    const model::VirtualEnvironment& venv, core::ResidualState& state,
    util::Rng& rng) {
  const auto& hosts = state.cluster().hosts();
  std::vector<NodeId> placement(venv.guest_count(), NodeId::invalid());

  std::vector<GuestId> order;
  order.reserve(venv.guest_count());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    order.push_back(GuestId{static_cast<GuestId::underlying_type>(g)});
  }
  rng.shuffle(order.begin(), order.end());

  std::vector<NodeId> fitting;
  for (const GuestId g : order) {
    const auto& req = venv.guest(g);
    fitting.clear();
    for (const NodeId h : hosts) {
      if (state.fits(req, h)) fitting.push_back(h);
    }
    if (fitting.empty()) return std::nullopt;
    const NodeId h = fitting[rng.index(fitting.size())];
    state.place(req, h);
    placement[g.index()] = h;
  }
  return placement;
}

}  // namespace hmn::baselines
