// Loading clusters and virtual environments from JSON specifications.
//
// The accepted format is exactly what io::to_json emits, so serialization
// round-trips:
//
//   cluster:  {"nodes":[{"id":0,"role":"host","proc_mips":...,"mem_mb":...,
//                        "stor_gb":...}, {"id":1,"role":"switch"}, ...],
//              "links":[{"a":0,"b":1,"bw_mbps":...,"lat_ms":...}, ...]}
//   venv:     {"guests":[{"id":0,"vproc_mips":...,"vmem_mb":...,
//                         "vstor_gb":...}, ...],
//              "links":[{"src":0,"dst":1,"vbw_mbps":...,"vlat_ms":...},...]}
//
// Node/guest ids must be 0..n-1 in order (the writer's invariant); links
// reference them by index.  Loaders return a value or a diagnostic string.
#pragma once

#include <string>
#include <variant>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::io {

struct SpecError {
  std::string message;
};

[[nodiscard]] std::variant<model::PhysicalCluster, SpecError>
load_cluster_json(std::string_view text);

[[nodiscard]] std::variant<model::VirtualEnvironment, SpecError>
load_venv_json(std::string_view text);

/// Loads a mapping: {"guest_host":[...], "link_paths":[[...],...]}.  Also
/// accepts the full MapOutcome JSON (the "mapping" member is used).
/// Structural validation (ranges, constraint satisfaction) is the
/// validator's job; this only checks shape.
[[nodiscard]] std::variant<core::Mapping, SpecError> load_mapping_json(
    std::string_view text);

[[nodiscard]] std::variant<core::Mapping, SpecError> load_mapping_file(
    const std::string& path);

/// File-reading convenience wrappers (error includes the path).
[[nodiscard]] std::variant<model::PhysicalCluster, SpecError>
load_cluster_file(const std::string& path);

[[nodiscard]] std::variant<model::VirtualEnvironment, SpecError>
load_venv_file(const std::string& path);

}  // namespace hmn::io
