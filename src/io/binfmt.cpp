#include "io/binfmt.h"

#include <cstring>

#include "util/crc32.h"

namespace hmn::io {
namespace {

void put_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint64_t get_le(std::string_view raw) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(raw[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void put_u8(std::string& out, std::uint8_t v) { put_le(out, v, 1); }
void put_u32(std::string& out, std::uint32_t v) { put_le(out, v, 4); }
void put_u64(std::string& out, std::uint64_t v) { put_le(out, v, 8); }

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_u64(out, bytes.size());
  out.append(bytes);
}

void put_u32_vec(std::string& out, const std::vector<std::uint32_t>& v) {
  put_u64(out, v.size());
  for (const std::uint32_t x : v) put_u32(out, x);
}

std::optional<std::string_view> BinReader::raw(std::size_t n) {
  if (n > data_.size() - pos_) return std::nullopt;
  const std::string_view view = data_.substr(pos_, n);
  pos_ += n;
  return view;
}

std::optional<std::uint8_t> BinReader::take_u8() {
  const auto r = raw(1);
  if (!r) return std::nullopt;
  return static_cast<std::uint8_t>(get_le(*r));
}

std::optional<std::uint32_t> BinReader::take_u32() {
  const auto r = raw(4);
  if (!r) return std::nullopt;
  return static_cast<std::uint32_t>(get_le(*r));
}

std::optional<std::uint64_t> BinReader::take_u64() {
  const auto r = raw(8);
  if (!r) return std::nullopt;
  return get_le(*r);
}

std::optional<double> BinReader::take_f64() {
  const auto bits = take_u64();
  if (!bits) return std::nullopt;
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string_view> BinReader::take_bytes() {
  const auto n = take_u64();
  if (!n || *n > data_.size() - pos_) return std::nullopt;
  return raw(static_cast<std::size_t>(*n));
}

std::optional<std::vector<std::uint32_t>> BinReader::take_u32_vec() {
  const auto n = take_u64();
  if (!n || *n > (data_.size() - pos_) / 4) return std::nullopt;
  std::vector<std::uint32_t> v;
  v.reserve(static_cast<std::size_t>(*n));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto x = take_u32();
    if (!x) return std::nullopt;
    v.push_back(*x);
  }
  return v;
}

void append_frame(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, util::crc32(payload));
  out.append(payload);
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  append_frame(out, payload);
  return out;
}

std::optional<FrameError> scan_frames(std::string_view data, FrameScan& out) {
  out.frames.clear();
  out.valid_bytes = 0;
  out.torn_tail = false;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < 8) {
      // Header cut short: only a crash mid-append leaves this shape.
      out.torn_tail = true;
      break;
    }
    const auto len =
        static_cast<std::uint32_t>(get_le(data.substr(pos, 4)));
    const auto crc =
        static_cast<std::uint32_t>(get_le(data.substr(pos + 4, 4)));
    if (len == 0 || len > kMaxFramePayload) {
      if (remaining == 8 || remaining - 8 < len) {
        // The absurd length is the final header (nothing after it), or it
        // never materialized — indistinguishable from a torn header, so
        // truncate rather than fail.
        out.torn_tail = true;
        break;
      }
      return FrameError{
          "frame at offset " + std::to_string(pos) + " declares length " +
              std::to_string(len) + " (valid: 1.." +
              std::to_string(kMaxFramePayload) +
              ") with further data following — corrupt stream, refusing to "
              "load",
          pos};
    }
    if (remaining - 8 < len) {
      // Payload runs past EOF: torn tail.
      out.torn_tail = true;
      break;
    }
    const std::string_view payload = data.substr(pos + 8, len);
    if (util::crc32(payload) != crc) {
      if (pos + 8 + len == data.size()) {
        // The damaged frame is the very last bytes written — the signature
        // of a torn append, not of bit rot — so it truncates cleanly.
        out.torn_tail = true;
        break;
      }
      return FrameError{
          "frame at offset " + std::to_string(pos) +
              " fails its CRC-32 check with further data following — "
              "corrupt stream, refusing to load",
          pos};
    }
    out.frames.push_back(payload);
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  return std::nullopt;
}

}  // namespace hmn::io
