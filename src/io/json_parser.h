// Minimal JSON parser (RFC 8259 subset) for loading cluster / virtual
// environment specifications.
//
// Scope: everything the library's own writers emit plus hand-written spec
// files — objects, arrays, strings with the common escapes, numbers, bools,
// null.  No comments, no trailing commas.  Parse errors carry a byte
// offset.  The DOM is a value type; deep copies are fine at spec-file
// sizes.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hmn::io {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps members ordered for deterministic re-serialization.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  // Checked accessors; precondition: matching type.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Convenience: member as number with default.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;

 private:
  Storage value_;
};

struct JsonParseError {
  std::string message;
  std::size_t offset = 0;  // byte offset into the input
};

/// Parses a complete JSON document.  Returns the value or an error; the
/// whole input must be consumed (trailing garbage is an error).
[[nodiscard]] std::variant<JsonValue, JsonParseError> parse_json(
    std::string_view text);

/// Throwing wrapper for contexts where a malformed spec is fatal.
[[nodiscard]] JsonValue parse_json_or_throw(std::string_view text);

}  // namespace hmn::io
