// Minimal JSON serialization of the library's domain objects, for piping
// experiment inputs/outputs into external tooling.  Writing only — the
// library has no need to parse JSON, and a writer is auditable in a page.
// Serializers for layer-3 record types (expfw::RunRecord timelines,
// emulator::PhaseRecord timelines) live with those types — expfw::to_json
// and emulator::to_json — so this module never includes upward.
#pragma once

#include <string>

#include "core/map_result.h"
#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::io {

[[nodiscard]] std::string to_json(const model::PhysicalCluster& cluster);
[[nodiscard]] std::string to_json(const model::VirtualEnvironment& venv);
[[nodiscard]] std::string to_json(const core::Mapping& mapping);
/// Full outcome including stats and error state.
[[nodiscard]] std::string to_json(const core::MapOutcome& outcome);

}  // namespace hmn::io
