// Minimal JSON serialization of the library's domain objects, for piping
// experiment inputs/outputs into external tooling.  Writing only — the
// library has no need to parse JSON, and a writer is auditable in a page.
#pragma once

#include <string>

#include "core/map_result.h"
#include "core/mapping.h"
#include "emulator/session.h"
#include "expfw/runner.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::io {

[[nodiscard]] std::string to_json(const model::PhysicalCluster& cluster);
[[nodiscard]] std::string to_json(const model::VirtualEnvironment& venv);
[[nodiscard]] std::string to_json(const core::Mapping& mapping);
/// Full outcome including stats and error state.
[[nodiscard]] std::string to_json(const core::MapOutcome& outcome);
/// Experiment records as a JSON array (one object per run).
[[nodiscard]] std::string to_json(const std::vector<expfw::RunRecord>& records);
/// An emulation session's phase timeline (for frontends logging sessions).
[[nodiscard]] std::string to_json(const std::vector<emulator::PhaseRecord>& timeline);

}  // namespace hmn::io
