#include "io/dot.h"

#include <sstream>

#include "util/table.h"

namespace hmn::io {
namespace {

using util::Table;

}  // namespace

std::string to_dot(const model::PhysicalCluster& cluster) {
  std::ostringstream out;
  out << "graph cluster {\n  layout=neato;\n  overlap=false;\n";
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const auto n = NodeId{static_cast<NodeId::underlying_type>(i)};
    if (cluster.is_host(n)) {
      const auto& cap = cluster.capacity(n);
      out << "  n" << i << " [shape=box,label=\"h" << i << "\\n"
          << Table::fmt(cap.proc_mips, 0) << " MIPS\\n"
          << Table::fmt(cap.mem_mb, 0) << " MB\"];\n";
    } else {
      out << "  n" << i << " [shape=diamond,label=\"sw" << i << "\"];\n";
    }
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    const auto ep = cluster.graph().endpoints(id);
    const auto& props = cluster.link(id);
    out << "  n" << ep.a.value() << " -- n" << ep.b.value() << " [label=\""
        << Table::fmt(props.bandwidth_mbps, 0) << "Mbps/"
        << Table::fmt(props.latency_ms, 0) << "ms\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const model::VirtualEnvironment& venv) {
  std::ostringstream out;
  out << "graph venv {\n  layout=sfdp;\n  overlap=false;\n";
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const auto& req = venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
    out << "  g" << g << " [label=\"g" << g << "\\n"
        << Table::fmt(req.mem_mb, 0) << " MB\"];\n";
  }
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = venv.endpoints(id);
    out << "  g" << ep.src.value() << " -- g" << ep.dst.value()
        << " [label=\"" << Table::fmt(venv.link(id).bandwidth_mbps, 3)
        << "Mbps\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const model::PhysicalCluster& cluster,
                   const model::VirtualEnvironment& venv,
                   const core::Mapping& mapping) {
  std::ostringstream out;
  out << "graph mapping {\n  compound=true;\n";
  const auto groups = mapping.guests_per_node(cluster.node_count());
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const auto n = NodeId{static_cast<NodeId::underlying_type>(i)};
    if (cluster.is_host(n)) {
      out << "  subgraph cluster_h" << i << " {\n    label=\"host " << i
          << "\";\n    anchor_h" << i << " [shape=point,style=invis];\n";
      for (const GuestId g : groups[i]) {
        out << "    g" << g.value() << " [label=\"g" << g.value() << "\"];\n";
      }
      out << "  }\n";
    } else {
      out << "  sw" << i << " [shape=diamond,label=\"sw" << i << "\"];\n";
    }
  }
  // Physical links annotated with routed virtual-link counts.
  std::vector<std::size_t> routed(cluster.link_count(), 0);
  for (const auto& path : mapping.link_paths) {
    for (const EdgeId e : path) ++routed[e.index()];
  }
  auto anchor = [&](NodeId n) {
    std::ostringstream name;
    if (cluster.is_host(n)) {
      name << "anchor_h" << n.value();
    } else {
      name << "sw" << n.value();
    }
    return name.str();
  };
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    const auto ep = cluster.graph().endpoints(id);
    out << "  " << anchor(ep.a) << " -- " << anchor(ep.b) << " [label=\""
        << routed[e] << " vlinks\"";
    if (cluster.is_host(ep.a)) out << ",ltail=cluster_h" << ep.a.value();
    if (cluster.is_host(ep.b)) out << ",lhead=cluster_h" << ep.b.value();
    out << "];\n";
  }
  (void)venv;
  out << "}\n";
  return out.str();
}

}  // namespace hmn::io
