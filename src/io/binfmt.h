// Compact binary record framing: the on-disk grammar shared by the
// recovery subsystem's write-ahead journal and checkpoints (and the seed
// of the ROADMAP's binary-trace direction).
//
// A stream is a flat sequence of frames:
//
//   [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// all little-endian, no alignment, no padding.  The framing is what makes
// crash recovery sound: a record is either *entirely* present with a
// matching checksum or it is not a record.  The reader classifies every
// defect it meets:
//
//   * torn tail  — the final frame is incomplete (header cut short, the
//     declared payload runs past EOF, or the checksum of a frame that ends
//     exactly at EOF fails).  This is the expected signature of a crash
//     mid-append: the valid prefix is usable and the reader reports the
//     byte offset to truncate at;
//   * corruption — a frame *inside* the stream fails its checksum, or a
//     declared length is absurd (zero / over the 64 MiB cap) while more
//     bytes follow.  This is never a crash artifact, so it is a loud,
//     descriptive error, not a silent truncation.
//
// Primitive codecs (fixed-width little-endian integers, IEEE-754 doubles
// by bit pattern, length-prefixed strings and id vectors) keep every
// serialized value byte-exact across machines: a double round-trips to
// the identical bits, which the byte-identical-fingerprint recovery gate
// depends on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hmn::io {

/// Upper bound on one frame's payload.  Nothing legitimate (a checkpoint
/// of a bench-scale cluster is kilobytes) comes close; a declared length
/// above it is treated as corruption, bounding reader allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64U * 1024U * 1024U;

// ---- primitive encoders (append to an output buffer) --------------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// IEEE-754 bit pattern — exact round trip, unlike any text format.
void put_f64(std::string& out, double v);
/// u64 length prefix + raw bytes.
void put_bytes(std::string& out, std::string_view bytes);
/// u64 count prefix + one u32 per element.
void put_u32_vec(std::string& out, const std::vector<std::uint32_t>& v);

// ---- primitive decoders (cursor over a payload) --------------------------

/// Bounds-checked sequential reader.  Every take_* returns nullopt once
/// the payload is exhausted or a length prefix overruns it; callers treat
/// that as a malformed payload (the frame CRC already passed, so this
/// means an encoder/decoder version skew, not bit rot).
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> take_u8();
  [[nodiscard]] std::optional<std::uint32_t> take_u32();
  [[nodiscard]] std::optional<std::uint64_t> take_u64();
  [[nodiscard]] std::optional<double> take_f64();
  [[nodiscard]] std::optional<std::string_view> take_bytes();
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> take_u32_vec();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  [[nodiscard]] std::optional<std::string_view> raw(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- frame layer ---------------------------------------------------------

/// Appends one [len][crc][payload] frame to `out`.
void append_frame(std::string& out, std::string_view payload);

/// Encodes the frame for `payload` without writing it anywhere — the
/// crash-injection harness uses this to compute how many bytes of a frame
/// a torn write would have persisted.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Outcome of scanning a frame stream.
struct FrameScan {
  /// Payloads of every intact frame, in order.  Views into the scanned
  /// buffer — they live only as long as it does.
  std::vector<std::string_view> frames;
  /// Byte offset just past the last intact frame.  Equal to the buffer
  /// size on a clean stream; smaller when a torn tail was truncated.
  std::size_t valid_bytes = 0;
  /// The final frame was incomplete and was dropped (crash mid-append).
  bool torn_tail = false;
};

struct FrameError {
  std::string message;      // descriptive: offset, what failed, why
  std::size_t offset = 0;   // byte offset of the offending frame header
};

/// Scans a buffer of frames.  Returns an error (loudly — never a silent
/// skip) on mid-stream corruption; a torn *tail* is not an error, it is a
/// truncation recorded in the scan result.
[[nodiscard]] std::optional<FrameError> scan_frames(std::string_view data,
                                                    FrameScan& out);

}  // namespace hmn::io
