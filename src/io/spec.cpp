#include "io/spec.h"

#include <fstream>
#include <sstream>

#include "io/json_parser.h"

namespace hmn::io {
namespace {

std::variant<std::string, SpecError> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return SpecError{"cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Fetches a required numeric member or records an error.
bool require_number(const JsonValue& obj, const std::string& key, double& out,
                    std::string& error, const std::string& context) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    error = context + ": missing numeric field \"" + key + "\"";
    return false;
  }
  out = v->as_number();
  return true;
}

}  // namespace

std::variant<model::PhysicalCluster, SpecError> load_cluster_json(
    std::string_view text) {
  auto parsed = parse_json(text);
  if (auto* err = std::get_if<JsonParseError>(&parsed)) {
    return SpecError{"JSON error at offset " + std::to_string(err->offset) +
                     ": " + err->message};
  }
  const JsonValue& root = std::get<JsonValue>(parsed);
  const JsonValue* nodes = root.find("nodes");
  const JsonValue* links = root.find("links");
  if (nodes == nullptr || !nodes->is_array()) {
    return SpecError{"cluster spec: missing \"nodes\" array"};
  }
  if (links == nullptr || !links->is_array()) {
    return SpecError{"cluster spec: missing \"links\" array"};
  }

  topology::Topology topo;
  topo.graph = graph::Graph(nodes->as_array().size());
  std::vector<model::HostCapacity> caps;
  std::string error;
  for (std::size_t i = 0; i < nodes->as_array().size(); ++i) {
    const JsonValue& node = nodes->as_array()[i];
    const std::string context = "node " + std::to_string(i);
    if (!node.is_object()) return SpecError{context + ": not an object"};
    const JsonValue* role = node.find("role");
    const bool is_host =
        role == nullptr || !role->is_string() || role->as_string() == "host";
    if (role != nullptr && role->is_string() && role->as_string() != "host" &&
        role->as_string() != "switch") {
      return SpecError{context + ": role must be \"host\" or \"switch\""};
    }
    if (const JsonValue* id = node.find("id");
        id != nullptr && id->is_number() &&
        static_cast<std::size_t>(id->as_number()) != i) {
      return SpecError{context + ": ids must be dense and in order"};
    }
    topo.role.push_back(is_host ? topology::NodeRole::kHost
                                : topology::NodeRole::kSwitch);
    if (is_host) {
      model::HostCapacity cap;
      if (!require_number(node, "proc_mips", cap.proc_mips, error, context) ||
          !require_number(node, "mem_mb", cap.mem_mb, error, context) ||
          !require_number(node, "stor_gb", cap.stor_gb, error, context)) {
        return SpecError{error};
      }
      caps.push_back(cap);
    }
  }

  std::vector<model::LinkProps> props;
  for (std::size_t i = 0; i < links->as_array().size(); ++i) {
    const JsonValue& link = links->as_array()[i];
    const std::string context = "link " + std::to_string(i);
    if (!link.is_object()) return SpecError{context + ": not an object"};
    double a = 0, b = 0;
    model::LinkProps p;
    if (!require_number(link, "a", a, error, context) ||
        !require_number(link, "b", b, error, context) ||
        !require_number(link, "bw_mbps", p.bandwidth_mbps, error, context) ||
        !require_number(link, "lat_ms", p.latency_ms, error, context)) {
      return SpecError{error};
    }
    if (a < 0 || b < 0 || a >= static_cast<double>(topo.graph.node_count()) ||
        b >= static_cast<double>(topo.graph.node_count())) {
      return SpecError{context + ": endpoint out of range"};
    }
    topo.graph.add_edge(NodeId{static_cast<NodeId::underlying_type>(a)},
                        NodeId{static_cast<NodeId::underlying_type>(b)});
    props.push_back(p);
  }

  try {
    return model::PhysicalCluster::build(std::move(topo), std::move(caps),
                                         std::move(props));
  } catch (const std::exception& e) {
    return SpecError{std::string("cluster spec: ") + e.what()};
  }
}

std::variant<model::VirtualEnvironment, SpecError> load_venv_json(
    std::string_view text) {
  auto parsed = parse_json(text);
  if (auto* err = std::get_if<JsonParseError>(&parsed)) {
    return SpecError{"JSON error at offset " + std::to_string(err->offset) +
                     ": " + err->message};
  }
  const JsonValue& root = std::get<JsonValue>(parsed);
  const JsonValue* guests = root.find("guests");
  const JsonValue* links = root.find("links");
  if (guests == nullptr || !guests->is_array()) {
    return SpecError{"venv spec: missing \"guests\" array"};
  }
  if (links == nullptr || !links->is_array()) {
    return SpecError{"venv spec: missing \"links\" array"};
  }

  model::VirtualEnvironment venv;
  std::string error;
  for (std::size_t i = 0; i < guests->as_array().size(); ++i) {
    const JsonValue& guest = guests->as_array()[i];
    const std::string context = "guest " + std::to_string(i);
    if (!guest.is_object()) return SpecError{context + ": not an object"};
    model::GuestRequirements req;
    if (!require_number(guest, "vproc_mips", req.proc_mips, error, context) ||
        !require_number(guest, "vmem_mb", req.mem_mb, error, context) ||
        !require_number(guest, "vstor_gb", req.stor_gb, error, context)) {
      return SpecError{error};
    }
    venv.add_guest(req);
  }
  for (std::size_t i = 0; i < links->as_array().size(); ++i) {
    const JsonValue& link = links->as_array()[i];
    const std::string context = "virtual link " + std::to_string(i);
    if (!link.is_object()) return SpecError{context + ": not an object"};
    double src = 0, dst = 0;
    model::VirtualLinkDemand demand;
    if (!require_number(link, "src", src, error, context) ||
        !require_number(link, "dst", dst, error, context) ||
        !require_number(link, "vbw_mbps", demand.bandwidth_mbps, error,
                        context) ||
        !require_number(link, "vlat_ms", demand.max_latency_ms, error,
                        context)) {
      return SpecError{error};
    }
    if (src < 0 || dst < 0 ||
        src >= static_cast<double>(venv.guest_count()) ||
        dst >= static_cast<double>(venv.guest_count())) {
      return SpecError{context + ": endpoint out of range"};
    }
    venv.add_link(GuestId{static_cast<GuestId::underlying_type>(src)},
                  GuestId{static_cast<GuestId::underlying_type>(dst)}, demand);
  }
  return venv;
}

std::variant<core::Mapping, SpecError> load_mapping_json(
    std::string_view text) {
  auto parsed = parse_json(text);
  if (auto* err = std::get_if<JsonParseError>(&parsed)) {
    return SpecError{"JSON error at offset " + std::to_string(err->offset) +
                     ": " + err->message};
  }
  const JsonValue* root = &std::get<JsonValue>(parsed);
  // Accept a wrapped MapOutcome document.
  if (const JsonValue* inner = root->find("mapping"); inner != nullptr) {
    root = inner;
  }
  const JsonValue* hosts = root->find("guest_host");
  const JsonValue* paths = root->find("link_paths");
  if (hosts == nullptr || !hosts->is_array()) {
    return SpecError{"mapping spec: missing \"guest_host\" array"};
  }
  if (paths == nullptr || !paths->is_array()) {
    return SpecError{"mapping spec: missing \"link_paths\" array"};
  }
  core::Mapping mapping;
  for (std::size_t g = 0; g < hosts->as_array().size(); ++g) {
    const JsonValue& v = hosts->as_array()[g];
    if (!v.is_number() || v.as_number() < 0) {
      return SpecError{"mapping spec: guest_host[" + std::to_string(g) +
                       "] must be a non-negative node id"};
    }
    mapping.guest_host.push_back(
        NodeId{static_cast<NodeId::underlying_type>(v.as_number())});
  }
  for (std::size_t l = 0; l < paths->as_array().size(); ++l) {
    const JsonValue& path = paths->as_array()[l];
    if (!path.is_array()) {
      return SpecError{"mapping spec: link_paths[" + std::to_string(l) +
                       "] must be an array of edge ids"};
    }
    graph::Path edges;
    for (const JsonValue& e : path.as_array()) {
      if (!e.is_number() || e.as_number() < 0) {
        return SpecError{"mapping spec: link_paths[" + std::to_string(l) +
                         "] contains a non-id entry"};
      }
      edges.push_back(EdgeId{static_cast<EdgeId::underlying_type>(e.as_number())});
    }
    mapping.link_paths.push_back(std::move(edges));
  }
  return mapping;
}

std::variant<core::Mapping, SpecError> load_mapping_file(
    const std::string& path) {
  auto text = slurp(path);
  if (auto* err = std::get_if<SpecError>(&text)) return *err;
  return load_mapping_json(std::get<std::string>(text));
}

std::variant<model::PhysicalCluster, SpecError> load_cluster_file(
    const std::string& path) {
  auto text = slurp(path);
  if (auto* err = std::get_if<SpecError>(&text)) return *err;
  return load_cluster_json(std::get<std::string>(text));
}

std::variant<model::VirtualEnvironment, SpecError> load_venv_file(
    const std::string& path) {
  auto text = slurp(path);
  if (auto* err = std::get_if<SpecError>(&text)) return *err;
  return load_venv_json(std::get<std::string>(text));
}

}  // namespace hmn::io
