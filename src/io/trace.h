// JSONL record/replay of churn traces (workload::ChurnTrace).
//
// One JSON object per line.  The first line is a header carrying the
// format version and the guest profile every venv in the trace is drawn
// from; each following line is one tenant event:
//
//   {"type":"churn-trace","version":4,"mttf_dist":"exponential","profile":{...}}
//   {"t":0.31,"ev":"arrive","tenant":0,"guests":8,"density":0.2,"seed":"...",
//    "tier":"gold","replica_n":3,"replica_k":2}
//   {"t":2.87,"ev":"grow","tenant":0,"add_guests":2,"add_links":1,"seed":"..."}
//   {"t":9.75,"ev":"depart","tenant":0}
//   {"t":4.02,"ev":"blast-fail","element":40,"hosts":[0,1,2],"links":[0,1,2,3]}
//   {"t":6.10,"ev":"power-fail","element":1,"hosts":[1,5],"links":[0,4]}
//
// Format history: v1 churn only; v2 added per-element failure lines; v3
// adds correlated blast groups (member lists on the line), the MTTF
// distribution tag in the header, and `critical_link_fraction` in the
// profile; v4 adds the SLA tier tag and k-of-n replica spec on arrive
// lines (written only when non-default) and correlated power-domain
// events, whose `element` is a *power-domain id*, not a node id.  The
// parser accepts v1–v4 (every addition is optional with a
// backward-compatible default, so a v3 reader's trace parses unchanged)
// and rejects anything else.
//
// Seeds are 64-bit and therefore serialized as decimal *strings* — a JSON
// number is a double and silently loses bits above 2^53.  Numbers are
// written with %.17g (exact double round trip), so write(read(s)) == s for
// any s this writer produced: a recorded trace replays byte-for-byte.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "workload/churn.h"

namespace hmn::io {

/// Serializes a trace to JSONL (header line + one line per event, each
/// '\n'-terminated).
[[nodiscard]] std::string write_trace(const workload::ChurnTrace& trace);

struct TraceParseError {
  std::string message;
  std::size_t line = 0;  // 1-based line number
};

/// Parses a JSONL trace.  Blank lines are ignored; anything else
/// malformed — bad JSON, missing header, unknown event kind — is an error
/// carrying the offending line number.
[[nodiscard]] std::variant<workload::ChurnTrace, TraceParseError> read_trace(
    std::string_view text);

/// Throwing wrapper (std::runtime_error) for contexts where a malformed
/// trace is fatal.
[[nodiscard]] workload::ChurnTrace read_trace_or_throw(std::string_view text);

/// File convenience wrappers.  save_trace returns false on I/O failure;
/// load_trace returns nullopt on I/O *or* parse failure.
bool save_trace(const std::filesystem::path& path,
                const workload::ChurnTrace& trace);
[[nodiscard]] std::optional<workload::ChurnTrace> load_trace(
    const std::filesystem::path& path);

}  // namespace hmn::io
