#include "io/json_parser.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace hmn::io {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::variant<JsonValue, JsonParseError> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return error_;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  JsonParseError error_;

  JsonParseError fail(std::string message) {
    error_ = {std::move(message), pos_};
    return error_;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  bool expect(char ch, const char* what) {
    if (at_end() || peek() != ch) {
      fail(std::string("expected ") + what);
      return false;
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (at_end()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", JsonValue(true), out);
      case 'f': return parse_literal("false", JsonValue(false), out);
      case 'n': return parse_literal("null", JsonValue(nullptr), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, JsonValue value, JsonValue& out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
      return false;
    }
    pos_ += lit.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || start == pos_) {
      pos_ = start;
      fail("invalid number");
      return false;
    }
    out = JsonValue(value);
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!expect('"', "'\"'")) return false;
    out.clear();
    while (!at_end() && peek() != '"') {
      char ch = peek();
      if (ch == '\\') {
        ++pos_;
        if (at_end()) {
          fail("unterminated escape");
          return false;
        }
        switch (peek()) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // \uXXXX: decode the BMP code point to UTF-8 (surrogate pairs
            // outside spec-file needs are rejected).
            if (pos_ + 4 >= text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char hex = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
              else if (hex >= 'a' && hex <= 'f') code |= static_cast<unsigned>(hex - 'a' + 10);
              else if (hex >= 'A' && hex <= 'F') code |= static_cast<unsigned>(hex - 'A' + 10);
              else {
                fail("invalid \\u escape");
                return false;
              }
            }
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate pairs not supported");
              return false;
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            pos_ += 4;
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
        ++pos_;
      } else {
        out += ch;
        ++pos_;
      }
    }
    return expect('"', "closing '\"'");
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue(std::move(s));
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!expect('[', "'['")) return false;
    JsonArray array;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = JsonValue(std::move(array));
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element)) return false;
      array.push_back(std::move(element));
      skip_ws();
      if (at_end()) {
        fail("unterminated array");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue(std::move(array));
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    if (!expect('{', "'{'")) return false;
    JsonObject object;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = JsonValue(std::move(object));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!expect(':', "':'")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      object.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) {
        fail("unterminated object");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue(std::move(object));
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }
};

}  // namespace

std::variant<JsonValue, JsonParseError> parse_json(std::string_view text) {
  return Parser(text).run();
}

JsonValue parse_json_or_throw(std::string_view text) {
  auto result = parse_json(text);
  if (auto* err = std::get_if<JsonParseError>(&result)) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(err->offset) + ": " +
                             err->message);
  }
  return std::get<JsonValue>(std::move(result));
}

}  // namespace hmn::io
