// Graphviz DOT export for clusters, virtual environments, and mappings —
// the inspection tool for debugging placements and paths visually.
#pragma once

#include <string>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::io {

/// Cluster topology: hosts as boxes (labeled with capacities), switches as
/// diamonds, links labeled bw/lat.
[[nodiscard]] std::string to_dot(const model::PhysicalCluster& cluster);

/// Virtual environment: guests as ellipses, links labeled vbw/vlat.
[[nodiscard]] std::string to_dot(const model::VirtualEnvironment& venv);

/// Mapping overview: one subgraph cluster per host listing its guests,
/// physical links annotated with the number of virtual links routed
/// through them.
[[nodiscard]] std::string to_dot(const model::PhysicalCluster& cluster,
                                 const model::VirtualEnvironment& venv,
                                 const core::Mapping& mapping);

}  // namespace hmn::io
