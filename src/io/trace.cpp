#include "io/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json_parser.h"

namespace hmn::io {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_range(std::ostringstream& out, const char* name,
                 const workload::Range& r) {
  out << '"' << name << "\":[" << num(r.lo) << ',' << num(r.hi) << ']';
}

TraceParseError err(std::size_t line, std::string message) {
  return {std::move(message), line};
}

/// Reads a [lo,hi] member into `range`; false on shape mismatch.
bool read_range(const JsonValue& profile, const char* name,
                workload::Range& range) {
  const JsonValue* v = profile.find(name);
  if (v == nullptr || !v->is_array() || v->as_array().size() != 2 ||
      !v->as_array()[0].is_number() || !v->as_array()[1].is_number()) {
    return false;
  }
  range.lo = v->as_array()[0].as_number();
  range.hi = v->as_array()[1].as_number();
  return true;
}

bool read_seed(const JsonValue& obj, std::uint64_t& seed) {
  const JsonValue* v = obj.find("seed");
  if (v == nullptr || !v->is_string()) return false;
  seed = std::strtoull(v->as_string().c_str(), nullptr, 10);
  return true;
}

}  // namespace

std::string write_trace(const workload::ChurnTrace& trace) {
  std::ostringstream out;
  out << "{\"type\":\"churn-trace\",\"version\":1,\"profile\":{";
  write_range(out, "proc_mips", trace.profile.proc_mips);
  out << ',';
  write_range(out, "mem_mb", trace.profile.mem_mb);
  out << ',';
  write_range(out, "stor_gb", trace.profile.stor_gb);
  out << ',';
  write_range(out, "link_bw_mbps", trace.profile.link_bw_mbps);
  out << ',';
  write_range(out, "link_lat_ms", trace.profile.link_lat_ms);
  out << "}}\n";

  for (const workload::TenantEvent& ev : trace.events) {
    out << "{\"t\":" << num(ev.time) << ",\"ev\":\""
        << workload::to_string(ev.kind) << "\",\"tenant\":" << ev.tenant;
    switch (ev.kind) {
      case workload::EventKind::kArrive:
        out << ",\"guests\":" << ev.guest_count
            << ",\"density\":" << num(ev.density) << ",\"seed\":\"" << ev.seed
            << '"';
        break;
      case workload::EventKind::kGrow:
        out << ",\"add_guests\":" << ev.add_guests
            << ",\"add_links\":" << ev.add_links << ",\"seed\":\"" << ev.seed
            << '"';
        break;
      case workload::EventKind::kDepart:
        break;
    }
    out << "}\n";
  }
  return out.str();
}

std::variant<workload::ChurnTrace, TraceParseError> read_trace(
    std::string_view text) {
  workload::ChurnTrace trace;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    auto parsed = parse_json(line);
    if (std::holds_alternative<JsonParseError>(parsed)) {
      return err(line_no, std::get<JsonParseError>(parsed).message);
    }
    const JsonValue& obj = std::get<JsonValue>(parsed);
    if (!obj.is_object()) return err(line_no, "expected a JSON object");

    if (!saw_header) {
      const JsonValue* type = obj.find("type");
      if (type == nullptr || !type->is_string() ||
          type->as_string() != "churn-trace") {
        return err(line_no, "missing churn-trace header");
      }
      const JsonValue* profile = obj.find("profile");
      if (profile == nullptr || !profile->is_object() ||
          !read_range(*profile, "proc_mips", trace.profile.proc_mips) ||
          !read_range(*profile, "mem_mb", trace.profile.mem_mb) ||
          !read_range(*profile, "stor_gb", trace.profile.stor_gb) ||
          !read_range(*profile, "link_bw_mbps", trace.profile.link_bw_mbps) ||
          !read_range(*profile, "link_lat_ms", trace.profile.link_lat_ms)) {
        return err(line_no, "malformed profile in header");
      }
      saw_header = true;
      continue;
    }

    workload::TenantEvent ev;
    const JsonValue* t = obj.find("t");
    const JsonValue* kind = obj.find("ev");
    const JsonValue* tenant = obj.find("tenant");
    if (t == nullptr || !t->is_number() || kind == nullptr ||
        !kind->is_string() || tenant == nullptr || !tenant->is_number()) {
      return err(line_no, "event line needs t, ev, tenant");
    }
    ev.time = t->as_number();
    ev.tenant = static_cast<std::uint32_t>(tenant->as_number());
    const std::string& k = kind->as_string();
    if (k == "arrive") {
      ev.kind = workload::EventKind::kArrive;
      ev.guest_count =
          static_cast<std::size_t>(obj.number_or("guests", 0.0));
      ev.density = obj.number_or("density", 0.0);
      if (!read_seed(obj, ev.seed)) {
        return err(line_no, "arrive event needs a string seed");
      }
    } else if (k == "grow") {
      ev.kind = workload::EventKind::kGrow;
      ev.add_guests =
          static_cast<std::size_t>(obj.number_or("add_guests", 0.0));
      ev.add_links =
          static_cast<std::size_t>(obj.number_or("add_links", 0.0));
      if (!read_seed(obj, ev.seed)) {
        return err(line_no, "grow event needs a string seed");
      }
    } else if (k == "depart") {
      ev.kind = workload::EventKind::kDepart;
    } else {
      return err(line_no, "unknown event kind '" + k + "'");
    }
    trace.events.push_back(ev);
  }
  if (!saw_header) return err(0, "empty trace: no header line");
  return trace;
}

workload::ChurnTrace read_trace_or_throw(std::string_view text) {
  auto parsed = read_trace(text);
  if (std::holds_alternative<TraceParseError>(parsed)) {
    const auto& e = std::get<TraceParseError>(parsed);
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(e.line) + ": " + e.message);
  }
  return std::get<workload::ChurnTrace>(std::move(parsed));
}

bool save_trace(const std::filesystem::path& path,
                const workload::ChurnTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_trace(trace);
  return static_cast<bool>(out);
}

std::optional<workload::ChurnTrace> load_trace(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = read_trace(buf.str());
  if (std::holds_alternative<TraceParseError>(parsed)) return std::nullopt;
  return std::get<workload::ChurnTrace>(std::move(parsed));
}

}  // namespace hmn::io
