#include "io/trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "io/json_parser.h"

namespace hmn::io {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_range(std::ostringstream& out, const char* name,
                 const workload::Range& r) {
  out << '"' << name << "\":[" << num(r.lo) << ',' << num(r.hi) << ']';
}

TraceParseError err(std::size_t line, std::string message) {
  return {std::move(message), line};
}

/// Reads a [lo,hi] member into `range`; false on shape mismatch or a
/// non-finite / inverted range (a NaN capacity would poison every fit
/// check downstream).
bool read_range(const JsonValue& profile, const char* name,
                workload::Range& range) {
  const JsonValue* v = profile.find(name);
  if (v == nullptr || !v->is_array() || v->as_array().size() != 2 ||
      !v->as_array()[0].is_number() || !v->as_array()[1].is_number()) {
    return false;
  }
  const double lo = v->as_array()[0].as_number();
  const double hi = v->as_array()[1].as_number();
  if (!std::isfinite(lo) || !std::isfinite(hi) || lo > hi) return false;
  range.lo = lo;
  range.hi = hi;
  return true;
}

/// Reads a required member holding a non-negative 32-bit integer (an id or
/// a count).  Rejects missing/NaN/infinite/fractional/overflowing values
/// with a descriptive reason — a 1e300 guest count must not become a
/// silently wrapped size_t.
bool read_u32(const JsonValue& obj, const char* name, std::uint32_t& out,
              std::string& why) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_number()) {
    why = std::string("missing or non-numeric '") + name + "'";
    return false;
  }
  const double d = v->as_number();
  // hmn-lint: allow(float-eq, exact integrality check; floor(d) == d iff d is a whole number)
  if (!std::isfinite(d) || d < 0.0 || d != std::floor(d) ||
      d > static_cast<double>(std::numeric_limits<std::uint32_t>::max())) {
    why = std::string("'") + name + "' must be an integer in [0, 2^32)";
    return false;
  }
  out = static_cast<std::uint32_t>(d);
  return true;
}

/// 64-bit seeds travel as decimal strings; anything else (empty, signs,
/// trailing garbage, > 2^64-1) is rejected rather than strtoull-truncated.
bool read_seed(const JsonValue& obj, std::uint64_t& seed, std::string& why) {
  const JsonValue* v = obj.find("seed");
  if (v == nullptr || !v->is_string()) {
    why = "needs a string seed";
    return false;
  }
  const std::string& s = v->as_string();
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    why = "seed must be a decimal digit string";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) {
    why = "seed overflows 64 bits";
    return false;
  }
  seed = parsed;
  return true;
}

/// Reads an optional blast-group member array ("hosts"/"links"): every
/// entry a u32, strictly ascending (sorted, duplicate-free).  Descriptive
/// reasons carry the offending member offset within the array.
bool read_group(const JsonValue& obj, const char* name,
                std::vector<std::uint32_t>& out, std::string& why) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_array()) {
    why = std::string("truncated blast group: missing or non-array '") + name +
          "'";
    return false;
  }
  const auto& arr = v->as_array();
  out.clear();
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& m = arr[i];
    const double d = m.is_number() ? m.as_number() : -1.0;
    // hmn-lint: allow(float-eq, exact integrality check; floor(d) == d iff d is a whole number)
    const bool whole = m.is_number() && std::isfinite(d) && d == std::floor(d);
    if (!whole || d < 0.0 ||
        d > static_cast<double>(std::numeric_limits<std::uint32_t>::max())) {
      why = std::string("'") + name + "' member at offset " +
            std::to_string(i) + " must be an integer in [0, 2^32)";
      return false;
    }
    const auto id = static_cast<std::uint32_t>(d);
    if (!out.empty() && id <= out.back()) {
      why = std::string("duplicate or unsorted member ") + std::to_string(id) +
            " in '" + name + "' at offset " + std::to_string(i);
      return false;
    }
    out.push_back(id);
  }
  return true;
}

}  // namespace

std::string write_trace(const workload::ChurnTrace& trace) {
  std::ostringstream out;
  out << "{\"type\":\"churn-trace\",\"version\":4,\"mttf_dist\":\""
      << workload::to_string(trace.mttf_dist) << "\",\"profile\":{";
  write_range(out, "proc_mips", trace.profile.proc_mips);
  out << ',';
  write_range(out, "mem_mb", trace.profile.mem_mb);
  out << ',';
  write_range(out, "stor_gb", trace.profile.stor_gb);
  out << ',';
  write_range(out, "link_bw_mbps", trace.profile.link_bw_mbps);
  out << ',';
  write_range(out, "link_lat_ms", trace.profile.link_lat_ms);
  out << ",\"critical_link_fraction\":"
      << num(trace.profile.critical_link_fraction);
  out << "}}\n";

  for (const workload::TenantEvent& ev : trace.events) {
    out << "{\"t\":" << num(ev.time) << ",\"ev\":\""
        << workload::to_string(ev.kind) << '"';
    if (ev.kind == workload::EventKind::kBlastFail ||
        ev.kind == workload::EventKind::kBlastRecover ||
        ev.kind == workload::EventKind::kPowerFail ||
        ev.kind == workload::EventKind::kPowerRecover) {
      out << ",\"element\":" << ev.element << ",\"hosts\":[";
      for (std::size_t i = 0; i < ev.group_hosts.size(); ++i) {
        if (i != 0) out << ',';
        out << ev.group_hosts[i];
      }
      out << "],\"links\":[";
      for (std::size_t i = 0; i < ev.group_links.size(); ++i) {
        if (i != 0) out << ',';
        out << ev.group_links[i];
      }
      out << "]}\n";
      continue;
    }
    if (workload::is_failure_event(ev.kind)) {
      out << ",\"element\":" << ev.element << "}\n";
      continue;
    }
    out << ",\"tenant\":" << ev.tenant;
    switch (ev.kind) {
      case workload::EventKind::kArrive:
        out << ",\"guests\":" << ev.guest_count
            << ",\"density\":" << num(ev.density) << ",\"seed\":\"" << ev.seed
            << '"';
        // v4 additions, written only when non-default so a tier-less,
        // replica-less trace stays byte-identical to its v3 body.
        if (ev.sla_tier != model::SlaTier::kStandard) {
          out << ",\"tier\":\"" << model::to_string(ev.sla_tier) << '"';
        }
        if (ev.replica_n > 0) {
          out << ",\"replica_n\":" << ev.replica_n
              << ",\"replica_k\":" << ev.replica_k;
        }
        break;
      case workload::EventKind::kGrow:
        out << ",\"add_guests\":" << ev.add_guests
            << ",\"add_links\":" << ev.add_links << ",\"seed\":\"" << ev.seed
            << '"';
        break;
      default:
        break;
    }
    out << "}\n";
  }
  return out.str();
}

std::variant<workload::ChurnTrace, TraceParseError> read_trace(
    std::string_view text) {
  workload::ChurnTrace trace;
  bool saw_header = false;
  std::uint32_t version = 0;  // header-declared; gates v4-only constructs
  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::unordered_set<std::uint32_t> arrived;  // tenant keys seen arriving
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    auto parsed = parse_json(line);
    if (std::holds_alternative<JsonParseError>(parsed)) {
      const auto& e = std::get<JsonParseError>(parsed);
      return err(line_no, e.message + " (line offset " +
                              std::to_string(e.offset) + ")");
    }
    const JsonValue& obj = std::get<JsonValue>(parsed);
    if (!obj.is_object()) return err(line_no, "expected a JSON object");

    if (!saw_header) {
      const JsonValue* type = obj.find("type");
      if (type == nullptr || !type->is_string() ||
          type->as_string() != "churn-trace") {
        return err(line_no, "missing churn-trace header");
      }
      std::string vwhy;
      if (!read_u32(obj, "version", version, vwhy)) {
        return err(line_no, "header: " + vwhy);
      }
      if (version < 1 || version > 4) {
        return err(line_no, "unsupported trace version " +
                                std::to_string(version) +
                                " (this reader handles 1-4)");
      }
      const JsonValue* profile = obj.find("profile");
      if (profile == nullptr || !profile->is_object() ||
          !read_range(*profile, "proc_mips", trace.profile.proc_mips) ||
          !read_range(*profile, "mem_mb", trace.profile.mem_mb) ||
          !read_range(*profile, "stor_gb", trace.profile.stor_gb) ||
          !read_range(*profile, "link_bw_mbps", trace.profile.link_bw_mbps) ||
          !read_range(*profile, "link_lat_ms", trace.profile.link_lat_ms)) {
        return err(line_no, "malformed profile in header");
      }
      // v3 additions, optional with backward-compatible defaults so v1/v2
      // traces keep parsing; when present they must be well-formed.
      if (const JsonValue* dist = obj.find("mttf_dist"); dist != nullptr) {
        if (!dist->is_string()) {
          return err(line_no, "header: mttf_dist must be a string");
        }
        const std::string& tag = dist->as_string();
        if (tag == "exponential") {
          trace.mttf_dist = workload::MttfDistribution::kExponential;
        } else if (tag == "weibull") {
          trace.mttf_dist = workload::MttfDistribution::kWeibull;
        } else if (tag == "lognormal") {
          trace.mttf_dist = workload::MttfDistribution::kLognormal;
        } else {
          return err(line_no, "header: unknown mttf_dist tag '" + tag + "'");
        }
      }
      if (const JsonValue* frac = profile->find("critical_link_fraction");
          frac != nullptr) {
        if (!frac->is_number() || !std::isfinite(frac->as_number()) ||
            frac->as_number() < 0.0 || frac->as_number() > 1.0) {
          return err(line_no,
                     "header: critical_link_fraction must be in [0, 1]");
        }
        trace.profile.critical_link_fraction = frac->as_number();
      }
      saw_header = true;
      continue;
    }

    workload::TenantEvent ev;
    const JsonValue* t = obj.find("t");
    const JsonValue* kind = obj.find("ev");
    if (t == nullptr || !t->is_number() || kind == nullptr ||
        !kind->is_string()) {
      return err(line_no, "event line needs t and ev");
    }
    ev.time = t->as_number();
    if (!std::isfinite(ev.time) || ev.time < 0.0) {
      return err(line_no, "event time must be finite and non-negative");
    }
    const std::string& k = kind->as_string();
    std::string why;
    // v4 field discipline (the v2 hardening standard: nothing malformed
    // skips quietly).  Tier / replica declarations belong to arrive lines
    // of version-4 traces only; anywhere else they signal a corrupted or
    // hand-mangled trace and are rejected with the field named, not
    // silently ignored.
    for (const char* name : {"tier", "replica_n", "replica_k"}) {
      if (obj.find(name) == nullptr) continue;
      if (k != "arrive") {
        return err(line_no, "'" + std::string(name) +
                                "' is only valid on arrive events (found on "
                                "a " +
                                k + " line)");
      }
      if (version < 4) {
        return err(line_no, "'" + std::string(name) +
                                "' requires trace version 4 (header "
                                "declares " +
                                std::to_string(version) + ")");
      }
    }
    if (k == "blast-fail" || k == "blast-recover" || k == "power-fail" ||
        k == "power-recover") {
      const bool power = k == "power-fail" || k == "power-recover";
      if (power && version < 4) {
        return err(line_no, k + " events require trace version 4 (header "
                                "declares " +
                                std::to_string(version) + ")");
      }
      ev.kind = k == "blast-fail"      ? workload::EventKind::kBlastFail
                : k == "blast-recover" ? workload::EventKind::kBlastRecover
                : k == "power-fail"    ? workload::EventKind::kPowerFail
                                       : workload::EventKind::kPowerRecover;
      if (!read_u32(obj, "element", ev.element, why) ||
          !read_group(obj, "hosts", ev.group_hosts, why) ||
          !read_group(obj, "links", ev.group_links, why)) {
        return err(line_no, k + " event: " + why);
      }
      // A power domain that feeds nothing cannot exist; an empty group is
      // a truncated writer, not a degenerate-but-valid event.
      if (power && ev.group_hosts.empty() && ev.group_links.empty()) {
        return err(line_no,
                   k + " event: empty correlated group (no hosts, no links)");
      }
      trace.events.push_back(std::move(ev));
      continue;
    }
    if (k == "host-fail" || k == "link-fail" || k == "host-recover" ||
        k == "link-recover") {
      ev.kind = k == "host-fail"      ? workload::EventKind::kHostFail
                : k == "link-fail"    ? workload::EventKind::kLinkFail
                : k == "host-recover" ? workload::EventKind::kHostRecover
                                      : workload::EventKind::kLinkRecover;
      if (!read_u32(obj, "element", ev.element, why)) {
        return err(line_no, k + " event: " + why);
      }
      trace.events.push_back(ev);
      continue;
    }
    if (!read_u32(obj, "tenant", ev.tenant, why)) {
      return err(line_no, k + " event: " + why);
    }
    if (k == "arrive") {
      ev.kind = workload::EventKind::kArrive;
      std::uint32_t guests = 0;
      if (!read_u32(obj, "guests", guests, why)) {
        return err(line_no, "arrive event: " + why);
      }
      ev.guest_count = guests;
      const JsonValue* density = obj.find("density");
      if (density == nullptr || !density->is_number() ||
          !std::isfinite(density->as_number()) ||
          density->as_number() < 0.0 || density->as_number() > 1.0) {
        return err(line_no, "arrive event: density must be in [0, 1]");
      }
      ev.density = density->as_number();
      if (!read_seed(obj, ev.seed, why)) {
        return err(line_no, "arrive event: " + why);
      }
      if (!arrived.insert(ev.tenant).second) {
        return err(line_no, "duplicate arrive for tenant " +
                                std::to_string(ev.tenant));
      }
      // v4 additions, optional with backward-compatible defaults
      // (standard tier, no replicas) so v1-v3 arrive lines keep parsing.
      if (const JsonValue* tier = obj.find("tier"); tier != nullptr) {
        if (!tier->is_string()) {
          return err(line_no, "arrive event: tier must be a string");
        }
        const std::string& tag = tier->as_string();
        if (tag == "gold") {
          ev.sla_tier = model::SlaTier::kGold;
        } else if (tag == "standard") {
          ev.sla_tier = model::SlaTier::kStandard;
        } else if (tag == "best-effort") {
          ev.sla_tier = model::SlaTier::kBestEffort;
        } else {
          return err(line_no,
                     "arrive event: unknown tier tag '" + tag + "'");
        }
      }
      const bool has_n = obj.find("replica_n") != nullptr;
      const bool has_k = obj.find("replica_k") != nullptr;
      if (has_n != has_k) {
        return err(line_no,
                   "arrive event: replica_n and replica_k must appear "
                   "together");
      }
      if (has_n) {
        if (!read_u32(obj, "replica_n", ev.replica_n, why) ||
            !read_u32(obj, "replica_k", ev.replica_k, why)) {
          return err(line_no, "arrive event: " + why);
        }
        if (ev.replica_n < 2 || ev.replica_k < 1 ||
            ev.replica_k > ev.replica_n) {
          return err(line_no,
                     "arrive event: replica spec needs n >= 2 and "
                     "1 <= k <= n");
        }
      }
    } else if (k == "grow") {
      ev.kind = workload::EventKind::kGrow;
      std::uint32_t add_guests = 0, add_links = 0;
      if (!read_u32(obj, "add_guests", add_guests, why) ||
          !read_u32(obj, "add_links", add_links, why)) {
        return err(line_no, "grow event: " + why);
      }
      ev.add_guests = add_guests;
      ev.add_links = add_links;
      if (!read_seed(obj, ev.seed, why)) {
        return err(line_no, "grow event: " + why);
      }
    } else if (k == "depart") {
      ev.kind = workload::EventKind::kDepart;
    } else {
      return err(line_no, "unknown event kind '" + k + "'");
    }
    trace.events.push_back(ev);
  }
  if (!saw_header) return err(0, "empty trace: no header line");
  return trace;
}

workload::ChurnTrace read_trace_or_throw(std::string_view text) {
  auto parsed = read_trace(text);
  if (std::holds_alternative<TraceParseError>(parsed)) {
    const auto& e = std::get<TraceParseError>(parsed);
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(e.line) + ": " + e.message);
  }
  return std::get<workload::ChurnTrace>(std::move(parsed));
}

bool save_trace(const std::filesystem::path& path,
                const workload::ChurnTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_trace(trace);
  return static_cast<bool>(out);
}

std::optional<workload::ChurnTrace> load_trace(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = read_trace(buf.str());
  if (std::holds_alternative<TraceParseError>(parsed)) return std::nullopt;
  return std::get<workload::ChurnTrace>(std::move(parsed));
}

}  // namespace hmn::io
