#include "io/json.h"

#include <cstdio>
#include <sstream>

namespace hmn::io {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_json(const model::PhysicalCluster& cluster) {
  std::ostringstream out;
  out << "{\"nodes\":[";
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const auto n = NodeId{static_cast<NodeId::underlying_type>(i)};
    if (i > 0) out << ',';
    out << "{\"id\":" << i << ",\"role\":"
        << (cluster.is_host(n) ? "\"host\"" : "\"switch\"");
    if (cluster.is_host(n)) {
      const auto& cap = cluster.capacity(n);
      out << ",\"proc_mips\":" << num(cap.proc_mips)
          << ",\"mem_mb\":" << num(cap.mem_mb)
          << ",\"stor_gb\":" << num(cap.stor_gb);
    }
    out << '}';
  }
  out << "],\"links\":[";
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    const auto ep = cluster.graph().endpoints(id);
    if (e > 0) out << ',';
    out << "{\"a\":" << ep.a.value() << ",\"b\":" << ep.b.value()
        << ",\"bw_mbps\":" << num(cluster.link(id).bandwidth_mbps)
        << ",\"lat_ms\":" << num(cluster.link(id).latency_ms) << '}';
  }
  out << "]}";
  return out.str();
}

std::string to_json(const model::VirtualEnvironment& venv) {
  std::ostringstream out;
  out << "{\"guests\":[";
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const auto& req = venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
    if (g > 0) out << ',';
    out << "{\"id\":" << g << ",\"vproc_mips\":" << num(req.proc_mips)
        << ",\"vmem_mb\":" << num(req.mem_mb)
        << ",\"vstor_gb\":" << num(req.stor_gb) << '}';
  }
  out << "],\"links\":[";
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = venv.endpoints(id);
    if (l > 0) out << ',';
    out << "{\"src\":" << ep.src.value() << ",\"dst\":" << ep.dst.value()
        << ",\"vbw_mbps\":" << num(venv.link(id).bandwidth_mbps)
        << ",\"vlat_ms\":" << num(venv.link(id).max_latency_ms) << '}';
  }
  out << "]}";
  return out.str();
}

std::string to_json(const core::Mapping& mapping) {
  std::ostringstream out;
  out << "{\"guest_host\":[";
  for (std::size_t g = 0; g < mapping.guest_host.size(); ++g) {
    if (g > 0) out << ',';
    out << mapping.guest_host[g].value();
  }
  out << "],\"link_paths\":[";
  for (std::size_t l = 0; l < mapping.link_paths.size(); ++l) {
    if (l > 0) out << ',';
    out << '[';
    for (std::size_t e = 0; e < mapping.link_paths[l].size(); ++e) {
      if (e > 0) out << ',';
      out << mapping.link_paths[l][e].value();
    }
    out << ']';
  }
  out << "]}";
  return out.str();
}

std::string to_json(const core::MapOutcome& outcome) {
  std::ostringstream out;
  out << "{\"ok\":" << (outcome.ok() ? "true" : "false")
      << ",\"error\":" << quoted(core::to_string(outcome.error))
      << ",\"detail\":" << quoted(outcome.detail) << ",\"stats\":{"
      << "\"hosting_s\":" << num(outcome.stats.hosting_seconds)
      << ",\"migration_s\":" << num(outcome.stats.migration_seconds)
      << ",\"networking_s\":" << num(outcome.stats.networking_seconds)
      << ",\"total_s\":" << num(outcome.stats.total_seconds)
      << ",\"migrations\":" << outcome.stats.migrations
      << ",\"links_routed\":" << outcome.stats.links_routed
      << ",\"tries\":" << outcome.stats.tries << '}';
  if (outcome.ok()) out << ",\"mapping\":" << to_json(*outcome.mapping);
  out << '}';
  return out.str();
}

}  // namespace hmn::io
