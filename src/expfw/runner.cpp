#include "expfw/runner.h"

#include "core/objective.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hmn::expfw {
namespace {

// Seed-stream tags keep the derived seed spaces of unrelated draws apart.
constexpr std::uint64_t kHostStream = 0x686f737473ULL;    // "hosts"
constexpr std::uint64_t kVenvStream = 0x76656e76ULL;      // "venv"
constexpr std::uint64_t kMapperStream = 0x6d617070ULL;    // "mapp"
constexpr std::uint64_t kSimStream = 0x73696dULL;         // "sim"

}  // namespace

std::vector<RunRecord> run_grid(const GridSpec& spec,
                                const std::vector<const core::Mapper*>& mappers) {
  // Work items: (scenario, cluster, repetition).  All mappers run inside
  // one item so they share the generated instance.
  struct Item {
    std::size_t scenario;
    std::size_t cluster;
    std::size_t rep;
  };
  std::vector<Item> items;
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (std::size_t c = 0; c < spec.clusters.size(); ++c) {
      for (std::size_t r = 0; r < spec.repetitions; ++r) {
        items.push_back({s, c, r});
      }
    }
  }

  std::vector<RunRecord> records(items.size() * mappers.size());

  util::parallel_for(
      items.size(),
      [&](std::size_t i) {
        const Item& item = items[i];
        const workload::Scenario& scenario = spec.scenarios[item.scenario];
        const workload::ClusterKind kind = spec.clusters[item.cluster];

        // Host capacities depend only on the repetition: both topologies
        // see the same hosts (Section 5.1).
        const std::uint64_t host_seed =
            util::derive_seed(spec.master_seed, kHostStream, item.rep);
        const model::PhysicalCluster cluster =
            workload::make_paper_cluster(kind, host_seed);
        const std::uint64_t venv_seed = util::derive_seed(
            spec.master_seed, kVenvStream,
            item.scenario, item.rep);
        const model::VirtualEnvironment venv =
            workload::make_scenario_venv(scenario, cluster, venv_seed);

        for (std::size_t m = 0; m < mappers.size(); ++m) {
          RunRecord rec;
          rec.scenario_index = item.scenario;
          rec.cluster = kind;
          rec.mapper = mappers[m]->name();
          rec.repetition = item.rep;
          rec.guests = venv.guest_count();
          rec.virtual_links = venv.link_count();

          const std::uint64_t map_seed = util::derive_seed(
              spec.master_seed, kMapperStream,
              item.scenario * 1000 + item.cluster, item.rep * 64 + m);
          const core::MapOutcome outcome =
              mappers[m]->map(cluster, venv, map_seed);
          rec.ok = outcome.ok();
          rec.error = outcome.error;
          rec.stats = outcome.stats;
          if (outcome.ok()) {
            rec.objective =
                core::load_balance_factor(cluster, venv, *outcome.mapping);
            if (spec.simulate_experiment) {
              sim::ExperimentSpec es = spec.experiment;
              es.seed = util::derive_seed(spec.master_seed, kSimStream,
                                          item.scenario, item.rep);
              rec.experiment_seconds =
                  sim::run_experiment(cluster, venv, *outcome.mapping, es)
                      .makespan_seconds;
            }
          }
          records[i * mappers.size() + m] = std::move(rec);
        }
      },
      spec.threads);

  return records;
}

}  // namespace hmn::expfw
