#include "expfw/aggregate.h"

namespace hmn::expfw {

namespace {
const CellSummary kEmptyCell{};
}  // namespace

const CellSummary& GridSummary::cell(std::size_t scenario,
                                     workload::ClusterKind cluster,
                                     const std::string& mapper) const {
  const auto it = cells_.find({scenario, cluster, mapper});
  return it == cells_.end() ? kEmptyCell : it->second;
}

std::size_t GridSummary::total_failures(workload::ClusterKind cluster,
                                        const std::string& mapper) const {
  std::size_t total = 0;
  for (const auto& [key, cell] : cells_) {
    if (std::get<1>(key) == cluster && std::get<2>(key) == mapper) {
      total += cell.failures;
    }
  }
  return total;
}

void GridSummary::add(const RunRecord& record) {
  CellSummary& cell =
      cells_[{record.scenario_index, record.cluster, record.mapper}];
  ++cell.runs;
  if (!record.ok) {
    ++cell.failures;
    return;
  }
  cell.objective.add(record.objective);
  cell.map_seconds.add(record.stats.total_seconds);
  cell.links_routed.add(static_cast<double>(record.stats.links_routed));
  if (record.experiment_seconds >= 0.0) {
    cell.experiment_secs.add(record.experiment_seconds);
  }
}

GridSummary summarize(const std::vector<RunRecord>& records) {
  GridSummary summary;
  for (const RunRecord& r : records) summary.add(r);
  return summary;
}

}  // namespace hmn::expfw
