// Experiment grid runner (Section 5.2's protocol): every (scenario,
// cluster, mapper) cell is executed `repetitions` times on independently
// generated instances, and all heuristics see the *same* instance within a
// repetition so comparisons are paired.  Host capacities are shared between
// the two cluster topologies within a repetition, as in the paper ("the
// cluster topology has been built with the same set of hosts").
//
// Cells run in parallel; every cell derives its own RNG seed from the
// master seed, so results are identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/map_result.h"
#include "core/mapper.h"
#include "sim/experiment.h"
#include "workload/scenario.h"

namespace hmn::expfw {

struct GridSpec {
  std::vector<workload::Scenario> scenarios;
  std::vector<workload::ClusterKind> clusters;
  std::size_t repetitions = 30;
  std::uint64_t master_seed = 20090922;  // ICPP 2009
  std::size_t threads = 0;               // 0 = hardware concurrency
  /// Also run the emulation-experiment simulation on every successful
  /// mapping (needed for the correlation study, bench E4).
  bool simulate_experiment = false;
  /// Parameters of the simulated application (seed is overridden per cell).
  sim::ExperimentSpec experiment;
};

/// One (scenario, cluster, mapper, repetition) execution.
struct RunRecord {
  std::size_t scenario_index = 0;
  workload::ClusterKind cluster = workload::ClusterKind::kTorus2D;
  std::string mapper;
  std::size_t repetition = 0;

  bool ok = false;
  core::MapErrorCode error = core::MapErrorCode::kNone;
  double objective = 0.0;        // Eq. 10 (valid runs only)
  core::MapStats stats;
  std::size_t guests = 0;
  std::size_t virtual_links = 0;
  /// Simulated emulation-experiment time; < 0 when not simulated.
  double experiment_seconds = -1.0;
};

/// Runs the full grid.  `mappers` are borrowed; they must be callable
/// concurrently (all mappers in this library are).
[[nodiscard]] std::vector<RunRecord> run_grid(
    const GridSpec& spec, const std::vector<const core::Mapper*>& mappers);

}  // namespace hmn::expfw
