// Renderers that lay grid summaries out in the paper's table formats.
//
//   * Table 2 — objective function per scenario x (cluster x mapper), with
//     a final "Failures" row; cells with zero valid runs print "-", as the
//     paper does.
//   * Table 3 — mapping time per scenario x (cluster x mapper).
//   * Figure 1 — series of (inter-host links routed, mean time, stddev)
//     points for HMN, printed as a text table and exportable to CSV.
#pragma once

#include <string>
#include <vector>

#include "expfw/aggregate.h"
#include "util/table.h"

namespace hmn::expfw {

/// Table 2: mean objective function of valid runs + failure totals.
[[nodiscard]] util::Table render_objective_table(
    const std::vector<workload::Scenario>& scenarios,
    const std::vector<workload::ClusterKind>& clusters,
    const std::vector<std::string>& mappers, const GridSummary& summary);

/// Table 3: mean mapping ("simulation") time of valid runs, in seconds.
[[nodiscard]] util::Table render_time_table(
    const std::vector<workload::Scenario>& scenarios,
    const std::vector<workload::ClusterKind>& clusters,
    const std::vector<std::string>& mappers, const GridSummary& summary);

/// One Figure 1 point: links actually routed vs. mapping time.
struct SeriesPoint {
  double x = 0.0;        // mean inter-host links routed
  double mean = 0.0;     // mean mapping time (s)
  double stddev = 0.0;   // sample stddev of mapping time
  std::string label;
};

/// Figure 1 data from per-scenario summaries of one mapper on one cluster,
/// sorted by x.
[[nodiscard]] std::vector<SeriesPoint> figure1_series(
    const std::vector<workload::Scenario>& scenarios,
    workload::ClusterKind cluster, const std::string& mapper,
    const GridSummary& summary);

/// Text rendering of a series (table plus a coarse ASCII plot).
[[nodiscard]] std::string render_series(const std::vector<SeriesPoint>& pts,
                                        const std::string& x_label,
                                        const std::string& y_label);

/// Experiment records as a JSON array (one object per run).  Lives here
/// rather than in io so that io never includes upward into expfw.
[[nodiscard]] std::string to_json(const std::vector<RunRecord>& records);

}  // namespace hmn::expfw
