// Evaluation-suite specifications in JSON: a declarative description of an
// experiment grid that the grid_tool CLI (or any embedder) can run without
// recompiling.  Example:
//
//   {
//     "repetitions": 10,
//     "seed": 42,
//     "clusters": ["torus", "switched"],
//     "mappers": ["hmn", "ra"],
//     "scenarios": [
//       {"ratio": 2.5, "density": 0.02, "workload": "high"},
//       {"ratio": 20,  "density": 0.01, "workload": "low",
//        "vproc_scale": 1.0}
//     ]
//   }
//
// All fields are optional except "scenarios"; defaults are the paper's
// (30 repetitions, both clusters, the four Table 2 mappers).
// The suite loader lives in expfw (the layer that owns GridSpec) and reaches
// *down* into io for the JSON parser and SpecError — io stays below the
// frameworks it serializes for.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "expfw/runner.h"
#include "io/spec.h"

namespace hmn::expfw {

struct SuiteSpec {
  GridSpec grid;
  std::vector<std::string> mapper_names;
};

[[nodiscard]] std::variant<SuiteSpec, io::SpecError> load_suite_json(
    std::string_view text);

[[nodiscard]] std::variant<SuiteSpec, io::SpecError> load_suite_file(
    const std::string& path);

}  // namespace hmn::expfw
