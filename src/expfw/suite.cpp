#include "expfw/suite.h"

#include <fstream>
#include <sstream>

#include "io/json_parser.h"

namespace hmn::expfw {

using io::SpecError;
using io::JsonParseError;
using io::JsonValue;
using io::parse_json;

std::variant<SuiteSpec, io::SpecError> load_suite_json(std::string_view text) {
  auto parsed = parse_json(text);
  if (auto* err = std::get_if<JsonParseError>(&parsed)) {
    return SpecError{"JSON error at offset " + std::to_string(err->offset) +
                     ": " + err->message};
  }
  const JsonValue& root = std::get<JsonValue>(parsed);
  if (!root.is_object()) return SpecError{"suite spec: not an object"};

  SuiteSpec suite;
  suite.grid.repetitions =
      static_cast<std::size_t>(root.number_or("repetitions", 30.0));
  if (suite.grid.repetitions == 0) {
    return SpecError{"suite spec: repetitions must be positive"};
  }
  suite.grid.master_seed =
      static_cast<std::uint64_t>(root.number_or("seed", 20090922.0));

  // Clusters (default: both of the paper's).
  if (const JsonValue* clusters = root.find("clusters")) {
    if (!clusters->is_array()) {
      return SpecError{"suite spec: \"clusters\" must be an array"};
    }
    for (const JsonValue& c : clusters->as_array()) {
      if (!c.is_string()) {
        return SpecError{"suite spec: cluster entries must be strings"};
      }
      if (c.as_string() == "torus") {
        suite.grid.clusters.push_back(workload::ClusterKind::kTorus2D);
      } else if (c.as_string() == "switched") {
        suite.grid.clusters.push_back(workload::ClusterKind::kSwitched);
      } else {
        return SpecError{"suite spec: unknown cluster \"" + c.as_string() +
                         "\" (torus|switched)"};
      }
    }
  } else {
    suite.grid.clusters = {workload::ClusterKind::kTorus2D,
                           workload::ClusterKind::kSwitched};
  }

  // Mappers (default: the paper's Table 2 columns).
  if (const JsonValue* mappers = root.find("mappers")) {
    if (!mappers->is_array()) {
      return SpecError{"suite spec: \"mappers\" must be an array"};
    }
    for (const JsonValue& m : mappers->as_array()) {
      if (!m.is_string()) {
        return SpecError{"suite spec: mapper entries must be strings"};
      }
      suite.mapper_names.push_back(m.as_string());
    }
  } else {
    suite.mapper_names = {"hmn", "r", "ra", "hs"};
  }

  // Scenarios (required).
  const JsonValue* scenarios = root.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() ||
      scenarios->as_array().empty()) {
    return SpecError{"suite spec: non-empty \"scenarios\" array required"};
  }
  for (std::size_t i = 0; i < scenarios->as_array().size(); ++i) {
    const JsonValue& s = scenarios->as_array()[i];
    const std::string context = "scenario " + std::to_string(i);
    if (!s.is_object()) return SpecError{context + ": not an object"};
    workload::Scenario scenario;
    scenario.ratio = s.number_or("ratio", 0.0);
    scenario.density = s.number_or("density", 0.0);
    scenario.vproc_scale = s.number_or("vproc_scale", 1.0);
    if (scenario.ratio <= 0.0 || scenario.density <= 0.0) {
      return SpecError{context + ": positive ratio and density required"};
    }
    const JsonValue* workload_kind = s.find("workload");
    if (workload_kind == nullptr || !workload_kind->is_string()) {
      return SpecError{context + ": \"workload\" (high|low) required"};
    }
    if (workload_kind->as_string() == "high") {
      scenario.workload = workload::WorkloadKind::kHighLevel;
    } else if (workload_kind->as_string() == "low") {
      scenario.workload = workload::WorkloadKind::kLowLevel;
    } else {
      return SpecError{context + ": workload must be \"high\" or \"low\""};
    }
    suite.grid.scenarios.push_back(scenario);
  }
  return suite;
}

std::variant<SuiteSpec, io::SpecError> load_suite_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return SpecError{"cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_suite_json(buf.str());
}

}  // namespace hmn::expfw
