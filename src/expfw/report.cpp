#include "expfw/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>

namespace hmn::expfw {
namespace {

using util::Table;

std::vector<std::string> header_for(
    const std::vector<workload::ClusterKind>& clusters,
    const std::vector<std::string>& mappers) {
  std::vector<std::string> header{"scenario"};
  for (const auto kind : clusters) {
    for (const auto& m : mappers) {
      header.push_back(std::string(to_string(kind)) + " " + m);
    }
  }
  return header;
}

/// High-level and low-level blocks are separated by a rule, as in the
/// paper's tables.
bool workload_boundary(const std::vector<workload::Scenario>& scenarios,
                       std::size_t index) {
  return index > 0 &&
         scenarios[index].workload != scenarios[index - 1].workload;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

util::Table render_objective_table(
    const std::vector<workload::Scenario>& scenarios,
    const std::vector<workload::ClusterKind>& clusters,
    const std::vector<std::string>& mappers, const GridSummary& summary) {
  Table table(header_for(clusters, mappers));
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (workload_boundary(scenarios, s)) table.add_separator();
    std::vector<std::string> row{scenarios[s].label()};
    for (const auto kind : clusters) {
      for (const auto& m : mappers) {
        const CellSummary& cell = summary.cell(s, kind, m);
        row.push_back(cell.objective.count() > 0
                          ? Table::fmt(cell.objective.mean(), 1)
                          : "-");
      }
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> failures{"Failures"};
  for (const auto kind : clusters) {
    for (const auto& m : mappers) {
      failures.push_back(std::to_string(summary.total_failures(kind, m)));
    }
  }
  table.add_row(std::move(failures));
  return table;
}

util::Table render_time_table(
    const std::vector<workload::Scenario>& scenarios,
    const std::vector<workload::ClusterKind>& clusters,
    const std::vector<std::string>& mappers, const GridSummary& summary) {
  Table table(header_for(clusters, mappers));
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (workload_boundary(scenarios, s)) table.add_separator();
    std::vector<std::string> row{scenarios[s].label()};
    for (const auto kind : clusters) {
      for (const auto& m : mappers) {
        const CellSummary& cell = summary.cell(s, kind, m);
        row.push_back(cell.map_seconds.count() > 0
                          ? Table::fmt(cell.map_seconds.mean(), 4)
                          : "-");
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::vector<SeriesPoint> figure1_series(
    const std::vector<workload::Scenario>& scenarios,
    workload::ClusterKind cluster, const std::string& mapper,
    const GridSummary& summary) {
  std::vector<SeriesPoint> pts;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const CellSummary& cell = summary.cell(s, cluster, mapper);
    if (cell.map_seconds.count() == 0) continue;
    pts.push_back({cell.links_routed.mean(), cell.map_seconds.mean(),
                   cell.map_seconds.stddev_sample(), scenarios[s].label()});
  }
  std::sort(pts.begin(), pts.end(),
            [](const SeriesPoint& a, const SeriesPoint& b) { return a.x < b.x; });
  return pts;
}

std::string render_series(const std::vector<SeriesPoint>& pts,
                          const std::string& x_label,
                          const std::string& y_label) {
  Table table({x_label, y_label + " (mean)", y_label + " (stddev)", "scenario"});
  double max_mean = 0.0;
  for (const SeriesPoint& p : pts) max_mean = std::max(max_mean, p.mean);
  for (const SeriesPoint& p : pts) {
    table.add_row({Table::fmt(p.x, 1), Table::fmt(p.mean, 4),
                   Table::fmt(p.stddev, 4), p.label});
  }

  std::ostringstream out;
  out << table.to_string();
  // Coarse ASCII plot: one bar per point, scaled to the largest mean.
  constexpr int kWidth = 50;
  out << '\n' << y_label << " vs " << x_label << " (bar = mean):\n";
  for (const SeriesPoint& p : pts) {
    const int bars =
        max_mean > 0.0
            ? std::max(1, static_cast<int>(std::lround(p.mean / max_mean * kWidth)))
            : 1;
    out << "  " << Table::fmt(p.x, 0);
    out << std::string(
        p.x >= 1.0 ? std::max<std::size_t>(1, 9 - Table::fmt(p.x, 0).size()) : 1,
        ' ');
    out << '|' << std::string(static_cast<std::size_t>(bars), '#') << ' '
        << Table::fmt(p.mean, 4) << "s\n";
  }
  return out.str();
}

std::string to_json(const std::vector<RunRecord>& records) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i > 0) out << ',';
    out << "{\"scenario\":" << r.scenario_index << ",\"cluster\":"
        << quoted(to_string(r.cluster)) << ",\"mapper\":" << quoted(r.mapper)
        << ",\"rep\":" << r.repetition << ",\"ok\":"
        << (r.ok ? "true" : "false") << ",\"objective\":" << num(r.objective)
        << ",\"map_seconds\":" << num(r.stats.total_seconds)
        << ",\"links_routed\":" << r.stats.links_routed
        << ",\"guests\":" << r.guests << ",\"virtual_links\":"
        << r.virtual_links << ",\"experiment_seconds\":"
        << num(r.experiment_seconds) << '}';
  }
  out << ']';
  return out.str();
}

}  // namespace hmn::expfw
