// Aggregation of run records into per-cell summaries, as the paper's
// Tables 2-3 report them: mean objective of valid runs, mean mapping time,
// and the count of failures.
#pragma once

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "expfw/runner.h"
#include "util/stats.h"

namespace hmn::expfw {

struct CellSummary {
  util::RunningStats objective;        // over valid runs
  util::RunningStats map_seconds;      // over valid runs
  util::RunningStats links_routed;     // over valid runs
  util::RunningStats experiment_secs;  // over valid simulated runs
  std::size_t failures = 0;
  std::size_t runs = 0;
};

/// (scenario index, cluster kind, mapper name) -> summary.
class GridSummary {
 public:
  using Key = std::tuple<std::size_t, workload::ClusterKind, std::string>;

  /// Cell accessor; returns an empty summary when the cell never ran.
  [[nodiscard]] const CellSummary& cell(std::size_t scenario,
                                        workload::ClusterKind cluster,
                                        const std::string& mapper) const;

  /// Total failures of one mapper on one cluster across all scenarios
  /// (Table 2's "Failures" row).
  [[nodiscard]] std::size_t total_failures(workload::ClusterKind cluster,
                                           const std::string& mapper) const;

  [[nodiscard]] const std::map<Key, CellSummary>& cells() const {
    return cells_;
  }

  void add(const RunRecord& record);

 private:
  std::map<Key, CellSummary> cells_;
};

[[nodiscard]] GridSummary summarize(const std::vector<RunRecord>& records);

}  // namespace hmn::expfw
