// Incremental extension of an existing mapping.
//
// The paper's emulator workflow (Section 1) builds the virtual system once,
// but real testbed sessions evolve: a tester adds emulated nodes or links
// to a running experiment and wants them placed *without disturbing* the
// guests already deployed (re-deploying a VM is far more expensive than
// placing a new one).  `extend_mapping` maps only the new guests and new
// virtual links of a grown environment over the residual capacity left by
// an existing valid mapping:
//
//   * existing guests keep their hosts, existing links keep their paths;
//   * new guests are placed with the Hosting stage's affinity rule
//     (co-locate with the heaviest-bandwidth already-placed neighbor when
//     possible, else the most-available-CPU host that fits);
//   * new links are routed with the Networking stage over residual
//     bandwidth.
//
// This is the library's own extension of the paper (its "fully-automated
// emulator" project would need exactly this step); it reuses the paper's
// machinery unchanged.
#pragma once

#include "core/map_result.h"
#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// Extends `base` (a valid mapping of the first `base.guest_host.size()`
/// guests and first `base.link_paths.size()` links of `grown`) to cover all
/// of `grown`.  Precondition: `grown` is `venv-of-base` plus appended
/// guests/links — existing ids must be unchanged.  New links are routed
/// with the modified A*Prune over residual bandwidth, heaviest first.
///
/// On success the returned mapping agrees with `base` on every old guest
/// and link.  Fails with kHostingFailed / kNetworkingFailed when the
/// residual capacity cannot absorb the growth (the caller may then fall
/// back to a full remap).
[[nodiscard]] MapOutcome extend_mapping(const model::PhysicalCluster& cluster,
                                        const model::VirtualEnvironment& grown,
                                        const Mapping& base);

}  // namespace hmn::core
