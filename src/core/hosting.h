// Stage 1 — Hosting (Section 4.1): preliminary assignment of guests to
// hosts by network affinity.
//
// Virtual links are processed in descending bandwidth order; both endpoints
// of a high-bandwidth link are co-located on the host with the most
// available CPU whenever memory and storage allow, reducing physical-link
// usage.  The host list is re-sorted by residual CPU after every
// assignment, exactly as the paper prescribes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/map_result.h"
#include "core/residual.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// Order in which virtual links are considered.  The paper uses descending
/// bandwidth (so heavy links are co-located first); the alternatives feed
/// the ordering ablation bench (E6 in DESIGN.md).
enum class LinkOrder : std::uint8_t {
  kBandwidthDescending,  // the paper's choice
  kBandwidthAscending,
  kRandom,
};

/// How guests are assigned to hosts.
enum class HostingPolicy : std::uint8_t {
  /// The paper's rule (Section 4.1): co-locate the endpoints of heavy
  /// virtual links.  Besides reducing physical-link use, affinity is what
  /// lets HMN map virtual links whose demand *exceeds* any physical
  /// link's capacity — co-located endpoints communicate inside the host
  /// (bw = inf), so such links never touch the fabric (Section 5.2's
  /// argument for hosting by network affinity).
  kAffinity,
  /// Ablation: ignore links entirely; place each guest (descending vproc)
  /// on the most-available-CPU host that fits.  Balances at least as well
  /// as affinity hosting but strands heavy links on the fabric.
  kBalanceOnly,
};

struct HostingOptions {
  HostingPolicy policy = HostingPolicy::kAffinity;
  LinkOrder order = LinkOrder::kBandwidthDescending;
  /// Seed for LinkOrder::kRandom (ignored otherwise).
  std::uint64_t shuffle_seed = 0;
};

/// Result of the Hosting stage: the preliminary guest placement.
struct HostingResult {
  bool ok = false;
  std::string detail;                // failure explanation when !ok
  std::vector<NodeId> guest_host;    // complete placement when ok
};

/// Runs the Hosting stage, mutating `state` to reflect placements.
/// On failure (`some guest fits on no host`, Section 4.1) the state is left
/// with the partial placements applied; callers discard it.
[[nodiscard]] HostingResult run_hosting(const model::VirtualEnvironment& venv,
                                        ResidualState& state,
                                        const HostingOptions& opts = {});

/// The link processing order used by Hosting/Networking for the given
/// policy (exposed for tests and for the Networking stage to share).
[[nodiscard]] std::vector<VirtLinkId> ordered_links(
    const model::VirtualEnvironment& venv, LinkOrder order,
    std::uint64_t shuffle_seed);

}  // namespace hmn::core
