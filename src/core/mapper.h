// Mapper interface: every mapping strategy in the library (HMN, the three
// baselines, the extensions) implements this, so the experiment framework
// and examples treat them uniformly — the "pool of heuristics" the paper's
// future-work section envisions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/map_result.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Short identifier used in tables ("HMN", "R", "RA", "HS", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Maps `venv` onto `cluster`.  `seed` drives any internal randomness;
  /// deterministic mappers ignore it.  Must be callable concurrently on the
  /// same object (mappers hold no mutable state across calls).
  [[nodiscard]] virtual MapOutcome map(const model::PhysicalCluster& cluster,
                                       const model::VirtualEnvironment& venv,
                                       std::uint64_t seed) const = 0;
};

using MapperPtr = std::unique_ptr<Mapper>;

}  // namespace hmn::core
