#include "core/what_if.h"

#include <algorithm>

#include "core/residual.h"
#include "graph/astar_prune.h"

namespace hmn::core {

std::vector<NodeId> hosts_fitting_guest(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping,
    const model::GuestRequirements& req) {
  const ResidualState state(cluster, venv, mapping);
  std::vector<NodeId> fitting;
  for (const NodeId h : cluster.hosts()) {
    if (state.fits(req, h)) fitting.push_back(h);
  }
  std::stable_sort(fitting.begin(), fitting.end(), [&](NodeId a, NodeId b) {
    return state.residual_proc(a) > state.residual_proc(b);
  });
  return fitting;
}

std::optional<graph::Path> link_route_available(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping,
    GuestId a, GuestId b, const model::VirtualLinkDemand& demand) {
  const NodeId s = mapping.host_of(a);
  const NodeId d = mapping.host_of(b);
  if (!s.valid() || !d.valid()) return std::nullopt;
  if (s == d) return graph::Path{};  // intra-host, free

  const ResidualState state(cluster, venv, mapping);
  auto path = graph::astar_prune_bottleneck(
      cluster.graph(), s, d, demand.bandwidth_mbps, demand.max_latency_ms,
      [&](EdgeId e) { return state.residual_bw(e); },
      [&](EdgeId e) { return cluster.link(e).latency_ms; });
  if (!path.has_value()) return std::nullopt;
  return std::move(path->edges);
}

}  // namespace hmn::core
