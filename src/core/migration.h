// Stage 2 — Migration (Section 4.2): improve load balance by reassigning
// guests from the most-loaded host to less-loaded ones.
//
// Each iteration selects the most-loaded host (smallest residual CPU) as
// migration origin and, from it, the guest with the smallest total
// bandwidth to co-located guests (so the move disturbs the Hosting stage's
// affinity groupings as little as possible).  Candidate targets are tried
// from least loaded upward; the move is committed only if the load-balance
// factor (Eq. 10) strictly improves and the guest fits.  The stage stops
// when the chosen guest cannot improve the factor on any host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/residual.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// How the stage chooses which guest to move off the most-loaded host.
enum class VictimPolicy : std::uint8_t {
  /// The paper's rule (Section 4.2): the guest with the smallest total
  /// bandwidth to co-located guests, minimizing physical-link use.  If that
  /// single guest cannot improve the factor anywhere, the stage stops.
  kMinColocatedBandwidth,
  /// Extension: consider *every* guest on the most-loaded host and commit
  /// the (guest, target) move with the largest factor reduction; stop only
  /// when no guest on that host improves it.  Finds strictly more balanced
  /// assignments at higher cost — quantified in bench E5.
  kBestImprovement,
};

struct MigrationOptions {
  VictimPolicy victim = VictimPolicy::kMinColocatedBandwidth;
  /// Upper bound on reassignments; 0 = unlimited.  The loop terminates on
  /// its own (the factor strictly decreases and is bounded below), but the
  /// cap makes worst-case cost explicit for very large environments.
  std::size_t max_migrations = 0;
};

struct MigrationResult {
  std::size_t migrations = 0;        // reassignments performed
  double initial_lbf = 0.0;          // Eq. 10 before the stage
  double final_lbf = 0.0;            // Eq. 10 after the stage
};

/// Runs the Migration stage, updating `guest_host` and `state` in place.
MigrationResult run_migration(const model::VirtualEnvironment& venv,
                              ResidualState& state,
                              std::vector<NodeId>& guest_host,
                              const MigrationOptions& opts = {});

}  // namespace hmn::core
