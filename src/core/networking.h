// Stage 3 — Networking (Section 4.3): route every virtual link over the
// physical fabric.
//
// Virtual links are routed in descending bandwidth order with the modified
// 1-constrained A*Prune (Algorithm 1), which maximizes bottleneck residual
// bandwidth subject to the latency bound, keeping wide links available for
// the rest of the list.  Links between co-located guests are handled inside
// the host (empty path; bw = inf, lat = 0 per Section 3.2) and are not
// counted as routed.  A DFS path finder can be substituted to build the
// paper's Hosting-with-Search (HS) baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hosting.h"  // LinkOrder
#include "core/residual.h"
#include "graph/graph.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// Path-finding algorithm used by the stage.
enum class PathAlgorithm : std::uint8_t {
  /// The paper's modified Algorithm 1 (used by HMN and RA): maximize
  /// bottleneck residual bandwidth subject to the latency bound.  "The
  /// rationale behind the choice of this metric is to keep the links with
  /// the largest amount of bandwidth available to map the rest of the
  /// links" (Section 4.3).
  kAStarPrune,
  /// Ablation of that rationale: minimize accumulated latency subject to
  /// per-edge residual bandwidth >= demand (Dijkstra over the feasible
  /// subgraph).  Routes each link optimally in isolation but spends wide
  /// links greedily — bench E6 measures what that costs the rest of the
  /// list.
  kMinLatency,
  /// Literal DFS baseline (used by R and HS): the first simple path found,
  /// checked against the link's constraints afterwards.
  kDfsNaive,
  /// Constraint-pruned backtracking DFS: finds a feasible path whenever one
  /// exists w.r.t. residual bandwidth and latency (used by the path-finder
  /// ablation, bench E6).
  kDfsPruned,
};

struct NetworkingOptions {
  PathAlgorithm algorithm = PathAlgorithm::kAStarPrune;
  LinkOrder order = LinkOrder::kBandwidthDescending;
  std::uint64_t shuffle_seed = 0;  // for LinkOrder::kRandom and DFS shuffling
  /// Shuffle DFS neighbor expansion (the Random baseline retries with
  /// different DFS orders; deterministic DFS would retry identically).
  bool randomize_dfs = false;
  /// Expansion budget per DFS path search (0 = unlimited).
  std::size_t dfs_max_expansions = 0;
};

struct NetworkingResult {
  bool ok = false;
  std::string detail;                   // failure explanation when !ok
  std::vector<graph::Path> link_paths;  // per virtual link, when ok
  std::size_t links_routed = 0;         // inter-host links actually routed
};

/// Runs the Networking stage over a completed placement, reserving
/// bandwidth in `state` for every routed link.  On failure the state
/// retains partial reservations; callers discard it.
[[nodiscard]] NetworkingResult run_networking(
    const model::VirtualEnvironment& venv, ResidualState& state,
    const std::vector<NodeId>& guest_host, const NetworkingOptions& opts = {});

}  // namespace hmn::core
