// Independent verification of a mapping against the paper's formal
// constraints (Section 3.2, Eqs. 1-9).
//
// The validator shares no code with the mappers' own bookkeeping: it
// recomputes every sum from the cluster, the virtual environment, and the
// mapping value alone.  Tests run it over every mapper on every random
// instance, so a bookkeeping bug in a stage cannot hide behind itself.
#pragma once

#include <string>
#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

enum class ConstraintId {
  kGuestMappedOnce,       // Eq. 1: partition of V
  kGuestOnHostNode,       // guests only on host-role nodes
  kMemoryCapacity,        // Eq. 2
  kStorageCapacity,       // Eq. 3
  kPathEndpoints,         // Eqs. 4-5
  kPathChains,            // Eq. 6
  kPathLoopFree,          // Eq. 7
  kLatencyBound,          // Eq. 8
  kBandwidthCapacity,     // Eq. 9
};

[[nodiscard]] constexpr const char* to_string(ConstraintId c) {
  switch (c) {
    case ConstraintId::kGuestMappedOnce: return "Eq1:guest-mapped-once";
    case ConstraintId::kGuestOnHostNode: return "guest-on-host-node";
    case ConstraintId::kMemoryCapacity: return "Eq2:memory";
    case ConstraintId::kStorageCapacity: return "Eq3:storage";
    case ConstraintId::kPathEndpoints: return "Eq4-5:path-endpoints";
    case ConstraintId::kPathChains: return "Eq6:path-chains";
    case ConstraintId::kPathLoopFree: return "Eq7:loop-free";
    case ConstraintId::kLatencyBound: return "Eq8:latency";
    case ConstraintId::kBandwidthCapacity: return "Eq9:bandwidth";
  }
  return "?";
}

struct Violation {
  ConstraintId constraint;
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Checks every constraint; collects all violations rather than stopping at
/// the first, so test failures show the full picture.
[[nodiscard]] ValidationReport validate_mapping(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping);

}  // namespace hmn::core
