// Mutable residual-capacity bookkeeping over an immutable PhysicalCluster.
//
// Mapping stages place and move guests and reserve bandwidth along paths;
// this object tracks what remains.  Memory and storage are hard constraints
// (Eqs. 2-3); CPU may go negative — it is the optimization variable, not a
// constraint (Section 3.2).
#pragma once

#include <span>
#include <vector>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

class ResidualState {
 public:
  explicit ResidualState(const model::PhysicalCluster& cluster);

  /// Rebuilds residuals to reflect an existing (possibly partial) mapping.
  ResidualState(const model::PhysicalCluster& cluster,
                const model::VirtualEnvironment& venv, const Mapping& mapping);

  [[nodiscard]] const model::PhysicalCluster& cluster() const {
    return *cluster_;
  }

  /// Hard-constraint fit check (memory + storage, Eqs. 2-3).
  [[nodiscard]] bool fits(const model::GuestRequirements& req,
                          NodeId host) const;
  /// Fit check for two guests placed together on one host.
  [[nodiscard]] bool fits_both(const model::GuestRequirements& a,
                               const model::GuestRequirements& b,
                               NodeId host) const;

  /// Deducts the guest's requirements from `host`.  Precondition: fits().
  void place(const model::GuestRequirements& req, NodeId host);
  /// Returns the guest's requirements to `host`.
  void remove(const model::GuestRequirements& req, NodeId host);

  [[nodiscard]] double residual_proc(NodeId n) const {
    return proc_[n.index()];
  }
  [[nodiscard]] double residual_mem(NodeId n) const { return mem_[n.index()]; }
  [[nodiscard]] double residual_stor(NodeId n) const {
    return stor_[n.index()];
  }

  /// Residual CPU of every host, in cluster.hosts() order — the vector the
  /// objective function (Eq. 10) is computed over.
  [[nodiscard]] std::vector<double> residual_proc_of_hosts() const;

  [[nodiscard]] double residual_bw(EdgeId e) const { return bw_[e.index()]; }

  /// Reserves `bw` Mbps on every edge of `path` (Eq. 9 accounting).
  /// Residual bandwidth may not go negative; callers check feasibility via
  /// the path-finding algorithms, and this asserts it.
  void reserve_bw(const graph::Path& path, double bw);
  /// Releases a previous reservation.
  void release_bw(const graph::Path& path, double bw);

 private:
  const model::PhysicalCluster* cluster_ = nullptr;
  std::vector<double> proc_;  // per node
  std::vector<double> mem_;
  std::vector<double> stor_;
  std::vector<double> bw_;  // per edge
};

}  // namespace hmn::core
