#include "core/objective.h"

#include <cmath>

#include "util/stats.h"

namespace hmn::core {

double load_balance_factor(std::span<const double> rproc) {
  return util::stddev_population(rproc);
}

double load_balance_factor(const ResidualState& state) {
  const std::vector<double> rproc = state.residual_proc_of_hosts();
  return load_balance_factor(rproc);
}

double load_balance_factor(const model::PhysicalCluster& cluster,
                           const model::VirtualEnvironment& venv,
                           const Mapping& mapping) {
  std::vector<double> rproc;
  rproc.reserve(cluster.host_count());
  // rproc(c_i) = proc(c_i) - sum_{g in G_i} vproc(g)  (Eq. 11)
  std::vector<double> used(cluster.node_count(), 0.0);
  for (std::size_t g = 0; g < mapping.guest_host.size(); ++g) {
    const NodeId h = mapping.guest_host[g];
    if (h.valid()) {
      used[h.index()] +=
          venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}).proc_mips;
    }
  }
  for (const NodeId h : cluster.hosts()) {
    rproc.push_back(cluster.capacity(h).proc_mips - used[h.index()]);
  }
  return load_balance_factor(rproc);
}

double load_balance_factor_if_moved(std::span<const double> rproc,
                                    std::size_t from, std::size_t to,
                                    double vproc) {
  const auto n = static_cast<double>(rproc.size());
  // hmn-lint: allow(float-eq, n is an exact integer cast from size(); the only zero is a true empty span)
  if (n == 0.0) return 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (std::size_t i = 0; i < rproc.size(); ++i) {
    double v = rproc[i];
    if (i == from) v += vproc;   // origin regains the guest's CPU
    if (i == to) v -= vproc;     // target spends it
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace hmn::core
