#include "core/residual.h"

#include <cassert>

namespace hmn::core {

ResidualState::ResidualState(const model::PhysicalCluster& cluster)
    : cluster_(&cluster) {
  const std::size_t n = cluster.node_count();
  proc_.resize(n);
  mem_.resize(n);
  stor_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cap = cluster.capacity(NodeId{static_cast<NodeId::underlying_type>(i)});
    proc_[i] = cap.proc_mips;
    mem_[i] = cap.mem_mb;
    stor_[i] = cap.stor_gb;
  }
  bw_.resize(cluster.link_count());
  for (std::size_t e = 0; e < bw_.size(); ++e) {
    bw_[e] = cluster.link(EdgeId{static_cast<EdgeId::underlying_type>(e)}).bandwidth_mbps;
  }
}

ResidualState::ResidualState(const model::PhysicalCluster& cluster,
                             const model::VirtualEnvironment& venv,
                             const Mapping& mapping)
    : ResidualState(cluster) {
  for (std::size_t g = 0; g < mapping.guest_host.size(); ++g) {
    const NodeId h = mapping.guest_host[g];
    if (h.valid()) {
      place(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}), h);
    }
  }
  for (std::size_t l = 0; l < mapping.link_paths.size(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    reserve_bw(mapping.link_paths[l], venv.link(id).bandwidth_mbps);
  }
}

// The fits/place/remove/bw quartet runs once per candidate host per guest —
// the innermost loop of Hosting and Migration.  None of them may allocate.
// hmn-lint: hot-path
bool ResidualState::fits(const model::GuestRequirements& req,
                         NodeId host) const {
  return mem_[host.index()] >= req.mem_mb &&
         stor_[host.index()] >= req.stor_gb;
}

// hmn-lint: hot-path
bool ResidualState::fits_both(const model::GuestRequirements& a,
                              const model::GuestRequirements& b,
                              NodeId host) const {
  return mem_[host.index()] >= a.mem_mb + b.mem_mb &&
         stor_[host.index()] >= a.stor_gb + b.stor_gb;
}

// hmn-lint: hot-path
void ResidualState::place(const model::GuestRequirements& req, NodeId host) {
  assert(cluster_->is_host(host));
  proc_[host.index()] -= req.proc_mips;  // may go negative: CPU is the
                                         // optimization variable
  mem_[host.index()] -= req.mem_mb;
  stor_[host.index()] -= req.stor_gb;
  assert(mem_[host.index()] >= -1e-9 && stor_[host.index()] >= -1e-9 &&
         "place() called without a fits() check");
}

// hmn-lint: hot-path
void ResidualState::remove(const model::GuestRequirements& req, NodeId host) {
  proc_[host.index()] += req.proc_mips;
  mem_[host.index()] += req.mem_mb;
  stor_[host.index()] += req.stor_gb;
}

std::vector<double> ResidualState::residual_proc_of_hosts() const {
  const auto& hosts = cluster_->hosts();
  std::vector<double> out;
  out.reserve(hosts.size());
  for (const NodeId h : hosts) out.push_back(proc_[h.index()]);
  return out;
}

// hmn-lint: hot-path
void ResidualState::reserve_bw(const graph::Path& path, double bw) {
  for (const EdgeId e : path) {
    bw_[e.index()] -= bw;
    assert(bw_[e.index()] >= -1e-6 && "bandwidth overcommitted");
  }
}

// hmn-lint: hot-path
void ResidualState::release_bw(const graph::Path& path, double bw) {
  for (const EdgeId e : path) bw_[e.index()] += bw;
}

}  // namespace hmn::core
