#include "core/networking.h"

#include <limits>

#include "graph/astar_prune.h"
#include "graph/dfs_path.h"
#include "graph/dijkstra.h"
#include "util/rng.h"

namespace hmn::core {

NetworkingResult run_networking(const model::VirtualEnvironment& venv,
                                ResidualState& state,
                                const std::vector<NodeId>& guest_host,
                                const NetworkingOptions& opts) {
  NetworkingResult result;
  result.link_paths.assign(venv.link_count(), graph::Path{});
  const graph::Graph& g = state.cluster().graph();
  const model::PhysicalCluster& cluster = state.cluster();

  auto residual_bw = [&](EdgeId e) { return state.residual_bw(e); };
  auto latency = [&](EdgeId e) { return cluster.link(e).latency_ms; };

  // Physical latencies never change during the stage, so the Dijkstra
  // latency-to-destination arrays (Algorithm 1's ar[]) are computed once
  // per distinct destination host and reused across virtual links.  The
  // cache is a flat vector indexed by destination node id (an empty slot
  // means "not computed yet"): destination lookup is the innermost
  // per-virtual-link operation, and hashing NodeIds dominated the stage on
  // large fabrics.  One Dijkstra result/heap scratch is shared by every run
  // in the stage so the per-link allocation churn disappears.
  std::vector<std::vector<double>> ar_cache(g.node_count());
  graph::ShortestPaths sp_scratch;
  graph::DijkstraScratch heap_scratch;
  auto ar_for = [&](NodeId dest) -> const std::vector<double>& {
    std::vector<double>& slot = ar_cache[dest.index()];
    if (slot.empty()) {
      graph::dijkstra_into(g, dest, latency, sp_scratch, heap_scratch);
      slot = sp_scratch.dist;
    }
    return slot;
  };

  util::Rng dfs_rng(opts.shuffle_seed);

  for (const VirtLinkId l :
       ordered_links(venv, opts.order, opts.shuffle_seed)) {
    const auto [vs, vd] = venv.endpoints(l);
    const NodeId s = guest_host[vs.index()];
    const NodeId d = guest_host[vd.index()];
    if (s == d) continue;  // intra-host: empty path, handled in the VMM

    const model::VirtualLinkDemand& demand = venv.link(l);
    std::optional<graph::ConstrainedPath> path;
    switch (opts.algorithm) {
      case PathAlgorithm::kAStarPrune: {
        graph::AStarPruneOptions ap;
        ap.lat_to_dest = &ar_for(d);
        path = graph::astar_prune_bottleneck(g, s, d, demand.bandwidth_mbps,
                                             demand.max_latency_ms,
                                             residual_bw, latency, ap);
        break;
      }
      case PathAlgorithm::kMinLatency: {
        // Dijkstra over edges with enough residual bandwidth; the result is
        // latency-optimal for this link but ignores bottleneck headroom.
        auto filtered = [&](EdgeId e) {
          return state.residual_bw(e) >= demand.bandwidth_mbps
                     ? cluster.link(e).latency_ms
                     : std::numeric_limits<double>::infinity();
        };
        graph::dijkstra_into(g, s, filtered, sp_scratch, heap_scratch);
        const auto& sp = sp_scratch;
        if (sp.reachable(d) &&
            sp.dist[d.index()] <= demand.max_latency_ms) {
          graph::ConstrainedPath cp;
          cp.edges = graph::extract_path(g, sp, s, d);
          cp.total_latency = sp.dist[d.index()];
          path = std::move(cp);
        }
        break;
      }
      case PathAlgorithm::kDfsNaive: {
        graph::DfsOptions dfs;
        dfs.rng = opts.randomize_dfs ? &dfs_rng : nullptr;
        dfs.max_expansions = opts.dfs_max_expansions;
        path = graph::dfs_first_path(g, s, d, residual_bw, latency, dfs);
        // The naive search ignores constraints; reject its path when the
        // virtual link's demands are not met.
        if (path.has_value() &&
            (path->bottleneck_bw < demand.bandwidth_mbps ||
             path->total_latency > demand.max_latency_ms)) {
          path.reset();
        }
        break;
      }
      case PathAlgorithm::kDfsPruned: {
        graph::DfsOptions dfs;
        dfs.rng = opts.randomize_dfs ? &dfs_rng : nullptr;
        dfs.max_expansions = opts.dfs_max_expansions;
        path = graph::dfs_find_path(g, s, d, demand.bandwidth_mbps,
                                    demand.max_latency_ms, residual_bw,
                                    latency, dfs);
        break;
      }
    }
    if (!path.has_value()) {
      result.detail = "no feasible path for virtual link " +
                      std::to_string(l.value());
      return result;
    }
    state.reserve_bw(path->edges, demand.bandwidth_mbps);
    result.link_paths[l.index()] = std::move(path->edges);
    ++result.links_routed;
  }

  result.ok = true;
  return result;
}

}  // namespace hmn::core
