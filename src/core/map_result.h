// Mapper outcome: a mapping or a typed failure, plus per-stage metrics.
//
// Failure is data, not an exception: the paper's Table 2 reports *failure
// counts* per heuristic, so an unmappable instance is an expected result
// the experiment framework aggregates.
#pragma once

#include <optional>
#include <string>

#include "core/mapping.h"

namespace hmn::core {

enum class MapErrorCode {
  kNone = 0,
  /// Hosting: some guest fits on no host (Section 4.1 "the heuristic
  /// fails").
  kHostingFailed,
  /// Networking: no feasible path for some virtual link (Section 4.3).
  kNetworkingFailed,
  /// Random baseline exhausted its retry budget (Section 5: 100 000 tries).
  kTriesExhausted,
  /// Malformed input (e.g. empty cluster).
  kInvalidInput,
};

[[nodiscard]] constexpr const char* to_string(MapErrorCode c) {
  switch (c) {
    case MapErrorCode::kNone: return "ok";
    case MapErrorCode::kHostingFailed: return "hosting failed";
    case MapErrorCode::kNetworkingFailed: return "networking failed";
    case MapErrorCode::kTriesExhausted: return "tries exhausted";
    case MapErrorCode::kInvalidInput: return "invalid input";
  }
  return "?";
}

/// Wall-clock and work metrics of one mapper run.  The stage split backs
/// the paper's observation that "most part of mapping time is spent in the
/// Networking stage"; `links_routed` is Figure 1's x-axis.
struct MapStats {
  double hosting_seconds = 0.0;
  double migration_seconds = 0.0;
  double networking_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t migrations = 0;     // reassignments performed by stage 2
  std::size_t links_routed = 0;   // inter-host virtual links actually routed
  std::size_t tries = 0;          // attempts used by randomized mappers
  std::size_t levels_used = 0;    // multilevel pyramid depth (0 = flat solve)
};

struct MapOutcome {
  std::optional<Mapping> mapping;
  MapErrorCode error = MapErrorCode::kNone;
  std::string detail;
  MapStats stats;

  [[nodiscard]] bool ok() const { return mapping.has_value(); }

  static MapOutcome failure(MapErrorCode code, std::string why) {
    MapOutcome o;
    o.error = code;
    o.detail = std::move(why);
    return o;
  }
};

}  // namespace hmn::core
