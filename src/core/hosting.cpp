#include "core/hosting.h"

#include <algorithm>

#include "util/rng.h"

namespace hmn::core {
namespace {

/// Host list sorted by residual CPU, descending, with NodeId as a
/// deterministic tiebreak.  Re-sorted after each assignment (n is the
/// cluster size, tens of nodes, so repeated sorting is cheap and mirrors
/// the paper's description literally).
class HostList {
 public:
  explicit HostList(const ResidualState& state)
      : state_(&state), hosts_(state.cluster().hosts()) {
    resort();
  }

  void resort() {
    std::sort(hosts_.begin(), hosts_.end(), [&](NodeId a, NodeId b) {
      const double ra = state_->residual_proc(a);
      const double rb = state_->residual_proc(b);
      // hmn-lint: allow(float-eq, comparator tie-break; an epsilon here would break strict weak ordering)
      if (ra != rb) return ra > rb;
      return a < b;
    });
  }

  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }
  [[nodiscard]] NodeId first() const { return hosts_.front(); }

  /// First host (in residual-CPU order) that fits `req`, or invalid().
  [[nodiscard]] NodeId first_fitting(const model::GuestRequirements& req) const {
    for (const NodeId h : hosts_) {
      if (state_->fits(req, h)) return h;
    }
    return NodeId::invalid();
  }

 private:
  const ResidualState* state_;
  std::vector<NodeId> hosts_;
};

}  // namespace

std::vector<VirtLinkId> ordered_links(const model::VirtualEnvironment& venv,
                                      LinkOrder order,
                                      std::uint64_t shuffle_seed) {
  std::vector<VirtLinkId> links;
  links.reserve(venv.link_count());
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    links.push_back(VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)});
  }
  switch (order) {
    case LinkOrder::kBandwidthDescending:
      std::stable_sort(links.begin(), links.end(),
                       [&](VirtLinkId a, VirtLinkId b) {
                         return venv.link(a).bandwidth_mbps >
                                venv.link(b).bandwidth_mbps;
                       });
      break;
    case LinkOrder::kBandwidthAscending:
      std::stable_sort(links.begin(), links.end(),
                       [&](VirtLinkId a, VirtLinkId b) {
                         return venv.link(a).bandwidth_mbps <
                                venv.link(b).bandwidth_mbps;
                       });
      break;
    case LinkOrder::kRandom: {
      util::Rng rng(shuffle_seed);
      rng.shuffle(links.begin(), links.end());
      break;
    }
  }
  return links;
}

HostingResult run_hosting(const model::VirtualEnvironment& venv,
                          ResidualState& state, const HostingOptions& opts) {
  HostingResult result;
  result.guest_host.assign(venv.guest_count(), NodeId::invalid());
  if (state.cluster().host_count() == 0) {
    result.detail = "cluster has no hosts";
    return result;
  }

  HostList hosts(state);
  auto assigned = [&](GuestId g) { return result.guest_host[g.index()].valid(); };
  auto assign = [&](GuestId g, NodeId h) {
    state.place(venv.guest(g), h);
    result.guest_host[g.index()] = h;
    hosts.resort();
  };

  if (opts.policy == HostingPolicy::kBalanceOnly) {
    // Link-blind ablation: guests individually, descending CPU demand,
    // each to the first (most-available-CPU) host that fits.
    std::vector<GuestId> order;
    order.reserve(venv.guest_count());
    for (std::size_t gi = 0; gi < venv.guest_count(); ++gi) {
      order.push_back(GuestId{static_cast<GuestId::underlying_type>(gi)});
    }
    std::stable_sort(order.begin(), order.end(), [&](GuestId a, GuestId b) {
      return venv.guest(a).proc_mips > venv.guest(b).proc_mips;
    });
    for (const GuestId g : order) {
      const NodeId h = hosts.first_fitting(venv.guest(g));
      if (!h.valid()) {
        result.detail = "no host fits guest " + std::to_string(g.value());
        return result;
      }
      assign(g, h);
    }
    result.ok = true;
    return result;
  }

  for (const VirtLinkId l : ordered_links(venv, opts.order, opts.shuffle_seed)) {
    const auto [vs, vd] = venv.endpoints(l);
    const bool s_done = assigned(vs);
    const bool d_done = assigned(vd);

    if (s_done && d_done) continue;

    if (!s_done && !d_done) {
      // Try to co-locate both endpoints on the most-available-CPU host.
      const NodeId top = hosts.first();
      if (vs != vd && state.fits_both(venv.guest(vs), venv.guest(vd), top)) {
        assign(vs, top);
        assign(vd, top);
        continue;
      }
      if (vs == vd) {  // self-loop virtual link: one guest to place
        const NodeId h = hosts.first_fitting(venv.guest(vs));
        if (!h.valid()) {
          result.detail = "no host fits guest " + std::to_string(vs.value());
          return result;
        }
        assign(vs, h);
        continue;
      }
      // They do not fit together: the most CPU-intensive guest goes to the
      // first host able to receive it, the other to the next fitting host.
      const GuestId g1 = venv.guest(vs).proc_mips >= venv.guest(vd).proc_mips
                             ? vs : vd;
      const GuestId g2 = g1 == vs ? vd : vs;
      const NodeId h1 = hosts.first_fitting(venv.guest(g1));
      if (!h1.valid()) {
        result.detail = "no host fits guest " + std::to_string(g1.value());
        return result;
      }
      assign(g1, h1);
      const NodeId h2 = hosts.first_fitting(venv.guest(g2));
      if (!h2.valid()) {
        result.detail = "no host fits guest " + std::to_string(g2.value());
        return result;
      }
      assign(g2, h2);
      continue;
    }

    // Exactly one endpoint mapped: pull the other one onto the same host if
    // it fits, otherwise onto the first host that does.
    const GuestId done = s_done ? vs : vd;
    const GuestId todo = s_done ? vd : vs;
    const NodeId peer_host = result.guest_host[done.index()];
    NodeId target = state.fits(venv.guest(todo), peer_host)
                        ? peer_host
                        : hosts.first_fitting(venv.guest(todo));
    if (!target.valid()) {
      result.detail = "no host fits guest " + std::to_string(todo.value());
      return result;
    }
    assign(todo, target);
  }

  // Guests untouched by any virtual link (isolated nodes; the paper's
  // generator emits connected graphs, but the API permits them): first
  // fitting host in residual-CPU order.
  for (std::size_t gi = 0; gi < venv.guest_count(); ++gi) {
    const GuestId g{static_cast<GuestId::underlying_type>(gi)};
    if (assigned(g)) continue;
    const NodeId h = hosts.first_fitting(venv.guest(g));
    if (!h.valid()) {
      result.detail = "no host fits isolated guest " + std::to_string(gi);
      return result;
    }
    assign(g, h);
  }

  result.ok = true;
  return result;
}

}  // namespace hmn::core
