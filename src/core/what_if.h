// Non-committing feasibility queries over an existing mapping — the
// planning calls an emulator frontend issues before it actually grows an
// experiment (extend_mapping) or promises a tester capacity.
//
// Both queries evaluate against the residual capacity implied by
// (cluster, venv, mapping) and leave everything untouched.
#pragma once

#include <optional>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// Hosts (in descending residual-CPU order) that could accept a new guest
/// with requirements `req` right now.  Empty = the environment cannot grow
/// by this guest without migrations.
[[nodiscard]] std::vector<NodeId> hosts_fitting_guest(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping,
    const model::GuestRequirements& req);

/// Whether a new virtual link between mapped guests a and b with `demand`
/// could be routed over residual bandwidth (empty path when co-located).
/// Returns the path it would take, or nullopt when infeasible.
[[nodiscard]] std::optional<graph::Path> link_route_available(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping,
    GuestId a, GuestId b, const model::VirtualLinkDemand& demand);

}  // namespace hmn::core
