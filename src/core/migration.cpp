#include "core/migration.h"

#include <algorithm>
#include <limits>

#include "core/objective.h"

namespace hmn::core {
namespace {

/// Sum of virtual-link bandwidth between guest g and guests co-located on
/// the same host — the Migration stage's tie to the Hosting stage's
/// affinity groupings.
double colocated_bandwidth(const model::VirtualEnvironment& venv,
                           const std::vector<NodeId>& guest_host, GuestId g) {
  const NodeId home = guest_host[g.index()];
  double sum = 0.0;
  for (const VirtLinkId l : venv.links_of(g)) {
    const GuestId other = venv.endpoints(l).other(g);
    if (other != g && guest_host[other.index()] == home) {
      sum += venv.link(l).bandwidth_mbps;
    }
  }
  return sum;
}

}  // namespace

MigrationResult run_migration(const model::VirtualEnvironment& venv,
                              ResidualState& state,
                              std::vector<NodeId>& guest_host,
                              const MigrationOptions& opts) {
  MigrationResult result;
  const auto& hosts = state.cluster().hosts();
  result.initial_lbf = load_balance_factor(state);
  result.final_lbf = result.initial_lbf;
  if (hosts.size() < 2) return result;

  // host_index[node] = position of the node in the hosts() vector, which is
  // also its index in the rproc vector the objective runs over.
  std::vector<std::size_t> host_index(state.cluster().node_count(), 0);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    host_index[hosts[i].index()] = i;
  }

  // guests_on[host position] = guests currently assigned there.
  std::vector<std::vector<GuestId>> guests_on(hosts.size());
  for (std::size_t gi = 0; gi < guest_host.size(); ++gi) {
    guests_on[host_index[guest_host[gi].index()]].push_back(
        GuestId{static_cast<GuestId::underlying_type>(gi)});
  }

  double current_lbf = result.initial_lbf;
  for (;;) {
    if (opts.max_migrations != 0 && result.migrations >= opts.max_migrations) {
      break;
    }
    std::vector<double> rproc = state.residual_proc_of_hosts();

    // Most-loaded host = smallest residual CPU, among hosts with guests.
    std::size_t origin = hosts.size();
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (guests_on[i].empty()) continue;
      if (origin == hosts.size() || rproc[i] < rproc[origin]) origin = i;
    }
    if (origin == hosts.size()) break;  // nothing mapped anywhere

    // Candidate targets from least loaded (largest residual CPU) upward.
    std::vector<std::size_t> order(hosts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (rproc[a] != rproc[b]) return rproc[a] > rproc[b];
      return hosts[a] < hosts[b];
    });

    GuestId victim = GuestId::invalid();
    std::size_t target = hosts.size();
    double lbf_after = current_lbf;

    if (opts.victim == VictimPolicy::kMinColocatedBandwidth) {
      // The paper's rule: one candidate guest — smallest co-located
      // bandwidth sum (ties: lowest id) — moved to the first improving,
      // fitting host in least-loaded order.
      double best_sum = std::numeric_limits<double>::infinity();
      for (const GuestId g : guests_on[origin]) {
        const double s = colocated_bandwidth(venv, guest_host, g);
        if (s < best_sum ||
            // hmn-lint: allow(float-eq, deterministic victim tie-break on exact equal sums; epsilon would make the winner order-dependent)
            (s == best_sum && (!victim.valid() || g < victim))) {
          best_sum = s;
          victim = g;
        }
      }
      const model::GuestRequirements& req = venv.guest(victim);
      for (const std::size_t cand : order) {
        if (cand == origin) continue;
        const double after = load_balance_factor_if_moved(
            rproc, origin, cand, req.proc_mips);
        if (after < current_lbf && state.fits(req, hosts[cand])) {
          target = cand;
          lbf_after = after;
          break;
        }
      }
    } else {
      // kBestImprovement: exhaustive over (guest, target); commit the
      // steepest descent step.
      for (const GuestId g : guests_on[origin]) {
        const model::GuestRequirements& req = venv.guest(g);
        for (const std::size_t cand : order) {
          if (cand == origin) continue;
          const double after = load_balance_factor_if_moved(
              rproc, origin, cand, req.proc_mips);
          if (after < lbf_after && state.fits(req, hosts[cand])) {
            victim = g;
            target = cand;
            lbf_after = after;
          }
        }
      }
    }

    if (target == hosts.size()) break;  // no improving move: stage ends
    const model::GuestRequirements& req = venv.guest(victim);
    state.remove(req, hosts[origin]);
    state.place(req, hosts[target]);
    guest_host[victim.index()] = hosts[target];
    auto& src = guests_on[origin];
    src.erase(std::find(src.begin(), src.end(), victim));
    guests_on[target].push_back(victim);
    current_lbf = lbf_after;
    ++result.migrations;
  }

  result.final_lbf = current_lbf;
  return result;
}

}  // namespace hmn::core
