#include "core/repair.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>

#include "core/residual.h"
#include "graph/astar_prune.h"
#include "graph/dijkstra.h"
#include "util/timer.h"

namespace hmn::core {
namespace {

bool edge_touches(const graph::Graph& g, EdgeId e, NodeId node) {
  const auto ep = g.endpoints(e);
  return ep.a == node || ep.b == node;
}

}  // namespace

bool mapping_avoids_node(const model::PhysicalCluster& cluster,
                         const Mapping& mapping, NodeId host) {
  for (const NodeId h : mapping.guest_host) {
    if (h == host) return false;
  }
  const graph::Graph& g = cluster.graph();
  for (const auto& path : mapping.link_paths) {
    for (const EdgeId e : path) {
      if (edge_touches(g, e, host)) return false;
    }
  }
  return true;
}

bool mapping_avoids_edge(const Mapping& mapping, EdgeId edge) {
  for (const auto& path : mapping.link_paths) {
    for (const EdgeId e : path) {
      if (e == edge) return false;
    }
  }
  return true;
}

MapOutcome repair_mapping(const model::PhysicalCluster& cluster,
                          const model::VirtualEnvironment& venv,
                          const Mapping& mapping, const RepairOptions& opts,
                          RepairStats* stats) {
  const util::Timer total;
  const graph::Graph& g = cluster.graph();

  // --- Dead-element masks.  An edge incident to a dead node is dead too.
  std::vector<bool> node_dead(cluster.node_count(), false);
  std::vector<bool> edge_dead(cluster.link_count(), false);
  for (const NodeId n : opts.failed.nodes) {
    if (!n.valid() || n.index() >= cluster.node_count()) {
      return MapOutcome::failure(MapErrorCode::kInvalidInput,
                                 "failed host out of range");
    }
    node_dead[n.index()] = true;
    for (const graph::Adjacency& adj : g.neighbors(n)) {
      edge_dead[adj.edge.index()] = true;
    }
  }
  for (const EdgeId e : opts.failed.links) {
    if (!e.valid() || e.index() >= cluster.link_count()) {
      return MapOutcome::failure(MapErrorCode::kInvalidInput,
                                 "failed link out of range");
    }
    edge_dead[e.index()] = true;
  }

  // --- Identify the damage.
  std::vector<GuestId> evicted;
  for (std::size_t gi = 0; gi < mapping.guest_host.size(); ++gi) {
    const NodeId h = mapping.guest_host[gi];
    if (h.valid() && node_dead[h.index()]) {
      evicted.push_back(GuestId{static_cast<GuestId::underlying_type>(gi)});
    }
  }
  std::vector<bool> link_affected(venv.link_count(), false);
  for (std::size_t li = 0; li < venv.link_count(); ++li) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(li)};
    const auto ep = venv.endpoints(id);
    const NodeId hs = mapping.guest_host[ep.src.index()];
    const NodeId hd = mapping.guest_host[ep.dst.index()];
    if ((hs.valid() && node_dead[hs.index()]) ||
        (hd.valid() && node_dead[hd.index()])) {
      link_affected[li] = true;
      continue;
    }
    // A dark link (empty path between distinct surviving hosts) is damage
    // from an earlier degraded repair — re-attempt it, which makes repair
    // idempotent and lets recoveries heal degraded tenants.
    if (mapping.link_paths[li].empty()) {
      link_affected[li] = hs != hd;
      continue;
    }
    for (const EdgeId e : mapping.link_paths[li]) {
      if (edge_dead[e.index()]) {
        link_affected[li] = true;
        break;
      }
    }
  }

  // --- Rebuild residual state of the *surviving* part.
  Mapping repaired = mapping;
  ResidualState state(cluster);
  for (std::size_t gi = 0; gi < mapping.guest_host.size(); ++gi) {
    const NodeId h = mapping.guest_host[gi];
    if (!h.valid() || node_dead[h.index()]) {
      repaired.guest_host[gi] = NodeId::invalid();
      continue;
    }
    state.place(venv.guest(GuestId{static_cast<GuestId::underlying_type>(gi)}),
                h);
  }
  for (std::size_t li = 0; li < venv.link_count(); ++li) {
    if (link_affected[li]) {
      repaired.link_paths[li].clear();
      continue;
    }
    state.reserve_bw(mapping.link_paths[li],
                     venv.link(VirtLinkId{
                         static_cast<VirtLinkId::underlying_type>(li)})
                         .bandwidth_mbps);
  }

  // --- Re-place evicted guests: strongest surviving-neighbor affinity
  // first, then the most-available-CPU host that fits; never a dead host.
  auto placed = [&](GuestId guest) {
    return repaired.guest_host[guest.index()].valid();
  };
  auto strongest_neighbor_host = [&](GuestId guest) {
    double best_bw = -1.0;
    NodeId best = NodeId::invalid();
    for (const VirtLinkId l : venv.links_of(guest)) {
      const GuestId other = venv.endpoints(l).other(guest);
      if (other == guest || !placed(other)) continue;
      if (venv.link(l).bandwidth_mbps > best_bw) {
        best_bw = venv.link(l).bandwidth_mbps;
        best = repaired.guest_host[other.index()];
      }
    }
    return best;
  };
  for (const GuestId guest : evicted) {
    const auto& req = venv.guest(guest);
    NodeId target = strongest_neighbor_host(guest);
    if (!target.valid() || node_dead[target.index()] ||
        !state.fits(req, target)) {
      target = NodeId::invalid();
      double best_proc = 0.0;
      for (const NodeId h : cluster.hosts()) {
        if (node_dead[h.index()] || !state.fits(req, h)) continue;
        if (!target.valid() || state.residual_proc(h) > best_proc) {
          target = h;
          best_proc = state.residual_proc(h);
        }
      }
    }
    if (!target.valid()) {
      MapOutcome out = MapOutcome::failure(
          MapErrorCode::kHostingFailed,
          "no surviving host fits evicted guest " +
              std::to_string(guest.value()));
      out.stats.total_seconds = total.elapsed_seconds();
      return out;
    }
    state.place(req, target);
    repaired.guest_host[guest.index()] = target;
  }

  // --- Re-route affected links over the surviving fabric, heaviest first.
  std::vector<VirtLinkId> to_route;
  for (std::size_t li = 0; li < venv.link_count(); ++li) {
    if (link_affected[li]) {
      to_route.push_back(
          VirtLinkId{static_cast<VirtLinkId::underlying_type>(li)});
    }
  }
  std::stable_sort(to_route.begin(), to_route.end(),
                   [&](VirtLinkId a, VirtLinkId b) {
                     return venv.link(a).bandwidth_mbps >
                            venv.link(b).bandwidth_mbps;
                   });

  auto residual_bw = [&](EdgeId e) {
    return edge_dead[e.index()] ? 0.0 : state.residual_bw(e);
  };
  auto latency = [&](EdgeId e) {
    return edge_dead[e.index()] ? std::numeric_limits<double>::infinity()
                                : cluster.link(e).latency_ms;
  };
  // hmn-lint: allow(unordered-iter, per-destination A* bound cache; keyed find/emplace only and never iterated — results are consumed in virtual-link order)
  std::unordered_map<NodeId, std::vector<double>> ar_cache;
  auto ar_for = [&](NodeId dest) -> const std::vector<double>& {
    auto it = ar_cache.find(dest);
    if (it == ar_cache.end()) {
      it = ar_cache.emplace(dest, graph::dijkstra(g, dest, latency).dist)
               .first;
    }
    return it->second;
  };

  std::size_t rerouted = 0;
  std::vector<VirtLinkId> dark;
  for (const VirtLinkId l : to_route) {
    const auto ep = venv.endpoints(l);
    const NodeId s = repaired.guest_host[ep.src.index()];
    const NodeId d = repaired.guest_host[ep.dst.index()];
    if (s == d) continue;  // refugees co-located: intra-host now
    const auto& demand = venv.link(l);
    graph::AStarPruneOptions ap;
    ap.lat_to_dest = &ar_for(d);
    auto path = graph::astar_prune_bottleneck(
        g, s, d, demand.bandwidth_mbps, demand.max_latency_ms, residual_bw,
        latency, ap);
    if (!path.has_value()) {
      // Degraded SLA: only *best-effort* links may go dark.  A critical
      // link with no surviving path fails the repair outright, whatever
      // allow_dark_links says — the tenant declared it cannot run without
      // this link, so the caller must evict (or fully remap), not degrade.
      if (opts.allow_dark_links && !demand.critical) {
        dark.push_back(l);  // path stays empty; no bandwidth reserved
        continue;
      }
      MapOutcome out = MapOutcome::failure(
          MapErrorCode::kNetworkingFailed,
          std::string("no surviving path for ") +
              (demand.critical ? "critical " : "") + "virtual link " +
              std::to_string(l.value()));
      out.stats.total_seconds = total.elapsed_seconds();
      return out;
    }
    state.reserve_bw(path->edges, demand.bandwidth_mbps);
    repaired.link_paths[l.index()] = std::move(path->edges);
    ++rerouted;
  }

  if (stats != nullptr) {
    stats->guests_moved = evicted.size();
    stats->links_rerouted = rerouted;
    stats->dark_links = dark;
  }
  MapOutcome out;
  out.mapping = std::move(repaired);
  out.stats.links_routed = rerouted;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

MapOutcome repair_mapping(const model::PhysicalCluster& cluster,
                          const model::VirtualEnvironment& venv,
                          const Mapping& mapping, NodeId failed_host,
                          RepairStats* stats) {
  RepairOptions opts;
  opts.failed.nodes.push_back(failed_host);
  return repair_mapping(cluster, venv, mapping, opts, stats);
}

}  // namespace hmn::core
