// The paper's objective function (Eqs. 10-12): the load-balance factor,
// defined as the population standard deviation of residual CPU across
// hosts.  Lower is better; a perfectly balanced heterogeneous cluster has
// equal *residual* MIPS everywhere, not equal guest counts.
#pragma once

#include <span>
#include <vector>

#include "core/mapping.h"
#include "core/residual.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// Eq. 10 over an explicit residual-CPU vector (one entry per host).
[[nodiscard]] double load_balance_factor(std::span<const double> rproc);

/// Eq. 10 for a residual state.
[[nodiscard]] double load_balance_factor(const ResidualState& state);

/// Eq. 10 for a complete mapping: recomputes rproc(c_i) = proc(c_i) -
/// sum of vproc over G_i (Eq. 11) from scratch.
[[nodiscard]] double load_balance_factor(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, const Mapping& mapping);

/// Incremental what-if used by the Migration stage: the load-balance factor
/// if a guest consuming `vproc` moved from host index `from` to host index
/// `to` (indices into the rproc vector).  O(n) but allocation-free.
[[nodiscard]] double load_balance_factor_if_moved(
    std::span<const double> rproc, std::size_t from, std::size_t to,
    double vproc);

}  // namespace hmn::core
