#include "core/hmn_mapper.h"

#include "util/timer.h"

namespace hmn::core {

HmnMapper::HmnMapper(HmnOptions opts) : opts_(std::move(opts)) {}

std::string HmnMapper::name() const {
  if (!opts_.display_name.empty()) return opts_.display_name;
  return opts_.enable_migration ? "HMN" : "HN";
}

MapOutcome HmnMapper::map(const model::PhysicalCluster& cluster,
                          const model::VirtualEnvironment& venv,
                          std::uint64_t seed) const {
  MapOutcome outcome;
  if (cluster.host_count() == 0) {
    return MapOutcome::failure(MapErrorCode::kInvalidInput,
                               "cluster has no hosts");
  }
  const util::Timer total;
  ResidualState state(cluster);

  // Stage 1 — Hosting.
  util::Timer stage;
  HostingOptions hosting = opts_.hosting;
  if (hosting.order == LinkOrder::kRandom) hosting.shuffle_seed = seed;
  HostingResult hosted = run_hosting(venv, state, hosting);
  outcome.stats.hosting_seconds = stage.elapsed_seconds();
  if (!hosted.ok) {
    outcome = MapOutcome::failure(MapErrorCode::kHostingFailed, hosted.detail);
    outcome.stats.hosting_seconds = stage.elapsed_seconds();
    outcome.stats.total_seconds = total.elapsed_seconds();
    return outcome;
  }

  // Stage 2 — Migration.
  if (opts_.enable_migration) {
    stage.restart();
    const MigrationResult migrated =
        run_migration(venv, state, hosted.guest_host, opts_.migration);
    outcome.stats.migration_seconds = stage.elapsed_seconds();
    outcome.stats.migrations = migrated.migrations;
  }

  // Stage 3 — Networking.
  stage.restart();
  NetworkingOptions networking = opts_.networking;
  if (networking.order == LinkOrder::kRandom) networking.shuffle_seed = seed;
  NetworkingResult routed = run_networking(venv, state, hosted.guest_host,
                                           networking);
  outcome.stats.networking_seconds = stage.elapsed_seconds();
  if (!routed.ok) {
    const MapStats stats = outcome.stats;
    outcome =
        MapOutcome::failure(MapErrorCode::kNetworkingFailed, routed.detail);
    outcome.stats = stats;
    outcome.stats.total_seconds = total.elapsed_seconds();
    return outcome;
  }
  outcome.stats.links_routed = routed.links_routed;

  Mapping mapping;
  mapping.guest_host = std::move(hosted.guest_host);
  mapping.link_paths = std::move(routed.link_paths);
  outcome.mapping = std::move(mapping);
  outcome.stats.total_seconds = total.elapsed_seconds();
  return outcome;
}

}  // namespace hmn::core
