// The mapping value: where each guest runs and which physical path carries
// each virtual link.  This is the object every mapper produces and the
// validator checks against the paper's constraints (Eqs. 1-9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

struct Mapping {
  /// host_of[g] = cluster node hosting guest g.  All entries valid host
  /// nodes in a complete mapping.
  std::vector<NodeId> guest_host;

  /// path_of[l] = physical edge sequence carrying virtual link l, starting
  /// at the source guest's host.  Empty when both endpoints share a host
  /// (intra-host links cost nothing; bw = inf, lat = 0 per Section 3.2).
  std::vector<graph::Path> link_paths;

  [[nodiscard]] NodeId host_of(GuestId g) const {
    return guest_host[g.index()];
  }
  [[nodiscard]] const graph::Path& path_of(VirtLinkId l) const {
    return link_paths[l.index()];
  }

  /// True when a virtual link's endpoints are co-located.
  [[nodiscard]] bool colocated(const model::VirtualEnvironment& venv,
                               VirtLinkId l) const {
    const auto ep = venv.endpoints(l);
    return host_of(ep.src) == host_of(ep.dst);
  }

  /// Guests grouped per cluster node (the paper's sets G_i).
  [[nodiscard]] std::vector<std::vector<GuestId>> guests_per_node(
      std::size_t node_count) const {
    std::vector<std::vector<GuestId>> out(node_count);
    for (std::size_t g = 0; g < guest_host.size(); ++g) {
      const NodeId h = guest_host[g];
      if (h.valid()) {
        out[h.index()].push_back(GuestId{static_cast<GuestId::underlying_type>(g)});
      }
    }
    return out;
  }

  /// Number of virtual links whose endpoints land on different hosts —
  /// the links the Networking stage actually has to route (Figure 1's
  /// x-axis).
  [[nodiscard]] std::size_t inter_host_link_count(
      const model::VirtualEnvironment& venv) const {
    std::size_t n = 0;
    for (std::size_t l = 0; l < link_paths.size(); ++l) {
      if (!colocated(venv, VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)})) ++n;
    }
    return n;
  }
};

/// FNV-1a over the complete mapping value (every guest's host, every
/// path's length and edges).  Two mappings are byte-identical iff their
/// fingerprints match — the determinism gates (bench_multilevel, the
/// regression harness) compare these across repeated runs.
[[nodiscard]] inline std::uint64_t fingerprint(const Mapping& m) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const NodeId host : m.guest_host) mix(host.value());
  for (const graph::Path& path : m.link_paths) {
    mix(path.size());
    for (const EdgeId e : path) mix(e.value());
  }
  return h;
}

}  // namespace hmn::core
