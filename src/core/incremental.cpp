#include "core/incremental.h"

#include <algorithm>
#include <unordered_map>

#include "core/residual.h"
#include "graph/astar_prune.h"
#include "graph/dijkstra.h"
#include "util/timer.h"

namespace hmn::core {
namespace {

/// Rebuilds the residual state of the base mapping, treating only the
/// guests/links `base` covers.
ResidualState base_residuals(const model::PhysicalCluster& cluster,
                             const model::VirtualEnvironment& grown,
                             const Mapping& base) {
  ResidualState state(cluster);
  for (std::size_t g = 0; g < base.guest_host.size(); ++g) {
    state.place(grown.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
                base.guest_host[g]);
  }
  for (std::size_t l = 0; l < base.link_paths.size(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    state.reserve_bw(base.link_paths[l], grown.link(id).bandwidth_mbps);
  }
  return state;
}

}  // namespace

MapOutcome extend_mapping(const model::PhysicalCluster& cluster,
                          const model::VirtualEnvironment& grown,
                          const Mapping& base) {
  const util::Timer total;
  if (cluster.host_count() == 0) {
    return MapOutcome::failure(MapErrorCode::kInvalidInput,
                               "cluster has no hosts");
  }
  if (base.guest_host.size() > grown.guest_count() ||
      base.link_paths.size() > grown.link_count()) {
    return MapOutcome::failure(
        MapErrorCode::kInvalidInput,
        "base mapping is larger than the grown environment");
  }

  ResidualState state = base_residuals(cluster, grown, base);
  Mapping mapping = base;
  mapping.guest_host.resize(grown.guest_count(), NodeId::invalid());
  mapping.link_paths.resize(grown.link_count());

  // --- Place new guests: heaviest-affinity first.  New guests are
  // processed in descending order of their strongest link to an
  // already-placed guest, mirroring the Hosting stage's "heavy links
  // co-locate first" rule at the increment.
  const std::size_t first_new = base.guest_host.size();
  const util::Timer hosting_timer;
  std::vector<GuestId> pending;
  for (std::size_t g = first_new; g < grown.guest_count(); ++g) {
    pending.push_back(GuestId{static_cast<GuestId::underlying_type>(g)});
  }

  auto placed = [&](GuestId g) { return mapping.guest_host[g.index()].valid(); };
  auto strongest_placed_neighbor = [&](GuestId g) {
    double best_bw = -1.0;
    NodeId best_host = NodeId::invalid();
    for (const VirtLinkId l : grown.links_of(g)) {
      const GuestId other = grown.endpoints(l).other(g);
      if (other == g || !placed(other)) continue;
      if (grown.link(l).bandwidth_mbps > best_bw) {
        best_bw = grown.link(l).bandwidth_mbps;
        best_host = mapping.guest_host[other.index()];
      }
    }
    return std::pair{best_bw, best_host};
  };
  auto most_available_fitting = [&](const model::GuestRequirements& req) {
    NodeId best = NodeId::invalid();
    double best_proc = 0.0;
    for (const NodeId h : cluster.hosts()) {
      if (!state.fits(req, h)) continue;
      if (!best.valid() || state.residual_proc(h) > best_proc) {
        best = h;
        best_proc = state.residual_proc(h);
      }
    }
    return best;
  };

  while (!pending.empty()) {
    // Pick the pending guest with the strongest tie to the placed set;
    // isolated-from-placed guests go last (affinity -1 sorts them behind).
    std::size_t best_idx = 0;
    double best_bw = -2.0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const double bw = strongest_placed_neighbor(pending[i]).first;
      if (bw > best_bw) {
        best_bw = bw;
        best_idx = i;
      }
    }
    const GuestId g = pending[best_idx];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_idx));

    const auto& req = grown.guest(g);
    NodeId target = strongest_placed_neighbor(g).second;
    if (!target.valid() || !state.fits(req, target)) {
      target = most_available_fitting(req);
    }
    if (!target.valid()) {
      MapOutcome out = MapOutcome::failure(
          MapErrorCode::kHostingFailed,
          "no host fits new guest " + std::to_string(g.value()));
      out.stats.hosting_seconds = hosting_timer.elapsed_seconds();
      out.stats.total_seconds = total.elapsed_seconds();
      return out;
    }
    state.place(req, target);
    mapping.guest_host[g.index()] = target;
  }
  const double hosting_seconds = hosting_timer.elapsed_seconds();

  // --- Route new links over residual bandwidth.  run_networking routes
  // every link of a venv, so build the stage input as "only the new links"
  // by temporarily treating old links as already-routed: we call it on the
  // grown venv but skip links with an existing path via a filtered pass.
  const util::Timer net_timer;
  // Rather than duplicate run_networking's internals, route the new links
  // through a thin venv view: sort new links by descending bandwidth and
  // use the same A*Prune machinery per link.
  std::vector<VirtLinkId> new_links;
  for (std::size_t l = base.link_paths.size(); l < grown.link_count(); ++l) {
    new_links.push_back(VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)});
  }
  std::stable_sort(new_links.begin(), new_links.end(),
                   [&](VirtLinkId a, VirtLinkId b) {
                     return grown.link(a).bandwidth_mbps >
                            grown.link(b).bandwidth_mbps;
                   });

  // Reuse run_networking by constructing a sub-environment is costlier
  // than routing directly; per-link A*Prune mirrors NetworkingStage.
  std::size_t routed_count = 0;
  {
    const graph::Graph& g = cluster.graph();
    auto residual_bw = [&](EdgeId e) { return state.residual_bw(e); };
    auto latency = [&](EdgeId e) { return cluster.link(e).latency_ms; };
    // hmn-lint: allow(unordered-iter, per-destination A* bound cache; keyed find/emplace only and never iterated — results are consumed in virtual-link order)
    std::unordered_map<NodeId, std::vector<double>> ar_cache;
    auto ar_for = [&](NodeId dest) -> const std::vector<double>& {
      auto it = ar_cache.find(dest);
      if (it == ar_cache.end()) {
        it = ar_cache.emplace(dest, graph::dijkstra(g, dest, latency).dist)
                 .first;
      }
      return it->second;
    };
    for (const VirtLinkId l : new_links) {
      const auto ep = grown.endpoints(l);
      const NodeId s = mapping.guest_host[ep.src.index()];
      const NodeId d = mapping.guest_host[ep.dst.index()];
      if (s == d) continue;
      const auto& demand = grown.link(l);
      graph::AStarPruneOptions ap;
      ap.lat_to_dest = &ar_for(d);
      auto path = graph::astar_prune_bottleneck(
          g, s, d, demand.bandwidth_mbps, demand.max_latency_ms, residual_bw,
          latency, ap);
      if (!path.has_value()) {
        MapOutcome out = MapOutcome::failure(
            MapErrorCode::kNetworkingFailed,
            "no feasible path for new virtual link " +
                std::to_string(l.value()));
        out.stats.hosting_seconds = hosting_seconds;
        out.stats.networking_seconds = net_timer.elapsed_seconds();
        out.stats.total_seconds = total.elapsed_seconds();
        return out;
      }
      state.reserve_bw(path->edges, demand.bandwidth_mbps);
      mapping.link_paths[l.index()] = std::move(path->edges);
      ++routed_count;
    }
  }

  MapOutcome out;
  out.mapping = std::move(mapping);
  out.stats.hosting_seconds = hosting_seconds;
  out.stats.networking_seconds = net_timer.elapsed_seconds();
  out.stats.links_routed = routed_count;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace hmn::core
