// The HMN (Hosting-Migration-Networking) heuristic — the paper's
// contribution (Section 4) — as a Mapper.
#pragma once

#include "core/hosting.h"
#include "core/mapper.h"
#include "core/migration.h"
#include "core/networking.h"

namespace hmn::core {

struct HmnOptions {
  /// Disable to get the Hosting+Networking-only variant (migration
  /// ablation, bench E5).
  bool enable_migration = true;
  HostingOptions hosting;
  MigrationOptions migration;
  NetworkingOptions networking;
  /// Override the table name (defaults to "HMN", or "HN" when migration is
  /// disabled).
  std::string display_name;
};

class HmnMapper final : public Mapper {
 public:
  explicit HmnMapper(HmnOptions opts = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MapOutcome map(const model::PhysicalCluster& cluster,
                               const model::VirtualEnvironment& venv,
                               std::uint64_t seed) const override;

  [[nodiscard]] const HmnOptions& options() const { return opts_; }

 private:
  HmnOptions opts_;
};

}  // namespace hmn::core
