// Mapping repair after a host failure.
//
// Long-running emulation experiments lose hosts (the paper's motivation
// for emulation is precisely that real testbeds misbehave); when one
// fails, re-running HMN from scratch would re-place every VM.
// `repair_mapping` instead performs the minimal surgery:
//
//   * guests on the failed host are evicted and re-placed on surviving
//     hosts (affinity first, then most-available-CPU, as in the
//     incremental extension);
//   * virtual links whose physical path traverses the failed host — plus
//     all links of evicted guests — are re-routed with the modified
//     A*Prune over the surviving fabric;
//   * every other guest and path is untouched.
//
// The repaired mapping satisfies all of Eqs. 1-9 *and* avoids the failed
// host entirely (no guest on it, no path through it).
#pragma once

#include "core/map_result.h"
#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

struct RepairStats {
  std::size_t guests_moved = 0;
  std::size_t links_rerouted = 0;
};

/// Repairs `mapping` after `failed_host` dies.  Fails with kHostingFailed /
/// kNetworkingFailed when the surviving capacity cannot absorb the
/// refugees (callers may then fall back to a full remap on the reduced
/// cluster).  `stats`, when non-null, receives the surgery size.
[[nodiscard]] MapOutcome repair_mapping(const model::PhysicalCluster& cluster,
                                        const model::VirtualEnvironment& venv,
                                        const Mapping& mapping,
                                        NodeId failed_host,
                                        RepairStats* stats = nullptr);

/// True when `mapping` uses `host` in no way: no guest placed on it and no
/// link path traversing it.  The post-condition of a successful repair.
[[nodiscard]] bool mapping_avoids_node(const model::PhysicalCluster& cluster,
                                       const Mapping& mapping, NodeId host);

}  // namespace hmn::core
