// Mapping repair after substrate failures.
//
// Long-running emulation experiments lose hosts and links (the paper's
// motivation for emulation is precisely that real testbeds misbehave);
// when an element fails, re-running HMN from scratch would re-place every
// VM.  `repair_mapping` instead performs the minimal surgery:
//
//   * guests on a failed host are evicted and re-placed on surviving
//     hosts (affinity first, then most-available-CPU, as in the
//     incremental extension);
//   * virtual links whose physical path traverses a failed element — plus
//     all links of evicted guests — are re-routed with the modified
//     A*Prune over the surviving fabric;
//   * every other guest and path is untouched.
//
// A failed *link* alone never evicts a guest: only its transit paths are
// re-routed.  With `allow_dark_links`, a *best-effort* link that cannot be
// re-routed is left with an empty ("dark") path instead of failing the
// whole repair — the degraded-tenancy mode the orchestrator's healer
// builds on.  Dark links reserve no bandwidth and are re-attempted by any
// later repair over the same mapping (an empty inter-host path counts as
// damage).  A virtual link whose demand is flagged `critical` never goes
// dark: if it cannot be re-routed the repair fails with kNetworkingFailed
// even under allow_dark_links, and the caller must evict or fully remap.
//
// The repaired mapping satisfies all of Eqs. 1-9 *and* avoids every failed
// element entirely (no guest on a dead host, no path through a dead node
// or edge).
#pragma once

#include <vector>

#include "core/map_result.h"
#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::core {

/// The set of currently failed substrate elements.  An edge incident to a
/// failed node is implicitly dead as well.
struct FailureSet {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> links;

  [[nodiscard]] bool empty() const { return nodes.empty() && links.empty(); }
};

struct RepairOptions {
  FailureSet failed;
  /// When true, a surviving *best-effort* inter-host link whose path
  /// cannot be re-routed is left dark (empty path, no bandwidth reserved)
  /// and reported in RepairStats::dark_links instead of failing the repair
  /// with kNetworkingFailed.  Links whose demand is `critical`, and all
  /// hosting failures, still fail the repair.
  bool allow_dark_links = false;
};

struct RepairStats {
  std::size_t guests_moved = 0;
  std::size_t links_rerouted = 0;
  /// Inter-host links left unrouted (only with allow_dark_links).
  std::vector<VirtLinkId> dark_links;
};

/// Repairs `mapping` after the elements in `opts.failed` die.  Fails with
/// kHostingFailed / kNetworkingFailed when the surviving capacity cannot
/// absorb the refugees (callers may then fall back to a full remap on the
/// reduced cluster, or evict the tenant).  `stats`, when non-null,
/// receives the surgery size.
[[nodiscard]] MapOutcome repair_mapping(const model::PhysicalCluster& cluster,
                                        const model::VirtualEnvironment& venv,
                                        const Mapping& mapping,
                                        const RepairOptions& opts,
                                        RepairStats* stats = nullptr);

/// Single-host convenience overload (the PR-1 interface).
[[nodiscard]] MapOutcome repair_mapping(const model::PhysicalCluster& cluster,
                                        const model::VirtualEnvironment& venv,
                                        const Mapping& mapping,
                                        NodeId failed_host,
                                        RepairStats* stats = nullptr);

/// True when `mapping` uses `host` in no way: no guest placed on it and no
/// link path traversing it.  The post-condition of a successful repair.
[[nodiscard]] bool mapping_avoids_node(const model::PhysicalCluster& cluster,
                                       const Mapping& mapping, NodeId host);

/// True when no link path of `mapping` traverses physical edge `edge`.
[[nodiscard]] bool mapping_avoids_edge(const Mapping& mapping, EdgeId edge);

}  // namespace hmn::core
