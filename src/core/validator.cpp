#include "core/validator.h"

#include <sstream>

namespace hmn::core {
namespace {

// Capacity comparisons tolerate accumulated floating-point error from the
// mappers' incremental bookkeeping.
constexpr double kEps = 1e-6;

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) return "valid";
  std::ostringstream out;
  out << violations.size() << " violation(s):";
  for (const Violation& v : violations) {
    out << "\n  [" << to_string(v.constraint) << "] " << v.detail;
  }
  return out.str();
}

ValidationReport validate_mapping(const model::PhysicalCluster& cluster,
                                  const model::VirtualEnvironment& venv,
                                  const Mapping& mapping) {
  ValidationReport report;
  auto fail = [&](ConstraintId c, std::string detail) {
    report.violations.push_back({c, std::move(detail)});
  };

  // --- Eq. 1: every guest mapped exactly once, to a real node.
  if (mapping.guest_host.size() != venv.guest_count()) {
    fail(ConstraintId::kGuestMappedOnce,
         "guest_host size " + std::to_string(mapping.guest_host.size()) +
             " != guest count " + std::to_string(venv.guest_count()));
    return report;  // sizes wrong: nothing below is meaningful
  }
  if (mapping.link_paths.size() != venv.link_count()) {
    fail(ConstraintId::kPathEndpoints,
         "link_paths size " + std::to_string(mapping.link_paths.size()) +
             " != link count " + std::to_string(venv.link_count()));
    return report;
  }
  for (std::size_t g = 0; g < mapping.guest_host.size(); ++g) {
    const NodeId h = mapping.guest_host[g];
    if (!h.valid() || h.index() >= cluster.node_count()) {
      fail(ConstraintId::kGuestMappedOnce,
           "guest " + std::to_string(g) + " unmapped or out of range");
    } else if (!cluster.is_host(h)) {
      fail(ConstraintId::kGuestOnHostNode,
           "guest " + std::to_string(g) + " mapped to switch node " +
               std::to_string(h.value()));
    }
  }
  if (!report.ok()) return report;

  // --- Eqs. 2-3: per-host memory and storage.
  std::vector<double> mem_used(cluster.node_count(), 0.0);
  std::vector<double> stor_used(cluster.node_count(), 0.0);
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const auto& req = venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
    const NodeId h = mapping.guest_host[g];
    mem_used[h.index()] += req.mem_mb;
    stor_used[h.index()] += req.stor_gb;
  }
  for (const NodeId h : cluster.hosts()) {
    const auto& cap = cluster.capacity(h);
    if (mem_used[h.index()] > cap.mem_mb + kEps) {
      fail(ConstraintId::kMemoryCapacity,
           "host " + std::to_string(h.value()) + ": " +
               std::to_string(mem_used[h.index()]) + " MB > " +
               std::to_string(cap.mem_mb) + " MB");
    }
    if (stor_used[h.index()] > cap.stor_gb + kEps) {
      fail(ConstraintId::kStorageCapacity,
           "host " + std::to_string(h.value()) + ": " +
               std::to_string(stor_used[h.index()]) + " GB > " +
               std::to_string(cap.stor_gb) + " GB");
    }
  }

  // --- Eqs. 4-9: per-link paths and aggregate bandwidth.
  const graph::Graph& g = cluster.graph();
  std::vector<double> bw_used(cluster.link_count(), 0.0);
  for (std::size_t li = 0; li < venv.link_count(); ++li) {
    const auto l = VirtLinkId{static_cast<VirtLinkId::underlying_type>(li)};
    const auto ep = venv.endpoints(l);
    const NodeId s = mapping.guest_host[ep.src.index()];
    const NodeId d = mapping.guest_host[ep.dst.index()];
    const graph::Path& path = mapping.link_paths[li];

    if (s == d) {
      // Intra-host: the only valid path is the empty one (bw = inf,
      // lat = 0, Section 3.2).
      if (!path.empty()) {
        fail(ConstraintId::kPathEndpoints,
             "virtual link " + std::to_string(li) +
                 ": co-located endpoints but non-empty path");
      }
      continue;
    }
    if (path.empty()) {
      fail(ConstraintId::kPathEndpoints,
           "virtual link " + std::to_string(li) +
               ": endpoints on different hosts but empty path");
      continue;
    }
    // Eqs. 4-7 via the graph-level walk check: starts at s, chains, is
    // loop-free, ends at d.  Accept the path in either orientation — the
    // links are undirected.
    if (!graph::path_is_simple(g, s, d, path) &&
        !graph::path_is_simple(g, d, s, path)) {
      // Distinguish the failure cause for diagnostics.
      const auto nodes_fwd = graph::path_nodes(g, s, path);
      fail(ConstraintId::kPathChains,
           "virtual link " + std::to_string(li) +
               ": path is not a simple s->d walk (reached node " +
               std::to_string(nodes_fwd.back().value()) + ", wanted " +
               std::to_string(d.value()) + ")");
      continue;
    }

    // Eq. 8: accumulated latency within the demand.
    double lat = 0.0;
    for (const EdgeId e : path) lat += cluster.link(e).latency_ms;
    if (lat > venv.link(l).max_latency_ms + kEps) {
      fail(ConstraintId::kLatencyBound,
           "virtual link " + std::to_string(li) + ": latency " +
               std::to_string(lat) + " ms > " +
               std::to_string(venv.link(l).max_latency_ms) + " ms");
    }
    for (const EdgeId e : path) {
      bw_used[e.index()] += venv.link(l).bandwidth_mbps;
    }
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    if (bw_used[e] > cluster.link(id).bandwidth_mbps + kEps) {
      fail(ConstraintId::kBandwidthCapacity,
           "physical link " + std::to_string(e) + ": " +
               std::to_string(bw_used[e]) + " Mbps > " +
               std::to_string(cluster.link(id).bandwidth_mbps) + " Mbps");
    }
  }
  return report;
}

}  // namespace hmn::core
