// Pluggable objective functions — the paper's future work (Section 6):
// "heuristics for different optimization goals can be developed.  For
// example, one could be interested in a mapping whose goal is to minimize
// the amount of hosts used in each emulation."
//
// An ObjectiveFunction scores a complete mapping; lower is better for every
// objective in the library, so the heuristic pool can compare them
// uniformly.
#pragma once

#include <memory>
#include <string>

#include "core/mapping.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::extensions {

class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Scores a complete mapping; lower is better.
  [[nodiscard]] virtual double evaluate(
      const model::PhysicalCluster& cluster,
      const model::VirtualEnvironment& venv,
      const core::Mapping& mapping) const = 0;
};

/// The paper's Eq. 10: population standard deviation of residual CPU.
class LoadBalanceObjective final : public ObjectiveFunction {
 public:
  [[nodiscard]] std::string name() const override { return "load-balance"; }
  [[nodiscard]] double evaluate(const model::PhysicalCluster& cluster,
                                const model::VirtualEnvironment& venv,
                                const core::Mapping& mapping) const override;
};

/// Number of distinct hosts used — the consolidation goal of Section 6.
class MinHostsObjective final : public ObjectiveFunction {
 public:
  [[nodiscard]] std::string name() const override { return "min-hosts"; }
  [[nodiscard]] double evaluate(const model::PhysicalCluster& cluster,
                                const model::VirtualEnvironment& venv,
                                const core::Mapping& mapping) const override;
};

/// Total physical bandwidth consumed: sum over virtual links of
/// vbw x path-hops.  Rewards co-location and short paths.
class NetworkFootprintObjective final : public ObjectiveFunction {
 public:
  [[nodiscard]] std::string name() const override {
    return "network-footprint";
  }
  [[nodiscard]] double evaluate(const model::PhysicalCluster& cluster,
                                const model::VirtualEnvironment& venv,
                                const core::Mapping& mapping) const override;
};

using ObjectivePtr = std::unique_ptr<ObjectiveFunction>;

}  // namespace hmn::extensions
