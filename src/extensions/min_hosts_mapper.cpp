#include "extensions/min_hosts_mapper.h"

#include <algorithm>

#include "core/residual.h"
#include "util/timer.h"

namespace hmn::extensions {

core::MapOutcome MinHostsMapper::map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t /*seed*/) const {
  using core::MapErrorCode;
  using core::MapOutcome;

  const util::Timer total;
  if (cluster.host_count() == 0) {
    return MapOutcome::failure(MapErrorCode::kInvalidInput,
                               "cluster has no hosts");
  }
  core::ResidualState state(cluster);

  // Hosts in descending capacity (memory as primary bin dimension), so the
  // largest bins open first and fewer bins open overall.
  util::Timer stage;
  std::vector<NodeId> bins = cluster.hosts();
  std::sort(bins.begin(), bins.end(), [&](NodeId a, NodeId b) {
    const double ma = cluster.capacity(a).mem_mb;
    const double mb = cluster.capacity(b).mem_mb;
    // hmn-lint: allow(float-eq, comparator tie-break; an epsilon here would break strict weak ordering)
    if (ma != mb) return ma > mb;
    return a < b;
  });

  // Guests in descending memory footprint (first-fit-decreasing).
  std::vector<GuestId> order;
  order.reserve(venv.guest_count());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    order.push_back(GuestId{static_cast<GuestId::underlying_type>(g)});
  }
  std::sort(order.begin(), order.end(), [&](GuestId a, GuestId b) {
    const double ma = venv.guest(a).mem_mb;
    const double mb = venv.guest(b).mem_mb;
    // hmn-lint: allow(float-eq, comparator tie-break; an epsilon here would break strict weak ordering)
    if (ma != mb) return ma > mb;
    return a < b;
  });

  std::vector<NodeId> placement(venv.guest_count(), NodeId::invalid());
  std::size_t open = 0;  // bins [0, open) already hold at least one guest
  for (const GuestId g : order) {
    const auto& req = venv.guest(g);
    NodeId chosen = NodeId::invalid();
    for (std::size_t b = 0; b < open; ++b) {
      if (state.fits(req, bins[b])) {
        chosen = bins[b];
        break;
      }
    }
    while (!chosen.valid() && open < bins.size()) {
      if (state.fits(req, bins[open])) chosen = bins[open];
      ++open;
    }
    if (!chosen.valid()) {
      MapOutcome out = MapOutcome::failure(
          MapErrorCode::kHostingFailed,
          "no host fits guest " + std::to_string(g.value()));
      out.stats.hosting_seconds = stage.elapsed_seconds();
      out.stats.total_seconds = total.elapsed_seconds();
      return out;
    }
    state.place(req, chosen);
    placement[g.index()] = chosen;
  }
  const double hosting_seconds = stage.elapsed_seconds();

  stage.restart();
  core::NetworkingResult routed =
      core::run_networking(venv, state, placement, opts_.networking);
  MapOutcome out;
  out.stats.hosting_seconds = hosting_seconds;
  out.stats.networking_seconds = stage.elapsed_seconds();
  if (!routed.ok) {
    out.error = MapErrorCode::kNetworkingFailed;
    out.detail = routed.detail;
    out.stats.total_seconds = total.elapsed_seconds();
    return out;
  }
  core::Mapping mapping;
  mapping.guest_host = std::move(placement);
  mapping.link_paths = std::move(routed.link_paths);
  out.mapping = std::move(mapping);
  out.stats.links_routed = routed.links_routed;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace hmn::extensions
