// Heuristic pool — the paper's future-work vision (Section 6): "offer to
// the emulator a pool of different heuristics that might be selected
// according to the emulated scenario."
//
// The pool holds any number of Mappers and supports two selection modes:
//   * first_success: try mappers in registration order, return the first
//     valid mapping (a fallback chain: HMN, then RA when HMN fails, ...);
//   * best_by: run every mapper and return the valid mapping with the best
//     (lowest) score under a supplied ObjectiveFunction.
#pragma once

#include <vector>

#include "core/mapper.h"
#include "extensions/objectives.h"

namespace hmn::extensions {

class HeuristicPool {
 public:
  /// Adds a mapper to the pool (order defines first_success priority).
  void add(core::MapperPtr mapper);

  /// Prepends a mapper, giving it the highest first_success priority.  The
  /// placement router uses this to front a large shard's pool with the
  /// multilevel mapper while keeping the flat chain as the fallback.
  void add_front(core::MapperPtr mapper);

  /// Moves the mappers out, leaving the pool empty.  Lets a decorator
  /// (extensions::replica_aware) rewrap every entry while preserving
  /// registration order.
  [[nodiscard]] std::vector<core::MapperPtr> release() {
    return std::move(mappers_);
  }

  [[nodiscard]] std::size_t size() const { return mappers_.size(); }
  [[nodiscard]] const core::Mapper& at(std::size_t i) const {
    return *mappers_[i];
  }

  /// First mapper (in registration order) that produces a valid mapping.
  /// Fails with the *last* mapper's error when all fail.
  [[nodiscard]] core::MapOutcome first_success(
      const model::PhysicalCluster& cluster,
      const model::VirtualEnvironment& venv, std::uint64_t seed) const;

  /// Runs every mapper; returns the valid mapping minimizing `objective`.
  /// The winning mapper's name is reported through `winner` when non-null.
  [[nodiscard]] core::MapOutcome best_by(
      const model::PhysicalCluster& cluster,
      const model::VirtualEnvironment& venv, std::uint64_t seed,
      const ObjectiveFunction& objective, std::string* winner = nullptr) const;

 private:
  std::vector<core::MapperPtr> mappers_;
};

/// The default pool: HMN first, then RA as a fallback (the combination the
/// paper's evaluation suggests: HMN for quality, random+A*Prune for the
/// tight instances where affinity hosting fails).
[[nodiscard]] HeuristicPool default_pool();

}  // namespace hmn::extensions
