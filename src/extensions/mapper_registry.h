// Name-based mapper factory — the single place tools and spec files
// resolve mapper names ("hmn", "ra", "minhosts", ...) into instances.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/mapper.h"

namespace hmn::extensions {

struct RegistryOptions {
  /// Retry budget for the randomized baselines (R, RA, HS).
  std::size_t max_tries = 1000;
};

/// Known names: "hmn", "hn" (HMN without migration), "r", "ra", "hs",
/// "minhosts", "greedyrank".  Case-sensitive.  Returns nullptr for an
/// unknown name.
[[nodiscard]] core::MapperPtr make_named_mapper(std::string_view name,
                                                const RegistryOptions& opts = {});

/// The names make_named_mapper accepts, for help texts and validation.
[[nodiscard]] std::vector<std::string> known_mapper_names();

}  // namespace hmn::extensions
