#include "extensions/mapper_registry.h"

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"
#include "extensions/greedy_rank_mapper.h"
#include "extensions/min_hosts_mapper.h"

namespace hmn::extensions {

core::MapperPtr make_named_mapper(std::string_view name,
                                  const RegistryOptions& opts) {
  baselines::BaselineOptions baseline;
  baseline.max_tries = opts.max_tries;
  if (name == "hmn") return std::make_unique<core::HmnMapper>();
  if (name == "hn") {
    core::HmnOptions o;
    o.enable_migration = false;
    return std::make_unique<core::HmnMapper>(o);
  }
  if (name == "r") return std::make_unique<baselines::RandomDfsMapper>(baseline);
  if (name == "ra") {
    return std::make_unique<baselines::RandomAStarMapper>(baseline);
  }
  if (name == "hs") {
    return std::make_unique<baselines::HostingSearchMapper>(baseline);
  }
  if (name == "minhosts") return std::make_unique<MinHostsMapper>();
  if (name == "greedyrank") return std::make_unique<GreedyRankMapper>();
  return nullptr;
}

std::vector<std::string> known_mapper_names() {
  return {"hmn", "hn", "r", "ra", "hs", "minhosts", "greedyrank"};
}

}  // namespace hmn::extensions
