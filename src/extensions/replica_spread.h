// Replica anti-affinity as a mapper decorator.
//
// PAPERS.md (*Hardness of Virtual Network Embedding with Replica
// Selection*) motivates tenants that declare k-of-n replica groups; the
// value of a replica is exactly its failure independence, so co-locating
// two replicas inside one failure domain silently voids the redundancy the
// tenant paid for.  ReplicaSpreadMapper wraps ANY inner mapper (flat HMN,
// RA, the multilevel pyramid) and post-processes its placement: for every
// declared replica group it greedily moves members onto hosts that
// minimize how many group-mates already share the destination's blast
// domain (the switch that takes it down) and power domain (the PDU that
// feeds it), then re-routes all virtual links over the new placement.
//
// The decorator is byte-invisible when it has nothing to do: a venv with
// no replica groups, or a cluster without a FailureDomains annotation,
// returns the inner outcome untouched.  Any failure in the spread or
// re-route path falls back to the inner mapping — replicas degrade to the
// base placement, never to a rejection the inner mapper didn't produce.
#pragma once

#include "core/mapper.h"
#include "extensions/heuristic_pool.h"

namespace hmn::extensions {

class ReplicaSpreadMapper : public core::Mapper {
 public:
  explicit ReplicaSpreadMapper(core::MapperPtr inner);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  core::MapperPtr inner_;
};

/// Wraps every mapper of `pool` in a ReplicaSpreadMapper, preserving
/// first_success order.  Venvs without replica groups map byte-identically
/// to the unwrapped pool.
[[nodiscard]] HeuristicPool replica_aware(HeuristicPool pool);

}  // namespace hmn::extensions
