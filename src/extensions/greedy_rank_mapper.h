// Greedy node-ranking mapper — the classic virtual network embedding (VNE)
// baseline in the style of Yu et al. (SIGCOMM CCR 2008), adapted to the
// paper's problem model.
//
// Node stage: guests are ranked by resource demand (vproc x total incident
// vbw) and greedily assigned, heaviest first, to the host maximizing an
// availability rank: residual CPU x total residual bandwidth of the host's
// incident physical links.  Link stage: the modified A*Prune, as in HMN.
//
// Included because the problem this paper formalizes is an instance of
// VNE, and a downstream user comparing mapping strategies will expect the
// canonical greedy-rank baseline next to HMN (see DESIGN.md's novelty
// notes).  Bench E8 adds it to the extension comparison.
#pragma once

#include "core/mapper.h"
#include "core/networking.h"

namespace hmn::extensions {

struct GreedyRankOptions {
  core::NetworkingOptions networking;
};

class GreedyRankMapper final : public core::Mapper {
 public:
  explicit GreedyRankMapper(GreedyRankOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "GreedyRank"; }
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  GreedyRankOptions opts_;
};

}  // namespace hmn::extensions
