#include "extensions/objectives.h"

#include <set>

#include "core/objective.h"

namespace hmn::extensions {

double LoadBalanceObjective::evaluate(const model::PhysicalCluster& cluster,
                                      const model::VirtualEnvironment& venv,
                                      const core::Mapping& mapping) const {
  return core::load_balance_factor(cluster, venv, mapping);
}

double MinHostsObjective::evaluate(const model::PhysicalCluster&,
                                   const model::VirtualEnvironment&,
                                   const core::Mapping& mapping) const {
  std::set<NodeId> used;
  for (const NodeId h : mapping.guest_host) used.insert(h);
  return static_cast<double>(used.size());
}

double NetworkFootprintObjective::evaluate(
    const model::PhysicalCluster&, const model::VirtualEnvironment& venv,
    const core::Mapping& mapping) const {
  double total = 0.0;
  for (std::size_t l = 0; l < mapping.link_paths.size(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    total += venv.link(id).bandwidth_mbps *
             static_cast<double>(mapping.link_paths[l].size());
  }
  return total;
}

}  // namespace hmn::extensions
