// Consolidating mapper — an HMN variant for the paper's Section 6
// alternative objective: use as few hosts as possible (e.g. so the rest of
// the cluster stays free for other testers), while still respecting every
// constraint of Section 3.2.
//
// Placement is first-fit-decreasing bin packing: guests sorted by
// descending memory footprint go to the first already-open host that fits
// (hosts opened in descending capacity order, so the big bins fill first).
// Link affinity still matters for feasibility — after packing, the standard
// Networking stage (modified A*Prune) routes the virtual links.
#pragma once

#include "core/mapper.h"
#include "core/networking.h"

namespace hmn::extensions {

struct MinHostsOptions {
  core::NetworkingOptions networking;
};

class MinHostsMapper final : public core::Mapper {
 public:
  explicit MinHostsMapper(MinHostsOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "MinHosts"; }
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

 private:
  MinHostsOptions opts_;
};

}  // namespace hmn::extensions
