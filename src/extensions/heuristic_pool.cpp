#include "extensions/heuristic_pool.h"

#include <limits>

#include "baselines/composite_mappers.h"
#include "core/hmn_mapper.h"

namespace hmn::extensions {

void HeuristicPool::add(core::MapperPtr mapper) {
  mappers_.push_back(std::move(mapper));
}

void HeuristicPool::add_front(core::MapperPtr mapper) {
  mappers_.insert(mappers_.begin(), std::move(mapper));
}

core::MapOutcome HeuristicPool::first_success(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, std::uint64_t seed) const {
  core::MapOutcome last = core::MapOutcome::failure(
      core::MapErrorCode::kInvalidInput, "empty heuristic pool");
  for (const auto& mapper : mappers_) {
    last = mapper->map(cluster, venv, seed);
    if (last.ok()) return last;
  }
  return last;
}

core::MapOutcome HeuristicPool::best_by(const model::PhysicalCluster& cluster,
                                        const model::VirtualEnvironment& venv,
                                        std::uint64_t seed,
                                        const ObjectiveFunction& objective,
                                        std::string* winner) const {
  core::MapOutcome best = core::MapOutcome::failure(
      core::MapErrorCode::kInvalidInput, "empty heuristic pool");
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& mapper : mappers_) {
    core::MapOutcome outcome = mapper->map(cluster, venv, seed);
    if (!outcome.ok()) {
      if (!best.ok()) best = std::move(outcome);  // keep an error to report
      continue;
    }
    const double score = objective.evaluate(cluster, venv, *outcome.mapping);
    if (score < best_score) {
      best_score = score;
      best = std::move(outcome);
      if (winner != nullptr) *winner = mapper->name();
    }
  }
  return best;
}

HeuristicPool default_pool() {
  HeuristicPool pool;
  pool.add(std::make_unique<core::HmnMapper>());
  pool.add(std::make_unique<baselines::RandomAStarMapper>(
      baselines::BaselineOptions{.max_tries = 100, .dfs_max_expansions = 0}));
  return pool;
}

}  // namespace hmn::extensions
