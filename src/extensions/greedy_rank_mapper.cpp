#include "extensions/greedy_rank_mapper.h"

#include <algorithm>

#include "core/residual.h"
#include "util/timer.h"

namespace hmn::extensions {
namespace {

/// Availability rank of a host: residual CPU x (1 + residual bandwidth of
/// incident physical links).  The bandwidth factor steers guests toward
/// hosts whose uplinks still have headroom, the signature of the
/// greedy-VNE family.
double host_rank(const core::ResidualState& state, NodeId host) {
  double incident_bw = 0.0;
  for (const graph::Adjacency& adj :
       state.cluster().graph().neighbors(host)) {
    incident_bw += state.residual_bw(adj.edge);
  }
  return std::max(0.0, state.residual_proc(host)) * (1.0 + incident_bw);
}

/// Demand rank of a guest: vproc x (1 + total incident virtual bandwidth).
double guest_rank(const model::VirtualEnvironment& venv, GuestId g) {
  double incident_bw = 0.0;
  for (const VirtLinkId l : venv.links_of(g)) {
    incident_bw += venv.link(l).bandwidth_mbps;
  }
  return venv.guest(g).proc_mips * (1.0 + incident_bw);
}

}  // namespace

core::MapOutcome GreedyRankMapper::map(const model::PhysicalCluster& cluster,
                                       const model::VirtualEnvironment& venv,
                                       std::uint64_t /*seed*/) const {
  using core::MapErrorCode;
  using core::MapOutcome;

  const util::Timer total;
  if (cluster.host_count() == 0) {
    return MapOutcome::failure(MapErrorCode::kInvalidInput,
                               "cluster has no hosts");
  }
  core::ResidualState state(cluster);

  // Guests in descending demand rank.
  util::Timer stage;
  std::vector<GuestId> order;
  order.reserve(venv.guest_count());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    order.push_back(GuestId{static_cast<GuestId::underlying_type>(g)});
  }
  std::stable_sort(order.begin(), order.end(), [&](GuestId a, GuestId b) {
    return guest_rank(venv, a) > guest_rank(venv, b);
  });

  std::vector<NodeId> placement(venv.guest_count(), NodeId::invalid());
  for (const GuestId g : order) {
    const auto& req = venv.guest(g);
    NodeId best = NodeId::invalid();
    double best_rank = -1.0;
    for (const NodeId h : cluster.hosts()) {
      if (!state.fits(req, h)) continue;
      const double rank = host_rank(state, h);
      if (rank > best_rank) {
        best_rank = rank;
        best = h;
      }
    }
    if (!best.valid()) {
      MapOutcome out = MapOutcome::failure(
          MapErrorCode::kHostingFailed,
          "no host fits guest " + std::to_string(g.value()));
      out.stats.hosting_seconds = stage.elapsed_seconds();
      out.stats.total_seconds = total.elapsed_seconds();
      return out;
    }
    state.place(req, best);
    placement[g.index()] = best;
  }
  const double hosting_seconds = stage.elapsed_seconds();

  stage.restart();
  core::NetworkingResult routed =
      core::run_networking(venv, state, placement, opts_.networking);
  MapOutcome out;
  out.stats.hosting_seconds = hosting_seconds;
  out.stats.networking_seconds = stage.elapsed_seconds();
  if (!routed.ok) {
    out.error = MapErrorCode::kNetworkingFailed;
    out.detail = routed.detail;
    out.stats.total_seconds = total.elapsed_seconds();
    return out;
  }
  core::Mapping mapping;
  mapping.guest_host = std::move(placement);
  mapping.link_paths = std::move(routed.link_paths);
  out.mapping = std::move(mapping);
  out.stats.links_routed = routed.links_routed;
  out.stats.total_seconds = total.elapsed_seconds();
  return out;
}

}  // namespace hmn::extensions
