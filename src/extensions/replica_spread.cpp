#include "extensions/replica_spread.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/networking.h"
#include "core/residual.h"

namespace hmn::extensions {
namespace {

using model::FailureDomains;

/// Largest real domain id in `ids` plus one (0 when every entry is kNone).
/// Domain ids are opaque labels — a shard cluster keeps its *parent's*
/// blast ids, which exceed the shard's node count — so the counters must
/// be sized by the labels actually present, not by node_count.
std::size_t id_bound(const std::vector<std::uint32_t>& ids) {
  std::size_t bound = 0;
  for (const std::uint32_t id : ids) {
    if (id != FailureDomains::kNone && id + 1u > bound) bound = id + 1u;
  }
  return bound;
}

/// Domain occupancy counters for one replica group, indexed by domain id.
struct DomainCounts {
  std::vector<std::uint32_t> blast;
  std::vector<std::uint32_t> power;

  explicit DomainCounts(const FailureDomains& fd)
      : blast(id_bound(fd.blast_domain), 0),
        power(id_bound(fd.power_domain), 0) {}

  void add(const FailureDomains& fd, NodeId host) {
    const std::uint32_t b = fd.blast_domain.empty()
                                ? FailureDomains::kNone
                                : fd.blast_domain[host.index()];
    const std::uint32_t p = fd.power_domain.empty()
                                ? FailureDomains::kNone
                                : fd.power_domain[host.index()];
    if (b != FailureDomains::kNone) ++blast[b];
    if (p != FailureDomains::kNone) ++power[p];
  }

  void remove(const FailureDomains& fd, NodeId host) {
    const std::uint32_t b = fd.blast_domain.empty()
                                ? FailureDomains::kNone
                                : fd.blast_domain[host.index()];
    const std::uint32_t p = fd.power_domain.empty()
                                ? FailureDomains::kNone
                                : fd.power_domain[host.index()];
    if (b != FailureDomains::kNone) --blast[b];
    if (p != FailureDomains::kNone) --power[p];
  }

  /// Group-mates already sharing this host's blast or power domain — the
  /// quantity anti-affinity minimizes.
  [[nodiscard]] std::uint32_t cost(const FailureDomains& fd,
                                   NodeId host) const {
    std::uint32_t c = 0;
    if (!fd.blast_domain.empty() &&
        fd.blast_domain[host.index()] != FailureDomains::kNone) {
      c += blast[fd.blast_domain[host.index()]];
    }
    if (!fd.power_domain.empty() &&
        fd.power_domain[host.index()] != FailureDomains::kNone) {
      c += power[fd.power_domain[host.index()]];
    }
    return c;
  }
};

}  // namespace

ReplicaSpreadMapper::ReplicaSpreadMapper(core::MapperPtr inner)
    : inner_(std::move(inner)) {}

std::string ReplicaSpreadMapper::name() const {
  return "replica-spread(" + inner_->name() + ")";
}

core::MapOutcome ReplicaSpreadMapper::map(
    const model::PhysicalCluster& cluster,
    const model::VirtualEnvironment& venv, std::uint64_t seed) const {
  core::MapOutcome base = inner_->map(cluster, venv, seed);
  if (!base.ok() || venv.replica_group_count() == 0 ||
      cluster.failure_domains().empty()) {
    return base;  // byte-identical pass-through
  }

  const FailureDomains& fd = cluster.failure_domains();
  std::vector<NodeId> guest_host = base.mapping->guest_host;

  // Residual hard-constraint (mem/stor) bookkeeping over the placement
  // alone; links are re-routed from scratch afterwards, so bandwidth is
  // not tracked here.
  core::ResidualState state(cluster);
  for (std::size_t g = 0; g < guest_host.size(); ++g) {
    state.place(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
                guest_host[g]);
  }

  bool moved = false;
  for (const model::ReplicaGroup& group : venv.replica_groups()) {
    DomainCounts counts(fd);
    for (const GuestId m : group.members) {
      counts.add(fd, guest_host[m.index()]);
    }
    // One greedy pass in member order: each member moves to the fitting
    // host with strictly lower group-domain sharing, preferring the most
    // spare CPU and then the lowest node id — all deterministic.
    for (const GuestId m : group.members) {
      const NodeId from = guest_host[m.index()];
      counts.remove(fd, from);
      const model::GuestRequirements& req = venv.guest(m);
      NodeId best = from;
      std::uint32_t best_cost = counts.cost(fd, from);
      for (const NodeId h : cluster.hosts()) {
        if (h == from || !state.fits(req, h)) continue;
        const std::uint32_t c = counts.cost(fd, h);
        if (c < best_cost ||
            (c == best_cost && best != from &&
             (state.residual_proc(h) > state.residual_proc(best) ||
              (state.residual_proc(h) == state.residual_proc(best) &&
               h.value() < best.value())))) {
          best = h;
          best_cost = c;
        }
      }
      if (best != from) {
        state.remove(req, from);
        state.place(req, best);
        guest_host[m.index()] = best;
        moved = true;
      }
      counts.add(fd, guest_host[m.index()]);
    }
  }
  if (!moved) return base;

  // Re-route every virtual link over the adjusted placement.  Any failure
  // falls back to the inner mapping: the spread must never reject an
  // instance the inner mapper accepted.
  core::ResidualState route_state(cluster);
  for (std::size_t g = 0; g < guest_host.size(); ++g) {
    route_state.place(
        venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
        guest_host[g]);
  }
  core::NetworkingResult net =
      core::run_networking(venv, route_state, guest_host);
  if (!net.ok) return base;

  core::MapOutcome out = std::move(base);
  out.mapping->guest_host = std::move(guest_host);
  out.mapping->link_paths = std::move(net.link_paths);
  out.stats.links_routed = net.links_routed;
  return out;
}

HeuristicPool replica_aware(HeuristicPool pool) {
  HeuristicPool out;
  for (core::MapperPtr& m : pool.release()) {
    out.add(std::make_unique<ReplicaSpreadMapper>(std::move(m)));
  }
  return out;
}

}  // namespace hmn::extensions
