// Reusable graph-contraction bookkeeping over a physical cluster.
//
// Two consumers share this machinery instead of carrying parallel
// implementations:
//   * topology::partition_cluster contracts the fabric into rack units
//     before its CPU-balanced shard accretion;
//   * the multilevel mapper (src/multilevel) stacks contractions
//     recursively into a coarsening pyramid and needs the node/edge remap
//     tables to project mappings back down (uncontract).
//
// A Contraction is one level of grouping: every fine node lands in exactly
// one group, every fine edge is either internal to a group or contributes
// to exactly one coarse edge between two groups.  All tables are ordered
// and index-based, so iterating them is deterministic by construction (the
// hmn-lint unordered-iter rule applies to this module).
#pragma once

#include <cstddef>
#include <vector>

#include "model/physical_cluster.h"

namespace hmn::topology {

struct Contraction {
  /// "No group" / "no coarse edge" sentinel.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// fine node -> group index (dense, [0, group_count())).
  std::vector<std::size_t> group_of_node;
  /// group -> fine nodes, ascending.  A partition of the fine node set.
  std::vector<std::vector<NodeId>> members;
  /// group -> aggregate host CPU of its members.
  std::vector<double> group_proc_mips;
  /// group -> number of host-role members.
  std::vector<std::size_t> group_hosts;
  /// group adjacency: sorted, deduplicated group indices.
  std::vector<std::vector<std::size_t>> adjacency;

  /// One coarse edge per adjacent group pair (a < b), ordered by (a, b).
  struct CoarseEdge {
    std::size_t a = 0;
    std::size_t b = 0;
    /// The crossing fine edges this coarse edge aggregates, ascending.
    std::vector<EdgeId> fine_edges;
  };
  std::vector<CoarseEdge> coarse_edges;
  /// fine edge -> coarse edge index, or npos for group-internal edges.
  std::vector<std::size_t> coarse_edge_of;

  [[nodiscard]] std::size_t group_count() const { return members.size(); }
};

/// Builds the full bookkeeping for a given node grouping.  `group_of_node`
/// must assign every fine node a group in [0, group_count).
[[nodiscard]] Contraction make_contraction(
    const model::PhysicalCluster& fine, std::vector<std::size_t> group_of_node,
    std::size_t group_count);

/// Rack-unit contraction (the partitioner's historical rule, kept
/// bit-identical): switches seed groups in ascending node order; each host
/// follows its lowest-id adjacent switch; hosts with no adjacent switch
/// (host-only fabrics) become their own group.
[[nodiscard]] Contraction contract_rack_units(
    const model::PhysicalCluster& fine);

/// Heavy-edge matching contraction: scanning nodes in ascending order, each
/// unmatched node pairs with the unmatched neighbor connected by the
/// largest aggregate bandwidth (lowest id on ties).  Unmatchable nodes keep
/// their own group, so the result is always a valid contraction and always
/// shrinks a graph that has at least one edge between unmatched nodes.
/// Groups are numbered by ascending lowest member id.
[[nodiscard]] Contraction contract_heavy_matching(
    const model::PhysicalCluster& fine);

/// Materializes the coarse cluster of a contraction: group i becomes node
/// i, a host-role node iff the group contains a host, with capacities
/// summed over member hosts.  Each coarse edge becomes one trunk link with
/// the crossing fine links' bandwidth summed and latency minimized (the
/// optimistic bound: a coarse-level route is never penalized more than the
/// best fine-level route underneath it).
[[nodiscard]] model::PhysicalCluster coarse_cluster(
    const model::PhysicalCluster& fine, const Contraction& c);

/// An induced subcluster plus remap tables back to the parent: the shared
/// materialization used by partition_cluster's shards and the multilevel
/// refiner's per-group / per-region subproblems.  Local node and edge ids
/// ascend in parent-id order, so both tables are strictly increasing.
struct SubCluster {
  model::PhysicalCluster cluster;
  std::vector<NodeId> to_parent_node;  // local node id -> parent node id
  std::vector<EdgeId> to_parent_edge;  // local edge id -> parent edge id
};

/// Builds the subcluster induced by `nodes` (parent node ids, ascending,
/// no duplicates).  Capacities and link properties are copied verbatim.
[[nodiscard]] SubCluster induced_subcluster(
    const model::PhysicalCluster& parent, const std::vector<NodeId>& nodes);

}  // namespace hmn::topology
