#include "topology/partition.h"

#include <algorithm>
#include <limits>
#include <set>

#include "topology/contraction.h"

namespace hmn::topology {
namespace {

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

NodeId nid(std::size_t i) {
  return NodeId{static_cast<NodeId::underlying_type>(i)};
}

EdgeId eid(std::size_t i) {
  return EdgeId{static_cast<EdgeId::underlying_type>(i)};
}

}  // namespace

ClusterPartition partition_cluster(const model::PhysicalCluster& parent,
                                   std::size_t k) {
  ClusterPartition out;
  const graph::Graph& g = parent.graph();
  const std::size_t n = g.node_count();
  if (n == 0) return out;

  // Rack units come from the shared contraction machinery; the historical
  // numbering (switches first, then switchless hosts) is preserved there,
  // so partitions are byte-identical to the pre-Contraction implementation.
  const Contraction units = contract_rack_units(parent);
  const std::size_t unit_count = units.group_count();
  k = std::clamp<std::size_t>(k, 1, unit_count);

  // Greedy balanced accretion: grow one shard at a time by absorbing the
  // lowest-id frontier unit until the shard holds an equal share of the
  // CPU still unassigned.  Growing only through the frontier keeps every
  // shard connected; when a shard walls itself in (the unassigned region
  // disconnected), the shard simply closes and the next seed starts a new
  // one — any surplus beyond k is merged away below.
  double remaining_cpu = 0.0;
  for (const double c : units.group_proc_mips) remaining_cpu += c;

  std::vector<std::size_t> shard_of_unit(unit_count, kUnassigned);
  std::vector<std::vector<std::size_t>> shard_units;
  std::size_t assigned = 0;
  std::size_t next_seed = 0;
  while (assigned < unit_count) {
    const std::size_t shards_left =
        k > shard_units.size() ? k - shard_units.size() : 1;
    const double quota = remaining_cpu / static_cast<double>(shards_left);
    while (shard_of_unit[next_seed] != kUnassigned) ++next_seed;

    const std::size_t s = shard_units.size();
    shard_units.emplace_back();
    std::set<std::size_t> frontier{next_seed};
    double cpu = 0.0;
    while (!frontier.empty()) {
      const std::size_t unit = *frontier.begin();
      frontier.erase(frontier.begin());
      if (shard_of_unit[unit] != kUnassigned) continue;
      shard_of_unit[unit] = s;
      shard_units[s].push_back(unit);
      cpu += units.group_proc_mips[unit];
      remaining_cpu -= units.group_proc_mips[unit];
      ++assigned;
      if (cpu >= quota && shard_units.size() < k && assigned < unit_count) {
        break;
      }
      for (const std::size_t v : units.adjacency[unit]) {
        if (shard_of_unit[v] == kUnassigned) frontier.insert(v);
      }
    }
  }

  // Merge passes.  merge(a <- b): every unit of b joins a; valid only for
  // adjacent shards, so the union stays connected.
  auto shard_cpu = [&](std::size_t s) {
    double c = 0.0;
    for (const std::size_t unit : shard_units[s]) c += units.group_proc_mips[unit];
    return c;
  };
  auto shard_hosts = [&](std::size_t s) {
    std::size_t h = 0;
    for (const std::size_t unit : shard_units[s]) h += units.group_hosts[unit];
    return h;
  };
  auto neighbors_of_shard = [&](std::size_t s) {
    std::set<std::size_t> res;
    for (const std::size_t unit : shard_units[s]) {
      for (const std::size_t v : units.adjacency[unit]) {
        const std::size_t other = shard_of_unit[v];
        if (other != s) res.insert(other);
      }
    }
    return res;
  };
  auto merge_into = [&](std::size_t into, std::size_t from) {
    for (const std::size_t unit : shard_units[from]) {
      shard_of_unit[unit] = into;
    }
    auto& dst = shard_units[into];
    dst.insert(dst.end(), shard_units[from].begin(), shard_units[from].end());
    shard_units.erase(shard_units.begin() +
                      static_cast<std::ptrdiff_t>(from));
    for (auto& owner : shard_of_unit) {
      if (owner > from && owner != kUnassigned) --owner;
    }
  };

  // (a) fold surplus shards (disconnection fallout) into their lightest
  // neighbor; (b) fold host-less shards (pure switch groups) into a
  // neighbor so every shard can run guests.  Both loops are deterministic:
  // lowest candidate shard first, lightest-then-lowest neighbor as target.
  auto lightest_neighbor = [&](std::size_t s) {
    std::size_t best = kUnassigned;
    double best_cpu = 0.0;
    for (const std::size_t nb : neighbors_of_shard(s)) {
      const double c = shard_cpu(nb);
      if (best == kUnassigned || c < best_cpu ||
          // hmn-lint: allow(float-eq, deterministic shard tie-break on exact equal CPU; epsilon would make the winner order-dependent)
          (c == best_cpu && nb < best)) {
        best = nb;
        best_cpu = c;
      }
    }
    return best;
  };
  while (shard_units.size() > k) {
    // Lightest shard (lowest index on ties) is the merge candidate.
    std::size_t victim = 0;
    for (std::size_t s = 1; s < shard_units.size(); ++s) {
      if (shard_cpu(s) < shard_cpu(victim)) victim = s;
    }
    const std::size_t target = lightest_neighbor(victim);
    if (target == kUnassigned) break;  // isolated component: keep it
    merge_into(target, victim);
  }
  for (std::size_t s = 0; s < shard_units.size() && shard_units.size() > 1;) {
    if (shard_hosts(s) > 0) {
      ++s;
      continue;
    }
    const std::size_t target = lightest_neighbor(s);
    if (target == kUnassigned) {
      ++s;  // isolated switch island: nothing can absorb it
      continue;
    }
    merge_into(target, s);
    s = 0;  // indices shifted; rescan
  }

  // Materialize shards.  Local node ids ascend in parent order, so the
  // shard's host order is the parent's host order restricted to the shard.
  const std::size_t shard_count = shard_units.size();
  out.shard_of_node.assign(n, 0);
  out.local_node.assign(n, NodeId::invalid());
  for (std::size_t i = 0; i < n; ++i) {
    out.shard_of_node[i] = shard_of_unit[units.group_of_node[i]];
  }

  out.shards.resize(shard_count);
  std::vector<std::vector<std::size_t>> shard_nodes(shard_count);
  for (std::size_t i = 0; i < n; ++i) {
    shard_nodes[out.shard_of_node[i]].push_back(i);
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    ClusterShard& shard = out.shards[s];
    std::vector<NodeId> nodes;
    nodes.reserve(shard_nodes[s].size());
    for (const std::size_t i : shard_nodes[s]) nodes.push_back(nid(i));
    SubCluster sub = induced_subcluster(parent, nodes);
    shard.cluster = std::move(sub.cluster);
    shard.to_parent_node = std::move(sub.to_parent_node);
    shard.to_parent_edge = std::move(sub.to_parent_edge);
    for (std::size_t i = 0; i < shard.to_parent_node.size(); ++i) {
      out.local_node[shard.to_parent_node[i].index()] = nid(i);
    }
    for (const NodeId h : shard.cluster.hosts()) {
      shard.total_proc_mips += shard.cluster.capacity(h).proc_mips;
    }
    // Failure-domain annotation is copied verbatim (like capacities): each
    // local node keeps its parent's blast / power domain id, so per-shard
    // replica spreading sees the same domains a flat mapper would.
    if (!parent.failure_domains().empty()) {
      const model::FailureDomains& pd = parent.failure_domains();
      model::FailureDomains local;
      const std::size_t ln = shard.to_parent_node.size();
      local.blast_domain.resize(ln, model::FailureDomains::kNone);
      local.power_domain.resize(ln, model::FailureDomains::kNone);
      for (std::size_t i = 0; i < ln; ++i) {
        const std::size_t pi = shard.to_parent_node[i].index();
        if (pi < pd.blast_domain.size()) {
          local.blast_domain[i] = pd.blast_domain[pi];
        }
        if (pi < pd.power_domain.size()) {
          local.power_domain[i] = pd.power_domain[pi];
        }
      }
      shard.cluster.set_failure_domains(std::move(local));
    }
  }

  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(eid(e));
    if (out.shard_of_node[ep.a.index()] != out.shard_of_node[ep.b.index()]) {
      out.cut_edges.push_back(eid(e));
    }
  }
  return out;
}

}  // namespace hmn::topology
