// Fabric partitioning for sharded placement.
//
// A single flat TenancyManager admits each tenant against the *whole*
// cluster; bench E10 shows the Networking stage growing superlinearly with
// fabric size, so online admission latency cannot stay flat as the host
// count grows.  `partition_cluster` cuts a fabric into k shards along
// switch/rack boundaries — each shard a connected induced subcluster with
// its own PhysicalCluster plus id remap tables back to the parent fabric —
// so a placement router (orchestrator/router.h) can confine every tenant to
// one shard and admit independent arrivals in parallel.  This follows the
// decomposition argument of the VNet-embedding literature (see PAPERS.md):
// confining a request to a substrate partition trades a little placement
// freedom for per-request work that no longer scales with the full fabric.
//
// Partition rule:
//   * the fabric is first contracted into indivisible *rack units*: every
//     switch together with the hosts attached to it (a host adjacent to
//     several switches follows its lowest-id switch); in a host-only fabric
//     (torus, mesh, ...) every host is its own unit;
//   * units are grown into shards by breadth-first accretion, always
//     absorbing the lowest-id frontier unit, until the shard's aggregate
//     host CPU reaches an equal share of the remaining capacity — so shards
//     are balanced by CPU, not by node count, on heterogeneous hosts;
//   * a shard that ends up host-less (pure switches) is merged into an
//     adjacent shard, so every shard can run guests.
//
// The decomposition is deterministic: identical fabrics give identical
// partitions, independent of thread count or allocation order.
#pragma once

#include <cstddef>
#include <vector>

#include "model/physical_cluster.h"

namespace hmn::topology {

/// One shard: a connected induced subcluster plus remap tables back to the
/// parent fabric.  Local ids are dense and ascend in parent-id order, so
/// `to_parent_node` / `to_parent_edge` are strictly increasing.
struct ClusterShard {
  model::PhysicalCluster cluster;
  std::vector<NodeId> to_parent_node;  // local node id -> parent node id
  std::vector<EdgeId> to_parent_edge;  // local edge id -> parent edge id
  /// Aggregate host CPU of the shard (the balance weight).
  double total_proc_mips = 0.0;

  [[nodiscard]] NodeId parent_node(NodeId local) const {
    return to_parent_node[local.index()];
  }
  [[nodiscard]] EdgeId parent_edge(EdgeId local) const {
    return to_parent_edge[local.index()];
  }
};

struct ClusterPartition {
  std::vector<ClusterShard> shards;
  /// parent node id -> owning shard (every parent node lands in exactly one
  /// shard).
  std::vector<std::size_t> shard_of_node;
  /// parent node id -> local node id within its owning shard.
  std::vector<NodeId> local_node;
  /// Parent edges whose endpoints fall in different shards; they appear in
  /// no shard's cluster (a sharded router never routes across them).
  std::vector<EdgeId> cut_edges;

  [[nodiscard]] std::size_t shard_count() const { return shards.size(); }
};

/// Cuts `parent` into at most `k` shards (k is clamped to [1, rack units];
/// fewer shards may result when host-less shards are merged away).  Each
/// shard's cluster is a connected induced subcluster of a connected parent.
/// Capacities and link properties are copied verbatim from the parent.
[[nodiscard]] ClusterPartition partition_cluster(
    const model::PhysicalCluster& parent, std::size_t k);

}  // namespace hmn::topology
