#include "topology/topologies.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

namespace hmn::topology {
namespace {

NodeId nid(std::size_t i) {
  return NodeId{static_cast<NodeId::underlying_type>(i)};
}

Topology hosts_only(std::size_t n) {
  Topology t;
  t.graph = graph::Graph(n);
  t.role.assign(n, NodeRole::kHost);
  return t;
}

}  // namespace

Topology torus_2d(std::size_t rows, std::size_t cols) {
  assert(rows >= 1 && cols >= 1);
  Topology t = hosts_only(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Right and down neighbors with wraparound; a 1-wide dimension would
      // produce a self-loop or duplicate edge, so it is skipped.
      if (cols > 1) {
        const std::size_t c2 = (c + 1) % cols;
        if (c2 != c && !(cols == 2 && c == 1)) t.graph.add_edge(at(r, c), at(r, c2));
      }
      if (rows > 1) {
        const std::size_t r2 = (r + 1) % rows;
        if (r2 != r && !(rows == 2 && r == 1)) t.graph.add_edge(at(r, c), at(r2, c));
      }
    }
  }
  return t;
}

Topology switched(std::size_t hosts, std::size_t ports) {
  assert(ports >= 3 && "cascading needs at least host + two uplink ports");
  Topology t;
  t.graph = graph::Graph(hosts);
  t.role.assign(hosts, NodeRole::kHost);

  // Greedy fill: attach hosts to the current switch until its free ports
  // (total minus the uplink(s) consumed by the cascade) are exhausted, then
  // chain a new switch.
  std::size_t placed = 0;
  NodeId prev_switch = NodeId::invalid();
  while (placed < hosts) {
    const NodeId sw = t.graph.add_node();
    t.role.push_back(NodeRole::kSwitch);
    std::size_t free = ports;
    if (prev_switch.valid()) {
      t.graph.add_edge(prev_switch, sw);
      free -= 1;  // downlink to the previous switch
    }
    const std::size_t remaining = hosts - placed;
    // Reserve one port for the next cascade hop unless this switch can
    // absorb every remaining host.
    const std::size_t usable = remaining <= free ? remaining : free - 1;
    for (std::size_t i = 0; i < usable; ++i) {
      t.graph.add_edge(nid(placed++), sw);
    }
    prev_switch = sw;
  }
  return t;
}

Topology ring(std::size_t n) {
  Topology t = hosts_only(n);
  if (n == 2) {
    t.graph.add_edge(nid(0), nid(1));
    return t;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) t.graph.add_edge(nid(i), nid(i + 1));
  if (n > 2) t.graph.add_edge(nid(n - 1), nid(0));
  return t;
}

Topology line(std::size_t n) {
  Topology t = hosts_only(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.graph.add_edge(nid(i), nid(i + 1));
  return t;
}

Topology star(std::size_t n) {
  Topology t = hosts_only(n);
  const NodeId hub = t.graph.add_node();
  t.role.push_back(NodeRole::kSwitch);
  for (std::size_t i = 0; i < n; ++i) t.graph.add_edge(nid(i), hub);
  return t;
}

Topology full_mesh(std::size_t n) {
  Topology t = hosts_only(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) t.graph.add_edge(nid(i), nid(j));
  }
  return t;
}

Topology hypercube(std::size_t dimension) {
  const std::size_t n = std::size_t{1} << dimension;
  Topology t = hosts_only(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dimension; ++d) {
      const std::size_t j = i ^ (std::size_t{1} << d);
      if (i < j) t.graph.add_edge(nid(i), nid(j));
    }
  }
  return t;
}

Topology fat_tree(std::size_t k) {
  assert(k >= 2 && k % 2 == 0);
  const std::size_t half = k / 2;
  const std::size_t host_count = k * half * half;  // k pods * (k/2)^2 hosts
  Topology t = hosts_only(host_count);

  const std::size_t core_count = half * half;
  std::vector<NodeId> core(core_count);
  for (auto& c : core) {
    c = t.graph.add_node();
    t.role.push_back(NodeRole::kSwitch);
  }

  std::size_t next_host = 0;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggr(half), edge(half);
    for (auto& a : aggr) {
      a = t.graph.add_node();
      t.role.push_back(NodeRole::kSwitch);
    }
    for (auto& e : edge) {
      e = t.graph.add_node();
      t.role.push_back(NodeRole::kSwitch);
    }
    // Edge <-> aggregation full bipartite within the pod.
    for (const NodeId a : aggr) {
      for (const NodeId e : edge) t.graph.add_edge(a, e);
    }
    // Hosts under edge switches.
    for (const NodeId e : edge) {
      for (std::size_t h = 0; h < half; ++h) {
        t.graph.add_edge(nid(next_host++), e);
      }
    }
    // Aggregation switch i uplinks to core switches [i*half, (i+1)*half).
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = 0; j < half; ++j) {
        t.graph.add_edge(aggr[i], core[i * half + j]);
      }
    }
  }
  return t;
}

Topology mesh_2d(std::size_t rows, std::size_t cols) {
  assert(rows >= 1 && cols >= 1);
  Topology t = hosts_only(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.graph.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) t.graph.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return t;
}

Topology torus_3d(std::size_t x, std::size_t y, std::size_t z) {
  assert(x >= 1 && y >= 1 && z >= 1);
  Topology t = hosts_only(x * y * z);
  auto at = [y, z](std::size_t i, std::size_t j, std::size_t k) {
    return nid((i * y + j) * z + k);
  };
  // +1 neighbor per dimension with wraparound; a dimension of width 1 is
  // skipped and width 2 adds the single edge only once.
  for (std::size_t i = 0; i < x; ++i) {
    for (std::size_t j = 0; j < y; ++j) {
      for (std::size_t k = 0; k < z; ++k) {
        if (x > 1 && !(x == 2 && i == 1)) {
          t.graph.add_edge(at(i, j, k), at((i + 1) % x, j, k));
        }
        if (y > 1 && !(y == 2 && j == 1)) {
          t.graph.add_edge(at(i, j, k), at(i, (j + 1) % y, k));
        }
        if (z > 1 && !(z == 2 && k == 1)) {
          t.graph.add_edge(at(i, j, k), at(i, j, (k + 1) % z));
        }
      }
    }
  }
  return t;
}

Topology switch_tree(std::size_t hosts, std::size_t leaf_width,
                     std::size_t fanout) {
  assert(leaf_width >= 1 && fanout >= 2);
  Topology t = hosts_only(hosts);

  // Level 0: leaf switches over host groups.
  std::vector<NodeId> level;
  for (std::size_t base = 0; base < hosts; base += leaf_width) {
    const NodeId sw = t.graph.add_node();
    t.role.push_back(NodeRole::kSwitch);
    for (std::size_t h = base; h < std::min(base + leaf_width, hosts); ++h) {
      t.graph.add_edge(nid(h), sw);
    }
    level.push_back(sw);
  }
  // Inner levels until one root remains.
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t base = 0; base < level.size(); base += fanout) {
      const NodeId sw = t.graph.add_node();
      t.role.push_back(NodeRole::kSwitch);
      for (std::size_t c = base; c < std::min(base + fanout, level.size());
           ++c) {
        t.graph.add_edge(level[c], sw);
      }
      next.push_back(sw);
    }
    level = std::move(next);
  }
  return t;
}

Topology dragonfly(std::size_t groups, std::size_t routers_per_group) {
  assert(groups >= 1 && routers_per_group >= 1);
  Topology t = hosts_only(groups * routers_per_group);
  auto router = [routers_per_group](std::size_t g, std::size_t r) {
    return nid(g * routers_per_group + r);
  };
  // Intra-group: full mesh.
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t a = 0; a < routers_per_group; ++a) {
      for (std::size_t b = a + 1; b < routers_per_group; ++b) {
        t.graph.add_edge(router(g, a), router(g, b));
      }
    }
  }
  // Inter-group: one global link per group pair, spread round-robin over
  // each group's routers.
  std::vector<std::size_t> next_port(groups, 0);
  for (std::size_t g1 = 0; g1 < groups; ++g1) {
    for (std::size_t g2 = g1 + 1; g2 < groups; ++g2) {
      const std::size_t r1 = next_port[g1]++ % routers_per_group;
      const std::size_t r2 = next_port[g2]++ % routers_per_group;
      t.graph.add_edge(router(g1, r1), router(g2, r2));
    }
  }
  return t;
}

Topology random_cluster(std::size_t n, double density, util::Rng& rng) {
  Topology t;
  t.graph = random_connected_graph(n, density, rng);
  t.role.assign(n, NodeRole::kHost);
  return t;
}

graph::Graph random_connected_graph(std::size_t n, double density,
                                    util::Rng& rng) {
  graph::Graph g(n);
  if (n < 2) return g;

  // Uniform random spanning tree by random node permutation: node i (i>0)
  // attaches to a uniformly random earlier node.  Guarantees connectivity;
  // the paper's generator makes the same promise.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order.begin(), order.end());

  std::set<std::pair<std::size_t, std::size_t>> present;
  auto add_unique = [&](std::size_t a, std::size_t b) {
    if (a > b) std::swap(a, b);
    if (a == b) return false;
    if (!present.insert({a, b}).second) return false;
    g.add_edge(nid(a), nid(b));
    return true;
  };

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = order[rng.index(i)];
    add_unique(order[i], parent);
  }

  const double max_edges = static_cast<double>(n) *
                           static_cast<double>(n - 1) / 2.0;
  const auto target =
      static_cast<std::size_t>(std::max(0.0, density * max_edges + 0.5));
  // The spanning tree may already exceed a very low density target; the
  // graph is then as sparse as connectivity allows.
  std::size_t guard = 0;
  const std::size_t guard_limit = 20 * n * n + 1000;
  while (g.edge_count() < target && guard++ < guard_limit) {
    add_unique(rng.index(n), rng.index(n));
  }
  return g;
}

}  // namespace hmn::topology
