#include "topology/contraction.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace hmn::topology {
namespace {

NodeId nid(std::size_t i) {
  return NodeId{static_cast<NodeId::underlying_type>(i)};
}

EdgeId eid(std::size_t i) {
  return EdgeId{static_cast<EdgeId::underlying_type>(i)};
}

}  // namespace

Contraction make_contraction(const model::PhysicalCluster& fine,
                             std::vector<std::size_t> group_of_node,
                             std::size_t group_count) {
  const graph::Graph& g = fine.graph();
  Contraction c;
  c.group_of_node = std::move(group_of_node);

  c.members.resize(group_count);
  for (std::size_t i = 0; i < c.group_of_node.size(); ++i) {
    c.members[c.group_of_node[i]].push_back(nid(i));
  }

  c.group_proc_mips.assign(group_count, 0.0);
  c.group_hosts.assign(group_count, 0);
  for (const NodeId h : fine.hosts()) {
    const std::size_t grp = c.group_of_node[h.index()];
    c.group_proc_mips[grp] += fine.capacity(h).proc_mips;
    c.group_hosts[grp] += 1;
  }

  // Coarse edges keyed by the (lower, upper) group pair; std::map iteration
  // gives the canonical (a, b)-ascending numbering.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edge_index;
  c.coarse_edge_of.assign(g.edge_count(), Contraction::npos);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(eid(e));
    const std::size_t a = c.group_of_node[ep.a.index()];
    const std::size_t b = c.group_of_node[ep.b.index()];
    if (a == b) continue;
    edge_index.emplace(std::minmax(a, b), 0);
  }
  c.coarse_edges.reserve(edge_index.size());
  for (auto& [pair, index] : edge_index) {
    index = c.coarse_edges.size();
    Contraction::CoarseEdge ce;
    ce.a = pair.first;
    ce.b = pair.second;
    c.coarse_edges.push_back(std::move(ce));
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(eid(e));
    const std::size_t a = c.group_of_node[ep.a.index()];
    const std::size_t b = c.group_of_node[ep.b.index()];
    if (a == b) continue;
    const std::size_t index = edge_index.at(std::minmax(a, b));
    c.coarse_edge_of[e] = index;
    c.coarse_edges[index].fine_edges.push_back(eid(e));
  }

  c.adjacency.resize(group_count);
  for (const Contraction::CoarseEdge& ce : c.coarse_edges) {
    c.adjacency[ce.a].push_back(ce.b);
    c.adjacency[ce.b].push_back(ce.a);
  }
  for (auto& adj : c.adjacency) std::sort(adj.begin(), adj.end());
  return c;
}

Contraction contract_rack_units(const model::PhysicalCluster& fine) {
  const graph::Graph& g = fine.graph();
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnassigned = Contraction::npos;
  std::vector<std::size_t> group(n, kUnassigned);
  std::size_t groups = 0;

  // Switches seed groups in ascending node order; each host follows its
  // lowest-id adjacent switch; switchless hosts become their own group.
  // This numbering is the partitioner's historical one, so refactoring it
  // here keeps partition_cluster byte-identical.
  for (std::size_t i = 0; i < n; ++i) {
    if (!fine.is_host(nid(i))) group[i] = groups++;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!fine.is_host(nid(i))) continue;
    std::size_t best_switch = kUnassigned;
    for (const graph::Adjacency& adj : g.neighbors(nid(i))) {
      const std::size_t v = adj.neighbor.index();
      if (!fine.is_host(adj.neighbor) && v < best_switch) best_switch = v;
    }
    group[i] = best_switch != kUnassigned ? group[best_switch] : groups++;
  }
  return make_contraction(fine, std::move(group), groups);
}

Contraction contract_heavy_matching(const model::PhysicalCluster& fine) {
  const graph::Graph& g = fine.graph();
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnmatched = Contraction::npos;
  std::vector<std::size_t> mate(n, kUnmatched);

  // Aggregate parallel-edge bandwidth per neighbor with a dense scratch
  // vector (touched entries reset after each node) — no hashing, and the
  // candidate scan below walks neighbors in adjacency order, so ties break
  // on the first (lowest-id within insertion order) neighbor seen.
  std::vector<double> weight(n, 0.0);
  std::vector<std::size_t> touched;
  for (std::size_t u = 0; u < n; ++u) {
    if (mate[u] != kUnmatched) continue;
    touched.clear();
    for (const graph::Adjacency& adj : g.neighbors(nid(u))) {
      const std::size_t v = adj.neighbor.index();
      if (v == u || mate[v] != kUnmatched) continue;
      if (weight[v] <= 0.0 && std::find(touched.begin(), touched.end(), v) ==
                                  touched.end()) {
        touched.push_back(v);
      }
      weight[v] += fine.link(adj.edge).bandwidth_mbps;
    }
    std::size_t best = kUnmatched;
    double best_w = -1.0;
    for (const std::size_t v : touched) {
      if (weight[v] > best_w || (weight[v] >= best_w && v < best)) {
        best = v;
        best_w = weight[v];
      }
    }
    for (const std::size_t v : touched) weight[v] = 0.0;
    if (best != kUnmatched) {
      mate[u] = best;
      mate[best] = u;
    }
  }

  // Number groups by ascending lowest member id: singletons and the lower
  // endpoint of each matched pair claim the next group.
  std::vector<std::size_t> group(n, kUnmatched);
  std::size_t groups = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (group[u] != kUnmatched) continue;
    group[u] = groups;
    if (mate[u] != kUnmatched) group[mate[u]] = groups;
    ++groups;
  }
  return make_contraction(fine, std::move(group), groups);
}

model::PhysicalCluster coarse_cluster(const model::PhysicalCluster& fine,
                                      const Contraction& c) {
  const std::size_t groups = c.group_count();
  Topology topo;
  topo.graph = graph::Graph(groups);
  topo.role.reserve(groups);
  std::vector<model::HostCapacity> caps;
  for (std::size_t grp = 0; grp < groups; ++grp) {
    if (c.group_hosts[grp] == 0) {
      topo.role.push_back(NodeRole::kSwitch);
      continue;
    }
    topo.role.push_back(NodeRole::kHost);
    model::HostCapacity cap;
    for (const NodeId m : c.members[grp]) {
      if (!fine.is_host(m)) continue;
      cap.proc_mips += fine.capacity(m).proc_mips;
      cap.mem_mb += fine.capacity(m).mem_mb;
      cap.stor_gb += fine.capacity(m).stor_gb;
    }
    caps.push_back(cap);
  }

  std::vector<model::LinkProps> links;
  links.reserve(c.coarse_edges.size());
  for (const Contraction::CoarseEdge& ce : c.coarse_edges) {
    topo.graph.add_edge(nid(ce.a), nid(ce.b));
    model::LinkProps trunk;
    trunk.bandwidth_mbps = 0.0;
    trunk.latency_ms = std::numeric_limits<double>::infinity();
    for (const EdgeId e : ce.fine_edges) {
      trunk.bandwidth_mbps += fine.link(e).bandwidth_mbps;
      trunk.latency_ms = std::min(trunk.latency_ms, fine.link(e).latency_ms);
    }
    links.push_back(trunk);
  }
  return model::PhysicalCluster::build(std::move(topo), std::move(caps),
                                       std::move(links));
}

SubCluster induced_subcluster(const model::PhysicalCluster& parent,
                              const std::vector<NodeId>& nodes) {
  const graph::Graph& g = parent.graph();
  SubCluster sub;
  std::vector<NodeId> local(g.node_count(), NodeId::invalid());

  Topology topo;
  topo.graph = graph::Graph(nodes.size());
  topo.role.reserve(nodes.size());
  sub.to_parent_node.reserve(nodes.size());
  for (const NodeId p : nodes) {
    local[p.index()] = nid(sub.to_parent_node.size());
    sub.to_parent_node.push_back(p);
    topo.role.push_back(parent.topology().role[p.index()]);
  }

  std::vector<model::LinkProps> links;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto ep = g.endpoints(eid(e));
    if (!local[ep.a.index()].valid() || !local[ep.b.index()].valid()) {
      continue;
    }
    topo.graph.add_edge(local[ep.a.index()], local[ep.b.index()]);
    sub.to_parent_edge.push_back(eid(e));
    links.push_back(parent.link(eid(e)));
  }

  std::vector<model::HostCapacity> caps;
  for (const NodeId p : nodes) {
    if (parent.is_host(p)) caps.push_back(parent.capacity(p));
  }
  sub.cluster = model::PhysicalCluster::build(std::move(topo),
                                              std::move(caps),
                                              std::move(links));
  return sub;
}

}  // namespace hmn::topology
