// Physical cluster topology builders.
//
// The paper evaluates two cluster topologies — a 2-D torus and a switched
// cluster of cascaded 64-port switches — and claims HMN handles *arbitrary*
// cluster networks (Section 2).  This module provides those two plus the
// topologies named in the paper's related-work discussion (ring, etc.) and
// common cluster fabrics, all as pure topology objects: a graph plus a
// host/switch role per node.  Capacities are attached by the model layer.
// The Topology type itself lives in model/topology.h (the model layer
// stores one per cluster); this header is the builder catalogue.
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "model/topology.h"
#include "util/rng.h"

namespace hmn::topology {

/// 2-D torus of rows x cols hosts: each host links to its four grid
/// neighbors with wraparound.  The paper's first evaluation cluster
/// (40 hosts => 8x5).  Degenerate dimensions (1 row/col) collapse the
/// duplicate wrap link.
[[nodiscard]] Topology torus_2d(std::size_t rows, std::size_t cols);

/// Switched cluster: `hosts` hosts attached to cascaded switches with
/// `ports` ports each (default 64, as in the paper).  Switches are chained
/// linearly; chain uplinks consume one port on each adjacent switch.  The
/// paper's second evaluation cluster (40 hosts => a single switch).
[[nodiscard]] Topology switched(std::size_t hosts, std::size_t ports = 64);

/// Ring of n hosts (the related-work topology V-eM cannot handle).
[[nodiscard]] Topology ring(std::size_t n);

/// Line (path) of n hosts.
[[nodiscard]] Topology line(std::size_t n);

/// Star: n hosts all attached to one central switch.
[[nodiscard]] Topology star(std::size_t n);

/// Fully connected mesh of n hosts.
[[nodiscard]] Topology full_mesh(std::size_t n);

/// Hypercube of dimension d (2^d hosts).
[[nodiscard]] Topology hypercube(std::size_t dimension);

/// k-ary fat-tree (Al-Fares et al.): k pods, (k/2)^2 core switches,
/// k^3/4 hosts.  Requires even k >= 2.
[[nodiscard]] Topology fat_tree(std::size_t k);

/// 2-D mesh (grid without wraparound) of rows x cols hosts — the torus's
/// open-boundary sibling; corner/edge hosts have lower degree, so path
/// diversity is uneven (useful for stressing the Networking stage).
[[nodiscard]] Topology mesh_2d(std::size_t rows, std::size_t cols);

/// 3-D torus of x*y*z hosts (each host links to six neighbors with
/// wraparound; degenerate dimensions collapse duplicates, as in torus_2d).
[[nodiscard]] Topology torus_3d(std::size_t x, std::size_t y, std::size_t z);

/// Balanced switch tree: `hosts` hosts under leaf switches of `leaf_width`
/// downlinks each, leaf switches under inner switches of `fanout`
/// downlinks, recursively, up to a single root switch.
[[nodiscard]] Topology switch_tree(std::size_t hosts, std::size_t leaf_width,
                                   std::size_t fanout);

/// Dragonfly (Kim et al., simplified, one host per router): `groups`
/// fully-connected groups of `routers_per_group` routers-as-hosts, with one
/// global link between every pair of groups (attached round-robin to the
/// routers of each group).
[[nodiscard]] Topology dragonfly(std::size_t groups,
                                 std::size_t routers_per_group);

/// Connected random host-only topology with approximately the given edge
/// density (see `random_connected_graph`).
[[nodiscard]] Topology random_cluster(std::size_t n, double density,
                                      util::Rng& rng);

/// Connected Erdos–Renyi-style random graph used for both random clusters
/// and virtual environments: builds a uniformly random spanning tree
/// (guaranteeing connectivity, as the paper's generator does), then adds
/// distinct random extra edges until `density` = |E| / (n(n-1)/2) is
/// reached.  For n < 2 returns the trivial graph.
[[nodiscard]] graph::Graph random_connected_graph(std::size_t n,
                                                  double density,
                                                  util::Rng& rng);

}  // namespace hmn::topology
