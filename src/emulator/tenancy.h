// Multi-tenant testbed management.
//
// The paper simplifies: "we consider that the entire cluster is available
// for a single tester per time" (Section 3.2).  A production testbed
// serves several testers at once; the TenancyManager relaxes the
// assumption by admitting each tenant's virtual environment against the
// *residual* capacity left by the tenants already running:
//
//   * admit(): builds a residual view of the cluster (same topology, host
//     capacities and link bandwidths minus existing reservations) and runs
//     the heuristic pool (HMN, RA fallback) on it; on success the tenant's
//     demands are committed;
//   * release(): returns a departed tenant's memory, storage, CPU, and
//     bandwidth; no other tenant is disturbed (their placements were
//     computed against capacities that only grew).
//
// Admission is deliberately conservative: a tenant that cannot be mapped
// within the current residual is rejected rather than triggering
// migrations of running tenants.  The orchestrator layer
// (src/orchestrator) composes the two mutating extensions below — grow()
// and update_mappings() — into churn-driven growth and background
// defragmentation on top of that conservative core.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/map_result.h"
#include "core/repair.h"
#include "extensions/heuristic_pool.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::emulator {

using TenantId = std::uint32_t;

struct Tenant {
  TenantId id = 0;
  std::string name;
  model::VirtualEnvironment venv;
  core::Mapping mapping;
};

/// Cluster-wide utilization snapshot across all tenants.
struct TenancyUtilization {
  double mem_fraction = 0.0;      // reserved / total host memory
  double stor_fraction = 0.0;
  double proc_fraction = 0.0;     // may exceed 1: CPU is not a constraint
  double peak_link_fraction = 0.0;  // most-loaded physical link
  std::size_t tenants = 0;
  std::size_t guests = 0;
};

class TenancyManager {
 public:
  /// Admission uses the default pool (HMN, RA fallback) unless a custom
  /// pool is supplied — e.g. a MinHosts-first pool, which consolidates
  /// each tenant and leaves contiguous capacity for later arrivals (bench
  /// E11 quantifies the admission-rate difference).
  explicit TenancyManager(model::PhysicalCluster cluster);
  TenancyManager(model::PhysicalCluster cluster,
                 extensions::HeuristicPool pool);

  /// Admits a tenant; on success returns its id, on failure the mapper's
  /// outcome explains why (kHostingFailed / kNetworkingFailed /
  /// kTriesExhausted).
  struct AdmissionResult {
    std::optional<TenantId> tenant;
    core::MapErrorCode error = core::MapErrorCode::kNone;
    std::string detail;

    [[nodiscard]] bool ok() const { return tenant.has_value(); }
  };
  /// `reserve_headroom` selects the *admission* view: new tenants map
  /// against capacities shrunk by the configured spare-capacity headroom
  /// and biased by per-host availability weights (below), so healing has
  /// somewhere to land.  Healer re-admissions pass false — a refugee
  /// re-placement may use every surviving byte.
  AdmissionResult admit(std::string name, model::VirtualEnvironment venv,
                        std::uint64_t seed, bool reserve_headroom = true);

  /// Releases a tenant's resources.  False if the id is unknown.
  bool release(TenantId id);

  /// Grows a running tenant to `grown` (its current venv plus appended
  /// guests/links; existing ids unchanged).  Tries core::extend_mapping
  /// first — existing guests keep their hosts — and, when the increment
  /// does not fit the residual, falls back to a full remap of the grown
  /// environment through the admission pool (the tenant's guests may all
  /// move, but no *other* tenant is disturbed).  On failure the tenant is
  /// left exactly as it was.
  struct GrowthResult {
    bool ok = false;
    bool used_full_remap = false;
    core::MapErrorCode error = core::MapErrorCode::kNone;
    std::string detail;
  };
  GrowthResult grow(TenantId id, model::VirtualEnvironment grown,
                    std::uint64_t seed);

  /// Atomically replaces the mappings of the listed tenants (the commit
  /// step of a defragmentation pass).  Every new mapping must cover its
  /// tenant's current venv; the aggregate reservation after the swap must
  /// respect every host's memory/storage and every link's bandwidth.  On
  /// any violation nothing changes and false is returned.
  bool update_mappings(
      const std::vector<std::pair<TenantId, core::Mapping>>& updates);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  /// Ids of all running tenants in ascending order.
  [[nodiscard]] std::vector<TenantId> tenant_ids() const;
  /// nullptr when unknown.
  [[nodiscard]] const Tenant* tenant(TenantId id) const;
  [[nodiscard]] const model::PhysicalCluster& cluster() const {
    return cluster_;
  }

  /// The cluster as the *next* tenant would see it: host capacities and
  /// link bandwidths minus all current reservations.  Failed elements
  /// (below) appear with zero capacity / zero bandwidth, so admission,
  /// growth, and defragmentation naturally avoid them.
  [[nodiscard]] model::PhysicalCluster residual_cluster() const;

  /// Like residual_cluster() but with tenant `id`'s own reservations
  /// returned — the view a repair of that tenant maps against.
  [[nodiscard]] model::PhysicalCluster residual_cluster_excluding(
      TenantId id) const;

  /// Failure masking: a down node loses its capacity and every incident
  /// link in all residual views; a down link loses its bandwidth.  The
  /// orchestrator's healer drives these from HOST_FAIL/LINK_FAIL events.
  /// Marking an element down does NOT touch committed mappings — healing
  /// them is the caller's job (update_mappings rejects any new mapping
  /// that lands on a down element).
  void set_node_down(NodeId node, bool down);
  void set_link_down(EdgeId edge, bool down);
  [[nodiscard]] bool is_node_down(NodeId node) const {
    return node_down_[node.index()];
  }
  [[nodiscard]] bool is_link_down(EdgeId edge) const {
    return edge_down_[edge.index()];
  }
  [[nodiscard]] bool has_failed_elements() const { return down_count_ > 0; }
  /// The current failure set in repair_mapping's shape (ascending ids).
  [[nodiscard]] core::FailureSet failed_elements() const;

  /// Availability-aware admission bias (ROADMAP: repair-aware admission).
  /// `weights` holds one multiplier in (0, 1] per cluster *node* (indexed
  /// by node id; empty disables the bias).  The admission view scales each
  /// host's residual CPU by its weight, steering Hosting's
  /// most-available-CPU ordering away from historically flaky hosts
  /// without ever making a feasible placement infeasible (CPU is not a
  /// hard constraint).  All-1.0 weights reproduce the unbiased view
  /// byte-for-byte.
  void set_host_weights(std::vector<double> weights);

  /// Fraction of every host's memory/storage withheld from *new-tenant*
  /// admissions (0 disables).  Growth, healing, and defragmentation see
  /// the full capacity — the reserve exists precisely so repairs have
  /// spare room.
  void set_admission_headroom(double fraction);
  [[nodiscard]] double admission_headroom() const {
    return admission_headroom_;
  }

  /// Unclamped residual CPU per host in cluster().hosts() order — the
  /// vector the cluster-wide load-balance factor (Eq. 10) is computed
  /// over.  May contain negative entries: CPU is not a hard constraint.
  [[nodiscard]] std::vector<double> residual_host_proc() const;

  [[nodiscard]] TenancyUtilization utilization() const;

  /// Checkpoint support (src/recovery): the manager's complete logical
  /// state as plain values.  The aggregate `used_*` reservations are
  /// carried *verbatim*: they are derivable from the mappings, but only up
  /// to floating-point rounding — the live arrays hold the residue of the
  /// whole add/remove history, while a fresh rebuild sums surviving
  /// tenants in id order, and the last-ulp difference is enough to flip a
  /// near-tie placement after restore.  restore_state() still rebuilds
  /// them from the mappings and refuses a state whose exported aggregates
  /// disagree beyond rounding noise, so a checkpoint cannot smuggle in
  /// bookkeeping the committed mappings don't back.
  struct State {
    std::vector<Tenant> tenants;  // ascending id order
    TenantId next_id = 1;
    std::vector<bool> node_down;
    std::vector<bool> edge_down;
    std::vector<double> host_weights;
    double admission_headroom = 0.0;
    // Exact aggregates at export time (empty: derive from the mappings).
    std::vector<double> used_proc;
    std::vector<double> used_mem;
    std::vector<double> used_stor;
    std::vector<double> used_bw;
  };
  [[nodiscard]] State export_state() const;
  /// Restores into a manager constructed over the same cluster and pool.
  /// Any previous tenants are discarded.  Throws std::invalid_argument if
  /// the state's `used_*` aggregates are present but inconsistent with
  /// what its tenant mappings reserve.
  void restore_state(State state);

 private:
  model::PhysicalCluster cluster_;
  extensions::HeuristicPool pool_;
  std::map<TenantId, Tenant> tenants_;
  TenantId next_id_ = 1;

  // Aggregate reservations across tenants, per cluster node / edge.
  std::vector<double> used_proc_;
  std::vector<double> used_mem_;
  std::vector<double> used_stor_;
  std::vector<double> used_bw_;

  // Failure masks, per cluster node / edge.
  std::vector<bool> node_down_;
  std::vector<bool> edge_down_;
  std::size_t down_count_ = 0;

  // Availability-aware admission bias (empty / 0.0 when disabled).
  std::vector<double> host_weights_;
  double admission_headroom_ = 0.0;

  /// Down directly, or incident to a down node.
  [[nodiscard]] bool edge_masked(EdgeId e) const;

  void apply(const Tenant& tenant, double sign);
  void apply_mapping(const model::VirtualEnvironment& venv,
                     const core::Mapping& mapping, double sign);
  /// Residual view built from the current `used_*` arrays, minus failure
  /// masks; with `exclude` non-null that tenant's reservations are handed
  /// back (shared by residual_cluster() and the exclude-one views).  With
  /// `biased` the availability weights and admission headroom are applied
  /// — the view a *new* tenant maps against.
  [[nodiscard]] model::PhysicalCluster residual_view(
      const Tenant* exclude = nullptr, bool biased = false) const;
};

}  // namespace hmn::emulator
