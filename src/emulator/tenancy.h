// Multi-tenant testbed management.
//
// The paper simplifies: "we consider that the entire cluster is available
// for a single tester per time" (Section 3.2).  A production testbed
// serves several testers at once; the TenancyManager relaxes the
// assumption by admitting each tenant's virtual environment against the
// *residual* capacity left by the tenants already running:
//
//   * admit(): builds a residual view of the cluster (same topology, host
//     capacities and link bandwidths minus existing reservations) and runs
//     the heuristic pool (HMN, RA fallback) on it; on success the tenant's
//     demands are committed;
//   * release(): returns a departed tenant's memory, storage, CPU, and
//     bandwidth; no other tenant is disturbed (their placements were
//     computed against capacities that only grew).
//
// Admission is deliberately conservative: a tenant that cannot be mapped
// within the current residual is rejected rather than triggering
// migrations of running tenants.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/map_result.h"
#include "extensions/heuristic_pool.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"

namespace hmn::emulator {

using TenantId = std::uint32_t;

struct Tenant {
  TenantId id = 0;
  std::string name;
  model::VirtualEnvironment venv;
  core::Mapping mapping;
};

/// Cluster-wide utilization snapshot across all tenants.
struct TenancyUtilization {
  double mem_fraction = 0.0;      // reserved / total host memory
  double stor_fraction = 0.0;
  double proc_fraction = 0.0;     // may exceed 1: CPU is not a constraint
  double peak_link_fraction = 0.0;  // most-loaded physical link
  std::size_t tenants = 0;
  std::size_t guests = 0;
};

class TenancyManager {
 public:
  /// Admission uses the default pool (HMN, RA fallback) unless a custom
  /// pool is supplied — e.g. a MinHosts-first pool, which consolidates
  /// each tenant and leaves contiguous capacity for later arrivals (bench
  /// E11 quantifies the admission-rate difference).
  explicit TenancyManager(model::PhysicalCluster cluster);
  TenancyManager(model::PhysicalCluster cluster,
                 extensions::HeuristicPool pool);

  /// Admits a tenant; on success returns its id, on failure the mapper's
  /// outcome explains why (kHostingFailed / kNetworkingFailed /
  /// kTriesExhausted).
  struct AdmissionResult {
    std::optional<TenantId> tenant;
    core::MapErrorCode error = core::MapErrorCode::kNone;
    std::string detail;

    [[nodiscard]] bool ok() const { return tenant.has_value(); }
  };
  AdmissionResult admit(std::string name, model::VirtualEnvironment venv,
                        std::uint64_t seed);

  /// Releases a tenant's resources.  False if the id is unknown.
  bool release(TenantId id);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  /// nullptr when unknown.
  [[nodiscard]] const Tenant* tenant(TenantId id) const;
  [[nodiscard]] const model::PhysicalCluster& cluster() const {
    return cluster_;
  }

  /// The cluster as the *next* tenant would see it: host capacities and
  /// link bandwidths minus all current reservations.
  [[nodiscard]] model::PhysicalCluster residual_cluster() const;

  [[nodiscard]] TenancyUtilization utilization() const;

 private:
  model::PhysicalCluster cluster_;
  extensions::HeuristicPool pool_;
  std::map<TenantId, Tenant> tenants_;
  TenantId next_id_ = 1;

  // Aggregate reservations across tenants, per cluster node / edge.
  std::vector<double> used_proc_;
  std::vector<double> used_mem_;
  std::vector<double> used_stor_;
  std::vector<double> used_bw_;

  void apply(const Tenant& tenant, double sign);
};

}  // namespace hmn::emulator
