#include "emulator/tenancy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "core/incremental.h"

namespace hmn::emulator {

TenancyManager::TenancyManager(model::PhysicalCluster cluster)
    : TenancyManager(std::move(cluster), extensions::default_pool()) {}

TenancyManager::TenancyManager(model::PhysicalCluster cluster,
                               extensions::HeuristicPool pool)
    : cluster_(std::move(cluster)), pool_(std::move(pool)) {
  used_proc_.assign(cluster_.node_count(), 0.0);
  used_mem_.assign(cluster_.node_count(), 0.0);
  used_stor_.assign(cluster_.node_count(), 0.0);
  used_bw_.assign(cluster_.link_count(), 0.0);
  node_down_.assign(cluster_.node_count(), false);
  edge_down_.assign(cluster_.link_count(), false);
}

void TenancyManager::apply(const Tenant& tenant, double sign) {
  apply_mapping(tenant.venv, tenant.mapping, sign);
}

void TenancyManager::apply_mapping(const model::VirtualEnvironment& venv,
                                   const core::Mapping& mapping, double sign) {
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const auto& req =
        venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
    const std::size_t h = mapping.guest_host[g].index();
    used_proc_[h] += sign * req.proc_mips;
    used_mem_[h] += sign * req.mem_mb;
    used_stor_[h] += sign * req.stor_gb;
  }
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const double bw =
        venv.link(VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)})
            .bandwidth_mbps;
    for (const EdgeId e : mapping.link_paths[l]) {
      used_bw_[e.index()] += sign * bw;
    }
  }
}

model::PhysicalCluster TenancyManager::residual_cluster() const {
  return residual_view();
}

model::PhysicalCluster TenancyManager::residual_cluster_excluding(
    TenantId id) const {
  const auto it = tenants_.find(id);
  return residual_view(it == tenants_.end() ? nullptr : &it->second);
}

bool TenancyManager::edge_masked(EdgeId e) const {
  if (edge_down_[e.index()]) return true;
  const auto ep = cluster_.graph().endpoints(e);
  return node_down_[ep.a.index()] || node_down_[ep.b.index()];
}

// Every admission, heal, and defrag pass starts by materializing a residual
// view; its per-node/per-edge vectors are all size-known and reserved.
// hmn-lint: hot-path
model::PhysicalCluster TenancyManager::residual_view(const Tenant* exclude,
                                                     bool biased) const {
  // Hand the excluded tenant's reservations back into local copies; the
  // member arrays stay untouched (this is a const view).
  std::vector<double> proc = used_proc_;
  std::vector<double> mem = used_mem_;
  std::vector<double> stor = used_stor_;
  std::vector<double> bw = used_bw_;
  if (exclude != nullptr) {
    const auto& venv = exclude->venv;
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      const auto& req =
          venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)});
      const std::size_t h = exclude->mapping.guest_host[g].index();
      proc[h] -= req.proc_mips;
      mem[h] -= req.mem_mb;
      stor[h] -= req.stor_gb;
    }
    for (std::size_t l = 0; l < venv.link_count(); ++l) {
      const double demand =
          venv.link(VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)})
              .bandwidth_mbps;
      for (const EdgeId e : exclude->mapping.link_paths[l]) {
        bw[e.index()] -= demand;
      }
    }
  }

  topology::Topology topo = cluster_.topology();  // copy
  std::vector<model::HostCapacity> caps;
  caps.reserve(cluster_.host_count());
  for (const NodeId h : cluster_.hosts()) {
    if (node_down_[h.index()]) {
      caps.push_back({});  // a dead host offers nothing
      continue;
    }
    const auto& cap = cluster_.capacity(h);
    // The biased (admission) view differs from the raw residual in two
    // ways: a headroom fraction of mem/stor is withheld so healing has
    // spare room, and residual CPU is scaled by the host's availability
    // weight so Hosting's most-CPU ordering prefers reliable hosts.  Both
    // knobs default to no-ops, keeping the views byte-identical until the
    // orchestrator observes a failure.
    const double keep = biased ? 1.0 - admission_headroom_ : 1.0;
    const double weight =
        biased && h.index() < host_weights_.size() ? host_weights_[h.index()]
                                                   : 1.0;
    caps.push_back({
        // Residual CPU may be negative (not a constraint); the mapper only
        // uses it as the balancing metric, so clamp for sanity.
        std::max(0.0, cap.proc_mips - proc[h.index()]) * weight,
        std::max(0.0, cap.mem_mb * keep - mem[h.index()]),
        std::max(0.0, cap.stor_gb * keep - stor[h.index()]),
    });
  }
  std::vector<model::LinkProps> links;
  links.reserve(cluster_.link_count());
  for (std::size_t e = 0; e < cluster_.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    if (edge_masked(id)) {
      links.push_back({0.0, std::numeric_limits<double>::infinity()});
      continue;
    }
    links.push_back(
        {std::max(0.0, cluster_.link(id).bandwidth_mbps - bw[e]),
         cluster_.link(id).latency_ms});
  }
  model::PhysicalCluster view = model::PhysicalCluster::build(
      std::move(topo), std::move(caps), std::move(links));
  // Carry the failure-domain annotation through: mappers only ever see
  // residual views, so without this copy the replica-spread stage would
  // never observe the domains installed on the base cluster.
  view.set_failure_domains(cluster_.failure_domains());
  return view;
}

void TenancyManager::set_node_down(NodeId node, bool down) {
  if (node_down_[node.index()] == down) return;
  node_down_[node.index()] = down;
  if (down) {
    ++down_count_;
  } else {
    --down_count_;
  }
}

void TenancyManager::set_link_down(EdgeId edge, bool down) {
  if (edge_down_[edge.index()] == down) return;
  edge_down_[edge.index()] = down;
  if (down) {
    ++down_count_;
  } else {
    --down_count_;
  }
}

TenancyManager::State TenancyManager::export_state() const {
  State state;
  state.tenants.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) state.tenants.push_back(tenant);
  state.next_id = next_id_;
  state.node_down = node_down_;
  state.edge_down = edge_down_;
  state.host_weights = host_weights_;
  state.admission_headroom = admission_headroom_;
  state.used_proc = used_proc_;
  state.used_mem = used_mem_;
  state.used_stor = used_stor_;
  state.used_bw = used_bw_;
  return state;
}

namespace {

/// The rebuilt aggregate and the exported one may disagree by accumulated
/// rounding (ulps on values up to host capacity, across thousands of
/// add/remove ops) but never by a real reservation, which is O(1) or more.
void check_aggregate(const std::vector<double>& exact,
                     const std::vector<double>& rebuilt, const char* what) {
  if (exact.size() != rebuilt.size()) {
    throw std::invalid_argument(
        std::string("restored tenancy state: ") + what + " has " +
        std::to_string(exact.size()) + " entries, cluster expects " +
        std::to_string(rebuilt.size()));
  }
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale =
        std::max({1.0, std::abs(exact[i]), std::abs(rebuilt[i])});
    if (std::abs(exact[i] - rebuilt[i]) > 1e-6 * scale) {
      throw std::invalid_argument(
          std::string("restored tenancy state: ") + what + "[" +
          std::to_string(i) + "] = " + std::to_string(exact[i]) +
          " disagrees with the " + std::to_string(rebuilt[i]) +
          " its tenant mappings reserve");
    }
  }
}

}  // namespace

void TenancyManager::restore_state(State state) {
  tenants_.clear();
  used_proc_.assign(cluster_.node_count(), 0.0);
  used_mem_.assign(cluster_.node_count(), 0.0);
  used_stor_.assign(cluster_.node_count(), 0.0);
  used_bw_.assign(cluster_.link_count(), 0.0);
  for (Tenant& tenant : state.tenants) {
    apply(tenant, +1.0);
    const TenantId id = tenant.id;
    tenants_.emplace(id, std::move(tenant));
  }
  // Install the exported aggregates bit-for-bit (after checking the
  // mappings actually back them): a restored run must see the *exact*
  // residuals the live run saw, or last-ulp differences flip near-ties.
  if (!state.used_proc.empty() || !state.used_mem.empty() ||
      !state.used_stor.empty() || !state.used_bw.empty()) {
    check_aggregate(state.used_proc, used_proc_, "used_proc");
    check_aggregate(state.used_mem, used_mem_, "used_mem");
    check_aggregate(state.used_stor, used_stor_, "used_stor");
    check_aggregate(state.used_bw, used_bw_, "used_bw");
    used_proc_ = std::move(state.used_proc);
    used_mem_ = std::move(state.used_mem);
    used_stor_ = std::move(state.used_stor);
    used_bw_ = std::move(state.used_bw);
  }
  next_id_ = state.next_id;
  node_down_.assign(cluster_.node_count(), false);
  edge_down_.assign(cluster_.link_count(), false);
  down_count_ = 0;
  for (std::size_t n = 0;
       n < state.node_down.size() && n < node_down_.size(); ++n) {
    set_node_down(NodeId{static_cast<NodeId::underlying_type>(n)},
                  state.node_down[n]);
  }
  for (std::size_t e = 0;
       e < state.edge_down.size() && e < edge_down_.size(); ++e) {
    set_link_down(EdgeId{static_cast<EdgeId::underlying_type>(e)},
                  state.edge_down[e]);
  }
  host_weights_ = std::move(state.host_weights);
  admission_headroom_ = state.admission_headroom;
}

core::FailureSet TenancyManager::failed_elements() const {
  core::FailureSet failed;
  for (std::size_t n = 0; n < node_down_.size(); ++n) {
    if (node_down_[n]) {
      failed.nodes.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
    }
  }
  for (std::size_t e = 0; e < edge_down_.size(); ++e) {
    if (edge_down_[e]) {
      failed.links.push_back(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    }
  }
  return failed;
}

TenancyManager::AdmissionResult TenancyManager::admit(
    std::string name, model::VirtualEnvironment venv, std::uint64_t seed,
    bool reserve_headroom) {
  AdmissionResult result;
  const model::PhysicalCluster view =
      residual_view(nullptr, /*biased=*/reserve_headroom);
  core::MapOutcome outcome = pool_.first_success(view, venv, seed);
  if (!outcome.ok()) {
    result.error = outcome.error;
    result.detail = std::move(outcome.detail);
    return result;
  }
  Tenant tenant;
  tenant.id = next_id_++;
  tenant.name = std::move(name);
  tenant.venv = std::move(venv);
  tenant.mapping = std::move(*outcome.mapping);
  apply(tenant, +1.0);
  result.tenant = tenant.id;
  tenants_.emplace(tenant.id, std::move(tenant));
  return result;
}

bool TenancyManager::release(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) return false;
  apply(it->second, -1.0);
  tenants_.erase(it);
  return true;
}

TenancyManager::GrowthResult TenancyManager::grow(
    TenantId id, model::VirtualEnvironment grown, std::uint64_t seed) {
  GrowthResult result;
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    result.error = core::MapErrorCode::kInvalidInput;
    result.detail = "unknown tenant";
    return result;
  }
  Tenant& tenant = it->second;
  if (grown.guest_count() < tenant.venv.guest_count() ||
      grown.link_count() < tenant.venv.link_count()) {
    result.error = core::MapErrorCode::kInvalidInput;
    result.detail = "grown environment is smaller than the running one";
    return result;
  }

  // The view excludes this tenant's own reservations: extend_mapping (and
  // the full-remap fallback) re-account the tenant against it from scratch.
  apply(tenant, -1.0);
  const model::PhysicalCluster view = residual_view();
  core::MapOutcome outcome = core::extend_mapping(view, grown, tenant.mapping);
  bool fell_back = false;
  if (!outcome.ok()) {
    outcome = pool_.first_success(view, grown, seed);
    fell_back = true;
  }
  if (!outcome.ok()) {
    apply(tenant, +1.0);  // restore: the tenant keeps running unchanged
    result.error = outcome.error;
    result.detail = std::move(outcome.detail);
    return result;
  }
  tenant.venv = std::move(grown);
  tenant.mapping = std::move(*outcome.mapping);
  apply(tenant, +1.0);
  result.ok = true;
  result.used_full_remap = fell_back;
  return result;
}

bool TenancyManager::update_mappings(
    const std::vector<std::pair<TenantId, core::Mapping>>& updates) {
  std::set<TenantId> seen;
  for (const auto& [id, mapping] : updates) {
    const auto it = tenants_.find(id);
    if (it == tenants_.end() || !seen.insert(id).second) return false;
    const Tenant& tenant = it->second;
    if (mapping.guest_host.size() != tenant.venv.guest_count() ||
        mapping.link_paths.size() != tenant.venv.link_count()) {
      return false;
    }
    for (const NodeId h : mapping.guest_host) {
      if (!h.valid() || !cluster_.is_host(h)) return false;
      if (node_down_[h.index()]) return false;  // never commit onto a corpse
    }
    for (const auto& path : mapping.link_paths) {
      for (const EdgeId e : path) {
        if (edge_masked(e)) return false;
      }
    }
  }

  // Install, then verify the aggregate; roll back wholesale on violation.
  std::vector<core::Mapping> previous;
  previous.reserve(updates.size());
  for (const auto& [id, mapping] : updates) {
    Tenant& tenant = tenants_.at(id);
    previous.push_back(std::move(tenant.mapping));
    apply_mapping(tenant.venv, previous.back(), -1.0);
    tenant.mapping = mapping;
    apply_mapping(tenant.venv, tenant.mapping, +1.0);
  }

  bool feasible = true;
  for (const NodeId h : cluster_.hosts()) {
    const auto& cap = cluster_.capacity(h);
    const std::size_t i = h.index();
    const double eps_mem = 1e-6 * (1.0 + cap.mem_mb);
    const double eps_stor = 1e-6 * (1.0 + cap.stor_gb);
    if (used_mem_[i] > cap.mem_mb + eps_mem ||
        used_stor_[i] > cap.stor_gb + eps_stor) {
      feasible = false;
      break;
    }
  }
  if (feasible) {
    for (std::size_t e = 0; e < cluster_.link_count(); ++e) {
      const double cap =
          cluster_.link(EdgeId{static_cast<EdgeId::underlying_type>(e)})
              .bandwidth_mbps;
      if (used_bw_[e] > cap + 1e-6 * (1.0 + cap)) {
        feasible = false;
        break;
      }
    }
  }
  if (!feasible) {
    for (std::size_t k = updates.size(); k-- > 0;) {
      Tenant& tenant = tenants_.at(updates[k].first);
      apply_mapping(tenant.venv, tenant.mapping, -1.0);
      tenant.mapping = std::move(previous[k]);
      apply_mapping(tenant.venv, tenant.mapping, +1.0);
    }
    return false;
  }
  return true;
}

void TenancyManager::set_host_weights(std::vector<double> weights) {
  host_weights_ = std::move(weights);
  for (double& w : host_weights_) w = std::clamp(w, 1e-3, 1.0);
}

void TenancyManager::set_admission_headroom(double fraction) {
  admission_headroom_ = std::clamp(fraction, 0.0, 0.9);
}

std::vector<TenantId> TenancyManager::tenant_ids() const {
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) ids.push_back(id);
  return ids;
}

std::vector<double> TenancyManager::residual_host_proc() const {
  std::vector<double> rproc;
  rproc.reserve(cluster_.host_count());
  for (const NodeId h : cluster_.hosts()) {
    rproc.push_back(cluster_.capacity(h).proc_mips - used_proc_[h.index()]);
  }
  return rproc;
}

const Tenant* TenancyManager::tenant(TenantId id) const {
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

TenancyUtilization TenancyManager::utilization() const {
  TenancyUtilization u;
  u.tenants = tenants_.size();
  double total_mem = 0.0, total_stor = 0.0, total_proc = 0.0;
  double used_mem = 0.0, used_stor = 0.0, used_proc = 0.0;
  for (const NodeId h : cluster_.hosts()) {
    const auto& cap = cluster_.capacity(h);
    total_mem += cap.mem_mb;
    total_stor += cap.stor_gb;
    total_proc += cap.proc_mips;
    used_mem += used_mem_[h.index()];
    used_stor += used_stor_[h.index()];
    used_proc += used_proc_[h.index()];
  }
  u.mem_fraction = total_mem > 0 ? used_mem / total_mem : 0.0;
  u.stor_fraction = total_stor > 0 ? used_stor / total_stor : 0.0;
  u.proc_fraction = total_proc > 0 ? used_proc / total_proc : 0.0;
  for (std::size_t e = 0; e < cluster_.link_count(); ++e) {
    const double cap = cluster_.link(EdgeId{static_cast<EdgeId::underlying_type>(e)})
                           .bandwidth_mbps;
    if (cap > 0) {
      u.peak_link_fraction = std::max(u.peak_link_fraction, used_bw_[e] / cap);
    }
  }
  for (const auto& [id, tenant] : tenants_) {
    u.guests += tenant.venv.guest_count();
  }
  return u;
}

}  // namespace hmn::emulator
