// Automated emulation session — the frontend the paper's project builds
// HMN for (Section 1: an emulator "able to build the virtual system and
// trigger the applications"; mapping is "an important step of the process
// of building the emulated environment").
//
// An EmulationSession walks the testbed lifecycle as a state machine:
//
//   kDefining --map()--> kMapped --deploy()--> kDeployed --run()--> kDone
//        ^                  |                      |
//        +--- add_guest/add_link (growth re-enters kDefining; the next
//             map() extends the existing mapping incrementally and falls
//             back to a full remap only when the increment does not fit)
//
// Every stage is simulated and deterministic: map() invokes the heuristic
// pool (HMN with an RA fallback by default), deploy() uses the image-
// transfer model, run() executes the BSP application on the DES.  The
// session keeps a timeline of phase durations — wall-clock for mapping
// (the cost the paper measures) and simulated seconds for deployment and
// execution (the costs the paper argues dominate).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/map_result.h"
#include "extensions/heuristic_pool.h"
#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "sim/deployment.h"
#include "sim/experiment.h"

namespace hmn::emulator {

enum class Phase : std::uint8_t {
  kDefining,  // virtual environment under construction / grown
  kMapped,    // mapping computed and validated
  kDeployed,  // images transferred and guests booted (simulated)
  kDone,      // experiment executed (simulated)
  kFailed,    // unrecoverable error; see last_error()
};

[[nodiscard]] constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::kDefining: return "defining";
    case Phase::kMapped: return "mapped";
    case Phase::kDeployed: return "deployed";
    case Phase::kDone: return "done";
    case Phase::kFailed: return "failed";
  }
  return "?";
}

struct SessionConfig {
  std::uint64_t seed = 1;
  /// Deducted from every host before any mapping (Section 3.1's VMM
  /// resource consumption).
  model::HostCapacity vmm_overhead{};
  sim::DeploymentSpec deployment;
  sim::ExperimentSpec experiment;
  /// When false, only HMN is tried; when true, the default pool's RA
  /// fallback rescues instances HMN cannot host.
  bool use_fallback_pool = true;
};

/// One entry of the session timeline.
struct PhaseRecord {
  std::string phase;       // "map", "extend", "remap", "deploy", "run"
  double wall_seconds;     // real computation time spent by the library
  double simulated_seconds;  // testbed time the phase would take (0 for map)
  std::string note;
};

/// A session timeline as a JSON array (for frontends logging sessions).
/// Lives here rather than in io so that io never includes upward into the
/// emulator layer.
[[nodiscard]] std::string to_json(const std::vector<PhaseRecord>& timeline);

class EmulationSession {
 public:
  EmulationSession(model::PhysicalCluster cluster, SessionConfig config);

  // --- Define / grow (allowed in kDefining, or after mapping: the session
  // drops back to kDefining and the next map() extends incrementally).
  GuestId add_guest(const model::GuestRequirements& req);
  VirtLinkId add_link(GuestId a, GuestId b,
                      const model::VirtualLinkDemand& demand);

  /// Computes (or, after growth, extends) the mapping and validates it.
  /// Returns success; on failure the session enters kFailed with the
  /// mapper's diagnostic unless no mapping existed before (then it stays
  /// kDefining so the tester can adjust the environment).
  bool map();

  /// Simulates image deployment.  Requires kMapped.
  bool deploy();

  /// Simulates the distributed experiment.  Requires kDeployed.
  bool run();

  /// Injects a host failure into a mapped/deployed session: the mapping is
  /// repaired (evicted guests re-placed, severed paths re-routed) and, if
  /// the session was deployed, the refugees' redeployment is charged to
  /// the timeline.  On unrepairable damage the session enters kFailed.
  /// Requires at least kMapped.
  bool inject_host_failure(NodeId host);

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }
  [[nodiscard]] const model::PhysicalCluster& cluster() const {
    return cluster_;
  }
  [[nodiscard]] const model::VirtualEnvironment& venv() const { return venv_; }
  /// Valid in kMapped and later.
  [[nodiscard]] const core::Mapping& mapping() const { return *mapping_; }
  [[nodiscard]] bool has_mapping() const { return mapping_.has_value(); }
  /// Valid in kDone.
  [[nodiscard]] const sim::ExperimentResult& experiment_result() const {
    return experiment_result_;
  }
  [[nodiscard]] const std::vector<PhaseRecord>& timeline() const {
    return timeline_;
  }
  /// Total simulated testbed time accrued (deploy + run phases).
  [[nodiscard]] double simulated_seconds() const;
  /// Human-readable session summary.
  [[nodiscard]] std::string report() const;

 private:
  bool fail(std::string why);

  model::PhysicalCluster cluster_;
  SessionConfig config_;
  model::VirtualEnvironment venv_;
  extensions::HeuristicPool pool_;
  Phase phase_ = Phase::kDefining;
  std::optional<core::Mapping> mapping_;  // of the first N guests/links
  std::size_t mapped_guests_ = 0;
  std::size_t mapped_links_ = 0;
  std::size_t deployed_guests_ = 0;
  sim::ExperimentResult experiment_result_;
  std::vector<PhaseRecord> timeline_;
  std::string error_;
  std::uint64_t map_calls_ = 0;
};

}  // namespace hmn::emulator
