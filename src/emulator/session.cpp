#include "emulator/session.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/hmn_mapper.h"
#include "core/incremental.h"
#include "core/repair.h"
#include "core/validator.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace hmn::emulator {

EmulationSession::EmulationSession(model::PhysicalCluster cluster,
                                   SessionConfig config)
    : cluster_(std::move(cluster)), config_(config) {
  cluster_.deduct_vmm_overhead(config_.vmm_overhead);
  if (config_.use_fallback_pool) {
    pool_ = extensions::default_pool();
  } else {
    pool_.add(std::make_unique<core::HmnMapper>());
  }
}

GuestId EmulationSession::add_guest(const model::GuestRequirements& req) {
  if (phase_ == Phase::kMapped || phase_ == Phase::kDeployed ||
      phase_ == Phase::kDone) {
    phase_ = Phase::kDefining;  // growth re-opens the definition
  }
  return venv_.add_guest(req);
}

VirtLinkId EmulationSession::add_link(GuestId a, GuestId b,
                                      const model::VirtualLinkDemand& demand) {
  if (phase_ == Phase::kMapped || phase_ == Phase::kDeployed ||
      phase_ == Phase::kDone) {
    phase_ = Phase::kDefining;
  }
  return venv_.add_link(a, b, demand);
}

bool EmulationSession::fail(std::string why) {
  error_ = std::move(why);
  phase_ = Phase::kFailed;
  return false;
}

bool EmulationSession::map() {
  if (phase_ == Phase::kFailed) return false;
  if (phase_ != Phase::kDefining) return true;  // nothing new to map

  const std::uint64_t seed =
      util::derive_seed(config_.seed, 0x6d6170, map_calls_++);
  const util::Timer timer;

  core::MapOutcome outcome;
  std::string how = "map";
  if (mapping_.has_value() && mapped_guests_ <= venv_.guest_count()) {
    // Grown environment: extend the existing mapping; full remap fallback.
    outcome = core::extend_mapping(cluster_, venv_, *mapping_);
    how = "extend";
    if (!outcome.ok()) {
      outcome = pool_.first_success(cluster_, venv_, seed);
      how = "remap";
    }
  } else {
    outcome = pool_.first_success(cluster_, venv_, seed);
  }

  if (!outcome.ok()) {
    // A first mapping that fails leaves the session definable (the tester
    // can trim the environment); a failed growth is unrecoverable here.
    error_ = std::string(core::to_string(outcome.error)) + ": " +
             outcome.detail;
    timeline_.push_back({how, timer.elapsed_seconds(), 0.0, error_});
    if (mapping_.has_value()) phase_ = Phase::kFailed;
    return false;
  }
  const auto report = core::validate_mapping(cluster_, venv_, *outcome.mapping);
  if (!report.ok()) {
    return fail("mapper produced an invalid mapping: " + report.summary());
  }

  mapping_ = std::move(outcome.mapping);
  mapped_guests_ = venv_.guest_count();
  mapped_links_ = venv_.link_count();
  timeline_.push_back({how, timer.elapsed_seconds(), 0.0,
                       std::to_string(mapped_guests_) + " guests"});
  phase_ = Phase::kMapped;
  return true;
}

bool EmulationSession::deploy() {
  if (phase_ == Phase::kFailed) return false;
  if (phase_ == Phase::kDefining) {
    error_ = "deploy() requires a mapping; call map() first";
    return false;
  }
  if (phase_ != Phase::kMapped) return true;  // already deployed

  const util::Timer timer;
  // Only the increment is deployed: guests placed by an earlier deploy()
  // stay running (the point of incremental extension).
  sim::DeploymentSpec spec = config_.deployment;
  spec.first_guest = deployed_guests_;
  const auto result =
      sim::estimate_deployment(cluster_, venv_, *mapping_, spec);
  if (!std::isfinite(result.total_seconds)) {
    return fail("deployment impossible: repository cannot reach some host");
  }
  deployed_guests_ = venv_.guest_count();
  timeline_.push_back({"deploy", timer.elapsed_seconds(),
                       result.total_seconds,
                       std::to_string(result.bytes_moved_gb) + " GB moved"});
  phase_ = Phase::kDeployed;
  return true;
}

bool EmulationSession::run() {
  if (phase_ == Phase::kFailed) return false;
  if (phase_ != Phase::kDeployed) {
    error_ = "run() requires a deployed session";
    return false;
  }
  const util::Timer timer;
  sim::ExperimentSpec spec = config_.experiment;
  spec.seed = util::derive_seed(config_.seed, 0x72756e, map_calls_);
  experiment_result_ = sim::run_experiment(cluster_, venv_, *mapping_, spec);
  std::ostringstream note;
  note << experiment_result_.messages_delivered << " messages, "
       << experiment_result_.events_processed << " events";
  timeline_.push_back({"run", timer.elapsed_seconds(),
                       experiment_result_.makespan_seconds, note.str()});
  phase_ = Phase::kDone;
  return true;
}

bool EmulationSession::inject_host_failure(NodeId host) {
  if (phase_ == Phase::kFailed) return false;
  if (!mapping_.has_value() || phase_ == Phase::kDefining) {
    error_ = "inject_host_failure() requires a mapped session";
    return false;
  }
  const util::Timer timer;
  core::RepairStats stats;
  auto out = core::repair_mapping(cluster_, venv_, *mapping_, host, &stats);
  if (!out.ok()) {
    return fail("host " + std::to_string(host.value()) +
                " failure unrepairable: " + out.detail);
  }
  const auto report = core::validate_mapping(cluster_, venv_, *out.mapping);
  if (!report.ok()) {
    return fail("repair produced an invalid mapping: " + report.summary());
  }

  // Redeploy only the refugees when the session had deployed them.
  double redeploy_seconds = 0.0;
  if (phase_ == Phase::kDeployed || phase_ == Phase::kDone) {
    std::vector<bool> moved(venv_.guest_count(), false);
    for (std::size_t g = 0; g < venv_.guest_count(); ++g) {
      moved[g] = g < deployed_guests_ &&
                 mapping_->guest_host[g] != out.mapping->guest_host[g];
    }
    sim::DeploymentSpec spec = config_.deployment;
    spec.include = &moved;
    redeploy_seconds =
        sim::estimate_deployment(cluster_, venv_, *out.mapping, spec)
            .total_seconds;
    phase_ = Phase::kDeployed;  // experiment results are stale after a
                                // failure: require a new run()
  }
  mapping_ = std::move(out.mapping);
  // The host stays failed for the rest of the session: zero its capacity
  // and kill its links so later growth, remaps, and routing avoid it.
  cluster_.fail_node(host);
  timeline_.push_back({"repair", timer.elapsed_seconds(), redeploy_seconds,
                       std::to_string(stats.guests_moved) + " guests moved, " +
                           std::to_string(stats.links_rerouted) +
                           " links rerouted"});
  return true;
}

double EmulationSession::simulated_seconds() const {
  double total = 0.0;
  for (const PhaseRecord& r : timeline_) total += r.simulated_seconds;
  return total;
}

std::string EmulationSession::report() const {
  std::ostringstream out;
  out << "emulation session: " << venv_.guest_count() << " guests, "
      << venv_.link_count() << " virtual links on " << cluster_.host_count()
      << " hosts; phase " << to_string(phase_) << '\n';
  util::Table table({"phase", "wall (s)", "testbed (s)", "note"});
  for (const PhaseRecord& r : timeline_) {
    table.add_row({r.phase, util::Table::fmt(r.wall_seconds, 4),
                   util::Table::fmt(r.simulated_seconds, 1), r.note});
  }
  out << table.to_string();
  if (!error_.empty()) out << "last error: " << error_ << '\n';
  return out.str();
}

std::string to_json(const std::vector<PhaseRecord>& timeline) {
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const auto quoted = [](const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += ch;
      }
    }
    out += '"';
    return out;
  };
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const PhaseRecord& r = timeline[i];
    if (i > 0) out << ',';
    out << "{\"phase\":" << quoted(r.phase)
        << ",\"wall_seconds\":" << num(r.wall_seconds)
        << ",\"simulated_seconds\":" << num(r.simulated_seconds)
        << ",\"note\":" << quoted(r.note) << '}';
  }
  out << ']';
  return out.str();
}

}  // namespace hmn::emulator
