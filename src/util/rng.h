// Deterministic, seedable random number generation.
//
// Every randomized component in the library draws from an explicitly seeded
// `Rng` so that experiments are reproducible bit-for-bit, including when the
// replication grid is executed in parallel: replication k of scenario s is
// seeded with `derive_seed(master, s, k)` rather than with shared stream
// state.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace hmn::util {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that low-entropy seeds (0, 1, 2, ...) still
/// produce well-mixed initial state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);
  /// Standard normal via Box–Muller (no cached spare: stateless per call).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Fisher–Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = static_cast<std::size_t>(last - first);
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(first[static_cast<std::ptrdiff_t>(i - 1)],
           first[static_cast<std::ptrdiff_t>(j)]);
    }
  }

 private:
  std::uint64_t s_[4]{};
};

/// Mixes a master seed with per-dimension counters into an independent
/// stream seed.  Used to give each (scenario, repetition) cell of an
/// experiment grid its own deterministic generator.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a,
                                        std::uint64_t b = 0,
                                        std::uint64_t c = 0);

}  // namespace hmn::util
