#include "util/stats.h"

#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace hmn::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev_population(std::span<const double> xs) {
  return std::sqrt(variance_population(xs));
}

double stddev_sample(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // hmn-lint: allow(float-eq, degenerate-variance guard; only an exactly-constant series sums to exact zero)
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {

ConfidenceInterval bootstrap_ci_impl(std::span<const double> values,
                                     std::span<const double> paired,
                                     double level, std::size_t resamples,
                                     std::uint64_t seed) {
  // `paired` empty: one-sample mean CI; otherwise CI of mean(values-paired).
  const std::size_t n = values.size();
  auto point = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += values[i] - (paired.empty() ? 0.0 : paired[i]);
    }
    return n > 0 ? s / static_cast<double>(n) : 0.0;
  };
  if (n < 2 || resamples == 0) {
    const double m = point();
    return {m, m};
  }
  Rng rng(seed);
  std::vector<double> means(resamples);
  for (auto& m : means) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = rng.index(n);
      sum += values[j] - (paired.empty() ? 0.0 : paired[j]);
    }
    m = sum / static_cast<double>(n);
  }
  const double alpha = (1.0 - level) / 2.0;
  return {percentile(means, 100.0 * alpha),
          percentile(means, 100.0 * (1.0 - alpha))};
}

}  // namespace

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs, double level,
                                     std::size_t resamples,
                                     std::uint64_t seed) {
  return bootstrap_ci_impl(xs, {}, level, resamples, seed);
}

ConfidenceInterval bootstrap_paired_diff_ci(std::span<const double> xs,
                                            std::span<const double> ys,
                                            double level,
                                            std::size_t resamples,
                                            std::uint64_t seed) {
  if (xs.size() != ys.size()) return {0.0, 0.0};
  return bootstrap_ci_impl(xs, ys, level, resamples, seed);
}

LatencyHistogram::LatencyHistogram(double upper, std::size_t buckets)
    : upper_(upper > 0.0 ? upper : 1.0),
      width_(upper_ / static_cast<double>(buckets > 0 ? buckets : 1)),
      counts_((buckets > 0 ? buckets : 1) + 1, 0) {}

void LatencyHistogram::add(double x) {
  if (x < 0.0) x = 0.0;
  std::size_t b;
  if (x >= upper_) {
    b = counts_.size() - 1;  // overflow bucket
  } else {
    b = static_cast<std::size_t>(x / width_);
    if (b >= counts_.size() - 1) b = counts_.size() - 2;  // fp edge
  }
  ++counts_[b];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

bool LatencyHistogram::merge(const LatencyHistogram& other) {
  if (counts_.size() != other.counts_.size()) return false;
  // Layout identity: histograms are mergeable only when built from the
  // same constructor arguments, so the bound must match bit-for-bit.
  if (upper_ != other.upper_) return false;
  if (other.count_ == 0) return true;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  return true;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  // The extreme ranks are the observed extremes exactly; mid-bucket
  // interpolation would otherwise pull them toward the bucket center.
  if (rank <= 0.0) return min_;
  if (rank >= static_cast<double>(count_ - 1)) return max_;
  std::size_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double first = static_cast<double>(cum);
    const double last = static_cast<double>(cum + counts_[b] - 1);
    if (rank <= last + 1e-12) {
      const double lo = width_ * static_cast<double>(b);
      const double hi =
          b + 1 == counts_.size() ? std::max(max_, upper_) : lo + width_;
      // Samples assumed evenly spread across the bucket span: the j-th of
      // m sits at (j + 0.5) / m.
      const double frac =
          (rank - first + 0.5) / static_cast<double>(counts_[b]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cum += counts_[b];
  }
  return max_;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance_population() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

double RunningStats::variance_sample() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev_sample() const {
  return std::sqrt(variance_sample());
}

}  // namespace hmn::util
