// Minimal CSV file writer used by benches to persist series for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hmn::util {

/// Streams rows to a CSV file.  Cells containing a comma, quote, or newline
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`.  `ok()` reports whether the stream is usable.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string> cells);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string num(double v);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace hmn::util
