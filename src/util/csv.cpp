#include "util/csv.h"

#include <cstdio>

namespace hmn::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace hmn::util
