#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hmn::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire's unbiased bounded generation with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) { return uniform01() < p; }

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = master ^ 0xd6e8feb86659fd93ULL;
  auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
    x = splitmix64(x);
  };
  mix(a);
  mix(b);
  mix(c);
  return x;
}

}  // namespace hmn::util
