// Fixed-size thread pool and a deterministic parallel_for built on it.
//
// The experiment grid (scenario x repetition x heuristic) is embarrassingly
// parallel: each cell derives its own RNG seed, so results are identical
// whether the grid runs on 1 or N threads.  The pool uses a single mutex-
// protected deque — mapping a cell costs milliseconds-to-seconds, so queue
// contention is negligible and a work-stealing scheduler would be
// complexity without payoff.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmn::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks must not throw (the library reports failures as
  /// values); an escaping exception terminates, by design.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across `threads` workers (0 = hardware
/// concurrency), blocking until all iterations complete.  Iterations are
/// claimed from a shared atomic counter in chunks of `chunk`, so long and
/// short iterations interleave without a static partition imbalance.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0, std::size_t chunk = 1);

}  // namespace hmn::util
