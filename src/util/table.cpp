#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hmn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " ");
      out << cell << std::string(width[c] - cell.size(), ' ');
      out << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << (c == 0 ? "|-" : "-") << std::string(width[c], '-') << "-|";
    }
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
  return out.str();
}

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace hmn::util
