#include "util/thread_pool.h"

#include <atomic>

namespace hmn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads, std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::min(threads, (n + chunk - 1) / chunk);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto run = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(run);
  run();
  for (auto& th : pool) th.join();
}

}  // namespace hmn::util
