// Plain-text table rendering for the benchmark harnesses.
//
// The bench binaries regenerate the paper's Tables 2 and 3; this renderer
// prints them in an aligned monospace layout matching the paper's row/column
// structure, and can also emit CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace hmn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row (the paper separates the
  /// high-level and low-level workload blocks this way).
  void add_separator();

  /// Aligned monospace rendering with a header rule.
  [[nodiscard]] std::string to_string() const;
  /// RFC-4180-ish CSV (no quoting of embedded commas needed for our cells).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `prec` digits after the point, trimming a bare
  /// trailing ".0...0" like the paper's tables do.
  static std::string fmt(double v, int prec = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace hmn::util
