// Descriptive statistics used across the library.
//
// The paper's objective function (Eq. 10) is the *population* standard
// deviation (divide by n, not n-1) of residual CPU; `stddev_population`
// matches that definition exactly.  The evaluation additionally reports
// means over 30 repetitions and a Pearson correlation between objective
// value and simulated experiment time (Section 5.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hmn::util {

/// Arithmetic mean; 0.0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divide by n); 0.0 for n < 1.
[[nodiscard]] double variance_population(std::span<const double> xs);

/// Population standard deviation (divide by n) — Eq. 10's dispersion.
[[nodiscard]] double stddev_population(std::span<const double> xs);

/// Sample standard deviation (divide by n-1); 0.0 for n < 2.
[[nodiscard]] double stddev_sample(std::span<const double> xs);

/// Pearson product-moment correlation coefficient; 0.0 when either series
/// is constant or the series lengths differ / are < 2.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Minimum / maximum; 0.0 for an empty range.
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// p-th percentile (0 <= p <= 100) by linear interpolation on the sorted
/// copy of the data; 0.0 for an empty range.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Percentile bootstrap confidence interval for the mean: resamples `xs`
/// with replacement `resamples` times (deterministic in `seed`) and
/// returns the [ (1-level)/2, 1-(1-level)/2 ] percentiles of the resampled
/// means.  Used by the report layer to attach uncertainty to table cells
/// without distributional assumptions.  Degenerate inputs (n < 2) return
/// [mean, mean].
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                                   double level = 0.95,
                                                   std::size_t resamples = 1000,
                                                   std::uint64_t seed = 1);

/// Paired bootstrap: confidence interval for mean(xs - ys) over paired
/// samples (same instance mapped by two heuristics).  Excludes-zero tests
/// whether one heuristic is reliably better.  Series must be equal length.
[[nodiscard]] ConfidenceInterval bootstrap_paired_diff_ci(
    std::span<const double> xs, std::span<const double> ys,
    double level = 0.95, std::size_t resamples = 1000, std::uint64_t seed = 1);

/// Fixed-bucket histogram for nonnegative latency-style samples: `buckets`
/// uniform buckets cover [0, upper); anything larger lands in one overflow
/// bucket.  Memory stays O(buckets) regardless of sample count, so routers
/// and orchestrators can keep one per decision stream without retaining raw
/// latencies.  percentile() spreads each bucket's samples evenly across its
/// span and clamps to the exact observed [min, max] — single-sample and
/// 0th/100th-percentile queries are exact, interior ones accurate to a
/// bucket width.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double upper, std::size_t buckets = 64);

  void add(double x);
  /// Accumulates another histogram of the same shape.  A mismatched layout
  /// (different upper bound or bucket count) is rejected — bucket counts
  /// from different layouts are not commensurable, and silently folding
  /// them produced subtly wrong percentiles — leaving *this* untouched.
  /// Returns whether the merge was applied.
  [[nodiscard]] bool merge(const LatencyHistogram& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  /// p-th percentile (clamped to [0, 100]); 0.0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const;

 private:
  double upper_ = 0.0;
  double width_ = 0.0;
  std::vector<std::size_t> counts_;  // `buckets` regular + 1 overflow
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming accumulator (Welford) for mean/variance without storing the
/// samples.  Used by the experiment runner to aggregate repetitions.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance_population() const;
  [[nodiscard]] double stddev_population() const;
  [[nodiscard]] double variance_sample() const;
  [[nodiscard]] double stddev_sample() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hmn::util
