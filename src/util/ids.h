// Strong integer identifiers.
//
// Hosts, guests, physical links, and virtual links are addressed by dense
// integer indices into contiguous arrays.  Raw `std::size_t` indices invite
// cross-domain mixups (passing a guest index where a host index is expected
// compiles silently); these thin wrappers make each identifier a distinct
// type while remaining trivially copyable and hashable.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace hmn {

/// Strongly typed index.  `Tag` is a phantom type that distinguishes
/// otherwise-identical identifier types at compile time.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel meaning "no entity"; default-constructed Ids are invalid.
  [[nodiscard]] static constexpr Id invalid() { return Id{}; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<underlying_type>::max();
  }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  /// Convenience for indexing std containers.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

struct HostTag;
struct GuestTag;
struct PhysLinkTag;
struct VirtLinkTag;
struct NodeTag;
struct EdgeTag;

/// A node of the physical cluster graph (host or switch).
using NodeId = Id<NodeTag>;
/// An edge of a graph (physical link, in cluster context).
using EdgeId = Id<EdgeTag>;
/// A host: a cluster node capable of running guests.
using HostId = Id<HostTag>;
/// A guest virtual machine.
using GuestId = Id<GuestTag>;
/// A virtual link between two guests.
using VirtLinkId = Id<VirtLinkTag>;

}  // namespace hmn

template <typename Tag>
struct std::hash<hmn::Id<Tag>> {
  std::size_t operator()(const hmn::Id<Tag>& id) const noexcept {
    return std::hash<typename hmn::Id<Tag>::underlying_type>{}(id.value());
  }
};
