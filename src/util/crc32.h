// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// The checksum the recovery subsystem's write-ahead journal frames every
// record with: a torn tail write (the process died mid-append) or a
// bit-flip on disk must be *detected* at recovery time, never half-applied.
// Table-driven, one table shared process-wide, no allocation per call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hmn::util {

/// CRC-32 of `data`, starting from `seed` (pass a previous result to
/// checksum a logical stream in chunks: crc32(b, crc32(a)) == crc32(ab)).
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len,
                                         std::uint32_t seed = 0) {
  return crc32(
      std::string_view(static_cast<const char*>(data), len), seed);
}

}  // namespace hmn::util
