#include "util/crc32.h"

#include <array>

namespace hmn::util {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320U;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace hmn::util
