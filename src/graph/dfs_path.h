// Depth-first constrained path search — the path-mapping algorithm of the
// paper's Random (R) and Hosting-with-Search (HS) baselines (Section 5).
//
// The search backtracks through the graph looking for *any* loop-free path
// that satisfies the bandwidth demand on every edge and the accumulated
// latency bound.  Unlike A*Prune it makes no attempt to preserve bottleneck
// bandwidth for later links, which is exactly the deficiency the paper's
// evaluation attributes the baselines' failures to.
#pragma once

#include <optional>
#include <vector>

#include "graph/astar_prune.h"  // ConstrainedPath
#include "graph/graph.h"
#include "util/rng.h"

namespace hmn::graph {

/// DFS options.
struct DfsOptions {
  /// When set, neighbor expansion order is shuffled per node with this RNG,
  /// giving the randomized retries the Random baseline relies on.  When
  /// null, adjacency order is used (deterministic).
  util::Rng* rng = nullptr;
  /// Safety valve on visited states; 0 = unlimited.  The mapping instances
  /// in the paper are 40-node clusters, where full DFS is affordable.
  std::size_t max_expansions = 0;
};

/// Finds a loop-free origin->destination path where every edge has
/// `residual_bw >= demand_bw` and total latency <= max_latency.
/// Returns nullopt if the (possibly truncated) search finds none.
template <typename BwFn, typename LatFn>
[[nodiscard]] std::optional<ConstrainedPath> dfs_find_path(
    const Graph& g, NodeId origin, NodeId destination, double demand_bw,
    double max_latency, BwFn&& residual_bw, LatFn&& latency,
    DfsOptions opts = {}) {
  if (origin == destination) return ConstrainedPath{};

  std::vector<bool> on_path(g.node_count(), false);
  Path stack_edges;
  std::size_t expansions = 0;
  bool truncated = false;

  // Recursive lambda via explicit stack of (node, accumulated latency,
  // bottleneck) frames would obscure the backtracking; the cluster graphs
  // are small (tens of nodes), so plain recursion is clear and safe.
  std::optional<ConstrainedPath> found;
  auto rec = [&](auto&& self, NodeId u, double acc_lat,
                 double bottleneck) -> bool {
    if (u == destination) {
      found = ConstrainedPath{stack_edges, bottleneck, acc_lat};
      return true;
    }
    if (opts.max_expansions != 0 && ++expansions > opts.max_expansions) {
      truncated = true;
      return false;
    }
    std::vector<Adjacency> order(g.neighbors(u).begin(), g.neighbors(u).end());
    if (opts.rng != nullptr) opts.rng->shuffle(order.begin(), order.end());
    for (const Adjacency& adj : order) {
      if (on_path[adj.neighbor.index()]) continue;
      const double bw = residual_bw(adj.edge);
      if (bw < demand_bw) continue;
      const double nlat = acc_lat + latency(adj.edge);
      if (nlat > max_latency) continue;
      on_path[adj.neighbor.index()] = true;
      stack_edges.push_back(adj.edge);
      if (self(self, adj.neighbor, nlat, std::min(bottleneck, bw))) return true;
      stack_edges.pop_back();
      on_path[adj.neighbor.index()] = false;
      if (truncated) return false;
    }
    return false;
  };

  on_path[origin.index()] = true;
  rec(rec, origin, 0.0, std::numeric_limits<double>::infinity());
  return found;
}

/// Naive depth-first path search: returns the *first* simple path the
/// (optionally randomized) DFS stumbles upon, with no awareness of
/// bandwidth or latency during the search.  This is the literal reading of
/// the paper's baseline ("applies a depth-first search algorithm to find a
/// path connecting the hosts"); the caller checks the found path against
/// the virtual link's constraints and fails the attempt if they are
/// violated.  On a torus such first-found paths wander (random
/// self-avoiding walks), routinely blowing the latency budget — the
/// mechanism behind the paper's massive R/HS failure counts on the torus
/// cluster and their success on the switched cluster, where every wrong
/// turn is a dead end and the first path found is the 2-hop switch route.
template <typename BwFn, typename LatFn>
[[nodiscard]] std::optional<ConstrainedPath> dfs_first_path(
    const Graph& g, NodeId origin, NodeId destination, BwFn&& residual_bw,
    LatFn&& latency, DfsOptions opts = {}) {
  if (origin == destination) return ConstrainedPath{};

  std::vector<bool> on_path(g.node_count(), false);
  Path stack_edges;
  std::size_t expansions = 0;
  std::optional<ConstrainedPath> found;

  auto rec = [&](auto&& self, NodeId u) -> bool {
    if (u == destination) {
      double lat = 0.0;
      double bneck = std::numeric_limits<double>::infinity();
      for (const EdgeId e : stack_edges) {
        lat += latency(e);
        bneck = std::min(bneck, residual_bw(e));
      }
      found = ConstrainedPath{stack_edges, bneck, lat};
      return true;
    }
    if (opts.max_expansions != 0 && ++expansions > opts.max_expansions) {
      return true;  // abort the whole search, leaving `found` empty
    }
    std::vector<Adjacency> order(g.neighbors(u).begin(), g.neighbors(u).end());
    if (opts.rng != nullptr) opts.rng->shuffle(order.begin(), order.end());
    for (const Adjacency& adj : order) {
      if (on_path[adj.neighbor.index()]) continue;
      on_path[adj.neighbor.index()] = true;
      stack_edges.push_back(adj.edge);
      if (self(self, adj.neighbor)) return true;
      stack_edges.pop_back();
      on_path[adj.neighbor.index()] = false;
    }
    return false;
  };

  on_path[origin.index()] = true;
  rec(rec, origin);
  return found;
}

}  // namespace hmn::graph
