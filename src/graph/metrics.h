// Structural metrics of graphs, used by the topology explorer, the
// workload reports, and tests that pin down topology shapes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace hmn::graph {

struct DistanceMetrics {
  double diameter = 0.0;           // longest shortest path (hops)
  double average_distance = 0.0;   // mean over connected ordered pairs
  bool connected = true;
};

/// Hop-count diameter and mean distance via one BFS-equivalent Dijkstra per
/// node (unit weights).  O(n * (n + m) log n); fine for cluster-sized
/// graphs.  For a disconnected graph, unreachable pairs are skipped and
/// `connected` is false.
[[nodiscard]] inline DistanceMetrics distance_metrics(const Graph& g) {
  DistanceMetrics out;
  const std::size_t n = g.node_count();
  if (n < 2) return out;
  auto unit = [](EdgeId) { return 1.0; };
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto sp =
        dijkstra(g, NodeId{static_cast<NodeId::underlying_type>(v)}, unit);
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v) continue;
      if (sp.dist[u] == std::numeric_limits<double>::infinity()) {
        out.connected = false;
        continue;
      }
      out.diameter = std::max(out.diameter, sp.dist[u]);
      sum += sp.dist[u];
      ++pairs;
    }
  }
  out.average_distance = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  return out;
}

/// Per-edge shortest-path load: how many ordered (s, t) shortest paths use
/// each edge, one shortest path per pair (Dijkstra parent tree).  A cheap
/// edge-betweenness proxy that predicts which physical links saturate
/// first under uniformly spread traffic.
[[nodiscard]] inline std::vector<std::size_t> shortest_path_edge_load(
    const Graph& g) {
  std::vector<std::size_t> load(g.edge_count(), 0);
  const std::size_t n = g.node_count();
  auto unit = [](EdgeId) { return 1.0; };
  for (std::size_t s = 0; s < n; ++s) {
    const auto src = NodeId{static_cast<NodeId::underlying_type>(s)};
    const auto sp = dijkstra(g, src, unit);
    for (std::size_t t = 0; t < n; ++t) {
      if (t == s) continue;
      const auto dst = NodeId{static_cast<NodeId::underlying_type>(t)};
      if (!sp.reachable(dst)) continue;
      NodeId cur = dst;
      while (cur != src) {
        const EdgeId e = sp.parent_edge[cur.index()];
        ++load[e.index()];
        cur = g.endpoints(e).other(cur);
      }
    }
  }
  return load;
}

/// Articulation points (cut vertices): nodes whose removal disconnects
/// their component.  For a cluster these are the *critical hosts/switches*
/// — a failure there is unrepairable for any virtual link crossing the cut
/// (see core::repair_mapping).
///
/// Implementation: the definition, directly — remove each node and count
/// components among its former neighbors.  O(n * (n + m)), which is
/// microseconds at testbed sizes; a linear-time low-link DFS would save
/// nothing measurable and cost review effort.
[[nodiscard]] inline std::vector<NodeId> articulation_points(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> out;
  std::vector<bool> seen(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto removed = NodeId{static_cast<NodeId::underlying_type>(v)};
    if (g.degree(removed) < 2) continue;  // leaves cannot cut
    std::fill(seen.begin(), seen.end(), false);
    seen[v] = true;
    std::size_t components = 0;
    for (const Adjacency& root : g.neighbors(removed)) {
      if (seen[root.neighbor.index()]) continue;
      ++components;
      if (components > 1) break;  // already proven a cut vertex
      std::vector<NodeId> stack{root.neighbor};
      seen[root.neighbor.index()] = true;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const Adjacency& adj : g.neighbors(u)) {
          if (!seen[adj.neighbor.index()]) {
            seen[adj.neighbor.index()] = true;
            stack.push_back(adj.neighbor);
          }
        }
      }
    }
    if (components > 1) out.push_back(removed);
  }
  return out;
}

/// Degree histogram: result[d] = number of nodes with degree d.
[[nodiscard]] inline std::vector<std::size_t> degree_histogram(
    const Graph& g) {
  std::vector<std::size_t> hist;
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    const std::size_t d =
        g.degree(NodeId{static_cast<NodeId::underlying_type>(v)});
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace hmn::graph
