#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace hmn::graph {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return NodeId{static_cast<NodeId::underlying_type>(adjacency_.size() - 1)};
}

EdgeId Graph::add_edge(NodeId a, NodeId b) {
  assert(a.index() < node_count() && b.index() < node_count());
  const EdgeId id{static_cast<EdgeId::underlying_type>(edges_.size())};
  edges_.push_back({a, b});
  adjacency_[a.index()].push_back({b, id});
  if (a != b) adjacency_[b.index()].push_back({a, id});
  return id;
}

EdgeId Graph::find_edge(NodeId a, NodeId b) const {
  for (const Adjacency& adj : neighbors(a)) {
    if (adj.neighbor == b) return adj.edge;
  }
  return EdgeId::invalid();
}

bool Graph::connected() const { return component_count() <= 1; }

std::size_t Graph::component_count() const {
  const std::size_t n = node_count();
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack;
  std::size_t components = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    seen[start] = true;
    stack.push_back(NodeId{static_cast<NodeId::underlying_type>(start)});
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : neighbors(u)) {
        if (!seen[adj.neighbor.index()]) {
          seen[adj.neighbor.index()] = true;
          stack.push_back(adj.neighbor);
        }
      }
    }
  }
  return components;
}

double Graph::density() const {
  const auto n = static_cast<double>(node_count());
  if (n < 2.0) return 0.0;
  return static_cast<double>(edge_count()) / (n * (n - 1.0) / 2.0);
}

std::vector<NodeId> path_nodes(const Graph& g, NodeId origin,
                               const Path& path) {
  std::vector<NodeId> nodes;
  nodes.reserve(path.size() + 1);
  nodes.push_back(origin);
  NodeId cur = origin;
  for (EdgeId e : path) {
    cur = g.endpoints(e).other(cur);
    nodes.push_back(cur);
  }
  return nodes;
}

bool path_is_simple(const Graph& g, NodeId origin, NodeId dest,
                    const Path& path) {
  NodeId cur = origin;
  std::vector<NodeId> visited{origin};
  for (EdgeId e : path) {
    const EdgeEndpoints ep = g.endpoints(e);
    if (ep.a != cur && ep.b != cur) return false;  // edges do not chain
    cur = ep.other(cur);
    if (std::find(visited.begin(), visited.end(), cur) != visited.end()) {
      return false;  // node revisited -> loop
    }
    visited.push_back(cur);
  }
  return cur == dest;
}

}  // namespace hmn::graph
