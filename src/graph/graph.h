// Compact undirected multigraph.
//
// Both the physical cluster and the virtual environment are modeled as
// undirected graphs (the paper's links carry symmetric bandwidth/latency).
// Nodes are dense indices [0, n); edges are endpoint pairs addressed by
// `EdgeId`.  Attribute data (bandwidth, latency, host capacities) lives in
// the model layer, keyed by these ids, so algorithms stay generic and the
// graph stays a pure topology object.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/ids.h"

namespace hmn::graph {

/// One adjacency entry: the neighbor reached and the edge used.
struct Adjacency {
  NodeId neighbor;
  EdgeId edge;
};

/// Endpoints of an undirected edge (stored in insertion order; no
/// orientation is implied).
struct EdgeEndpoints {
  NodeId a;
  NodeId b;

  /// The endpoint that is not `n`.  Precondition: n is an endpoint.
  [[nodiscard]] NodeId other(NodeId n) const { return n == a ? b : a; }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  /// Appends a node; returns its id.
  NodeId add_node();

  /// Appends an undirected edge between existing nodes; returns its id.
  /// Self-loops and parallel edges are permitted (the model layer forbids
  /// them where the paper does).
  EdgeId add_edge(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] EdgeEndpoints endpoints(EdgeId e) const {
    return edges_[e.index()];
  }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId n) const {
    return adjacency_[n.index()];
  }

  [[nodiscard]] std::size_t degree(NodeId n) const {
    return adjacency_[n.index()].size();
  }

  /// Finds an edge between a and b, or EdgeId::invalid().  If several
  /// parallel edges exist, returns the first inserted.
  [[nodiscard]] EdgeId find_edge(NodeId a, NodeId b) const;

  /// True when every node is reachable from node 0 (vacuously true for the
  /// empty graph).  The paper's generator guarantees connected virtual
  /// environments; this is the checked invariant.
  [[nodiscard]] bool connected() const;

  /// Number of connected components.
  [[nodiscard]] std::size_t component_count() const;

  /// Density as used by the paper's generator: |E| / (n*(n-1)/2).
  [[nodiscard]] double density() const;

 private:
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<EdgeEndpoints> edges_;
};

/// A path as an edge sequence.  The node sequence is recovered with
/// `path_nodes`; an empty path is valid (source == destination).
using Path = std::vector<EdgeId>;

/// Expands a path starting at `origin` into its node sequence
/// (origin, ..., destination).  Precondition: consecutive edges share the
/// intermediate node (Eq. 6 of the paper).
[[nodiscard]] std::vector<NodeId> path_nodes(const Graph& g, NodeId origin,
                                             const Path& path);

/// True when `path` is a valid loop-free walk from `origin` to `dest`:
/// consecutive edges chain (Eq. 6) and no node repeats (Eq. 7 strengthened
/// to node-simplicity, which implies the paper's edge-distinctness).
[[nodiscard]] bool path_is_simple(const Graph& g, NodeId origin, NodeId dest,
                                  const Path& path);

}  // namespace hmn::graph
