// Dijkstra shortest paths with a caller-supplied edge weight.
//
// The Networking stage precomputes, for each A*Prune invocation, the
// latency-distance from every node to the link's destination host; that
// array (`ar[]` in the paper's Algorithm 1) is the admissibility heuristic
// used to prune paths that can no longer meet the latency constraint.
#pragma once

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace hmn::graph {

/// Result of a single-source Dijkstra run.
struct ShortestPaths {
  /// dist[v] = weight of the lightest path source->v, or +inf if
  /// unreachable.
  std::vector<double> dist;
  /// parent_edge[v] = edge by which v was settled (invalid for source and
  /// unreachable nodes).  Walking parents reconstructs a lightest path.
  std::vector<EdgeId> parent_edge;

  [[nodiscard]] bool reachable(NodeId v) const {
    return dist[v.index()] != std::numeric_limits<double>::infinity();
  }
};

/// Reusable heap storage for `dijkstra_into`.  The Networking stage runs one
/// Dijkstra per distinct destination host; a long-lived scratch keeps the
/// heap's allocation (and the ShortestPaths arrays passed alongside it) warm
/// across runs instead of reallocating per virtual link.
struct DijkstraScratch {
  std::vector<std::pair<double, NodeId>> heap;
};

/// Runs Dijkstra from `source` into caller-owned result/scratch buffers.
/// `weight(EdgeId) -> double` must be non-negative; edges may be skipped by
/// returning +infinity.  Reusing `out` and `scratch` across calls avoids the
/// per-call allocation of the returning overload below; results are
/// identical (the heap uses the same comparator and push/pop order).
template <typename WeightFn>
// hmn-lint: hot-path
void dijkstra_into(const Graph& g, NodeId source, WeightFn&& weight,
                   ShortestPaths& out, DijkstraScratch& scratch) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  out.dist.assign(g.node_count(), kInf);
  out.parent_edge.assign(g.node_count(), EdgeId::invalid());
  assert(source.index() < g.node_count());

  using Entry = std::pair<double, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  auto& heap = scratch.heap;
  heap.clear();

  out.dist[source.index()] = 0.0;
  heap.push_back({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), cmp);
    heap.pop_back();
    if (d > out.dist[u.index()]) continue;  // stale entry
    for (const Adjacency& adj : g.neighbors(u)) {
      const double w = weight(adj.edge);
      assert(!(w < 0.0));
      // hmn-lint: allow(float-eq, kInf is an exact pruned-edge sentinel, not a computed value)
      if (w == kInf) continue;
      const double nd = d + w;
      if (nd < out.dist[adj.neighbor.index()]) {
        out.dist[adj.neighbor.index()] = nd;
        out.parent_edge[adj.neighbor.index()] = adj.edge;
        heap.push_back({nd, adj.neighbor});
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

/// Runs Dijkstra from `source`.  Allocating convenience wrapper over
/// `dijkstra_into`.
template <typename WeightFn>
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, NodeId source,
                                     WeightFn&& weight) {
  ShortestPaths out;
  DijkstraScratch scratch;
  dijkstra_into(g, source, weight, out, scratch);
  return out;
}

/// Reconstructs the source->target path from a Dijkstra result.  Returns an
/// empty path when target == source; precondition: target reachable.
[[nodiscard]] inline Path extract_path(const Graph& g,
                                       const ShortestPaths& sp,
                                       NodeId source, NodeId target) {
  Path rev;
  NodeId cur = target;
  while (cur != source) {
    const EdgeId e = sp.parent_edge[cur.index()];
    assert(e.valid() && "target not reachable from source");
    rev.push_back(e);
    cur = g.endpoints(e).other(cur);
  }
  return {rev.rbegin(), rev.rend()};
}

/// "Widest path" variant: maximizes the bottleneck (minimum) capacity along
/// the path instead of minimizing a sum.  Used as a comparison baseline for
/// the modified A*Prune in the ablation benches.
template <typename CapacityFn>
[[nodiscard]] std::vector<double> widest_path_capacities(const Graph& g,
                                                         NodeId source,
                                                         CapacityFn&& cap) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> width(g.node_count(), 0.0);
  width[source.index()] = kInf;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry> heap;  // max-heap on width
  heap.push({kInf, source});
  while (!heap.empty()) {
    const auto [w, u] = heap.top();
    heap.pop();
    if (w < width[u.index()]) continue;
    for (const Adjacency& adj : g.neighbors(u)) {
      const double c = cap(adj.edge);
      const double nw = std::min(w, c);
      if (nw > width[adj.neighbor.index()]) {
        width[adj.neighbor.index()] = nw;
        heap.push({nw, adj.neighbor});
      }
    }
  }
  return width;
}

}  // namespace hmn::graph
