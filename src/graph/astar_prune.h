// A*Prune path search (Liu & Ramakrishnan, INFOCOM 2001) and the paper's
// modified 1-constrained variant (Algorithm 1).
//
// The original A*Prune enumerates the K shortest paths subject to multiple
// additive constraints, expanding partial paths in best-first order and
// pruning those whose optimistic completion (current accumulation + a
// precomputed Dijkstra lower bound to the destination) violates any
// constraint.  The paper modifies it for the Networking stage:
//
//   * the priority is the greatest *bottleneck bandwidth* of the partial
//     path (a max-min objective rather than an additive one);
//   * one additive constraint remains: accumulated latency, with the
//     Dijkstra latency-to-destination array `ar[]` as admissible heuristic;
//   * edges whose residual bandwidth is below the virtual link's demand are
//     pruned outright.
//
// `astar_prune_bottleneck` is that modified algorithm, faithful to the
// paper's pseudocode.  `astar_prune_ksp` is the general additive K-path
// form, provided because the library exposes the substrate, and used by the
// tests to cross-check the modified variant on latency-feasibility.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace hmn::graph {

/// A feasible path plus its bottleneck bandwidth and accumulated latency.
struct ConstrainedPath {
  Path edges;
  double bottleneck_bw = std::numeric_limits<double>::infinity();
  double total_latency = 0.0;
};

namespace detail {

/// Partial path stored as an immutable chain so that the frontier can share
/// prefixes; heads are indices into an arena.  This keeps A*Prune's frontier
/// memory linear in expansions instead of quadratic.
struct ChainNode {
  EdgeId edge;          // edge taken to reach `node`
  NodeId node;          // endpoint reached
  std::int32_t parent;  // arena index of predecessor, -1 for the origin
};

struct Frontier {
  double bottleneck;  // max-min objective: larger is better
  double latency;     // accumulated additive constraint
  std::int32_t chain;  // arena index of the partial path head
  NodeId last;

  // Max-heap by bottleneck; ties broken toward lower latency so that, among
  // equally wide paths, shorter ones surface first (deterministic result).
  bool operator<(const Frontier& o) const {
    // hmn-lint: allow(float-eq, heap comparator tie-break; an epsilon here would break strict weak ordering)
    if (bottleneck != o.bottleneck) return bottleneck < o.bottleneck;
    return latency > o.latency;
  }
};

}  // namespace detail

/// Search options for the modified A*Prune.
struct AStarPruneOptions {
  /// Per-node Pareto dominance pruning on (bottleneck, latency) labels.  A
  /// partial path reaching node v is discarded if another recorded partial
  /// path reached v with bandwidth >= and latency <=.  With strictly
  /// positive edge latencies this pruning is exact (any walk revisiting a
  /// node is dominated by its own prefix) and reduces the frontier from the
  /// number of feasible simple paths to the number of Pareto-optimal
  /// labels — the difference between minutes and milliseconds per link on
  /// the torus cluster.  Disable only to cross-check against the literal
  /// Algorithm 1 enumeration in tests.
  bool prune_dominated = true;

  /// Precomputed latency-to-destination array (the paper's ar[], one entry
  /// per node) to reuse across calls with the same destination.  When null,
  /// a Dijkstra run computes it.
  const std::vector<double>* lat_to_dest = nullptr;
};

/// The paper's modified 1-constrained A*Prune (Algorithm 1).
///
/// Finds a loop-free path origin->destination maximizing the bottleneck of
/// `residual_bw(EdgeId)`, subject to:
///   * every edge on the path has residual_bw >= `demand_bw` (Eq. 9 pruning)
///   * sum of `latency(EdgeId)` over the path <= `max_latency` (Eq. 8),
///     pruned via the Dijkstra latency-to-destination lower bound.
///
/// Returns nullopt when no feasible path exists.  origin == destination
/// yields the empty path (infinite bottleneck, zero latency) — virtual links
/// between co-located guests are handled inside the host (Section 5.2).
template <typename BwFn, typename LatFn>
[[nodiscard]] std::optional<ConstrainedPath> astar_prune_bottleneck(
    const Graph& g, NodeId origin, NodeId destination, double demand_bw,
    double max_latency, BwFn&& residual_bw, LatFn&& latency,
    const AStarPruneOptions& opts = {}) {
  if (origin == destination) return ConstrainedPath{};

  // ar[c] = shortest achievable latency from c to destination (undirected
  // graph: Dijkstra from the destination gives distance-to-destination).
  std::vector<double> computed;
  if (opts.lat_to_dest == nullptr) {
    computed = dijkstra(g, destination, [&](EdgeId e) { return latency(e); }).dist;
  }
  const std::vector<double>& ar =
      opts.lat_to_dest != nullptr ? *opts.lat_to_dest : computed;
  if (ar[origin.index()] > max_latency) {
    return std::nullopt;  // even the latency-optimal path is inadmissible
  }

  std::vector<detail::ChainNode> arena;
  std::priority_queue<detail::Frontier> set;
  set.push({std::numeric_limits<double>::infinity(), 0.0, -1, origin});

  // Pareto label store per node: non-dominated (bottleneck, latency) pairs
  // of partial paths already queued for that node.
  struct Label {
    double bottleneck;
    double latency;
  };
  std::vector<std::vector<Label>> labels(
      opts.prune_dominated ? g.node_count() : 0);
  auto dominated = [&](NodeId n, double bneck, double lat) {
    for (const Label& l : labels[n.index()]) {
      if (l.bottleneck >= bneck && l.latency <= lat) return true;
    }
    return false;
  };
  auto record = [&](NodeId n, double bneck, double lat) {
    auto& ls = labels[n.index()];
    std::erase_if(ls, [&](const Label& l) {
      return bneck >= l.bottleneck && lat <= l.latency;
    });
    ls.push_back({bneck, lat});
  };

  // Reconstructs the node set of a partial path for the loop check.
  auto on_path = [&](std::int32_t chain, NodeId n) {
    if (n == origin) return true;
    for (std::int32_t i = chain; i >= 0; i = arena[static_cast<std::size_t>(i)].parent) {
      if (arena[static_cast<std::size_t>(i)].node == n) return true;
    }
    return false;
  };

  while (!set.empty()) {
    const detail::Frontier best = set.top();
    set.pop();
    if (best.last == destination) {
      ConstrainedPath out;
      out.bottleneck_bw = best.bottleneck;
      out.total_latency = best.latency;
      for (std::int32_t i = best.chain; i >= 0;
           i = arena[static_cast<std::size_t>(i)].parent) {
        out.edges.push_back(arena[static_cast<std::size_t>(i)].edge);
      }
      std::reverse(out.edges.begin(), out.edges.end());
      return out;
    }
    for (const Adjacency& adj : g.neighbors(best.last)) {
      if (on_path(best.chain, adj.neighbor)) continue;  // loop-free (Eq. 7)
      const double bw = residual_bw(adj.edge);
      if (bw < demand_bw) continue;  // bandwidth pruning (Eq. 9)
      const double lat = latency(adj.edge);
      const double acc = best.latency + lat;
      // Admissibility pruning: optimistic completion must satisfy Eq. 8.
      const double bound = ar[adj.neighbor.index()];
      if (acc + bound > max_latency) continue;
      const double nbneck = std::min(best.bottleneck, bw);
      if (opts.prune_dominated) {
        if (dominated(adj.neighbor, nbneck, acc)) continue;
        record(adj.neighbor, nbneck, acc);
      }
      arena.push_back({adj.edge, adj.neighbor, best.chain});
      set.push({nbneck, acc,
                static_cast<std::int32_t>(arena.size() - 1), adj.neighbor});
    }
  }
  return std::nullopt;
}

/// General A*Prune: the K shortest loop-free paths by additive length
/// `length(EdgeId)`, subject to additive constraints given as
/// (weight fn, bound) pairs evaluated with Dijkstra lower-bound pruning.
///
/// This is the algorithm of the paper's reference [8], of which Algorithm 1
/// is a specialization; exposing it makes the library usable for QoS
/// routing beyond the mapping problem and lets tests cross-validate the
/// modified variant.
struct AdditiveConstraint {
  std::vector<double> weight;  // per-edge weight, indexed by EdgeId
  double bound;
};

template <typename LenFn>
[[nodiscard]] std::vector<ConstrainedPath> astar_prune_ksp(
    const Graph& g, NodeId origin, NodeId destination, std::size_t k,
    LenFn&& length, const std::vector<AdditiveConstraint>& constraints) {
  std::vector<ConstrainedPath> results;
  if (k == 0) return results;
  if (origin == destination) {
    results.push_back(ConstrainedPath{});
    return results;
  }

  // Lower bounds to destination: one Dijkstra per metric (length + each
  // constraint).
  const ShortestPaths len_bound =
      dijkstra(g, destination, [&](EdgeId e) { return length(e); });
  if (!len_bound.reachable(origin)) return results;
  std::vector<ShortestPaths> cons_bound;
  cons_bound.reserve(constraints.size());
  for (const auto& c : constraints) {
    cons_bound.push_back(
        dijkstra(g, destination, [&](EdgeId e) { return c.weight[e.index()]; }));
  }

  struct KFrontier {
    double est;  // accumulated length + lower bound (A* f-value)
    double len;  // accumulated length (g-value)
    std::vector<double> acc;  // accumulated constraint values
    std::int32_t chain;
    NodeId last;
    bool operator<(const KFrontier& o) const { return est > o.est; }  // min-heap
  };

  std::vector<detail::ChainNode> arena;
  std::priority_queue<KFrontier> set;
  set.push({len_bound.dist[origin.index()], 0.0,
            std::vector<double>(constraints.size(), 0.0), -1, origin});

  auto on_path = [&](std::int32_t chain, NodeId n) {
    if (n == origin) return true;
    for (std::int32_t i = chain; i >= 0;
         i = arena[static_cast<std::size_t>(i)].parent) {
      if (arena[static_cast<std::size_t>(i)].node == n) return true;
    }
    return false;
  };

  while (!set.empty() && results.size() < k) {
    KFrontier best = set.top();
    set.pop();
    if (best.last == destination) {
      ConstrainedPath out;
      out.total_latency = best.len;
      out.bottleneck_bw = std::numeric_limits<double>::infinity();
      for (std::int32_t i = best.chain; i >= 0;
           i = arena[static_cast<std::size_t>(i)].parent) {
        out.edges.push_back(arena[static_cast<std::size_t>(i)].edge);
      }
      std::reverse(out.edges.begin(), out.edges.end());
      results.push_back(std::move(out));
      continue;
    }
    for (const Adjacency& adj : g.neighbors(best.last)) {
      if (on_path(best.chain, adj.neighbor)) continue;
      bool feasible = true;
      std::vector<double> acc = best.acc;
      for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
        acc[ci] += constraints[ci].weight[adj.edge.index()];
        if (acc[ci] + cons_bound[ci].dist[adj.neighbor.index()] >
            constraints[ci].bound) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      const double nlen = best.len + length(adj.edge);
      const double bound = len_bound.dist[adj.neighbor.index()];
      // hmn-lint: allow(float-eq, infinity is an exact unreachable sentinel, not a computed value)
      if (bound == std::numeric_limits<double>::infinity()) continue;
      arena.push_back({adj.edge, adj.neighbor, best.chain});
      set.push({nlen + bound, nlen, std::move(acc),
                static_cast<std::int32_t>(arena.size() - 1), adj.neighbor});
    }
  }
  return results;
}

}  // namespace hmn::graph
