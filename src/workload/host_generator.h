// Random heterogeneous host capacities (Section 5.1: "resources of each of
// the 40 hosts in the cluster were randomly generated").
#pragma once

#include <vector>

#include "model/resources.h"
#include "util/rng.h"
#include "workload/presets.h"

namespace hmn::workload {

/// Draws `count` host capacities from the uniform ranges of `profile`.
[[nodiscard]] std::vector<model::HostCapacity> generate_hosts(
    std::size_t count, const HostProfile& profile, util::Rng& rng);

}  // namespace hmn::workload
