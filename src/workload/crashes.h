// Crash-point schedules for the recovery chaos harness.
//
// The write-ahead journal (src/recovery) appends one CRC-framed record per
// orchestrator transaction; every append is a place the process can die,
// possibly leaving a torn partial frame behind.  A CrashPoint names one
// such site by journal *sequence number* — the index of the record whose
// append is killed — plus a seed for how many bytes of the frame the
// doomed write persisted (0 .. the whole frame; the injector reduces the
// seed modulo frame length + 1).
//
// Schedules are deterministic in (seed, count, max_seq): the chaos driver
// and the E18 gate re-derive the same kill list on every run, so a crash
// reproduction is one (seed, index) pair, not a core dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmn::workload {

/// One injected crash: die while appending journal record `record_seq`,
/// persisting `torn_seed`-derived bytes of its frame.
struct CrashPoint {
  std::uint64_t record_seq = 0;
  std::uint64_t torn_seed = 0;

  friend bool operator==(const CrashPoint&, const CrashPoint&) = default;
};

/// Draws `count` crash points with record_seq uniform in [0, max_seq) and
/// an independent torn seed each, sorted ascending by record_seq (ties
/// keep draw order).  Deterministic in all arguments; max_seq == 0 or
/// count == 0 yields an empty schedule.
[[nodiscard]] std::vector<CrashPoint> generate_crash_schedule(
    std::uint64_t seed, std::size_t count, std::uint64_t max_seq);

}  // namespace hmn::workload
