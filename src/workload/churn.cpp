#include "workload/churn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"
#include "workload/power_domains.h"
#include "workload/venv_generator.h"

namespace hmn::workload {
namespace {

/// Exponential variate with the given mean.  log1p(-u) is finite for
/// u in [0, 1), which uniform01() guarantees.
double exponential(util::Rng& rng, double mean) {
  return -mean * std::log1p(-rng.uniform01());
}

double lifetime_draw(util::Rng& rng, const ChurnOptions& opts) {
  if (opts.lifetime == LifetimeDistribution::kExponential) {
    return exponential(rng, opts.mean_lifetime);
  }
  // Pareto with shape alpha and the scale that yields mean_lifetime:
  // E[X] = xm * alpha / (alpha - 1)  =>  xm = mean * (alpha - 1) / alpha.
  const double alpha = std::max(1.0 + 1e-9, opts.pareto_alpha);
  const double xm = opts.mean_lifetime * (alpha - 1.0) / alpha;
  return xm * std::pow(1.0 - rng.uniform01(), -1.0 / alpha);
}

int kind_rank(EventKind k) {
  switch (k) {
    case EventKind::kArrive: return 0;
    case EventKind::kGrow: return 1;
    case EventKind::kDepart: return 2;
    // Recoveries rank before failures: when a repair lands at the exact
    // instant of the element's *next* failure, the recovery belongs to the
    // earlier renewal interval and must apply first, or the stale recover
    // would resurrect the freshly dead element.  Generators keep a recover
    // strictly after its own fail, so the within-pair order is never a tie.
    case EventKind::kHostRecover: return 3;
    case EventKind::kLinkRecover: return 4;
    case EventKind::kBlastRecover: return 5;
    case EventKind::kPowerRecover: return 6;
    case EventKind::kHostFail: return 7;
    case EventKind::kLinkFail: return 8;
    case EventKind::kBlastFail: return 9;
    case EventKind::kPowerFail: return 10;
  }
  return 11;
}

}  // namespace

bool event_before(const TenantEvent& a, const TenantEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.tenant != b.tenant) return a.tenant < b.tenant;
  if (a.kind != b.kind) return kind_rank(a.kind) < kind_rank(b.kind);
  return a.element < b.element;
}

ChurnTrace generate_churn(const ChurnOptions& opts, std::uint64_t seed) {
  ChurnTrace trace;
  trace.profile = opts.profile;
  util::Rng rng(seed);

  double now = 0.0;
  std::uint32_t key = 0;
  while (true) {
    now += exponential(rng, 1.0 / std::max(1e-12, opts.arrival_rate));
    if (now >= opts.horizon) break;

    TenantEvent arrive;
    arrive.time = now;
    arrive.kind = EventKind::kArrive;
    arrive.tenant = key;
    arrive.guest_count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(opts.min_guests),
        static_cast<std::int64_t>(std::max(opts.min_guests, opts.max_guests))));
    arrive.density = opts.density;
    arrive.seed = util::derive_seed(seed, key, 1);
    // Tier and replica draws are short-circuited on their zero defaults so
    // legacy (opts without tiers/replicas) streams consume no extra draws
    // and replay byte-identically.
    if (opts.gold_fraction > 0.0 || opts.best_effort_fraction > 0.0) {
      const double u = rng.uniform01();
      if (u < opts.gold_fraction) {
        arrive.sla_tier = model::SlaTier::kGold;
      } else if (u < opts.gold_fraction + opts.best_effort_fraction) {
        arrive.sla_tier = model::SlaTier::kBestEffort;
      }
    }
    if (opts.replica_probability > 0.0 && opts.replica_n >= 2 &&
        rng.chance(opts.replica_probability)) {
      arrive.replica_n = std::min<std::uint32_t>(
          opts.replica_n, static_cast<std::uint32_t>(arrive.guest_count));
      arrive.replica_k = std::clamp<std::uint32_t>(opts.replica_k, 1,
                                                   arrive.replica_n);
      if (arrive.replica_n < 2) arrive.replica_n = arrive.replica_k = 0;
    }
    trace.events.push_back(arrive);

    const double life = lifetime_draw(rng, opts);

    if (rng.chance(opts.grow_probability) && opts.max_grow_guests > 0) {
      TenantEvent grow;
      grow.time = now + rng.uniform01() * life;
      grow.kind = EventKind::kGrow;
      grow.tenant = key;
      grow.add_guests = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(opts.max_grow_guests)));
      grow.add_links = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(grow.add_guests)));
      grow.seed = util::derive_seed(seed, key, 2);
      trace.events.push_back(grow);
    }

    TenantEvent depart;
    depart.time = now + life;
    depart.kind = EventKind::kDepart;
    depart.tenant = key;
    trace.events.push_back(depart);

    ++key;
  }

  std::stable_sort(trace.events.begin(), trace.events.end(), event_before);
  return trace;
}

namespace {

/// Mean-preserving time-to-failure draw.  Whatever the shape, the returned
/// variate has expectation `mean`, so sweeps over distributions compare
/// like against like.  The exponential path consumes exactly the same RNG
/// stream as before the shapes existed, keeping old seeds byte-stable.
double mttf_draw(util::Rng& rng, double mean, const FailureOptions& opts) {
  switch (opts.mttf_dist) {
    case MttfDistribution::kExponential:
      return exponential(rng, mean);
    case MttfDistribution::kWeibull: {
      // E[X] = λ Γ(1 + 1/k)  =>  λ = mean / Γ(1 + 1/k); inverse CDF is
      // λ(-ln(1-u))^{1/k}.
      const double k = std::max(1e-3, opts.weibull_shape);
      const double lambda = mean / std::tgamma(1.0 + 1.0 / k);
      return lambda * std::pow(-std::log1p(-rng.uniform01()), 1.0 / k);
    }
    case MttfDistribution::kLognormal: {
      // E[X] = exp(μ + σ²/2)  =>  μ = ln(mean) - σ²/2.
      const double sigma = std::max(0.0, opts.lognormal_sigma);
      const double mu = std::log(mean) - 0.5 * sigma * sigma;
      return std::exp(mu + sigma * rng.normal());
    }
  }
  return exponential(rng, mean);
}

/// Advances `now` by an exponential repair draw, then nudges it so the
/// recovery lands *strictly* after the failure at `fail_time`.  Without the
/// nudge a denormal-small repair draw leaves now == fail_time, and since
/// the canonical order puts recoveries first the pair would apply as
/// recover-then-fail — killing the element until the next renewal.
double repair_time(util::Rng& rng, double fail_time, double mttr) {
  double t = fail_time + exponential(rng, std::max(1e-9, mttr));
  if (t <= fail_time) {
    t = std::nextafter(fail_time, std::numeric_limits<double>::infinity());
  }
  return t;
}

}  // namespace

std::vector<TenantEvent> generate_failures(const FailureOptions& opts,
                                           const model::PhysicalCluster& cluster,
                                           std::uint64_t seed) {
  std::vector<TenantEvent> events;
  // One alternating up/down renewal process per element, each on its own
  // derived stream so the draw for element e never depends on how many
  // other elements exist.
  auto renewal = [&](double mttf, double mttr, EventKind fail,
                     EventKind recover, std::uint32_t element,
                     std::uint64_t stream) {
    if (mttf <= 0.0) return;
    util::Rng rng(stream);
    double now = 0.0;
    while (true) {
      now += mttf_draw(rng, mttf, opts);
      if (now >= opts.horizon) break;
      TenantEvent down;
      down.time = now;
      down.kind = fail;
      down.element = element;
      events.push_back(down);
      now = repair_time(rng, now, mttr);
      TenantEvent up;
      up.time = now;
      up.kind = recover;
      up.element = element;
      events.push_back(up);  // always emitted: the substrate drains too
      if (now >= opts.horizon) break;
    }
  };
  for (const NodeId h : cluster.hosts()) {
    renewal(opts.host_mttf, opts.host_mttr, EventKind::kHostFail,
            EventKind::kHostRecover, h.value(),
            util::derive_seed(seed, 1, h.value()));
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    renewal(opts.link_mttf, opts.link_mttr, EventKind::kLinkFail,
            EventKind::kLinkRecover, static_cast<std::uint32_t>(e),
            util::derive_seed(seed, 2, e));
  }

  // Correlated blasts: each switch is its own renewal process; the group
  // (adjacent hosts, every link incident to the switch or those hosts) is
  // computed once per switch and stamped on both the fail and the recover
  // so consumers and replayers apply it atomically without bookkeeping.
  if (opts.blast_mttf > 0.0) {
    const graph::Graph& g = cluster.graph();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      const NodeId node{static_cast<NodeId::underlying_type>(n)};
      if (cluster.is_host(node)) continue;
      std::vector<std::uint32_t> hosts;
      std::vector<std::uint32_t> links;
      for (const graph::Adjacency& adj : g.neighbors(node)) {
        links.push_back(adj.edge.value());
        if (!cluster.is_host(adj.neighbor)) continue;
        hosts.push_back(adj.neighbor.value());
        for (const graph::Adjacency& leaf : g.neighbors(adj.neighbor)) {
          links.push_back(leaf.edge.value());
        }
      }
      std::sort(hosts.begin(), hosts.end());
      hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
      std::sort(links.begin(), links.end());
      links.erase(std::unique(links.begin(), links.end()), links.end());

      util::Rng rng(util::derive_seed(seed, 3, n));
      double now = 0.0;
      while (true) {
        now += mttf_draw(rng, opts.blast_mttf, opts);
        if (now >= opts.horizon) break;
        TenantEvent down;
        down.time = now;
        down.kind = EventKind::kBlastFail;
        down.element = node.value();
        down.group_hosts = hosts;
        down.group_links = links;
        events.push_back(down);
        now = repair_time(rng, now, opts.blast_mttr);
        TenantEvent up;
        up.time = now;
        up.kind = EventKind::kBlastRecover;
        up.element = node.value();
        up.group_hosts = hosts;
        up.group_links = links;
        events.push_back(up);
        if (now >= opts.horizon) break;
      }
    }
  }
  // Power-domain outages with one-crew serialized repair.  Each domain's
  // failure instants and hands-on repair durations come from its own
  // derived stream (class 4), but a single crew works the queue: repair of
  // the next-failed domain starts at max(its failure, crew_free), FIFO by
  // failure time with ties broken by domain id.  A domain's next up-time
  // starts only once its repair completes, so the per-domain renewal
  // structure is preserved while storms stack repairs back-to-back.
  if (opts.power_mttf > 0.0 && opts.power_domains > 0) {
    struct DomainState {
      util::Rng rng;
      double next_fail = 0.0;
      std::vector<std::uint32_t> hosts;
      std::vector<std::uint32_t> links;
    };
    std::vector<DomainState> domains;
    const graph::Graph& g = cluster.graph();
    for (std::uint32_t d = 0; d < opts.power_domains; ++d) {
      DomainState ds{util::Rng(util::derive_seed(seed, 4, d)), 0.0,
                     power_domain_hosts(cluster, opts.power_domains, d),
                     {}};
      for (const std::uint32_t h : ds.hosts) {
        const NodeId node{h};
        for (const graph::Adjacency& adj : g.neighbors(node)) {
          ds.links.push_back(adj.edge.value());
        }
      }
      std::sort(ds.links.begin(), ds.links.end());
      ds.links.erase(std::unique(ds.links.begin(), ds.links.end()),
                     ds.links.end());
      ds.next_fail = mttf_draw(ds.rng, opts.power_mttf, opts);
      domains.push_back(std::move(ds));
    }

    double crew_free = 0.0;
    while (true) {
      // Earliest pending failure inside the horizon; ties by domain id.
      std::size_t pick = domains.size();
      for (std::size_t d = 0; d < domains.size(); ++d) {
        if (domains[d].hosts.empty()) continue;
        if (domains[d].next_fail >= opts.horizon) continue;
        if (pick == domains.size() ||
            domains[d].next_fail < domains[pick].next_fail) {
          pick = d;
        }
      }
      if (pick == domains.size()) break;
      DomainState& ds = domains[pick];

      TenantEvent down;
      down.time = ds.next_fail;
      down.kind = EventKind::kPowerFail;
      down.element = static_cast<std::uint32_t>(pick);
      down.group_hosts = ds.hosts;
      down.group_links = ds.links;
      events.push_back(down);

      const double start = std::max(ds.next_fail, crew_free);
      const double recover =
          repair_time(ds.rng, start, opts.power_mttr);
      crew_free = recover;
      TenantEvent up;
      up.time = recover;
      up.kind = EventKind::kPowerRecover;
      up.element = static_cast<std::uint32_t>(pick);
      up.group_hosts = ds.hosts;
      up.group_links = ds.links;
      events.push_back(up);

      ds.next_fail = recover + mttf_draw(ds.rng, opts.power_mttf, opts);
    }
  }

  std::stable_sort(events.begin(), events.end(), event_before);
  return events;
}

void merge_events(ChurnTrace& trace, std::vector<TenantEvent> extra) {
  trace.events.insert(trace.events.end(),
                      std::make_move_iterator(extra.begin()),
                      std::make_move_iterator(extra.end()));
  std::stable_sort(trace.events.begin(), trace.events.end(), event_before);
}

model::VirtualEnvironment make_event_venv(const GuestProfile& profile,
                                          const TenantEvent& ev) {
  VenvGenOptions opts;
  opts.guest_count = ev.guest_count;
  opts.density = ev.density;
  opts.profile = profile;
  util::Rng rng(ev.seed);
  model::VirtualEnvironment venv = generate_venv(opts, rng);
  venv.set_sla_tier(ev.sla_tier);
  // The replica group covers the venv's first replica_n guests — a
  // seedless structural choice, so replay needs only (replica_n,
  // replica_k) from the event.
  const std::uint32_t n = std::min<std::uint32_t>(
      ev.replica_n, static_cast<std::uint32_t>(venv.guest_count()));
  if (n >= 2 && ev.replica_k >= 1 && ev.replica_k <= n) {
    std::vector<GuestId> members;
    for (std::uint32_t i = 0; i < n; ++i) members.push_back(GuestId{i});
    venv.add_replica_group(std::move(members), ev.replica_k);
  }
  return venv;
}

model::VirtualEnvironment apply_growth(const model::VirtualEnvironment& base,
                                       const GuestProfile& profile,
                                       const TenantEvent& ev) {
  model::VirtualEnvironment grown;
  for (std::size_t g = 0; g < base.guest_count(); ++g) {
    grown.add_guest(
        base.guest(GuestId{static_cast<GuestId::underlying_type>(g)}));
  }
  for (std::size_t l = 0; l < base.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = base.endpoints(id);
    grown.add_link(ep.src, ep.dst, base.link(id));
  }
  grown.set_sla_tier(base.sla_tier());
  for (const model::ReplicaGroup& rg : base.replica_groups()) {
    grown.add_replica_group(rg.members, rg.required);
  }

  util::Rng rng(ev.seed);
  auto draw_guest = [&] {
    return model::GuestRequirements{
        rng.uniform(profile.proc_mips.lo, profile.proc_mips.hi),
        rng.uniform(profile.mem_mb.lo, profile.mem_mb.hi),
        rng.uniform(profile.stor_gb.lo, profile.stor_gb.hi)};
  };
  auto draw_demand = [&] {
    // Same zero-fraction short-circuit as generate_venv: legacy profiles
    // must not consume an extra draw per link.
    return model::VirtualLinkDemand{
        rng.uniform(profile.link_bw_mbps.lo, profile.link_bw_mbps.hi),
        rng.uniform(profile.link_lat_ms.lo, profile.link_lat_ms.hi),
        profile.critical_link_fraction > 0.0 &&
            rng.chance(profile.critical_link_fraction)};
  };

  // Each new guest attaches to a uniformly chosen predecessor, so the
  // grown graph stays connected whenever the base was.
  for (std::size_t i = 0; i < ev.add_guests; ++i) {
    if (grown.guest_count() == 0) {
      grown.add_guest(draw_guest());
      continue;
    }
    const GuestId anchor{static_cast<GuestId::underlying_type>(
        rng.index(grown.guest_count()))};
    const GuestId fresh = grown.add_guest(draw_guest());
    grown.add_link(anchor, fresh, draw_demand());
  }
  for (std::size_t i = 0; i < ev.add_links && grown.guest_count() >= 2; ++i) {
    const GuestId a{
        static_cast<GuestId::underlying_type>(rng.index(grown.guest_count()))};
    GuestId b = a;
    while (b == a) {
      b = GuestId{static_cast<GuestId::underlying_type>(
          rng.index(grown.guest_count()))};
    }
    grown.add_link(a, b, draw_demand());
  }
  return grown;
}

}  // namespace hmn::workload
