// Random virtual-environment generator (Section 5.1): takes a guest count
// and a graph density, produces a *connected* virtual topology with
// uniformly drawn guest resources and link demands.
//
// Feasibility normalization: the paper's high-level 10:1 scenario puts mean
// aggregate guest memory at ~96% of mean aggregate host memory, yet reports
// almost no hosting failures (5 of 480 across all scenarios), implying the
// authors' generator produced instances that fit.  When a target cluster is
// supplied, this generator optionally rescales guest memory/storage so that
// aggregate demand stays below `capacity_fraction` of the cluster's
// aggregate capacity, preserving the paper's failure profile.  The scaling
// is uniform across guests, so relative heterogeneity is untouched.  See
// EXPERIMENTS.md for the full rationale.
#pragma once

#include <optional>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "util/rng.h"
#include "workload/presets.h"

namespace hmn::workload {

struct VenvGenOptions {
  std::size_t guest_count = 0;
  double density = 0.0;
  GuestProfile profile;
  /// When set, guest memory/storage are rescaled so aggregate demand does
  /// not exceed capacity_fraction of this cluster's aggregate capacity.
  const model::PhysicalCluster* normalize_to = nullptr;
  /// 0.8 keeps first-fit hosting failures rare (the paper reports 5 of
  /// 480), while still leaving the 10:1 scenario memory-bound enough that
  /// the Migration stage has no headroom (Table 2's HMN/RA convergence).
  double capacity_fraction = 0.8;
};

/// Generates a connected virtual environment.  Deterministic in `rng`.
[[nodiscard]] model::VirtualEnvironment generate_venv(
    const VenvGenOptions& opts, util::Rng& rng);

}  // namespace hmn::workload
