// The paper's experiment setup (Table 1) as named parameter presets.
//
//   * Physical: 40 heterogeneous hosts (memory U[1,3] GB, storage
//     U[1,3] TB, CPU U[1000,3000] MIPS) on 1 Gbps / 5 ms links, arranged
//     as a 2-D torus or a switched cluster of cascaded 64-port switches.
//   * High-level workload (grid/cloud application testing, ratios up to
//     10:1): guests U[128,256] MB / U[100,200] GB / U[50,100] MIPS, links
//     U[0.5,1] Mbps with U[30,60] ms latency bounds, density 0.015-0.025.
//   * Low-level workload (P2P protocol testing, ratios 20:1-50:1): guests
//     U[19,38] MB / U[19,38] GB / U[19,38] MIPS, links U[87,175] kbps with
//     U[30,60] ms latency bounds, density 0.01.
#pragma once

#include <cstdint>

#include "model/resources.h"

namespace hmn::workload {

/// Closed interval for a uniformly distributed quantity.
struct Range {
  double lo = 0.0;
  double hi = 0.0;
};

/// Distributions for one host's capacities.
struct HostProfile {
  Range proc_mips;
  Range mem_mb;
  Range stor_gb;
};

/// Distributions for one guest and its links.
struct GuestProfile {
  Range proc_mips;
  Range mem_mb;
  Range stor_gb;
  Range link_bw_mbps;
  Range link_lat_ms;
  /// Fraction of a tenant's virtual links marked `critical` (must stay
  /// routable; the rest are best-effort and may go dark during healing).
  /// Zero — the default, and every pre-v3 trace — draws nothing from the
  /// RNG, so legacy streams replay byte-identically.
  double critical_link_fraction = 0.0;
};

/// Table 1, physical environment column.
[[nodiscard]] HostProfile paper_host_profile();

/// Uniform physical link of the paper's clusters: 1 Gbps, 5 ms.
[[nodiscard]] model::LinkProps paper_link_props();

/// Table 1, high-level workload column.
[[nodiscard]] GuestProfile high_level_profile();

/// Table 1, low-level workload column.
[[nodiscard]] GuestProfile low_level_profile();

/// Number of hosts in the paper's clusters.
inline constexpr std::size_t kPaperHostCount = 40;
/// 2-D torus factorization used for the 40-host cluster.
inline constexpr std::size_t kPaperTorusRows = 8;
inline constexpr std::size_t kPaperTorusCols = 5;
/// Port count of the cascaded switches.
inline constexpr std::size_t kPaperSwitchPorts = 64;

}  // namespace hmn::workload
