// Evaluation scenarios (Section 5.1-5.2): the cross product of the paper's
// guest:host ratios, virtual-graph densities, workload presets, and the two
// cluster topologies, plus factories that instantiate a concrete cluster
// and virtual environment for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "workload/presets.h"

namespace hmn::workload {

enum class ClusterKind : std::uint8_t { kTorus2D, kSwitched };

[[nodiscard]] constexpr const char* to_string(ClusterKind k) {
  return k == ClusterKind::kTorus2D ? "2-D Torus" : "Switched";
}

enum class WorkloadKind : std::uint8_t { kHighLevel, kLowLevel };

[[nodiscard]] constexpr const char* to_string(WorkloadKind k) {
  return k == WorkloadKind::kHighLevel ? "high-level" : "low-level";
}

/// One row of the paper's Tables 2-3.
struct Scenario {
  double ratio = 1.0;    // guests per host (e.g. 2.5 means 2.5:1)
  double density = 0.0;  // virtual graph density
  WorkloadKind workload = WorkloadKind::kHighLevel;
  /// Multiplier on guest CPU demand (vproc).  1.0 reproduces Table 1.  The
  /// correlation study (bench E4) raises it to put hosts into the CPU-
  /// contention regime that the paper's own objective magnitudes imply —
  /// with Table 1's raw values, aggregate CPU demand never exceeds ~40% of
  /// capacity and placement quality cannot affect the experiment runtime.
  double vproc_scale = 1.0;

  /// Row label as printed in the paper, e.g. "2.5:1 0.015".
  [[nodiscard]] std::string label() const;
  /// Guest count for a cluster of `hosts` hosts.
  [[nodiscard]] std::size_t guest_count(std::size_t hosts) const;
};

/// The 16 scenario rows of Tables 2-3: high-level ratios
/// {2.5, 5, 7.5, 10} x densities {0.015, 0.02, 0.025}, then low-level
/// ratios {20, 30, 40, 50} x density 0.01.
[[nodiscard]] std::vector<Scenario> paper_scenarios();

/// Builds one of the paper's two 40-host clusters with capacities drawn
/// from the Table 1 host profile using `seed`.
[[nodiscard]] model::PhysicalCluster make_paper_cluster(ClusterKind kind,
                                                        std::uint64_t seed);

/// Builds the virtual environment of `scenario` sized for `cluster`,
/// normalized for feasibility against it (see venv_generator.h).
[[nodiscard]] model::VirtualEnvironment make_scenario_venv(
    const Scenario& scenario, const model::PhysicalCluster& cluster,
    std::uint64_t seed);

}  // namespace hmn::workload
