#include "workload/crashes.h"

#include <algorithm>

#include "util/rng.h"

namespace hmn::workload {

std::vector<CrashPoint> generate_crash_schedule(std::uint64_t seed,
                                                std::size_t count,
                                                std::uint64_t max_seq) {
  std::vector<CrashPoint> schedule;
  if (count == 0 || max_seq == 0) return schedule;
  schedule.reserve(count);
  util::Rng rng(util::derive_seed(seed, 0x6372617368ULL));  // "crash"
  for (std::size_t i = 0; i < count; ++i) {
    CrashPoint p;
    p.record_seq = rng.next() % max_seq;
    p.torn_seed = rng.next();
    schedule.push_back(p);
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const CrashPoint& a, const CrashPoint& b) {
                     return a.record_seq < b.record_seq;
                   });
  return schedule;
}

}  // namespace hmn::workload
