#include "workload/venv_generator.h"

#include <algorithm>

#include "topology/topologies.h"

namespace hmn::workload {

model::VirtualEnvironment generate_venv(const VenvGenOptions& opts,
                                        util::Rng& rng) {
  model::VirtualEnvironment venv;

  // Draw guest resources.
  std::vector<model::GuestRequirements> reqs;
  reqs.reserve(opts.guest_count);
  for (std::size_t i = 0; i < opts.guest_count; ++i) {
    reqs.push_back({
        .proc_mips =
            rng.uniform(opts.profile.proc_mips.lo, opts.profile.proc_mips.hi),
        .mem_mb = rng.uniform(opts.profile.mem_mb.lo, opts.profile.mem_mb.hi),
        .stor_gb =
            rng.uniform(opts.profile.stor_gb.lo, opts.profile.stor_gb.hi),
    });
  }

  // Feasibility normalization against the target cluster (see header).
  if (opts.normalize_to != nullptr && !reqs.empty()) {
    double cap_mem = 0.0, cap_stor = 0.0;
    for (const NodeId h : opts.normalize_to->hosts()) {
      cap_mem += opts.normalize_to->capacity(h).mem_mb;
      cap_stor += opts.normalize_to->capacity(h).stor_gb;
    }
    double dem_mem = 0.0, dem_stor = 0.0;
    for (const auto& r : reqs) {
      dem_mem += r.mem_mb;
      dem_stor += r.stor_gb;
    }
    const double mem_scale =
        dem_mem > 0.0
            ? std::min(1.0, opts.capacity_fraction * cap_mem / dem_mem)
            : 1.0;
    const double stor_scale =
        dem_stor > 0.0
            ? std::min(1.0, opts.capacity_fraction * cap_stor / dem_stor)
            : 1.0;
    if (mem_scale < 1.0 || stor_scale < 1.0) {
      for (auto& r : reqs) {
        r.mem_mb *= mem_scale;
        r.stor_gb *= stor_scale;
      }
    }
  }

  for (const auto& r : reqs) venv.add_guest(r);

  // Connected topology with the requested density; demands drawn per link.
  const graph::Graph shape =
      topology::random_connected_graph(opts.guest_count, opts.density, rng);
  for (std::size_t e = 0; e < shape.edge_count(); ++e) {
    const auto ep = shape.endpoints(EdgeId{static_cast<EdgeId::underlying_type>(e)});
    // The critical draw is short-circuited on fraction == 0 so profiles
    // that never heard of SLAs (every pre-v3 trace) consume exactly the
    // same RNG stream as before the flag existed.
    venv.add_link(GuestId{ep.a.value()}, GuestId{ep.b.value()},
                  {
                      .bandwidth_mbps = rng.uniform(opts.profile.link_bw_mbps.lo,
                                                    opts.profile.link_bw_mbps.hi),
                      .max_latency_ms = rng.uniform(opts.profile.link_lat_ms.lo,
                                                    opts.profile.link_lat_ms.hi),
                      .critical = opts.profile.critical_link_fraction > 0.0 &&
                                  rng.chance(opts.profile.critical_link_fraction),
                  });
  }
  return venv;
}

}  // namespace hmn::workload
