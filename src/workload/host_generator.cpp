#include "workload/host_generator.h"

namespace hmn::workload {

std::vector<model::HostCapacity> generate_hosts(std::size_t count,
                                                const HostProfile& profile,
                                                util::Rng& rng) {
  std::vector<model::HostCapacity> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({
        .proc_mips = rng.uniform(profile.proc_mips.lo, profile.proc_mips.hi),
        .mem_mb = rng.uniform(profile.mem_mb.lo, profile.mem_mb.hi),
        .stor_gb = rng.uniform(profile.stor_gb.lo, profile.stor_gb.hi),
    });
  }
  return out;
}

}  // namespace hmn::workload
