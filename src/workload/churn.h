// Tenant churn: the workload of an *online* testbed.
//
// The paper maps one virtual environment onto an idle cluster; a
// production service instead sees testers arrive, grow their experiments,
// and depart continuously.  The ChurnGenerator turns that regime into a
// deterministic, time-ordered event stream:
//
//   * ARRIVE — Poisson arrivals (exponential inter-arrival times at
//     `arrival_rate`) of tenants whose virtual environments are drawn from
//     an existing GuestProfile preset;
//   * GROW   — with probability `grow_probability` a tenant emits one
//     mid-life growth event adding guests and links;
//   * DEPART — lifetimes are exponential or Pareto (heavy-tailed sessions:
//     most testers leave quickly, a few camp on the cluster).
//
// The *substrate* misbehaves too (the paper's motivation for emulation is
// precisely that real testbeds fail); generate_failures overlays a second
// stream onto the same timeline:
//
//   * HOST_FAIL / LINK_FAIL — a physical element dies; every element is an
//     independent alternating-renewal process with configurable time-to-
//     failure (exponential, Weibull, or lognormal MTTF) and exponential
//     time-to-repair (MTTR);
//   * HOST_RECOVER / LINK_RECOVER — the element returns to service;
//   * BLAST_FAIL / BLAST_RECOVER — a *correlated* outage: a switch dies and
//     takes its attached subtree (adjacent hosts plus every incident link)
//     down atomically, as in a ToR death or rack power loss.  The whole
//     group travels in one event (member lists on the event itself) so
//     consumers can apply it as a single transactional batch.
//
// Every event carries the *parameters* of the randomness, not its outcome:
// an ARRIVE holds (guest_count, density, seed) and the venv is
// re-materialized on consumption via make_event_venv, so a recorded trace
// (io/trace.h) replays byte-for-byte identical workloads on any machine.
#pragma once

#include <cstdint>
#include <vector>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "workload/presets.h"

namespace hmn::workload {

enum class EventKind : std::uint8_t {
  kArrive,
  kGrow,
  kDepart,
  kHostFail,
  kLinkFail,
  kHostRecover,
  kLinkRecover,
  kBlastFail,
  kBlastRecover,
  kPowerFail,     // a PDU dies: its hosts (possibly across racks) go dark
  kPowerRecover,  // the one repair crew finishes this domain
};

[[nodiscard]] constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kArrive: return "arrive";
    case EventKind::kGrow: return "grow";
    case EventKind::kDepart: return "depart";
    case EventKind::kHostFail: return "host-fail";
    case EventKind::kLinkFail: return "link-fail";
    case EventKind::kHostRecover: return "host-recover";
    case EventKind::kLinkRecover: return "link-recover";
    case EventKind::kBlastFail: return "blast-fail";
    case EventKind::kBlastRecover: return "blast-recover";
    case EventKind::kPowerFail: return "power-fail";
    case EventKind::kPowerRecover: return "power-recover";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_failure_event(EventKind k) {
  return k == EventKind::kHostFail || k == EventKind::kLinkFail ||
         k == EventKind::kHostRecover || k == EventKind::kLinkRecover ||
         k == EventKind::kBlastFail || k == EventKind::kBlastRecover ||
         k == EventKind::kPowerFail || k == EventKind::kPowerRecover;
}

[[nodiscard]] constexpr bool is_recover_event(EventKind k) {
  return k == EventKind::kHostRecover || k == EventKind::kLinkRecover ||
         k == EventKind::kBlastRecover || k == EventKind::kPowerRecover;
}

/// One tenant life-cycle or substrate event.  Fields beyond (time, kind)
/// are meaningful only for the kinds noted.
struct TenantEvent {
  double time = 0.0;
  EventKind kind = EventKind::kArrive;
  std::uint32_t tenant = 0;  // generator-assigned key, unique per arrival

  std::size_t guest_count = 0;  // kArrive: venv size
  double density = 0.0;         // kArrive: virtual-graph density
  std::size_t add_guests = 0;   // kGrow: guests appended
  std::size_t add_links = 0;    // kGrow: extra links beyond attachment
  std::uint64_t seed = 0;       // kArrive/kGrow: stream seed for the draw
  std::uint32_t element = 0;    // k*Fail/k*Recover: node / edge id
                                // (kBlast*: the dead switch;
                                //  kPower*: the power-domain id, NOT a node)

  /// kArrive only: declared service tier and optional k-of-n replica group
  /// (replica_n == 0 means the tenant declares none; otherwise the venv's
  /// first replica_n guests form one group with quorum replica_k).
  model::SlaTier sla_tier = model::SlaTier::kStandard;
  std::uint32_t replica_n = 0;
  std::uint32_t replica_k = 0;

  /// kBlastFail/kBlastRecover and kPowerFail/kPowerRecover only: the
  /// correlated group — every host node and physical edge that dies with
  /// the switch (or PDU).  Sorted ascending, no duplicates; the recover
  /// event carries the identical lists so replay can restore the group
  /// without bookkeeping.
  std::vector<std::uint32_t> group_hosts;
  std::vector<std::uint32_t> group_links;

  friend bool operator==(const TenantEvent&, const TenantEvent&) = default;
};

/// Canonical event order: time, then tenant key, then a fixed kind rank
/// (ARRIVE < GROW < DEPART, recoveries before failures), then the failed
/// element.  Shared by the churn generator and merge_events so that any
/// composition of streams is reproducible.  Recover-before-fail matters
/// when a repair completes at the exact instant the *next* failure of the
/// same element strikes (a degenerate MTTR≈0 stream): processing the fail
/// first would let the stale recover resurrect a freshly dead element.
/// Generators guarantee a recover is strictly after its own fail, so the
/// tie can only be against a *different* renewal interval.
[[nodiscard]] bool event_before(const TenantEvent& a, const TenantEvent& b);

enum class LifetimeDistribution : std::uint8_t { kExponential, kPareto };

/// Shape of the time-to-failure draw.  All three are mean-preserving: the
/// MTTF option is always the *mean* up-time, whatever the shape.  Repair
/// times stay exponential — MTTR distributions are far less consequential
/// for placement than the failure clustering the shapes model.
enum class MttfDistribution : std::uint8_t {
  kExponential,  // memoryless (the PR-2 baseline)
  kWeibull,      // shape > 1: wear-out (hazard grows with up-time)
  kLognormal,    // heavy right tail: most elements rock-solid, a few flaky
};

[[nodiscard]] constexpr const char* to_string(MttfDistribution d) {
  switch (d) {
    case MttfDistribution::kExponential: return "exponential";
    case MttfDistribution::kWeibull: return "weibull";
    case MttfDistribution::kLognormal: return "lognormal";
  }
  return "?";
}

struct ChurnOptions {
  /// Tenant arrivals per unit time (Poisson process).
  double arrival_rate = 1.0;
  /// Arrivals are drawn in [0, horizon); departures may fall beyond it so
  /// the cluster always drains.
  double horizon = 100.0;
  double mean_lifetime = 10.0;
  LifetimeDistribution lifetime = LifetimeDistribution::kExponential;
  /// Pareto shape (> 1 so the mean exists); scale is derived from
  /// mean_lifetime.
  double pareto_alpha = 2.5;

  /// Tenant venv sizing: guest count U[min,max], fixed density, resources
  /// from `profile`.
  std::size_t min_guests = 4;
  std::size_t max_guests = 10;
  double density = 0.2;
  GuestProfile profile;

  /// Chance a tenant emits one GROW event at a uniform point of its life.
  double grow_probability = 0.2;
  /// GROW adds U[1,max_grow_guests] guests and U[0,add_guests] extra links.
  std::size_t max_grow_guests = 4;

  /// Chance a tenant declares one k-of-n replica group over its first
  /// replica_n guests (clamped to the venv size).  Zero — the default —
  /// consumes no RNG draws, so legacy streams replay byte-identically.
  double replica_probability = 0.0;
  std::uint32_t replica_n = 3;
  std::uint32_t replica_k = 2;

  /// Tier mix: a tenant is gold with probability gold_fraction, best-effort
  /// with best_effort_fraction, standard otherwise.  Both zero (the
  /// default) consumes no RNG draws.
  double gold_fraction = 0.0;
  double best_effort_fraction = 0.0;
};

/// A reproducible churn workload: the event stream plus the guest profile
/// every venv in it is drawn from (recorded in the trace header).  The
/// MTTF distribution tag is provenance metadata: failure events in the
/// stream are fully materialized, so replay never re-draws from it, but
/// the trace header records which shape produced them.
struct ChurnTrace {
  GuestProfile profile;
  MttfDistribution mttf_dist = MttfDistribution::kExponential;
  std::vector<TenantEvent> events;
};

/// Generates the event stream.  Deterministic: identical (opts, seed) give
/// identical traces.  Events are sorted by time; ties break by tenant key
/// and then ARRIVE < GROW < DEPART, so a zero-lifetime tenant still
/// arrives before it departs.
[[nodiscard]] ChurnTrace generate_churn(const ChurnOptions& opts,
                                        std::uint64_t seed);

/// Substrate failure process (per-element alternating renewal).  An MTTF
/// of zero disables that element class.
struct FailureOptions {
  /// Failures are drawn in [0, horizon); the matching recovery is always
  /// emitted, possibly beyond it, so the substrate eventually heals.
  double horizon = 100.0;
  double host_mttf = 0.0;  // mean up-time of each host node
  double host_mttr = 5.0;  // mean repair time of a failed host
  double link_mttf = 0.0;  // mean up-time of each physical link
  double link_mttr = 5.0;
  /// Correlated blast-radius events: each *switch* is its own renewal
  /// process; when it fails it takes its adjacent hosts and every incident
  /// link down in one grouped event.  Zero disables blasts.
  double blast_mttf = 0.0;  // mean up-time of each switch subtree
  double blast_mttr = 10.0;

  /// Power-domain outages: hosts are striped across `power_domains` PDUs
  /// (host i of cluster.hosts() feeds from PDU i % power_domains, so one
  /// PDU spans racks — deliberately independent of the network topology).
  /// Each domain fails on its own renewal stream, but repair is serialized
  /// through ONE crew: a domain that fails while the crew is busy waits its
  /// turn (FIFO by failure time, ties by domain id), so storms stack
  /// repairs back-to-back.  Zero power_mttf disables the class.
  double power_mttf = 0.0;  // mean up-time of each power domain
  double power_mttr = 8.0;  // mean hands-on repair time per domain
  std::uint32_t power_domains = 4;

  /// Up-time shape shared by all element classes (host, link, blast).
  MttfDistribution mttf_dist = MttfDistribution::kExponential;
  double weibull_shape = 1.5;    // k > 0; k = 1 degenerates to exponential
  double lognormal_sigma = 0.5;  // σ of ln X; mean is preserved via μ
};

/// Draws the HOST_FAIL / LINK_FAIL / BLAST_FAIL / POWER_FAIL / *_RECOVER
/// stream for `cluster`'s elements.  Host failures hit host-role nodes
/// only; link failures may hit any physical edge; blast failures hit
/// switch-role nodes and carry the switch's attached subtree (adjacent
/// hosts, incident links) as a correlated group; power failures hit whole
/// power domains (element = domain id) and carry the domain's hosts and
/// their incident links.  Deterministic: element e of each class draws
/// from its own derive_seed(seed, class, e) stream (class 1 = hosts,
/// 2 = links, 3 = blasts, 4 = power domains), so streams for different
/// clusters of the same size are comparable and enabling one class never
/// perturbs another.
[[nodiscard]] std::vector<TenantEvent> generate_failures(
    const FailureOptions& opts, const model::PhysicalCluster& cluster,
    std::uint64_t seed);

/// Merges extra events (typically a failure stream) into a trace, keeping
/// the canonical event_before order.
void merge_events(ChurnTrace& trace, std::vector<TenantEvent> extra);

/// Materializes the virtual environment of an ARRIVE event.  Deterministic
/// in (profile, event.seed).
[[nodiscard]] model::VirtualEnvironment make_event_venv(
    const GuestProfile& profile, const TenantEvent& ev);

/// Applies a GROW event to a tenant's current environment: appends
/// `add_guests` guests (each attached to a uniformly chosen existing guest,
/// keeping the venv connected) and `add_links` extra links between distinct
/// random guests.  Existing guest/link ids are unchanged, as
/// core::extend_mapping requires.
[[nodiscard]] model::VirtualEnvironment apply_growth(
    const model::VirtualEnvironment& base, const GuestProfile& profile,
    const TenantEvent& ev);

}  // namespace hmn::workload
