// Power-domain modeling: which PDU feeds which host, and the derived
// failure-domain annotation the replica-spread mapper consumes.
//
// Assignment is *seedless and structural*: host i of cluster.hosts() feeds
// from PDU i % count.  Striping (rather than chunking) makes a power domain
// deliberately cut across racks — the realistic worst case where a PDU
// loss is NOT congruent with any network blast group, so anti-affinity has
// to reason about both domain kinds at once.  Because the mapping is a
// pure function of (cluster, count), the event generator
// (workload::generate_failures) and the cluster annotation
// (annotate_failure_domains) can never disagree about membership.
#pragma once

#include <cstdint>
#include <vector>

#include "model/physical_cluster.h"

namespace hmn::workload {

/// Per-node power-domain id: host i (in cluster.hosts() order) maps to
/// i % count; switches get FailureDomains::kNone.  `count` == 0 yields an
/// all-kNone vector.
[[nodiscard]] std::vector<std::uint32_t> power_domain_assignment(
    const model::PhysicalCluster& cluster, std::uint32_t count);

/// Host *node ids* of one power domain, ascending.
[[nodiscard]] std::vector<std::uint32_t> power_domain_hosts(
    const model::PhysicalCluster& cluster, std::uint32_t count,
    std::uint32_t domain);

/// Full failure-domain annotation: blast domain = the lowest-id adjacent
/// switch of each host (the switch whose blast event takes it down; hosts
/// multi-homed to several switches use the lowest for spreading), power
/// domain = power_domain_assignment.  Switches get kNone in both.
[[nodiscard]] model::FailureDomains derive_failure_domains(
    const model::PhysicalCluster& cluster, std::uint32_t power_count);

/// Installs derive_failure_domains on the cluster in place.
void annotate_failure_domains(model::PhysicalCluster& cluster,
                              std::uint32_t power_count);

}  // namespace hmn::workload
