#include "workload/presets.h"

namespace hmn::workload {

HostProfile paper_host_profile() {
  return {
      .proc_mips = {1000.0, 3000.0},
      .mem_mb = {1.0 * model::kGB_in_MB, 3.0 * model::kGB_in_MB},
      .stor_gb = {1.0 * model::kTB_in_GB, 3.0 * model::kTB_in_GB},
  };
}

model::LinkProps paper_link_props() {
  return {.bandwidth_mbps = 1.0 * model::kGbps_in_Mbps, .latency_ms = 5.0};
}

GuestProfile high_level_profile() {
  return {
      .proc_mips = {50.0, 100.0},
      .mem_mb = {128.0, 256.0},
      .stor_gb = {100.0, 200.0},
      .link_bw_mbps = {0.5, 1.0},
      .link_lat_ms = {30.0, 60.0},
  };
}

GuestProfile low_level_profile() {
  return {
      .proc_mips = {19.0, 38.0},
      .mem_mb = {19.0, 38.0},
      .stor_gb = {19.0, 38.0},
      .link_bw_mbps = {87.0 / model::kMbps_in_kbps, 175.0 / model::kMbps_in_kbps},
      .link_lat_ms = {30.0, 60.0},
  };
}

}  // namespace hmn::workload
