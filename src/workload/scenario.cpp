#include "workload/scenario.h"

#include <cmath>

#include "topology/topologies.h"
#include "util/table.h"
#include "workload/host_generator.h"
#include "workload/venv_generator.h"

namespace hmn::workload {

std::string Scenario::label() const {
  return util::Table::fmt(ratio, 1) + ":1 " + util::Table::fmt(density, 3);
}

std::size_t Scenario::guest_count(std::size_t hosts) const {
  return static_cast<std::size_t>(
      std::llround(ratio * static_cast<double>(hosts)));
}

std::vector<Scenario> paper_scenarios() {
  std::vector<Scenario> out;
  // High-level block: the paper's tables iterate density-major
  // (2.5:1..10:1 within each density).
  for (const double density : {0.015, 0.02, 0.025}) {
    for (const double ratio : {2.5, 5.0, 7.5, 10.0}) {
      out.push_back({ratio, density, WorkloadKind::kHighLevel});
    }
  }
  for (const double ratio : {20.0, 30.0, 40.0, 50.0}) {
    out.push_back({ratio, 0.01, WorkloadKind::kLowLevel});
  }
  return out;
}

model::PhysicalCluster make_paper_cluster(ClusterKind kind,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  auto caps = generate_hosts(kPaperHostCount, paper_host_profile(), rng);
  topology::Topology topo =
      kind == ClusterKind::kTorus2D
          ? topology::torus_2d(kPaperTorusRows, kPaperTorusCols)
          : topology::switched(kPaperHostCount, kPaperSwitchPorts);
  return model::PhysicalCluster::build(std::move(topo), std::move(caps),
                                       paper_link_props());
}

model::VirtualEnvironment make_scenario_venv(
    const Scenario& scenario, const model::PhysicalCluster& cluster,
    std::uint64_t seed) {
  util::Rng rng(seed);
  VenvGenOptions opts;
  opts.guest_count = scenario.guest_count(cluster.host_count());
  opts.density = scenario.density;
  opts.profile = scenario.workload == WorkloadKind::kHighLevel
                     ? high_level_profile()
                     : low_level_profile();
  opts.profile.proc_mips.lo *= scenario.vproc_scale;
  opts.profile.proc_mips.hi *= scenario.vproc_scale;
  opts.normalize_to = &cluster;
  return generate_venv(opts, rng);
}

}  // namespace hmn::workload
