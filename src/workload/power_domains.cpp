#include "workload/power_domains.h"

#include <algorithm>

namespace hmn::workload {

std::vector<std::uint32_t> power_domain_assignment(
    const model::PhysicalCluster& cluster, std::uint32_t count) {
  std::vector<std::uint32_t> domain(cluster.node_count(),
                                    model::FailureDomains::kNone);
  if (count == 0) return domain;
  const std::vector<NodeId>& hosts = cluster.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    domain[hosts[i].index()] = static_cast<std::uint32_t>(i % count);
  }
  return domain;
}

std::vector<std::uint32_t> power_domain_hosts(
    const model::PhysicalCluster& cluster, std::uint32_t count,
    std::uint32_t domain) {
  std::vector<std::uint32_t> out;
  if (count == 0) return out;
  const std::vector<NodeId>& hosts = cluster.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i % count == domain) out.push_back(hosts[i].value());
  }
  // hosts() is ascending by NodeId, so `out` already is too.
  return out;
}

model::FailureDomains derive_failure_domains(
    const model::PhysicalCluster& cluster, std::uint32_t power_count) {
  model::FailureDomains fd;
  fd.power_domain = power_domain_assignment(cluster, power_count);
  fd.blast_domain.assign(cluster.node_count(), model::FailureDomains::kNone);
  const graph::Graph& g = cluster.graph();
  for (const NodeId h : cluster.hosts()) {
    std::uint32_t lowest = model::FailureDomains::kNone;
    for (const graph::Adjacency& adj : g.neighbors(h)) {
      if (cluster.is_host(adj.neighbor)) continue;
      lowest = std::min(lowest, adj.neighbor.value());
    }
    fd.blast_domain[h.index()] = lowest;
  }
  return fd;
}

void annotate_failure_domains(model::PhysicalCluster& cluster,
                              std::uint32_t power_count) {
  cluster.set_failure_domains(derive_failure_domains(cluster, power_count));
}

}  // namespace hmn::workload
