// Physical-fabric coarsening for the multilevel pipeline.
//
// Generalizes topology::partition_cluster's one-shot rack-unit contraction
// into a recursive pyramid: level 0 is the real fabric; level 1 contracts
// rack units (a switch plus its attached hosts); every further level pairs
// nodes by heavy-edge matching until the coarsest level is small enough to
// solve directly.  The hierarchy stores only the *structural* tables (the
// topology::Contraction per level); capacities are re-aggregated per map()
// call from whatever cluster the caller passes in — a TenancyManager hands
// the mapper a fresh residual view per admission, so the structure is
// cached once per fabric while residual capacities, headroom bias, and
// failed nodes/links flow through automatically.
#pragma once

#include <cstddef>
#include <vector>

#include "model/physical_cluster.h"
#include "topology/contraction.h"

namespace hmn::multilevel {

struct PhysicalCoarsenOptions {
  /// Stop contracting once a level has this few nodes; the coarse solve
  /// runs the full HMN stages there, so this bounds its cost.
  std::size_t target_nodes = 96;
  /// Hard cap on contraction levels.
  std::size_t max_levels = 8;
};

/// The structural pyramid.  contractions[i] maps level-i nodes onto
/// level-(i+1) groups; level 0 is the base cluster the hierarchy was built
/// over.  Coarse node i at level k+1 *is* group i of contractions[k].
struct PhysicalHierarchy {
  std::vector<topology::Contraction> contractions;
  std::size_t base_nodes = 0;
  std::size_t base_edges = 0;
  std::size_t base_hosts = 0;

  [[nodiscard]] std::size_t level_count() const {
    return contractions.size() + 1;
  }
  /// Structural-compatibility guard: a cluster with the same node, edge and
  /// host counts as the build-time fabric can reuse this hierarchy (the
  /// tenancy layer's residual views keep the topology and only scale
  /// capacities).  Per-level validation catches any residual mismatch.
  [[nodiscard]] bool compatible(const model::PhysicalCluster& cluster) const {
    return cluster.graph().node_count() == base_nodes &&
           cluster.graph().edge_count() == base_edges &&
           cluster.host_count() == base_hosts;
  }
};

/// Builds the contraction pyramid over `base`.  Level 1 uses rack units
/// when they shrink the graph (switched fabrics); host-only fabrics fall
/// through to heavy-edge matching.  Deterministic in the fabric alone.
[[nodiscard]] PhysicalHierarchy build_hierarchy(
    const model::PhysicalCluster& base, const PhysicalCoarsenOptions& opts);

/// Materializes the coarse clusters for `base`'s *current* capacities:
/// out[i] is the cluster at level i+1 (out.size() == contractions.size()).
/// O(nodes + edges) total — the per-admission cost of reusing a hierarchy.
[[nodiscard]] std::vector<model::PhysicalCluster> materialize_levels(
    const model::PhysicalCluster& base, const PhysicalHierarchy& h);

}  // namespace hmn::multilevel
