// The multilevel coarsen–map–refine mapper: a drop-in core::Mapper that
// makes admission cost scale with the tenant and the local neighborhood it
// lands in, not with the whole fabric.
//
// Pipeline (DESIGN.md §8):
//   1. coarsen the fabric into a structural pyramid (physical_coarsener;
//      shareable across calls) and the virtual environment into
//      super-guests (virtual_coarsener; per call);
//   2. coarse solve: run the paper's Hosting + Migration + Networking
//      stages on the coarsest cluster × coarsest venv;
//   3. expand the virtual merge history exactly (members co-locate on their
//      super-guest's coarse node, member links inherit coarse paths);
//   4. uncoarsen one physical level at a time: each occupied coarse node
//      expands into its member subcluster where Hosting + Migration re-run
//      locally (the refinement frontier) — widening to the adjacent ring
//      and then the whole level when the group's hosts cannot carry the
//      per-host bin-packing — then Networking re-routes over
//      the region induced by the occupied groups plus the groups under the
//      previous level's paths — widening once, then to the full level, if
//      the region cannot carry the links;
//   5. core::validate_mapping checks every level; any violation or stage
//      failure falls back to the flat HMN mapper, so the multilevel path
//      can only lose time, never admissions.
//
// Determinism: no randomness is consumed anywhere in the pipeline (stage
// options use the paper's bandwidth-descending orders); identical inputs
// give byte-identical mappings regardless of thread count or hierarchy
// sharing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/hmn_mapper.h"
#include "core/mapper.h"
#include "multilevel/physical_coarsener.h"
#include "multilevel/virtual_coarsener.h"

namespace hmn::multilevel {

/// Progress event for observers (examples/multilevel_demo): one per
/// pipeline stage, in execution order.  Display-only — observers must not
/// feed anything back into the decision path.
struct LevelEvent {
  std::string stage;       // "hierarchy", "coarsen-virtual", "coarse-solve",
                           // "refine", or "fallback: <failed stage>"
  std::size_t level = 0;   // physical level the event refers to (0 = base)
  std::size_t nodes = 0;   // cluster nodes at that level
  std::size_t guests = 0;  // venv guests in play at that stage
};
using LevelObserver = std::function<void(const LevelEvent&)>;

struct MultilevelOptions {
  VirtualCoarsenOptions virt;
  PhysicalCoarsenOptions phys;
  /// Below this host count the pyramid adds nothing over a flat solve:
  /// delegate to the flat mapper directly.
  std::size_t min_hosts = 256;
  /// Validate the mapping after the coarse solve and after every
  /// refinement level (linear cost; any violation triggers the flat
  /// fallback instead of shipping a bad mapping).
  bool validate_levels = true;
  /// Stage options for the coarse solve, the per-level refinement, and the
  /// flat fallback mapper.
  core::HmnOptions flat;
  /// Optional progress observer (display only).
  LevelObserver observer;
  /// Table name; defaults to "ML".
  std::string display_name;
};

class MultilevelMapper final : public core::Mapper {
 public:
  explicit MultilevelMapper(MultilevelOptions opts = {});
  /// Shares a prebuilt structural hierarchy (e.g. one per router shard).
  /// Compatibility is checked per call; a mismatched cluster triggers a
  /// local rebuild, so a shared hierarchy is a cache, never a correctness
  /// dependency.
  MultilevelMapper(MultilevelOptions opts,
                   std::shared_ptr<const PhysicalHierarchy> hierarchy);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] core::MapOutcome map(const model::PhysicalCluster& cluster,
                                     const model::VirtualEnvironment& venv,
                                     std::uint64_t seed) const override;

  [[nodiscard]] const MultilevelOptions& options() const { return opts_; }

 private:
  MultilevelOptions opts_;
  std::shared_ptr<const PhysicalHierarchy> hierarchy_;
  core::HmnMapper flat_;
};

}  // namespace hmn::multilevel
