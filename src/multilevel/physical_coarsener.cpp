#include "multilevel/physical_coarsener.h"

#include <utility>

namespace hmn::multilevel {

PhysicalHierarchy build_hierarchy(const model::PhysicalCluster& base,
                                  const PhysicalCoarsenOptions& opts) {
  PhysicalHierarchy h;
  h.base_nodes = base.graph().node_count();
  h.base_edges = base.graph().edge_count();
  h.base_hosts = base.host_count();

  model::PhysicalCluster owned;  // materialized intermediate levels
  const model::PhysicalCluster* cur = &base;
  while (cur->graph().node_count() > opts.target_nodes &&
         h.contractions.size() < opts.max_levels) {
    topology::Contraction c = h.contractions.empty()
                                  ? topology::contract_rack_units(*cur)
                                  : topology::contract_heavy_matching(*cur);
    if (c.group_count() >= cur->graph().node_count()) {
      // Rack units did not shrink (host-only fabric): fall through to
      // matching; if that cannot shrink either (edgeless graph), stop.
      c = topology::contract_heavy_matching(*cur);
      if (c.group_count() >= cur->graph().node_count()) break;
    }
    owned = topology::coarse_cluster(*cur, c);
    cur = &owned;
    h.contractions.push_back(std::move(c));
  }
  return h;
}

std::vector<model::PhysicalCluster> materialize_levels(
    const model::PhysicalCluster& base, const PhysicalHierarchy& h) {
  std::vector<model::PhysicalCluster> out;
  out.reserve(h.contractions.size());
  const model::PhysicalCluster* cur = &base;
  for (const topology::Contraction& c : h.contractions) {
    out.push_back(topology::coarse_cluster(*cur, c));
    cur = &out.back();
  }
  return out;
}

}  // namespace hmn::multilevel
