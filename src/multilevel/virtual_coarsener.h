// Virtual-environment coarsening for the multilevel pipeline.
//
// Following the heavy-clique coarsening idea from the VNE literature (see
// PAPERS.md), guests joined by heavy-bandwidth links are merged into
// super-guests: requirements are summed, links between two merged cliques
// are aggregated into one coarse link (bandwidth summed, latency bound
// minimized — the strictest member governs the clique), and links internal
// to a clique disappear (co-located endpoints cost nothing, Section 3.2 of
// the paper).  Each level records an exact merge history, so a coarse
// placement projects back down *losslessly*: every member lands on its
// super-guest's host and every member link inherits its coarse link's path
// (or an empty path when its endpoints merged).
//
// Everything is deterministic: links are processed in (bandwidth desc, id
// asc) order, groups are renumbered by ascending lowest member id, and no
// randomness is consumed.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "model/virtual_environment.h"

namespace hmn::multilevel {

struct VirtualCoarsenOptions {
  /// Stop coarsening once the coarse environment has this few guests.
  std::size_t target_guests = 12;
  /// Hard cap on coarsening rounds.
  std::size_t max_levels = 8;
  /// Maximum number of *base* guests a super-guest may absorb; keeps the
  /// coarse solve from collapsing the whole tenant into one unsplittable
  /// blob that no single coarse node could ever balance.
  std::size_t max_members = 8;
};

/// One coarsening step: a finer venv (implicit — the one the step was built
/// over) merged into `coarse`.
struct VirtualLevel {
  model::VirtualEnvironment coarse;
  /// finer guest -> coarse guest (total).
  std::vector<GuestId> coarse_of_guest;
  /// coarse guest -> finer guests, ascending (the merge history).
  std::vector<std::vector<GuestId>> members;
  /// finer link -> coarse link; invalid() when the endpoints merged (the
  /// link became internal and routes inside a host).
  std::vector<VirtLinkId> coarse_of_link;
};

/// The merge-history stack: levels[0] was built over the input venv,
/// levels.back().coarse is the coarsest environment.  Empty when the input
/// was already at or below the target size (or nothing could merge).
struct VirtualHierarchy {
  std::vector<VirtualLevel> levels;

  [[nodiscard]] bool empty() const { return levels.empty(); }
  [[nodiscard]] const model::VirtualEnvironment& coarsest(
      const model::VirtualEnvironment& base) const {
    return levels.empty() ? base : levels.back().coarse;
  }
};

[[nodiscard]] VirtualHierarchy coarsen_virtual(
    const model::VirtualEnvironment& base, const VirtualCoarsenOptions& opts);

/// Exact uncoarsening of a placement through one level: every finer guest
/// lands on its super-guest's node.
[[nodiscard]] std::vector<NodeId> project_guest_host(
    const VirtualLevel& level, const std::vector<NodeId>& coarse_guest_host);

/// Exact uncoarsening of routed paths through one level: a crossing link
/// copies its coarse link's path; an internal link (endpoints merged, hence
/// co-located) gets the empty path.
[[nodiscard]] std::vector<graph::Path> project_link_paths(
    const VirtualLevel& level, const std::vector<graph::Path>& coarse_paths);

}  // namespace hmn::multilevel
