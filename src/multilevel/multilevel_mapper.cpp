#include "multilevel/multilevel_mapper.h"

#include <algorithm>
#include <utility>

#include "core/validator.h"
#include "util/timer.h"

namespace hmn::multilevel {
namespace {

GuestId gid(std::size_t i) {
  return GuestId{static_cast<GuestId::underlying_type>(i)};
}

VirtLinkId lid(std::size_t i) {
  return VirtLinkId{static_cast<VirtLinkId::underlying_type>(i)};
}

/// The full-venv mapping at one physical level, in that level's node and
/// edge ids.
struct LevelMapping {
  std::vector<NodeId> guest_host;
  std::vector<graph::Path> link_paths;
};

/// Routes every venv link over the subcluster induced by `region_nodes`,
/// writing level-local paths into `m.link_paths` on success.
// Refinement's inner re-route: called up to three times per descent level.
// hmn-lint: hot-path
bool route_region(const model::PhysicalCluster& fine,
                  const std::vector<NodeId>& region_nodes,
                  const model::VirtualEnvironment& venv,
                  const std::vector<NodeId>& fine_guest_host,
                  const core::NetworkingOptions& net_opts, LevelMapping& m) {
  const topology::SubCluster sub =
      topology::induced_subcluster(fine, region_nodes);
  std::vector<NodeId> local_of(fine.graph().node_count(), NodeId::invalid());
  for (std::size_t i = 0; i < sub.to_parent_node.size(); ++i) {
    local_of[sub.to_parent_node[i].index()] =
        NodeId{static_cast<NodeId::underlying_type>(i)};
  }
  std::vector<NodeId> local_gh(fine_guest_host.size());
  for (std::size_t g = 0; g < fine_guest_host.size(); ++g) {
    local_gh[g] = local_of[fine_guest_host[g].index()];
    if (!local_gh[g].valid()) return false;  // guest outside the region
  }
  core::ResidualState state(sub.cluster);
  core::NetworkingResult routed =
      core::run_networking(venv, state, local_gh, net_opts);
  if (!routed.ok) return false;
  m.link_paths.assign(venv.link_count(), {});
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    graph::Path& path = m.link_paths[l];
    path.reserve(routed.link_paths[l].size());
    for (const EdgeId e : routed.link_paths[l]) {
      path.push_back(sub.to_parent_edge[e.index()]);
    }
  }
  return true;
}

}  // namespace

MultilevelMapper::MultilevelMapper(MultilevelOptions opts)
    : MultilevelMapper(std::move(opts), nullptr) {}

MultilevelMapper::MultilevelMapper(
    MultilevelOptions opts, std::shared_ptr<const PhysicalHierarchy> hierarchy)
    : opts_(std::move(opts)),
      hierarchy_(std::move(hierarchy)),
      flat_(opts_.flat) {}

std::string MultilevelMapper::name() const {
  return opts_.display_name.empty() ? "ML" : opts_.display_name;
}

core::MapOutcome MultilevelMapper::map(const model::PhysicalCluster& cluster,
                                       const model::VirtualEnvironment& venv,
                                       std::uint64_t seed) const {
  if (cluster.host_count() == 0) {
    return core::MapOutcome::failure(core::MapErrorCode::kInvalidInput,
                                     "cluster has no hosts");
  }
  if (cluster.host_count() < opts_.min_hosts) {
    return flat_.map(cluster, venv, seed);
  }
  const util::Timer total;
  auto notify = [&](const char* stage, std::size_t level, std::size_t nodes,
                    std::size_t guests) {
    if (opts_.observer) opts_.observer({stage, level, nodes, guests});
  };
  auto fallback = [&](const char* stage_level) {
    if (opts_.observer) {
      opts_.observer({std::string("fallback: ") + stage_level, 0,
                      cluster.graph().node_count(), venv.guest_count()});
    }
    core::MapOutcome o = flat_.map(cluster, venv, seed);
    o.stats.levels_used = 0;
    if (!o.ok()) {
      o.detail += " (after multilevel ";
      o.detail += stage_level;
      o.detail += " fallback)";
    }
    return o;
  };

  // Structural pyramid: reuse the shared one when it matches this cluster.
  PhysicalHierarchy local;
  const PhysicalHierarchy* hier = nullptr;
  if (hierarchy_ != nullptr && hierarchy_->compatible(cluster)) {
    hier = hierarchy_.get();
  } else {
    local = build_hierarchy(cluster, opts_.phys);
    hier = &local;
  }
  if (hier->contractions.empty()) return flat_.map(cluster, venv, seed);
  const std::vector<model::PhysicalCluster> levels =
      materialize_levels(cluster, *hier);
  notify("hierarchy", hier->contractions.size(),
         levels.back().graph().node_count(), venv.guest_count());

  const VirtualHierarchy vh = coarsen_virtual(venv, opts_.virt);
  const model::VirtualEnvironment& top_venv = vh.coarsest(venv);
  notify("coarsen-virtual", hier->contractions.size(),
         levels.back().graph().node_count(), top_venv.guest_count());

  core::MapOutcome outcome;
  outcome.stats.levels_used = hier->level_count();

  // Stage options mirror HmnMapper's seed plumbing; the defaults are the
  // paper's deterministic bandwidth-descending orders.
  core::HostingOptions hosting_opts = opts_.flat.hosting;
  if (hosting_opts.order == core::LinkOrder::kRandom) {
    hosting_opts.shuffle_seed = seed;
  }
  core::NetworkingOptions net_opts = opts_.flat.networking;
  if (net_opts.order == core::LinkOrder::kRandom) {
    net_opts.shuffle_seed = seed;
  }

  // ---- Coarse solve: the HMN stages on the smallest level. ----
  const model::PhysicalCluster& top = levels.back();
  util::Timer stage;
  core::ResidualState top_state(top);
  core::HostingResult hosted = core::run_hosting(top_venv, top_state,
                                                 hosting_opts);
  outcome.stats.hosting_seconds += stage.elapsed_seconds();
  if (!hosted.ok) return fallback("coarse hosting");
  if (opts_.flat.enable_migration) {
    stage.restart();
    const core::MigrationResult migrated = core::run_migration(
        top_venv, top_state, hosted.guest_host, opts_.flat.migration);
    outcome.stats.migration_seconds += stage.elapsed_seconds();
    outcome.stats.migrations += migrated.migrations;
  }
  stage.restart();
  core::NetworkingResult routed =
      core::run_networking(top_venv, top_state, hosted.guest_host, net_opts);
  outcome.stats.networking_seconds += stage.elapsed_seconds();
  if (!routed.ok) return fallback("coarse networking");
  notify("coarse-solve", hier->contractions.size(),
         top.graph().node_count(), top_venv.guest_count());

  // ---- Exact virtual uncoarsening (still on the coarsest cluster). ----
  LevelMapping m;
  m.guest_host = std::move(hosted.guest_host);
  m.link_paths = std::move(routed.link_paths);
  for (auto it = vh.levels.rbegin(); it != vh.levels.rend(); ++it) {
    m.guest_host = project_guest_host(*it, m.guest_host);
    m.link_paths = project_link_paths(*it, m.link_paths);
  }
  if (opts_.validate_levels) {
    const auto report = core::validate_mapping(
        top, venv, {m.guest_host, m.link_paths});
    if (!report.ok()) return fallback("coarsest-level validation");
  }

  // ---- Physical descent: project one level at a time and refine. ----
  for (std::size_t k = hier->contractions.size(); k >= 1; --k) {
    const model::PhysicalCluster& fine = k == 1 ? cluster : levels[k - 2];
    const model::PhysicalCluster& coarse = levels[k - 1];
    const topology::Contraction& c = hier->contractions[k - 1];

    // Guests per occupied coarse node (coarse node id == group id).
    std::vector<std::vector<GuestId>> by_group(c.group_count());
    for (std::size_t g = 0; g < m.guest_host.size(); ++g) {
      by_group[m.guest_host[g].index()].push_back(gid(g));
    }
    // Region of interest at this level: the groups that hold guests plus
    // every group a coarse path runs through (the refinement frontier).
    std::vector<char> in_region(c.group_count(), 0);
    for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
      if (!by_group[grp].empty()) in_region[grp] = 1;
    }
    for (std::size_t l = 0; l < venv.link_count(); ++l) {
      if (m.link_paths[l].empty()) continue;
      const NodeId origin = m.guest_host[venv.endpoints(lid(l)).src.index()];
      for (const NodeId n :
           graph::path_nodes(coarse.graph(), origin, m.link_paths[l])) {
        in_region[n.index()] = 1;
      }
    }

    // Expand each occupied super-node: Hosting + Migration restricted to
    // the group's member subcluster.  The coarse solve admitted the group
    // on *aggregate* capacity, but Eqs. 2-3 are per-host, so the group's
    // individual hosts may not carry the bin-packing; in that case widen
    // the region by BFS over the group adjacency (radius 1 may add only a
    // bare switch group; radius 2 reaches the sibling racks behind it),
    // staying local.  Guests no radius can place are collected and hosted
    // together in one whole-level pass at the end.  Guests an earlier
    // retry already placed inside a region are charged into the residual
    // state, so capacity is never double-booked across groups.
    std::vector<NodeId> fine_gh(venv.guest_count(), NodeId::invalid());

    // Hosts `guests` (with their induced internal links) on the subcluster
    // of `region`, charging prior placements; writes fine_gh on success.
    auto try_host = [&](const std::vector<GuestId>& guests,
                        const std::vector<NodeId>& region) {
      model::VirtualEnvironment sub_venv;
      std::vector<std::size_t> local_guest(venv.guest_count(), 0);
      std::vector<char> in_set(venv.guest_count(), 0);
      for (std::size_t i = 0; i < guests.size(); ++i) {
        local_guest[guests[i].index()] = i;
        in_set[guests[i].index()] = 1;
        (void)sub_venv.add_guest(venv.guest(guests[i]));
      }
      for (std::size_t l = 0; l < venv.link_count(); ++l) {
        const auto ep = venv.endpoints(lid(l));
        if (!in_set[ep.src.index()] || !in_set[ep.dst.index()]) continue;
        (void)sub_venv.add_link(gid(local_guest[ep.src.index()]),
                                gid(local_guest[ep.dst.index()]),
                                venv.link(lid(l)));
      }
      const topology::SubCluster sub =
          topology::induced_subcluster(fine, region);
      std::vector<NodeId> local_of(fine.graph().node_count(),
                                   NodeId::invalid());
      for (std::size_t i = 0; i < sub.to_parent_node.size(); ++i) {
        local_of[sub.to_parent_node[i].index()] =
            NodeId{static_cast<NodeId::underlying_type>(i)};
      }
      stage.restart();
      core::ResidualState st(sub.cluster);
      for (std::size_t g = 0; g < fine_gh.size(); ++g) {
        if (!fine_gh[g].valid()) continue;
        const NodeId at = local_of[fine_gh[g].index()];
        if (at.valid()) st.place(venv.guest(gid(g)), at);
      }
      core::HostingResult sub_hosted = core::run_hosting(sub_venv, st,
                                                         hosting_opts);
      outcome.stats.hosting_seconds += stage.elapsed_seconds();
      if (!sub_hosted.ok) return false;
      if (opts_.flat.enable_migration) {
        stage.restart();
        const core::MigrationResult migrated = core::run_migration(
            sub_venv, st, sub_hosted.guest_host, opts_.flat.migration);
        outcome.stats.migration_seconds += stage.elapsed_seconds();
        outcome.stats.migrations += migrated.migrations;
      }
      for (std::size_t i = 0; i < guests.size(); ++i) {
        fine_gh[guests[i].index()] =
            sub.to_parent_node[sub_hosted.guest_host[i].index()];
      }
      return true;
    };

    constexpr std::size_t kMaxRadius = 3;
    std::vector<GuestId> spilled;
    for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
      if (by_group[grp].empty()) continue;
      std::vector<char> in_set(c.group_count(), 0);
      std::vector<std::size_t> frontier = {grp};
      in_set[grp] = 1;
      std::vector<NodeId> region = c.members[grp];
      bool placed = false;
      for (std::size_t radius = 0; radius <= kMaxRadius; ++radius) {
        if (radius > 0) {
          std::vector<std::size_t> next;
          for (const std::size_t g : frontier) {
            for (const std::size_t nb : c.adjacency[g]) {
              if (in_set[nb]) continue;
              in_set[nb] = 1;
              next.push_back(nb);
              region.insert(region.end(), c.members[nb].begin(),
                            c.members[nb].end());
            }
          }
          if (next.empty()) break;  // whole component already covered
          std::sort(next.begin(), next.end());
          std::sort(region.begin(), region.end());
          frontier = std::move(next);
        }
        if (try_host(by_group[grp], region)) {
          for (std::size_t g = 0; g < c.group_count(); ++g) {
            if (in_set[g]) in_region[g] = 1;
          }
          placed = true;
          break;
        }
      }
      if (!placed) {
        spilled.insert(spilled.end(), by_group[grp].begin(),
                       by_group[grp].end());
      }
    }
    if (!spilled.empty()) {
      std::vector<NodeId> whole;
      whole.reserve(fine.graph().node_count());
      for (std::size_t n = 0; n < fine.graph().node_count(); ++n) {
        whole.push_back(NodeId{static_cast<NodeId::underlying_type>(n)});
      }
      if (!try_host(spilled, whole)) return fallback("level hosting");
      std::fill(in_region.begin(), in_region.end(), 1);
    }

    // Re-route over the region; widen by one ring of adjacent groups, then
    // the whole level, before giving up.
    auto region_nodes = [&]() {
      std::vector<NodeId> nodes;
      for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
        if (!in_region[grp]) continue;
        nodes.insert(nodes.end(), c.members[grp].begin(),
                     c.members[grp].end());
      }
      std::sort(nodes.begin(), nodes.end());
      return nodes;
    };
    stage.restart();
    bool routed_ok = route_region(fine, region_nodes(), venv, fine_gh,
                                  net_opts, m);
    if (!routed_ok) {
      std::vector<char> widened = in_region;
      for (std::size_t grp = 0; grp < c.group_count(); ++grp) {
        if (!in_region[grp]) continue;
        for (const std::size_t nb : c.adjacency[grp]) widened[nb] = 1;
      }
      in_region = std::move(widened);
      routed_ok = route_region(fine, region_nodes(), venv, fine_gh, net_opts,
                               m);
    }
    if (!routed_ok) {
      core::ResidualState st(fine);
      core::NetworkingResult full =
          core::run_networking(venv, st, fine_gh, net_opts);
      if (full.ok) {
        m.link_paths = std::move(full.link_paths);
        routed_ok = true;
      }
    }
    outcome.stats.networking_seconds += stage.elapsed_seconds();
    if (!routed_ok) return fallback("level networking");
    m.guest_host = std::move(fine_gh);

    if (opts_.validate_levels) {
      const auto report = core::validate_mapping(
          fine, venv, {m.guest_host, m.link_paths});
      if (!report.ok()) return fallback("level validation");
    }
    notify("refine", k - 1, fine.graph().node_count(), venv.guest_count());
  }

  std::size_t links_routed = 0;
  for (const graph::Path& p : m.link_paths) {
    if (!p.empty()) ++links_routed;
  }
  outcome.stats.links_routed = links_routed;
  core::Mapping mapping;
  mapping.guest_host = std::move(m.guest_host);
  mapping.link_paths = std::move(m.link_paths);
  outcome.mapping = std::move(mapping);
  outcome.stats.total_seconds = total.elapsed_seconds();
  return outcome;
}

}  // namespace hmn::multilevel
