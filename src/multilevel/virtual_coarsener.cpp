#include "multilevel/virtual_coarsener.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

namespace hmn::multilevel {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

GuestId gid(std::size_t i) {
  return GuestId{static_cast<GuestId::underlying_type>(i)};
}

VirtLinkId lid(std::size_t i) {
  return VirtLinkId{static_cast<VirtLinkId::underlying_type>(i)};
}

/// One coarsening round over `venv`.  `weight[g]` is the number of base
/// guests inside g.  Returns false when nothing merged (fixpoint).
bool coarsen_round(const model::VirtualEnvironment& venv,
                   const VirtualCoarsenOptions& opts,
                   std::vector<std::size_t>& weight, VirtualLevel& out) {
  const std::size_t guests = venv.guest_count();
  const std::size_t links = venv.link_count();

  // Heavy links first (ids ascending on equal bandwidth).
  std::vector<std::size_t> order(links);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const double bx = venv.link(lid(x)).bandwidth_mbps;
    const double by = venv.link(lid(y)).bandwidth_mbps;
    if (bx > by) return true;
    if (bx < by) return false;
    return x < y;
  });

  // Greedy clique growth: a heavy link either founds a new group from its
  // two ungrouped endpoints or absorbs an ungrouped endpoint into the other
  // endpoint's group, subject to the member cap.
  std::vector<std::size_t> group_of(guests, kNone);
  std::vector<std::size_t> group_weight;
  std::vector<std::vector<std::size_t>> group_members;
  bool merged = false;
  for (const std::size_t l : order) {
    const auto ep = venv.endpoints(lid(l));
    const std::size_t a = ep.src.index();
    const std::size_t b = ep.dst.index();
    if (a == b) continue;
    const std::size_t ga = group_of[a];
    const std::size_t gb = group_of[b];
    if (ga == kNone && gb == kNone) {
      if (weight[a] + weight[b] > opts.max_members) continue;
      group_of[a] = group_of[b] = group_weight.size();
      group_weight.push_back(weight[a] + weight[b]);
      group_members.push_back({a, b});
      merged = true;
    } else if (ga != kNone && gb == kNone) {
      if (group_weight[ga] + weight[b] > opts.max_members) continue;
      group_of[b] = ga;
      group_weight[ga] += weight[b];
      group_members[ga].push_back(b);
      merged = true;
    } else if (ga == kNone && gb != kNone) {
      if (group_weight[gb] + weight[a] > opts.max_members) continue;
      group_of[a] = gb;
      group_weight[gb] += weight[a];
      group_members[gb].push_back(a);
      merged = true;
    }
    // Both grouped: merging two existing groups is left to later rounds
    // (the aggregated inter-group link will be heavy next time around).
  }
  if (!merged) return false;
  for (std::size_t g = 0; g < guests; ++g) {
    if (group_of[g] == kNone) {
      group_of[g] = group_weight.size();
      group_weight.push_back(weight[g]);
      group_members.push_back({g});
    }
  }

  // Renumber groups by ascending lowest member id, so coarse guest ids are
  // stable regardless of which links founded which group.
  for (auto& m : group_members) std::sort(m.begin(), m.end());
  std::vector<std::size_t> by_min(group_members.size());
  std::iota(by_min.begin(), by_min.end(), 0);
  std::sort(by_min.begin(), by_min.end(), [&](std::size_t x, std::size_t y) {
    return group_members[x][0] < group_members[y][0];
  });
  std::vector<std::size_t> renumber(group_members.size());
  for (std::size_t i = 0; i < by_min.size(); ++i) renumber[by_min[i]] = i;

  out.coarse_of_guest.assign(guests, GuestId::invalid());
  out.members.assign(group_members.size(), {});
  std::vector<std::size_t> new_weight(group_members.size(), 0);
  for (std::size_t old = 0; old < group_members.size(); ++old) {
    const std::size_t grp = renumber[old];
    new_weight[grp] = group_weight[old];
    for (const std::size_t g : group_members[old]) {
      out.coarse_of_guest[g] = gid(grp);
      out.members[grp].push_back(gid(g));
    }
  }

  // Coarse guests: summed requirements, in group order.
  for (const auto& members : out.members) {
    model::GuestRequirements req;
    for (const GuestId g : members) {
      req.proc_mips += venv.guest(g).proc_mips;
      req.mem_mb += venv.guest(g).mem_mb;
      req.stor_gb += venv.guest(g).stor_gb;
    }
    (void)out.coarse.add_guest(req);
  }

  // Coarse links: crossing finer links aggregate per group pair (bandwidth
  // summed, latency bound minimized, critical if any member is).  The
  // std::map keys give the canonical (a, b)-ascending link numbering.
  std::map<std::pair<std::size_t, std::size_t>, model::VirtualLinkDemand>
      trunk;
  for (std::size_t l = 0; l < links; ++l) {
    const auto ep = venv.endpoints(lid(l));
    const std::size_t ga = out.coarse_of_guest[ep.src.index()].index();
    const std::size_t gb = out.coarse_of_guest[ep.dst.index()].index();
    if (ga == gb) continue;
    const auto key = std::minmax(ga, gb);
    auto [it, fresh] = trunk.try_emplace(key, venv.link(lid(l)));
    if (fresh) continue;
    it->second.bandwidth_mbps += venv.link(lid(l)).bandwidth_mbps;
    it->second.max_latency_ms =
        std::min(it->second.max_latency_ms, venv.link(lid(l)).max_latency_ms);
    it->second.critical = it->second.critical || venv.link(lid(l)).critical;
  }
  std::map<std::pair<std::size_t, std::size_t>, VirtLinkId> trunk_id;
  for (const auto& [key, demand] : trunk) {
    trunk_id.emplace(key, out.coarse.add_link(gid(key.first), gid(key.second),
                                              demand));
  }
  out.coarse_of_link.assign(links, VirtLinkId::invalid());
  for (std::size_t l = 0; l < links; ++l) {
    const auto ep = venv.endpoints(lid(l));
    const std::size_t ga = out.coarse_of_guest[ep.src.index()].index();
    const std::size_t gb = out.coarse_of_guest[ep.dst.index()].index();
    if (ga == gb) continue;
    out.coarse_of_link[l] = trunk_id.at(std::minmax(ga, gb));
  }

  weight = std::move(new_weight);
  return true;
}

}  // namespace

VirtualHierarchy coarsen_virtual(const model::VirtualEnvironment& base,
                                 const VirtualCoarsenOptions& opts) {
  VirtualHierarchy h;
  std::vector<std::size_t> weight(base.guest_count(), 1);
  const model::VirtualEnvironment* cur = &base;
  while (cur->guest_count() > opts.target_guests &&
         h.levels.size() < opts.max_levels) {
    VirtualLevel level;
    if (!coarsen_round(*cur, opts, weight, level)) break;
    h.levels.push_back(std::move(level));
    cur = &h.levels.back().coarse;
  }
  return h;
}

std::vector<NodeId> project_guest_host(
    const VirtualLevel& level, const std::vector<NodeId>& coarse_guest_host) {
  std::vector<NodeId> fine(level.coarse_of_guest.size(), NodeId::invalid());
  for (std::size_t g = 0; g < fine.size(); ++g) {
    fine[g] = coarse_guest_host[level.coarse_of_guest[g].index()];
  }
  return fine;
}

std::vector<graph::Path> project_link_paths(
    const VirtualLevel& level, const std::vector<graph::Path>& coarse_paths) {
  std::vector<graph::Path> fine(level.coarse_of_link.size());
  for (std::size_t l = 0; l < fine.size(); ++l) {
    const VirtLinkId cl = level.coarse_of_link[l];
    if (cl.valid()) fine[l] = coarse_paths[cl.index()];
  }
  return fine;
}

}  // namespace hmn::multilevel
