#include "orchestrator/orchestrator.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/objective.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace hmn::orchestrator {
namespace {

std::uint64_t fnv1a(const std::vector<NodeId>& hosts) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const NodeId n : hosts) {
    h ^= n.value();
    h *= 1099511628211ULL;
  }
  return h;
}

std::string tenant_name(std::uint32_t key) {
  return "t" + std::to_string(key);
}

}  // namespace

double OrchestratorReport::acceptance_rate() const {
  if (arrivals == 0) return 0.0;
  return static_cast<double>(admitted_immediately + admitted_from_queue) /
         static_cast<double>(arrivals);
}

double OrchestratorReport::mean_queue_wait() const {
  return util::mean(queue_waits);
}

double OrchestratorReport::latency_percentile_us(double p) const {
  return util::percentile(decision_latencies_us, p);
}

std::string OrchestratorReport::decision_signature() const {
  std::ostringstream out;
  char buf[128];
  for (const EventDecision& d : decisions) {
    std::snprintf(buf, sizeof(buf), "%.17g|%d|%u|%d|%d|%016" PRIx64 ";",
                  d.time, static_cast<int>(d.kind), d.tenant,
                  static_cast<int>(d.decision), static_cast<int>(d.error),
                  d.placement_hash);
    out << buf;
  }
  return out.str();
}

Orchestrator::Orchestrator(model::PhysicalCluster cluster,
                           workload::GuestProfile profile,
                           OrchestratorOptions opts)
    : Orchestrator(std::move(cluster), profile, extensions::default_pool(),
                   opts) {}

Orchestrator::Orchestrator(model::PhysicalCluster cluster,
                           workload::GuestProfile profile,
                           extensions::HeuristicPool pool,
                           OrchestratorOptions opts)
    : mgr_(std::move(cluster), std::move(pool)),
      profile_(profile),
      opts_(opts),
      queue_(opts.retry_max_attempts, opts.max_queue) {}

std::uint64_t Orchestrator::placement_hash(emulator::TenantId id) const {
  const emulator::Tenant* tenant = mgr_.tenant(id);
  return tenant == nullptr ? 0 : fnv1a(tenant->mapping.guest_host);
}

void Orchestrator::record(EventDecision decision) {
  report_.decision_latencies_us.push_back(decision.latency_us);
  report_.decisions.push_back(std::move(decision));
}

void Orchestrator::sample(double time) {
  const emulator::TenancyUtilization u = mgr_.utilization();
  UtilizationSample s;
  s.time = time;
  s.mem_fraction = u.mem_fraction;
  s.lbf = core::load_balance_factor(mgr_.residual_host_proc());
  s.live_tenants = live_.size();
  s.queued = queue_.size();
  report_.timeline.push_back(s);
}

void Orchestrator::maybe_defrag() {
  const std::size_t k = opts_.defrag_every_departures;
  if (k == 0 || departures_ % k != 0) return;
  const util::Timer timer;
  const DefragResult pass = run_defrag(mgr_, opts_.defrag);
  report_.defrag.total_seconds += timer.elapsed_seconds();
  ++report_.defrag.passes;
  if (pass.committed) {
    ++report_.defrag.committed;
    report_.defrag.migrations += pass.migrations;
    report_.defrag.lbf_reduction += pass.lbf_before - pass.lbf_after;
  }
}

void Orchestrator::drain_queue(double now) {
  std::unordered_map<std::uint32_t, double> latencies;
  auto outcome = queue_.drain([&](PendingTenant& entry) {
    const util::Timer timer;
    // Each attempt gets a fresh derived seed: a randomized fallback mapper
    // retrying with the arrival seed would fail identically forever.
    const auto result =
        mgr_.admit(entry.name, entry.venv,
                   util::derive_seed(entry.seed, entry.attempts));
    latencies[entry.key] = timer.elapsed_us();
    if (!result.ok()) return false;
    live_[entry.key] = *result.tenant;
    return true;
  });

  for (const PendingTenant& entry : outcome.admitted) {
    EventDecision d;
    d.time = now;
    d.kind = workload::EventKind::kArrive;
    d.tenant = entry.key;
    d.decision = Decision::kAdmittedFromQueue;
    d.queue_wait = now - entry.enqueued_at;
    d.latency_us = latencies[entry.key];
    d.placement_hash = placement_hash(live_.at(entry.key));
    ++report_.admitted_from_queue;
    report_.queue_waits.push_back(d.queue_wait);
    record(d);
  }
  for (const PendingTenant& entry : outcome.dropped) {
    EventDecision d;
    d.time = now;
    d.kind = workload::EventKind::kArrive;
    d.tenant = entry.key;
    d.decision = Decision::kDropped;
    d.error = core::MapErrorCode::kTriesExhausted;
    d.queue_wait = now - entry.enqueued_at;
    d.latency_us = latencies[entry.key];
    ++report_.dropped;
    record(d);
  }
}

EventDecision Orchestrator::handle(const workload::TenantEvent& ev) {
  const util::Timer timer;
  EventDecision d;
  d.time = ev.time;
  d.kind = ev.kind;
  d.tenant = ev.tenant;
  bool freed_capacity = false;

  switch (ev.kind) {
    case workload::EventKind::kArrive: {
      ++report_.arrivals;
      model::VirtualEnvironment venv = workload::make_event_venv(profile_, ev);
      const auto result =
          mgr_.admit(tenant_name(ev.tenant), venv, ev.seed);
      if (result.ok()) {
        live_[ev.tenant] = *result.tenant;
        d.decision = Decision::kAdmitted;
        d.placement_hash = placement_hash(*result.tenant);
        ++report_.admitted_immediately;
      } else {
        d.error = result.error;
        if (queue_.full()) {
          d.decision = Decision::kRejected;
          ++report_.rejected;
        } else {
          d.decision = Decision::kQueued;
          PendingTenant pending;
          pending.key = ev.tenant;
          pending.name = tenant_name(ev.tenant);
          pending.venv = std::move(venv);
          pending.seed = ev.seed;
          pending.enqueued_at = ev.time;
          pending.attempts = 1;  // the arrival itself
          queue_.push(std::move(pending));
        }
      }
      break;
    }
    case workload::EventKind::kGrow: {
      const auto it = live_.find(ev.tenant);
      if (it == live_.end()) {
        d.decision = Decision::kNoOp;
        break;
      }
      ++report_.growths;
      const emulator::Tenant* tenant = mgr_.tenant(it->second);
      model::VirtualEnvironment grown =
          workload::apply_growth(tenant->venv, profile_, ev);
      const auto result = mgr_.grow(it->second, std::move(grown), ev.seed);
      if (result.ok) {
        d.decision = result.used_full_remap ? Decision::kGrownByRemap
                                            : Decision::kGrown;
        d.placement_hash = placement_hash(it->second);
        ++(result.used_full_remap ? report_.grown_by_remap
                                  : report_.grown_in_place);
      } else {
        d.decision = Decision::kGrowthRejected;
        d.error = result.error;
        ++report_.growth_rejected;
      }
      break;
    }
    case workload::EventKind::kDepart: {
      const auto it = live_.find(ev.tenant);
      if (it != live_.end()) {
        mgr_.release(it->second);
        live_.erase(it);
        d.decision = Decision::kDeparted;
        ++departures_;
        freed_capacity = true;
      } else if (auto entry = queue_.erase(ev.tenant)) {
        d.decision = Decision::kAbandoned;
        d.queue_wait = ev.time - entry->enqueued_at;
        ++report_.abandoned;
      } else {
        d.decision = Decision::kNoOp;
      }
      break;
    }
  }

  d.latency_us = timer.elapsed_us();
  record(d);
  if (freed_capacity) {
    maybe_defrag();
    drain_queue(ev.time);
  }
  sample(ev.time);
  return d;
}

const OrchestratorReport& Orchestrator::run(const workload::ChurnTrace& trace) {
  for (const workload::TenantEvent& ev : trace.events) handle(ev);
  return report_;
}

}  // namespace hmn::orchestrator
