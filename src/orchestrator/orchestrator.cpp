#include "orchestrator/orchestrator.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "core/objective.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace hmn::orchestrator {
namespace {

std::uint64_t fnv1a(const std::vector<NodeId>& hosts) {
  std::uint64_t h = kFingerprintSeed;
  for (const NodeId n : hosts) {
    h ^= n.value();
    h *= 1099511628211ULL;
  }
  return h;
}

/// Byte-wise FNV-1a continuation — the run-fingerprint chain folds each
/// decision's canonical string into the previous chain value.
std::uint64_t fnv1a_bytes(const char* data, std::size_t len,
                          std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string tenant_name(std::uint32_t key) {
  return "t" + std::to_string(key);
}

}  // namespace

double OrchestratorReport::acceptance_rate() const {
  if (arrivals == 0) return 0.0;
  return static_cast<double>(admitted_immediately + admitted_from_queue) /
         static_cast<double>(arrivals);
}

double OrchestratorReport::mean_queue_wait() const {
  return util::mean(queue_waits);
}

double OrchestratorReport::latency_percentile_us(double p) const {
  return util::percentile(decision_latencies_us, p);
}

std::string OrchestratorReport::decision_signature() const {
  std::ostringstream out;
  char buf[128];
  for (const EventDecision& d : decisions) {
    std::snprintf(buf, sizeof(buf), "%.17g|%d|%u|%d|%d|%016" PRIx64 ";",
                  d.time, static_cast<int>(d.kind), d.tenant,
                  static_cast<int>(d.decision), static_cast<int>(d.error),
                  d.placement_hash);
    out << buf;
  }
  return out.str();
}

Orchestrator::Orchestrator(model::PhysicalCluster cluster,
                           workload::GuestProfile profile,
                           OrchestratorOptions opts)
    : Orchestrator(std::move(cluster), profile, extensions::default_pool(),
                   opts) {}

Orchestrator::Orchestrator(model::PhysicalCluster cluster,
                           workload::GuestProfile profile,
                           extensions::HeuristicPool pool,
                           OrchestratorOptions opts)
    : mgr_(std::move(cluster), std::move(pool)),
      profile_(profile),
      opts_(opts),
      queue_(opts.retry_max_attempts, opts.max_queue, opts.queue_policy,
             opts.retry_max_passovers),
      healer_(opts.healer),
      avail_(mgr_.cluster().node_count(), mgr_.cluster().link_count(),
             opts.availability) {}

void Orchestrator::observe_failure_event(const workload::TenantEvent& ev) {
  switch (ev.kind) {
    case workload::EventKind::kHostFail:
      avail_.on_node_fail(ev.element, ev.time);
      break;
    case workload::EventKind::kHostRecover:
      avail_.on_node_recover(ev.element, ev.time);
      break;
    case workload::EventKind::kLinkFail:
      avail_.on_link_fail(ev.element, ev.time);
      break;
    case workload::EventKind::kLinkRecover:
      avail_.on_link_recover(ev.element, ev.time);
      break;
    case workload::EventKind::kBlastFail:
      avail_.on_node_fail(ev.element, ev.time);
      for (const std::uint32_t h : ev.group_hosts) {
        avail_.on_node_fail(h, ev.time);
      }
      for (const std::uint32_t l : ev.group_links) {
        avail_.on_link_fail(l, ev.time);
      }
      break;
    case workload::EventKind::kBlastRecover:
      avail_.on_node_recover(ev.element, ev.time);
      for (const std::uint32_t h : ev.group_hosts) {
        avail_.on_node_recover(h, ev.time);
      }
      for (const std::uint32_t l : ev.group_links) {
        avail_.on_link_recover(l, ev.time);
      }
      break;
    case workload::EventKind::kPowerFail:
      // ev.element is the power-domain id, not a node id — only the group
      // member lists name real tracker elements.
      avail_.on_group_fail(ev.group_hosts, ev.group_links, ev.time);
      break;
    case workload::EventKind::kPowerRecover:
      avail_.on_group_recover(ev.group_hosts, ev.group_links, ev.time);
      break;
    default:
      return;
  }
  // Install the bias only once the tracker has history — before the first
  // failure nothing is set, so an aware failure-free run stays
  // byte-identical to a blind one (the E15 tie gate).
  if (opts_.availability_aware && avail_.has_history()) {
    mgr_.set_host_weights(avail_.node_weights());
    mgr_.set_admission_headroom(opts_.spare_headroom);
  }
}

std::uint64_t Orchestrator::placement_hash(emulator::TenantId id) const {
  const emulator::Tenant* tenant = mgr_.tenant(id);
  return tenant == nullptr ? 0 : fnv1a(tenant->mapping.guest_host);
}

void Orchestrator::record(EventDecision decision) {
  // Fold the decision into the running fingerprint chain using exactly the
  // canonical per-decision string of decision_signature(), so
  // run_fingerprint() == fnv1a(decision_signature()) at all times without
  // retaining the vector across a checkpoint.
  char buf[128];
  const int n = std::snprintf(
      buf, sizeof(buf), "%.17g|%d|%u|%d|%d|%016" PRIx64 ";", decision.time,
      static_cast<int>(decision.kind), decision.tenant,
      static_cast<int>(decision.decision), static_cast<int>(decision.error),
      decision.placement_hash);
  run_fingerprint_ =
      fnv1a_bytes(buf, static_cast<std::size_t>(n), run_fingerprint_);
  report_.decision_latencies_us.push_back(decision.latency_us);
  report_.decisions.push_back(std::move(decision));
}

void Orchestrator::emit_txn(TxnKind kind, double time, std::uint32_t key,
                            std::uint64_t detail) {
  if (observer_ == nullptr) return;
  TxnRecord txn;
  txn.kind = kind;
  txn.time = time;
  txn.key = key;
  txn.detail = detail;
  observer_->on_txn(txn);
}

void Orchestrator::sample(double time) {
  const emulator::TenancyUtilization u = mgr_.utilization();
  UtilizationSample s;
  s.time = time;
  s.mem_fraction = u.mem_fraction;
  s.lbf = core::load_balance_factor(mgr_.residual_host_proc());
  s.live_tenants = live_.size();
  s.queued = queue_.size();
  report_.timeline.push_back(s);
}

void Orchestrator::maybe_defrag(double now) {
  // Defrag rebuilds residuals from the unmasked cluster and re-routes every
  // link from scratch; while elements are down, tenants run dark links, or
  // replica repairs sit deferred (their mappings deliberately reference
  // dead elements) it would either abort or silently fight the healer —
  // suppress it.
  if (mgr_.has_failed_elements() || healer_.degraded_count() > 0 ||
      healer_.deferred_count() > 0) {
    return;
  }
  const std::size_t k = opts_.defrag_every_departures;
  if (k == 0 || departures_ % k != 0) return;
  const util::Timer timer;
  const DefragResult pass = run_defrag(mgr_, opts_.defrag);
  report_.defrag.total_seconds += timer.elapsed_seconds();
  ++report_.defrag.passes;
  if (pass.committed) {
    ++report_.defrag.committed;
    report_.defrag.migrations += pass.migrations;
    report_.defrag.lbf_reduction += pass.lbf_before - pass.lbf_after;
    emit_txn(TxnKind::kDefragCommit, now, 0, pass.migrations);
  }
}

void Orchestrator::drain_queue(double now) {
  // Ordered map: this sits on the decision path (latencies key the records
  // below), and hmn-lint bans unordered containers here outright — the
  // handful of keys per drain makes the tree overhead unmeasurable.
  std::map<std::uint32_t, double> latencies;
  auto outcome = queue_.drain([&](PendingTenant& entry) {
    const util::Timer timer;
    // Each attempt gets a fresh derived seed: a randomized fallback mapper
    // retrying with the arrival seed would fail identically forever.
    const auto result =
        mgr_.admit(entry.name, entry.venv,
                   util::derive_seed(entry.seed, entry.attempts));
    latencies[entry.key] = timer.elapsed_us();
    if (!result.ok()) return false;
    live_[entry.key] = *result.tenant;
    return true;
  });

  for (const PendingTenant& entry : outcome.admitted) {
    EventDecision d;
    d.time = now;
    d.kind = workload::EventKind::kArrive;
    d.tenant = entry.key;
    d.decision = Decision::kAdmittedFromQueue;
    d.queue_wait = now - entry.enqueued_at;
    d.latency_us = latencies[entry.key];
    d.placement_hash = placement_hash(live_.at(entry.key));
    ++report_.admitted_from_queue;
    report_.queue_waits.push_back(d.queue_wait);
    record(d);
    emit_txn(TxnKind::kBackfillCommit, now, entry.key, d.placement_hash);
  }
  for (const PendingTenant& entry : outcome.dropped) {
    EventDecision d;
    d.time = now;
    d.kind = workload::EventKind::kArrive;
    d.tenant = entry.key;
    d.decision = Decision::kDropped;
    d.error = core::MapErrorCode::kTriesExhausted;
    d.queue_wait = now - entry.enqueued_at;
    d.latency_us = latencies[entry.key];
    ++report_.dropped;
    record(d);
    emit_txn(TxnKind::kQueueDrop, now, entry.key, entry.attempts);
  }
  for (const PendingTenant& entry : outcome.preempted) {
    EventDecision d;
    d.time = now;
    d.kind = workload::EventKind::kArrive;
    d.tenant = entry.key;
    d.decision = Decision::kPreempted;
    d.queue_wait = now - entry.enqueued_at;
    d.latency_us = latencies[entry.key];
    ++report_.preempted;
    record(d);
    emit_txn(TxnKind::kQueuePreempt, now, entry.key, entry.passed_over);
  }
}

void Orchestrator::add_lost(std::uint32_t key, double amount) {
  report_.tenant_minutes_lost += amount;
  const auto it = tier_of_.find(key);
  const model::SlaTier tier =
      it == tier_of_.end() ? model::SlaTier::kStandard : it->second;
  switch (tier) {
    case model::SlaTier::kGold:
      report_.tenant_minutes_lost_gold += amount;
      break;
    case model::SlaTier::kStandard:
      report_.tenant_minutes_lost_standard += amount;
      break;
    case model::SlaTier::kBestEffort:
      report_.tenant_minutes_lost_best_effort += amount;
      break;
  }
}

void Orchestrator::close_degraded_window(std::uint32_t key, double now) {
  const auto it = degraded_since_.find(key);
  if (it == degraded_since_.end()) return;
  report_.degraded_minutes += now - it->second;
  degraded_since_.erase(it);
}

void Orchestrator::record_heals(const std::vector<HealRecord>& records,
                                double now, workload::EventKind kind) {
  for (const HealRecord& r : records) {
    EventDecision d;
    d.time = now;
    d.kind = kind;
    d.tenant = r.key;
    d.error = r.error;
    d.latency_us = r.latency_us;
    switch (r.action) {
      case HealAction::kHealed:
        d.decision = Decision::kHealed;
        ++report_.healed;
        break;
      case HealAction::kDegraded:
        d.decision = Decision::kDegraded;
        ++report_.degraded;
        degraded_since_.try_emplace(r.key, now);
        break;
      case HealAction::kRestored:
        d.decision = Decision::kRestored;
        ++report_.restored;
        close_degraded_window(r.key, now);
        break;
      case HealAction::kParked:
        d.decision = Decision::kParked;
        ++report_.parked;
        close_degraded_window(r.key, now);
        break;
      case HealAction::kReadmitted:
        d.decision = Decision::kReadmitted;
        ++report_.readmitted;
        d.queue_wait = r.outage;
        add_lost(r.key, r.outage);
        break;
      case HealAction::kDropped:
        d.decision = Decision::kHealDropped;
        ++report_.heal_dropped;
        d.queue_wait = r.outage;
        // The loss keeps accruing until the tenant's own DEPART event.
        lost_since_[r.key] = now - r.outage;
        break;
      case HealAction::kReplicaDeferred:
        d.decision = Decision::kReplicaDeferred;
        ++report_.replica_deferred;
        break;
    }
    const auto lit = live_.find(r.key);
    if (lit != live_.end() && r.action != HealAction::kParked &&
        r.action != HealAction::kDropped) {
      d.placement_hash = placement_hash(lit->second);
    }
    if (r.action == HealAction::kHealed || r.action == HealAction::kDegraded ||
        r.action == HealAction::kRestored) {
      report_.heal_latencies_us.push_back(r.latency_us);
    }
    record(d);
    emit_txn(TxnKind::kHealAction, now, r.key,
             static_cast<std::uint64_t>(r.action) << 32 |
                 static_cast<std::uint64_t>(d.placement_hash & 0xffffffffULL));
  }
}

void Orchestrator::run_audit(double now) {
  if (!opts_.audit_invariants) return;
  for (std::string& v : healer_.audit(mgr_, live_)) {
    report_.invariant_violations.push_back(std::to_string(now) + ": " +
                                           std::move(v));
  }
}

EventDecision Orchestrator::handle(const workload::TenantEvent& ev) {
  if (observer_ != nullptr) observer_->on_event_begin(event_index_, ev);
  const util::Timer timer;
  EventDecision d;
  d.time = ev.time;
  d.kind = ev.kind;
  d.tenant = ev.tenant;
  bool freed_capacity = false;
  bool recovered = false;
  std::vector<HealRecord> heals;

  switch (ev.kind) {
    case workload::EventKind::kArrive: {
      ++report_.arrivals;
      tier_of_[ev.tenant] = ev.sla_tier;
      model::VirtualEnvironment venv = workload::make_event_venv(profile_, ev);
      const auto result =
          mgr_.admit(tenant_name(ev.tenant), venv, ev.seed);
      if (result.ok()) {
        live_[ev.tenant] = *result.tenant;
        d.decision = Decision::kAdmitted;
        d.placement_hash = placement_hash(*result.tenant);
        ++report_.admitted_immediately;
        emit_txn(TxnKind::kAdmitCommit, ev.time, ev.tenant, d.placement_hash);
      } else {
        d.error = result.error;
        PendingTenant pending;
        pending.key = ev.tenant;
        pending.name = tenant_name(ev.tenant);
        pending.venv = std::move(venv);
        pending.seed = ev.seed;
        pending.enqueued_at = ev.time;
        pending.attempts = 1;  // the arrival itself
        if (queue_.push(std::move(pending))) {
          d.decision = Decision::kQueued;
          emit_txn(TxnKind::kQueuePush, ev.time, ev.tenant, 0);
        } else {
          d.decision = Decision::kRejected;
          ++report_.rejected;
          emit_txn(TxnKind::kQueueReject, ev.time, ev.tenant, 0);
        }
      }
      break;
    }
    case workload::EventKind::kGrow: {
      const auto it = live_.find(ev.tenant);
      if (it == live_.end()) {
        d.decision = Decision::kNoOp;
        break;
      }
      ++report_.growths;
      const emulator::Tenant* tenant = mgr_.tenant(it->second);
      model::VirtualEnvironment grown =
          workload::apply_growth(tenant->venv, profile_, ev);
      const auto result = mgr_.grow(it->second, std::move(grown), ev.seed);
      if (result.ok) {
        d.decision = result.used_full_remap ? Decision::kGrownByRemap
                                            : Decision::kGrown;
        d.placement_hash = placement_hash(it->second);
        ++(result.used_full_remap ? report_.grown_by_remap
                                  : report_.grown_in_place);
        emit_txn(TxnKind::kGrowCommit, ev.time, ev.tenant, d.placement_hash);
      } else {
        d.decision = Decision::kGrowthRejected;
        d.error = result.error;
        ++report_.growth_rejected;
        emit_txn(TxnKind::kGrowAbort, ev.time, ev.tenant,
                 static_cast<std::uint64_t>(result.error));
      }
      break;
    }
    case workload::EventKind::kDepart: {
      const auto it = live_.find(ev.tenant);
      if (it != live_.end()) {
        close_degraded_window(ev.tenant, ev.time);
        healer_.forget(ev.tenant);
        mgr_.release(it->second);
        live_.erase(it);
        d.decision = Decision::kDeparted;
        ++departures_;
        freed_capacity = true;
        emit_txn(TxnKind::kReleaseCommit, ev.time, ev.tenant, 0);
      } else if (auto entry = queue_.erase(ev.tenant)) {
        d.decision = Decision::kAbandoned;
        d.queue_wait = ev.time - entry->enqueued_at;
        ++report_.abandoned;
        emit_txn(TxnKind::kQueueAbandon, ev.time, ev.tenant, 0);
      } else if (auto outage = healer_.abandon_parked(ev.tenant, ev.time)) {
        // Departed while evicted: the whole parked window is lost time.
        d.decision = Decision::kAbandoned;
        d.queue_wait = *outage;
        add_lost(ev.tenant, *outage);
        ++report_.abandoned;
        emit_txn(TxnKind::kQueueAbandon, ev.time, ev.tenant, 1);
      } else if (const auto lost = lost_since_.find(ev.tenant);
                 lost != lost_since_.end()) {
        add_lost(ev.tenant, ev.time - lost->second);
        lost_since_.erase(lost);
        d.decision = Decision::kNoOp;
      } else {
        d.decision = Decision::kNoOp;
      }
      break;
    }
    case workload::EventKind::kHostFail:
    case workload::EventKind::kLinkFail:
    case workload::EventKind::kHostRecover:
    case workload::EventKind::kLinkRecover:
    case workload::EventKind::kBlastFail:
    case workload::EventKind::kBlastRecover:
    case workload::EventKind::kPowerFail:
    case workload::EventKind::kPowerRecover: {
      d.tenant = ev.element;  // the signature covers *which* element
      switch (ev.kind) {
        case workload::EventKind::kHostFail:
          d.decision = Decision::kHostFailed;
          ++report_.host_failures;
          break;
        case workload::EventKind::kLinkFail:
          d.decision = Decision::kLinkFailed;
          ++report_.link_failures;
          break;
        case workload::EventKind::kBlastFail:
          d.decision = Decision::kBlastFailed;
          ++report_.blast_failures;
          break;
        case workload::EventKind::kPowerFail:
          d.decision = Decision::kPowerFailed;
          ++report_.power_failures;
          break;
        case workload::EventKind::kHostRecover:
          d.decision = Decision::kHostRecovered;
          ++report_.recoveries;
          recovered = true;
          break;
        case workload::EventKind::kBlastRecover:
          d.decision = Decision::kBlastRecovered;
          ++report_.recoveries;
          recovered = true;
          break;
        case workload::EventKind::kPowerRecover:
          d.decision = Decision::kPowerRecovered;
          ++report_.recoveries;
          recovered = true;
          break;
        default:
          d.decision = Decision::kLinkRecovered;
          ++report_.recoveries;
          recovered = true;
          break;
      }
      observe_failure_event(ev);
      emit_txn(TxnKind::kFailureApplied, ev.time, ev.element,
               static_cast<std::uint64_t>(ev.kind));
      heals = healer_.on_event(mgr_, live_, ev);
      break;
    }
  }

  d.latency_us = timer.elapsed_us();
  record(d);
  record_heals(heals, ev.time, ev.kind);
  if (freed_capacity) {
    // Capacity just freed: re-heal Degraded tenants and retry the healing
    // queue before the ordinary defrag + admission backfill.
    record_heals(healer_.on_capacity_freed(mgr_, live_, ev.time), ev.time,
                 ev.kind);
    maybe_defrag(ev.time);
    drain_queue(ev.time);
  }
  if (recovered) drain_queue(ev.time);
  run_audit(ev.time);
  sample(ev.time);
  ++event_index_;
  if (observer_ != nullptr) {
    observer_->on_event_end(event_index_ - 1, ev.time, run_fingerprint_);
  }
  return d;
}

const OrchestratorReport& Orchestrator::run(const workload::ChurnTrace& trace) {
  for (const workload::TenantEvent& ev : trace.events) handle(ev);
  return report_;
}

Orchestrator::State Orchestrator::export_state() const {
  State state;
  state.tenancy = mgr_.export_state();
  state.healer = healer_.export_state();
  state.queue = queue_.export_entries();
  state.availability = avail_.snapshot();
  state.live = live_;
  state.degraded_since = degraded_since_;
  state.lost_since = lost_since_;
  state.tier_of = tier_of_;
  state.departures = departures_;
  state.events_handled = event_index_;
  state.run_fingerprint = run_fingerprint_;
  state.report = report_;
  // Scalars only: the longitudinal vectors would make checkpoint size (and
  // with it recovery time) grow with run length.
  state.report.decisions.clear();
  state.report.timeline.clear();
  state.report.invariant_violations.clear();
  state.report.queue_waits.clear();
  state.report.decision_latencies_us.clear();
  state.report.heal_latencies_us.clear();
  return state;
}

void Orchestrator::restore_state(State state) {
  mgr_.restore_state(std::move(state.tenancy));
  healer_.restore_state(std::move(state.healer));
  queue_.restore_entries(std::move(state.queue));
  avail_.restore(state.availability);
  live_ = std::move(state.live);
  degraded_since_ = std::move(state.degraded_since);
  lost_since_ = std::move(state.lost_since);
  tier_of_ = std::move(state.tier_of);
  departures_ = state.departures;
  event_index_ = state.events_handled;
  run_fingerprint_ = state.run_fingerprint;
  report_ = std::move(state.report);
}

}  // namespace hmn::orchestrator
