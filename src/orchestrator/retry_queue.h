// Deferred-retry (backfill) queue for rejected tenants.
//
// A tenant that does not fit at arrival is not necessarily lost: the next
// departure (or a defragmentation pass) may free exactly the capacity it
// needs.  The queue holds rejected tenants and re-attempts them when the
// orchestrator signals that capacity changed.  The drain order is a
// pluggable QueuePolicy (FIFO by default); every policy is a deterministic
// reorder of the same entries, and the orchestrator logs each admission /
// drop as a decision, so any policy replays byte-identically.  A
// per-tenant attempt cap bounds the work a hopeless giant can consume
// before it is dropped, and a *preemption budget* (max_passovers) bounds
// the unfairness the non-FIFO policies can inflict: a queued tenant that
// watches k later backfills admit past it is abandoned with an explicit
// preemption decision rather than starving invisibly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "model/virtual_environment.h"

namespace hmn::orchestrator {

/// Backfill drain order.  Admissions mutate residual capacity mid-drain,
/// so the order is policy, not cosmetics: whoever is tried first gets
/// first claim on freshly freed capacity.
enum class QueuePolicy : std::uint8_t {
  /// Arrival order — the fairness baseline.
  kFifo,
  /// Fewest guests first (ties: enqueue time, then key): small tenants
  /// backfill gaps a giant cannot use, maximizing admissions per drain at
  /// the cost of possibly starving the giant.
  kSmallestFirst,
  /// Longest wait first (ties: key).  Enqueue times grow monotonically, so
  /// this refines FIFO with a deterministic key tie-break for tenants
  /// rejected at the same event instant.
  kLargestWaitFirst,
};

[[nodiscard]] constexpr const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kSmallestFirst: return "smallest-first";
    case QueuePolicy::kLargestWaitFirst: return "largest-wait-first";
  }
  return "?";
}

/// A tenant waiting for admission.
struct PendingTenant {
  std::uint32_t key = 0;  // ChurnGenerator tenant key
  std::string name;
  model::VirtualEnvironment venv;
  std::uint64_t seed = 0;     // admission seed (attempts derive from it)
  double enqueued_at = 0.0;   // event time of the original rejection
  std::size_t attempts = 0;   // admission attempts so far (includes arrival)
  /// Backfills admitted by drains in which this entry failed — the count
  /// the preemption budget is charged against.
  std::size_t passed_over = 0;
};

class RetryQueue {
 public:
  /// max_attempts: drop a tenant after this many failed admissions
  /// (0 = never drop).  max_size: reject instead of enqueue when the queue
  /// is this long (0 = unbounded).  max_passovers: abandon a tenant once
  /// this many backfills have been admitted by drains that failed it
  /// (0 = never preempt).
  explicit RetryQueue(std::size_t max_attempts = 0, std::size_t max_size = 0,
                      QueuePolicy policy = QueuePolicy::kFifo,
                      std::size_t max_passovers = 0)
      : max_attempts_(max_attempts),
        max_size_(max_size),
        policy_(policy),
        max_passovers_(max_passovers) {}

  [[nodiscard]] QueuePolicy policy() const { return policy_; }

  [[nodiscard]] bool full() const {
    return max_size_ != 0 && entries_.size() >= max_size_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Enqueues a rejected tenant.  Returns false — and leaves the queue
  /// unchanged — when the queue is full, so an over-full queue rejects
  /// deterministically instead of silently growing.
  [[nodiscard]] bool push(PendingTenant tenant);

  /// Removes a tenant that departed before ever being admitted.  Returns
  /// the entry when present (for time-in-queue accounting).
  [[nodiscard]] std::optional<PendingTenant> erase(std::uint32_t key);

  struct DrainResult {
    std::vector<PendingTenant> admitted;   // entries `try_admit` accepted
    std::vector<PendingTenant> dropped;    // entries past max_attempts
    std::vector<PendingTenant> preempted;  // entries past max_passovers
  };

  /// Re-attempts every queued tenant in policy order.  `try_admit` is
  /// called with the entry (attempts already incremented) and returns
  /// whether the tenant was admitted; admitted and attempt-exhausted
  /// entries leave the queue, the rest stay in policy order.
  ///
  /// Preemption accounting runs after the pass: each entry that failed
  /// this drain is charged one passover per tenant the same drain
  /// *admitted* — capacity demonstrably existed and went to someone else,
  /// whatever the try order (under kSmallestFirst the starving giant is
  /// tried last, so order-sensitive accounting would never charge it).
  /// An entry whose lifetime passovers reach max_passovers is abandoned
  /// into `preempted`.  The attempt cap wins ties: an entry exhausting
  /// both budgets in the same drain is `dropped`, not preempted.
  template <typename TryAdmit>
  DrainResult drain(TryAdmit&& try_admit) {
    reorder();
    DrainResult result;
    std::deque<PendingTenant> keep;
    std::size_t admitted_count = 0;
    while (!entries_.empty()) {
      PendingTenant entry = std::move(entries_.front());
      entries_.pop_front();
      ++entry.attempts;
      if (try_admit(entry)) {
        ++admitted_count;
        result.admitted.push_back(std::move(entry));
      } else if (max_attempts_ != 0 && entry.attempts >= max_attempts_) {
        result.dropped.push_back(std::move(entry));
      } else {
        keep.push_back(std::move(entry));
      }
    }
    while (!keep.empty()) {
      PendingTenant entry = std::move(keep.front());
      keep.pop_front();
      entry.passed_over += admitted_count;
      if (max_passovers_ != 0 && entry.passed_over >= max_passovers_) {
        result.preempted.push_back(std::move(entry));
      } else {
        entries_.push_back(std::move(entry));
      }
    }
    return result;
  }

  /// Checkpoint support (src/recovery): the entries in queue order, and
  /// their exact restoration (any current entries are discarded).
  [[nodiscard]] std::vector<PendingTenant> export_entries() const;
  void restore_entries(std::vector<PendingTenant> entries);

 private:
  /// Deterministic policy reorder applied before each drain.  Stable, so
  /// entries the policy considers equal keep their FIFO order.
  void reorder() {
    switch (policy_) {
      case QueuePolicy::kFifo:
        return;
      case QueuePolicy::kSmallestFirst:
        std::stable_sort(entries_.begin(), entries_.end(),
                         [](const PendingTenant& a, const PendingTenant& b) {
                           if (a.venv.guest_count() != b.venv.guest_count()) {
                             return a.venv.guest_count() <
                                    b.venv.guest_count();
                           }
                           // hmn-lint: allow(float-eq, enqueue times are copied event timestamps; exact comparison is the deterministic tie-break)
                           if (a.enqueued_at != b.enqueued_at) {
                             return a.enqueued_at < b.enqueued_at;
                           }
                           return a.key < b.key;
                         });
        return;
      case QueuePolicy::kLargestWaitFirst:
        std::stable_sort(entries_.begin(), entries_.end(),
                         [](const PendingTenant& a, const PendingTenant& b) {
                           // hmn-lint: allow(float-eq, enqueue times are copied event timestamps; exact comparison is the deterministic tie-break)
                           if (a.enqueued_at != b.enqueued_at) {
                             return a.enqueued_at < b.enqueued_at;
                           }
                           return a.key < b.key;
                         });
        return;
    }
  }

  std::size_t max_attempts_;
  std::size_t max_size_;
  QueuePolicy policy_ = QueuePolicy::kFifo;
  std::size_t max_passovers_ = 0;
  std::deque<PendingTenant> entries_;
};

}  // namespace hmn::orchestrator
