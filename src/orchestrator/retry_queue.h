// Deferred-retry (backfill) queue for rejected tenants.
//
// A tenant that does not fit at arrival is not necessarily lost: the next
// departure (or a defragmentation pass) may free exactly the capacity it
// needs.  The queue holds rejected tenants in FIFO order and re-attempts
// them when the orchestrator signals that capacity changed.  FIFO keeps
// the policy fair and the replay deterministic; a per-tenant attempt cap
// bounds the work a hopeless giant can consume before it is dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "model/virtual_environment.h"

namespace hmn::orchestrator {

/// A tenant waiting for admission.
struct PendingTenant {
  std::uint32_t key = 0;  // ChurnGenerator tenant key
  std::string name;
  model::VirtualEnvironment venv;
  std::uint64_t seed = 0;     // admission seed (attempts derive from it)
  double enqueued_at = 0.0;   // event time of the original rejection
  std::size_t attempts = 0;   // admission attempts so far (includes arrival)
};

class RetryQueue {
 public:
  /// max_attempts: drop a tenant after this many failed admissions
  /// (0 = never drop).  max_size: reject instead of enqueue when the queue
  /// is this long (0 = unbounded).
  explicit RetryQueue(std::size_t max_attempts = 0, std::size_t max_size = 0)
      : max_attempts_(max_attempts), max_size_(max_size) {}

  [[nodiscard]] bool full() const {
    return max_size_ != 0 && entries_.size() >= max_size_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Enqueues a rejected tenant.  Returns false — and leaves the queue
  /// unchanged — when the queue is full, so an over-full queue rejects
  /// deterministically instead of silently growing.
  [[nodiscard]] bool push(PendingTenant tenant);

  /// Removes a tenant that departed before ever being admitted.  Returns
  /// the entry when present (for time-in-queue accounting).
  [[nodiscard]] std::optional<PendingTenant> erase(std::uint32_t key);

  struct DrainResult {
    std::vector<PendingTenant> admitted;  // entries `try_admit` accepted
    std::vector<PendingTenant> dropped;   // entries past max_attempts
  };

  /// Re-attempts every queued tenant in FIFO order.  `try_admit` is called
  /// with the entry (attempts already incremented) and returns whether the
  /// tenant was admitted; admitted and attempt-exhausted entries leave the
  /// queue, the rest stay in order.
  template <typename TryAdmit>
  DrainResult drain(TryAdmit&& try_admit) {
    DrainResult result;
    std::deque<PendingTenant> keep;
    while (!entries_.empty()) {
      PendingTenant entry = std::move(entries_.front());
      entries_.pop_front();
      ++entry.attempts;
      if (try_admit(entry)) {
        result.admitted.push_back(std::move(entry));
      } else if (max_attempts_ != 0 && entry.attempts >= max_attempts_) {
        result.dropped.push_back(std::move(entry));
      } else {
        keep.push_back(std::move(entry));
      }
    }
    entries_ = std::move(keep);
    return result;
  }

 private:
  std::size_t max_attempts_;
  std::size_t max_size_;
  std::deque<PendingTenant> entries_;
};

}  // namespace hmn::orchestrator
