// Self-healing after substrate failures.
//
// The orchestrator (PR 1) assumed the physical cluster was immortal; the
// Healer drops that assumption.  It owns the failure masks of the
// TenancyManager and reacts to the HOST_FAIL / LINK_FAIL / *_RECOVER
// events of workload::generate_failures with per-tenant transactional
// surgery:
//
//   * a failure computes the impacted-tenant set (guest on the dead host,
//     or a path crossing a dead element) and repairs each tenant through
//     core::repair_mapping against its own exclude-one residual view,
//     committing via TenancyManager::update_mappings — commit-or-rollback,
//     so a tenant is never half-healed;
//   * a BLAST_FAIL (correlated group: a switch plus its attached subtree)
//     is one transaction: every member mask flips before any healing
//     starts, each impacted tenant is repaired exactly once against the
//     full group, and the orchestrator's invariant audit runs once per
//     group, not once per element.  Group recovery clears all member masks
//     at once (last-writer-wins against any overlapping per-element
//     stream) before a single opportunistic re-heal pass;
//   * a tenant whose guests all survive but whose *best-effort* links
//     cannot be re-routed stays admitted in an explicit **Degraded**
//     state: the unroutable links go dark (empty path, no bandwidth
//     reserved) and are re-attempted opportunistically on every recovery
//     and departure until the tenant is Restored.  A `critical` virtual
//     link never goes dark — if it cannot be re-routed the repair fails
//     and the tenant is evicted and parked (degraded-SLA scheduling);
//   * a tenant whose guests cannot be re-hosted is evicted and **parked**
//     in a healing queue with exponential backoff and a bounded attempt
//     budget; re-admission attempts run on recoveries/departures, and a
//     tenant that exhausts the budget is dropped;
//   * the kDropReadmit policy is the literature's baseline — evict the
//     whole tenant and re-admit it from scratch — which bench E13 compares
//     healing against on tenant-minutes retained.
//
// The audit() pass is an independent recomputation (nothing is trusted
// from the incremental bookkeeping): after every event no committed
// mapping may touch a failed element, an empty inter-host path must be a
// recorded dark link of a Degraded tenant, and no aggregate reservation
// may exceed capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "emulator/tenancy.h"
#include "workload/churn.h"

namespace hmn::orchestrator {

enum class HealPolicy : std::uint8_t {
  kRepair,       // surgical repair_mapping + degradation (the tentpole)
  kDropReadmit,  // baseline: evict the tenant, re-admit from scratch
};

struct HealerOptions {
  HealPolicy policy = HealPolicy::kRepair;
  /// Re-admission attempts for a parked tenant before it is dropped
  /// (0 = unbounded).
  std::size_t max_heal_attempts = 6;
  /// Bounded-exponential backoff between re-admission attempts, in event
  /// time: delay(n) = min(backoff_max, backoff_base * backoff_factor^(n-1)),
  /// computed by capped repeated multiplication — the doubling stops the
  /// moment the cap is reached, so a long outage with an unbounded attempt
  /// budget can never overflow to infinity or degrade into an
  /// attempt-count-sized pow() (the schedule is deterministic and flat at
  /// backoff_max from the saturation point on).
  double backoff_base = 1.0;
  double backoff_factor = 2.0;
  double backoff_max = 32.0;
  /// SLA-aware healing.  When set:
  ///   * impacted tenants heal in tier order (gold, standard, best-effort;
  ///     ascending key within a tier), so gold gets first claim on whatever
  ///     spare capacity — including the EWMA healing headroom — survives
  ///     the failure;
  ///   * a tenant whose only damage is dead replicas of still-quorate
  ///     k-of-n groups **defers** repair (kReplicaDeferred): the mapping is
  ///     left untouched and the dead replicas are declared to the audit,
  ///     instead of burning migration work on a tenant that is healthy by
  ///     its own declaration;
  ///   * parked best-effort tenants re-admit with reserve_headroom=true —
  ///     they may not eat the healing reserve, so under pressure they park
  ///     first and stay parked longest.
  bool tier_aware = false;
};

enum class HealAction : std::uint8_t {
  kHealed,      // fully repaired; every link routed
  kDegraded,    // guests survive, >= 1 link dark
  kRestored,    // a previously Degraded/Deferred tenant is whole again
  kParked,      // evicted; waiting in the healing queue
  kReadmitted,  // parked tenant re-admitted
  kDropped,     // healing budget exhausted; tenant is lost
  kReplicaDeferred,  // dead replicas, quorum holds: repair deferred
};

/// One healing outcome, keyed by the churn tenant key.
struct HealRecord {
  std::uint32_t key = 0;
  HealAction action = HealAction::kHealed;
  core::MapErrorCode error = core::MapErrorCode::kNone;
  std::size_t guests_moved = 0;
  std::size_t links_rerouted = 0;
  std::size_t dark_links = 0;
  double outage = 0.0;  // kReadmitted/kDropped: event time spent parked
  double latency_us = 0.0;
};

/// An evicted tenant waiting to be re-admitted.
struct ParkedTenant {
  std::uint32_t key = 0;
  std::string name;
  model::VirtualEnvironment venv;
  double parked_at = 0.0;
  std::size_t attempts = 0;      // failed re-admissions so far
  double next_attempt = 0.0;     // backoff gate (event time)

  [[nodiscard]] model::SlaTier tier() const { return venv.sla_tier(); }
};

class Healer {
 public:
  using LiveMap = std::map<std::uint32_t, emulator::TenantId>;

  explicit Healer(HealerOptions opts = {}) : opts_(opts) {}

  /// Handles one failure/recovery event (is_failure_event(ev.kind) must
  /// hold): flips the element's mask on `mgr`, then heals every impacted
  /// tenant (failures) or opportunistically re-heals Degraded tenants and
  /// retries the parked queue (recoveries).  Evicted tenants leave `live`;
  /// re-admitted ones re-enter it.  Records are in deterministic
  /// (ascending-key, queue-FIFO) order.
  std::vector<HealRecord> on_event(emulator::TenancyManager& mgr,
                                   LiveMap& live,
                                   const workload::TenantEvent& ev);

  /// Capacity changed for a non-failure reason (a departure): re-heal
  /// Degraded tenants and retry the parked queue.
  std::vector<HealRecord> on_capacity_freed(emulator::TenancyManager& mgr,
                                            LiveMap& live, double now);

  /// A running tenant departed: drop its Degraded/Deferred bookkeeping.
  void forget(std::uint32_t key) {
    degraded_.erase(key);
    deferred_.erase(key);
  }

  /// A parked tenant departed before re-admission; returns its outage
  /// (now - parked_at) when it was indeed parked.
  std::optional<double> abandon_parked(std::uint32_t key, double now);

  [[nodiscard]] bool is_degraded(std::uint32_t key) const {
    return degraded_.count(key) != 0;
  }
  [[nodiscard]] std::size_t degraded_count() const { return degraded_.size(); }
  [[nodiscard]] std::size_t parked_count() const { return parked_.size(); }
  /// Dark links per Degraded tenant, keyed by churn key.
  [[nodiscard]] const std::map<std::uint32_t, std::vector<VirtLinkId>>&
  degraded() const {
    return degraded_;
  }

  [[nodiscard]] bool is_deferred(std::uint32_t key) const {
    return deferred_.count(key) != 0;
  }
  [[nodiscard]] std::size_t deferred_count() const { return deferred_.size(); }
  /// Declared-dead replica guests per Deferred tenant, keyed by churn key.
  [[nodiscard]] const std::map<std::uint32_t, std::vector<GuestId>>&
  deferred() const {
    return deferred_;
  }

  /// Checkpoint support (src/recovery): the healer's complete bookkeeping
  /// — Degraded dark links, Deferred dead replicas, and the parked queue
  /// in queue order — as plain values.
  struct State {
    std::map<std::uint32_t, std::vector<VirtLinkId>> degraded;
    std::map<std::uint32_t, std::vector<GuestId>> deferred;
    std::vector<ParkedTenant> parked;
  };
  [[nodiscard]] State export_state() const;
  void restore_state(State state);

  /// Exposed for the bounded-backoff regression tests: the re-admission
  /// delay after `failed_attempts` failures (>= 1).
  [[nodiscard]] double backoff_delay_for_testing(
      std::size_t failed_attempts) const {
    return backoff_delay(failed_attempts);
  }

  /// Independent invariant audit: recomputes everything from the committed
  /// tenants and returns one message per violation (empty = healthy).
  /// Checks: no guest on a down node (unless it is a declared-dead replica
  /// of a Deferred tenant), no path through a down element (unless the
  /// link is incident to such a replica), an empty inter-host path only on
  /// a recorded dark link, and aggregate memory/storage/bandwidth within
  /// every capacity.
  [[nodiscard]] std::vector<std::string> audit(
      const emulator::TenancyManager& mgr, const LiveMap& live) const;

 private:
  [[nodiscard]] double backoff_delay(std::size_t failed_attempts) const;
  std::optional<HealRecord> heal_one(emulator::TenancyManager& mgr,
                                     LiveMap& live, std::uint32_t key,
                                     double now);
  void evict_and_park(emulator::TenancyManager& mgr, LiveMap& live,
                      std::uint32_t key, double now);
  std::vector<HealRecord> heal_degraded(emulator::TenancyManager& mgr,
                                        LiveMap& live, double now);
  std::vector<HealRecord> heal_deferred(emulator::TenancyManager& mgr,
                                        LiveMap& live, double now);
  std::vector<HealRecord> retry_parked(emulator::TenancyManager& mgr,
                                       LiveMap& live, double now);
  /// Tier-order (gold first, ascending key within a tier) when tier_aware;
  /// otherwise leaves the ascending-key order untouched.
  void order_by_tier(const emulator::TenancyManager& mgr, const LiveMap& live,
                     std::vector<std::uint32_t>& keys) const;
  std::vector<HealRecord> heal_all(emulator::TenancyManager& mgr,
                                   LiveMap& live,
                                   std::vector<std::uint32_t> impacted,
                                   double now);

  HealerOptions opts_;
  std::map<std::uint32_t, std::vector<VirtLinkId>> degraded_;
  std::map<std::uint32_t, std::vector<GuestId>> deferred_;
  std::deque<ParkedTenant> parked_;  // FIFO (tier-major when tier_aware)
};

}  // namespace hmn::orchestrator
