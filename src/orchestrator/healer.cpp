#include "orchestrator/healer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/repair.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hmn::orchestrator {
namespace {

/// Re-admission seeds are derived from a fixed base, not the arrival seed:
/// healing must replay identically whether or not the tenant was ever
/// queued for admission.
constexpr std::uint64_t kHealSeedBase = 0x48EA15EEDULL;

/// The SlaTier enum's numeric order IS the healing priority order.
int tier_rank(model::SlaTier t) { return static_cast<int>(t); }

}  // namespace

void Healer::order_by_tier(const emulator::TenancyManager& mgr,
                           const LiveMap& live,
                           std::vector<std::uint32_t>& keys) const {
  if (!opts_.tier_aware) return;
  auto tier_of = [&](std::uint32_t key) {
    const auto it = live.find(key);
    if (it == live.end()) return model::SlaTier::kStandard;
    const emulator::Tenant* t = mgr.tenant(it->second);
    return t == nullptr ? model::SlaTier::kStandard : t->venv.sla_tier();
  };
  std::stable_sort(keys.begin(), keys.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return tier_rank(tier_of(a)) < tier_rank(tier_of(b));
                   });
}

std::vector<HealRecord> Healer::heal_all(emulator::TenancyManager& mgr,
                                         LiveMap& live,
                                         std::vector<std::uint32_t> impacted,
                                         double now) {
  order_by_tier(mgr, live, impacted);
  std::vector<HealRecord> records;
  for (const std::uint32_t key : impacted) {
    if (auto r = heal_one(mgr, live, key, now)) {
      records.push_back(std::move(*r));
    }
  }
  return records;
}

double Healer::backoff_delay(std::size_t failed_attempts) const {
  // Bounded-exponential by capped repeated multiplication: the schedule
  // saturates at backoff_max and *stops multiplying* there, so an
  // unbounded attempt budget on a long outage can neither overflow to
  // infinity nor spend attempt-count work in pow().  A non-growing factor
  // (<= 1) degenerates to the flat base delay.
  double delay = opts_.backoff_base;
  if (opts_.backoff_factor > 1.0) {
    for (std::size_t i = 1; i < failed_attempts; ++i) {
      if (delay >= opts_.backoff_max) break;
      delay *= opts_.backoff_factor;
    }
  }
  return std::min(opts_.backoff_max, delay);
}

Healer::State Healer::export_state() const {
  State state;
  state.degraded = degraded_;
  state.deferred = deferred_;
  state.parked.assign(parked_.begin(), parked_.end());
  return state;
}

void Healer::restore_state(State state) {
  degraded_ = std::move(state.degraded);
  deferred_ = std::move(state.deferred);
  parked_.assign(std::make_move_iterator(state.parked.begin()),
                 std::make_move_iterator(state.parked.end()));
}

void Healer::evict_and_park(emulator::TenancyManager& mgr, LiveMap& live,
                            std::uint32_t key, double now) {
  const emulator::TenantId id = live.at(key);
  const emulator::Tenant* tenant = mgr.tenant(id);
  ParkedTenant parked;
  parked.key = key;
  parked.name = tenant->name;
  parked.venv = tenant->venv;
  parked.parked_at = now;
  parked.attempts = 0;
  parked.next_attempt = now;  // eligible at the next capacity change
  degraded_.erase(key);
  deferred_.erase(key);
  mgr.release(id);
  live.erase(key);
  parked_.push_back(std::move(parked));
}

std::optional<HealRecord> Healer::heal_one(emulator::TenancyManager& mgr,
                                           LiveMap& live, std::uint32_t key,
                                           double now) {
  const auto it = live.find(key);
  if (it == live.end()) return std::nullopt;
  const emulator::TenantId id = it->second;
  const emulator::Tenant* tenant = mgr.tenant(id);
  if (tenant == nullptr) return std::nullopt;

  const util::Timer timer;
  HealRecord r;
  r.key = key;

  if (opts_.policy == HealPolicy::kDropReadmit) {
    // Baseline: the whole tenant is evicted and re-admitted from scratch.
    std::string name = tenant->name;
    model::VirtualEnvironment venv = tenant->venv;
    mgr.release(id);
    live.erase(it);
    // reserve_headroom=false: refugees may use the healing reserve — that
    // is exactly what admission withheld it for.
    const auto res = mgr.admit(name, venv,
                               util::derive_seed(kHealSeedBase, key, 0),
                               /*reserve_headroom=*/false);
    if (res.ok()) {
      live[key] = *res.tenant;
      r.action = HealAction::kHealed;
      r.guests_moved = venv.guest_count();
    } else {
      r.action = HealAction::kParked;
      r.error = res.error;
      ParkedTenant parked;
      parked.key = key;
      parked.name = std::move(name);
      parked.venv = std::move(venv);
      parked.parked_at = now;
      parked.next_attempt = now;
      parked_.push_back(std::move(parked));
    }
    r.latency_us = timer.elapsed_us();
    return r;
  }

  const bool was_degraded = degraded_.count(key) != 0;
  const bool was_deferred = deferred_.count(key) != 0;

  if (opts_.tier_aware && tenant->venv.replica_group_count() > 0) {
    // Deferral check: when every piece of damage is a dead replica of a
    // still-quorate k-of-n group (and links crossing dead elements are all
    // incident to such replicas), the tenant is healthy by its own
    // declaration — leave the mapping untouched, declare the corpses to
    // the audit, and let recovery restore them for free.
    const model::VirtualEnvironment& venv = tenant->venv;
    std::vector<GuestId> down_replicas;
    bool other_damage = false;
    std::vector<bool> guest_down(venv.guest_count(), false);
    for (std::size_t gi = 0; gi < venv.guest_count(); ++gi) {
      const GuestId g{static_cast<GuestId::underlying_type>(gi)};
      if (!mgr.is_node_down(tenant->mapping.guest_host[gi])) continue;
      guest_down[gi] = true;
      if (venv.group_of(g) == model::VirtualEnvironment::npos) {
        other_damage = true;
      } else {
        down_replicas.push_back(g);
      }
    }
    bool quorum_ok = true;
    for (const model::ReplicaGroup& group : venv.replica_groups()) {
      std::size_t alive = 0;
      for (const GuestId m : group.members) {
        if (!guest_down[m.index()]) ++alive;
      }
      if (alive < group.required) quorum_ok = false;
    }
    const graph::Graph& g = mgr.cluster().graph();
    for (std::size_t li = 0; !other_damage && li < venv.link_count(); ++li) {
      const auto lid = VirtLinkId{static_cast<VirtLinkId::underlying_type>(li)};
      const auto& path = tenant->mapping.link_paths[li];
      bool dead = false;
      for (const EdgeId e : path) {
        const auto ep = g.endpoints(e);
        if (mgr.is_link_down(e) || mgr.is_node_down(ep.a) ||
            mgr.is_node_down(ep.b)) {
          dead = true;
          break;
        }
      }
      if (!dead) continue;
      const auto ep = venv.endpoints(lid);
      if (!guest_down[ep.src.index()] && !guest_down[ep.dst.index()]) {
        other_damage = true;
      }
    }
    if (!other_damage && quorum_ok && !down_replicas.empty()) {
      deferred_[key] = std::move(down_replicas);
      r.action = HealAction::kReplicaDeferred;
      r.latency_us = timer.elapsed_us();
      return r;
    }
  }
  // Not (or no longer) deferrable: any stale deferral resolves through a
  // real repair below.
  deferred_.erase(key);

  core::RepairOptions ro;
  ro.failed = mgr.failed_elements();
  ro.allow_dark_links = true;
  core::RepairStats rs;
  const model::PhysicalCluster view = mgr.residual_cluster_excluding(id);
  core::MapOutcome outcome =
      core::repair_mapping(view, tenant->venv, tenant->mapping, ro, &rs);
  if (outcome.ok() && mgr.update_mappings({{id, *outcome.mapping}})) {
    r.guests_moved = rs.guests_moved;
    r.links_rerouted = rs.links_rerouted;
    r.dark_links = rs.dark_links.size();
    if (rs.dark_links.empty()) {
      degraded_.erase(key);
      r.action = was_degraded || was_deferred ? HealAction::kRestored
                                              : HealAction::kHealed;
    } else {
      degraded_[key] = std::move(rs.dark_links);
      r.action = HealAction::kDegraded;
    }
  } else {
    // Hosting cannot be repaired (or the commit was refused): evict the
    // tenant and park it for re-admission.
    r.action = HealAction::kParked;
    r.error = outcome.ok() ? core::MapErrorCode::kInvalidInput : outcome.error;
    evict_and_park(mgr, live, key, now);
  }
  r.latency_us = timer.elapsed_us();
  return r;
}

std::vector<HealRecord> Healer::heal_degraded(emulator::TenancyManager& mgr,
                                              LiveMap& live, double now) {
  std::vector<HealRecord> out;
  std::vector<std::uint32_t> keys;
  keys.reserve(degraded_.size());
  for (const auto& [key, dark] : degraded_) keys.push_back(key);
  order_by_tier(mgr, live, keys);
  for (const std::uint32_t key : keys) {
    auto r = heal_one(mgr, live, key, now);
    // A tenant that merely *stays* Degraded (or sits out as Deferred) is
    // not an event; Restored and Parked transitions are.
    if (r.has_value() && r->action != HealAction::kDegraded &&
        r->action != HealAction::kReplicaDeferred) {
      out.push_back(std::move(*r));
    }
  }
  return out;
}

std::vector<HealRecord> Healer::heal_deferred(emulator::TenancyManager& mgr,
                                              LiveMap& live, double now) {
  std::vector<HealRecord> out;
  std::vector<std::uint32_t> keys;
  keys.reserve(deferred_.size());
  for (const auto& [key, guests] : deferred_) keys.push_back(key);
  order_by_tier(mgr, live, keys);
  for (const std::uint32_t key : keys) {
    // Skip tenants that also carry dark links: heal_degraded owns them.
    if (degraded_.count(key) != 0) continue;
    auto r = heal_one(mgr, live, key, now);
    // Staying Deferred is not an event; a resolution (Restored, Degraded,
    // Parked) is.
    if (r.has_value() && r->action != HealAction::kReplicaDeferred) {
      out.push_back(std::move(*r));
    }
  }
  return out;
}

std::vector<HealRecord> Healer::retry_parked(emulator::TenancyManager& mgr,
                                             LiveMap& live, double now) {
  std::vector<HealRecord> out;
  if (opts_.tier_aware) {
    // Tier-major queue: gold re-admits first and therefore gets first
    // claim on freed capacity; FIFO within a tier (stable sort).
    std::stable_sort(parked_.begin(), parked_.end(),
                     [](const ParkedTenant& a, const ParkedTenant& b) {
                       return tier_rank(a.tier()) < tier_rank(b.tier());
                     });
  }
  std::deque<ParkedTenant> keep;
  while (!parked_.empty()) {
    ParkedTenant entry = std::move(parked_.front());
    parked_.pop_front();
    if (entry.next_attempt > now) {
      keep.push_back(std::move(entry));
      continue;
    }
    const util::Timer timer;
    ++entry.attempts;
    // Best-effort refugees may not eat the EWMA healing reserve — under
    // pressure they park first and stay parked longest; gold and standard
    // spend the reserve, which is exactly what admission withheld it for.
    const bool spare_reserve =
        opts_.tier_aware && entry.tier() == model::SlaTier::kBestEffort;
    const auto res = mgr.admit(
        entry.name, entry.venv,
        util::derive_seed(kHealSeedBase, entry.key, entry.attempts),
        /*reserve_headroom=*/spare_reserve);
    HealRecord r;
    r.key = entry.key;
    if (res.ok()) {
      live[entry.key] = *res.tenant;
      r.action = HealAction::kReadmitted;
      r.outage = now - entry.parked_at;
      r.latency_us = timer.elapsed_us();
      out.push_back(r);
      continue;
    }
    r.error = res.error;
    if (opts_.max_heal_attempts != 0 &&
        entry.attempts >= opts_.max_heal_attempts) {
      r.action = HealAction::kDropped;
      r.outage = now - entry.parked_at;
      r.latency_us = timer.elapsed_us();
      out.push_back(r);
      continue;
    }
    entry.next_attempt = now + backoff_delay(entry.attempts);
    keep.push_back(std::move(entry));
  }
  parked_ = std::move(keep);
  return out;
}

std::vector<HealRecord> Healer::on_capacity_freed(
    emulator::TenancyManager& mgr, LiveMap& live, double now) {
  // Deferred tenants recheck first: a recovery that revives their declared
  // corpses restores them without consuming any of the capacity the
  // degraded/parked passes are about to compete for.
  std::vector<HealRecord> records = heal_deferred(mgr, live, now);
  std::vector<HealRecord> degraded = heal_degraded(mgr, live, now);
  records.insert(records.end(), std::make_move_iterator(degraded.begin()),
                 std::make_move_iterator(degraded.end()));
  std::vector<HealRecord> readmissions = retry_parked(mgr, live, now);
  records.insert(records.end(),
                 std::make_move_iterator(readmissions.begin()),
                 std::make_move_iterator(readmissions.end()));
  return records;
}

std::vector<HealRecord> Healer::on_event(emulator::TenancyManager& mgr,
                                         LiveMap& live,
                                         const workload::TenantEvent& ev) {
  const model::PhysicalCluster& cluster = mgr.cluster();
  switch (ev.kind) {
    case workload::EventKind::kHostFail: {
      if (ev.element >= cluster.node_count()) return {};
      const NodeId node{ev.element};
      mgr.set_node_down(node, true);
      std::vector<std::uint32_t> impacted;
      for (const auto& [key, id] : live) {
        const emulator::Tenant* t = mgr.tenant(id);
        if (t != nullptr &&
            !core::mapping_avoids_node(cluster, t->mapping, node)) {
          impacted.push_back(key);
        }
      }
      return heal_all(mgr, live, std::move(impacted), ev.time);
    }
    case workload::EventKind::kLinkFail: {
      if (ev.element >= cluster.link_count()) return {};
      const EdgeId edge{ev.element};
      mgr.set_link_down(edge, true);
      std::vector<std::uint32_t> impacted;
      for (const auto& [key, id] : live) {
        const emulator::Tenant* t = mgr.tenant(id);
        if (t != nullptr && !core::mapping_avoids_edge(t->mapping, edge)) {
          impacted.push_back(key);
        }
      }
      return heal_all(mgr, live, std::move(impacted), ev.time);
    }
    case workload::EventKind::kBlastFail: {
      if (ev.element >= cluster.node_count()) return {};
      // A correlated group is one transaction: every mask flips *before*
      // any tenant is healed, or a repair mid-group would route around one
      // corpse straight through the next; the per-event invariant audit
      // then runs once for the whole group, not once per element.
      mgr.set_node_down(NodeId{ev.element}, true);
      for (const std::uint32_t h : ev.group_hosts) {
        if (h < cluster.node_count()) mgr.set_node_down(NodeId{h}, true);
      }
      for (const std::uint32_t l : ev.group_links) {
        if (l < cluster.link_count()) mgr.set_link_down(EdgeId{l}, true);
      }
      // Union impacted set: each tenant touched by *any* group member is
      // repaired exactly once, against the full failure set.
      std::vector<std::uint32_t> impacted;
      for (const auto& [key, id] : live) {
        const emulator::Tenant* t = mgr.tenant(id);
        if (t == nullptr) continue;
        bool hit =
            !core::mapping_avoids_node(cluster, t->mapping, NodeId{ev.element});
        for (std::size_t i = 0; !hit && i < ev.group_hosts.size(); ++i) {
          if (ev.group_hosts[i] >= cluster.node_count()) continue;
          hit = !core::mapping_avoids_node(cluster, t->mapping,
                                           NodeId{ev.group_hosts[i]});
        }
        for (std::size_t i = 0; !hit && i < ev.group_links.size(); ++i) {
          if (ev.group_links[i] >= cluster.link_count()) continue;
          hit = !core::mapping_avoids_edge(t->mapping,
                                           EdgeId{ev.group_links[i]});
        }
        if (hit) impacted.push_back(key);
      }
      return heal_all(mgr, live, std::move(impacted), ev.time);
    }
    case workload::EventKind::kPowerFail: {
      // ev.element is the power-domain id, NOT a node id: only the group
      // member lists carry the dead elements.  Same one-transaction rule
      // as a blast: every mask flips before any tenant is healed.
      for (const std::uint32_t h : ev.group_hosts) {
        if (h < cluster.node_count()) mgr.set_node_down(NodeId{h}, true);
      }
      for (const std::uint32_t l : ev.group_links) {
        if (l < cluster.link_count()) mgr.set_link_down(EdgeId{l}, true);
      }
      std::vector<std::uint32_t> impacted;
      for (const auto& [key, id] : live) {
        const emulator::Tenant* t = mgr.tenant(id);
        if (t == nullptr) continue;
        bool hit = false;
        for (std::size_t i = 0; !hit && i < ev.group_hosts.size(); ++i) {
          if (ev.group_hosts[i] >= cluster.node_count()) continue;
          hit = !core::mapping_avoids_node(cluster, t->mapping,
                                           NodeId{ev.group_hosts[i]});
        }
        for (std::size_t i = 0; !hit && i < ev.group_links.size(); ++i) {
          if (ev.group_links[i] >= cluster.link_count()) continue;
          hit = !core::mapping_avoids_edge(t->mapping,
                                           EdgeId{ev.group_links[i]});
        }
        if (hit) impacted.push_back(key);
      }
      return heal_all(mgr, live, std::move(impacted), ev.time);
    }
    case workload::EventKind::kPowerRecover: {
      for (const std::uint32_t h : ev.group_hosts) {
        if (h < cluster.node_count()) mgr.set_node_down(NodeId{h}, false);
      }
      for (const std::uint32_t l : ev.group_links) {
        if (l < cluster.link_count()) mgr.set_link_down(EdgeId{l}, false);
      }
      // One opportunistic pass for the whole restored domain.
      return on_capacity_freed(mgr, live, ev.time);
    }
    case workload::EventKind::kBlastRecover: {
      if (ev.element >= cluster.node_count()) return {};
      mgr.set_node_down(NodeId{ev.element}, false);
      for (const std::uint32_t h : ev.group_hosts) {
        if (h < cluster.node_count()) mgr.set_node_down(NodeId{h}, false);
      }
      for (const std::uint32_t l : ev.group_links) {
        if (l < cluster.link_count()) mgr.set_link_down(EdgeId{l}, false);
      }
      // One opportunistic pass for the whole restored subtree.
      return on_capacity_freed(mgr, live, ev.time);
    }
    case workload::EventKind::kHostRecover: {
      if (ev.element >= cluster.node_count()) return {};
      mgr.set_node_down(NodeId{ev.element}, false);
      return on_capacity_freed(mgr, live, ev.time);
    }
    case workload::EventKind::kLinkRecover: {
      if (ev.element >= cluster.link_count()) return {};
      mgr.set_link_down(EdgeId{ev.element}, false);
      return on_capacity_freed(mgr, live, ev.time);
    }
    default:
      return {};
  }
}

std::optional<double> Healer::abandon_parked(std::uint32_t key, double now) {
  const auto it = std::find_if(
      parked_.begin(), parked_.end(),
      [key](const ParkedTenant& p) { return p.key == key; });
  if (it == parked_.end()) return std::nullopt;
  const double outage = now - it->parked_at;
  parked_.erase(it);
  return outage;
}

std::vector<std::string> Healer::audit(const emulator::TenancyManager& mgr,
                                       const LiveMap& live) const {
  std::vector<std::string> violations;
  const model::PhysicalCluster& cluster = mgr.cluster();
  const graph::Graph& g = cluster.graph();
  auto edge_dead = [&](EdgeId e) {
    const auto ep = g.endpoints(e);
    return mgr.is_link_down(e) || mgr.is_node_down(ep.a) ||
           mgr.is_node_down(ep.b);
  };

  // Aggregates recomputed from scratch; the manager's incremental
  // bookkeeping is exactly what this pass refuses to trust.
  std::vector<double> mem(cluster.node_count(), 0.0);
  std::vector<double> stor(cluster.node_count(), 0.0);
  std::vector<double> bw(cluster.link_count(), 0.0);

  for (const auto& [key, id] : live) {
    const emulator::Tenant* t = mgr.tenant(id);
    const std::string who = "tenant " + std::to_string(key);
    if (t == nullptr) {
      violations.push_back(who + ": live but unknown to the manager");
      continue;
    }
    const auto defit = deferred_.find(key);
    auto guest_deferred = [&](std::size_t gi) {
      return defit != deferred_.end() &&
             std::find(defit->second.begin(), defit->second.end(),
                       GuestId{static_cast<GuestId::underlying_type>(gi)}) !=
                 defit->second.end();
    };
    for (std::size_t gi = 0; gi < t->venv.guest_count(); ++gi) {
      const NodeId h = t->mapping.guest_host[gi];
      if (!h.valid() || !cluster.is_host(h)) {
        violations.push_back(who + ": guest " + std::to_string(gi) +
                             " has no valid host");
        continue;
      }
      // A declared-dead replica of a Deferred tenant may sit on a down
      // host: that is precisely what deferral means.
      if (mgr.is_node_down(h) && !guest_deferred(gi)) {
        violations.push_back(who + ": guest " + std::to_string(gi) +
                             " placed on failed host " +
                             std::to_string(h.value()));
      }
      const auto& req =
          t->venv.guest(GuestId{static_cast<GuestId::underlying_type>(gi)});
      mem[h.index()] += req.mem_mb;
      stor[h.index()] += req.stor_gb;
    }
    const auto dit = degraded_.find(key);
    for (std::size_t li = 0; li < t->venv.link_count(); ++li) {
      const auto lid = VirtLinkId{static_cast<VirtLinkId::underlying_type>(li)};
      const auto ep = t->venv.endpoints(lid);
      const auto& path = t->mapping.link_paths[li];
      if (path.empty()) {
        const NodeId hs = t->mapping.guest_host[ep.src.index()];
        const NodeId hd = t->mapping.guest_host[ep.dst.index()];
        const bool declared_dark =
            dit != degraded_.end() &&
            std::find(dit->second.begin(), dit->second.end(), lid) !=
                dit->second.end();
        if (hs != hd && !declared_dark) {
          violations.push_back(who + ": link " + std::to_string(li) +
                               " is inter-host yet unrouted and not a "
                               "declared dark link");
        }
        continue;
      }
      const double demand = t->venv.link(lid).bandwidth_mbps;
      // A path incident to a declared-dead replica may cross dead
      // elements — its traffic is moot until the replica returns.
      const bool deferred_link =
          guest_deferred(ep.src.index()) || guest_deferred(ep.dst.index());
      for (const EdgeId e : path) {
        if (edge_dead(e) && !deferred_link) {
          violations.push_back(who + ": link " + std::to_string(li) +
                               " routed through failed element (edge " +
                               std::to_string(e.value()) + ")");
        }
        bw[e.index()] += demand;
      }
    }
  }

  for (const NodeId h : cluster.hosts()) {
    const auto& cap = cluster.capacity(h);
    if (mem[h.index()] > cap.mem_mb + 1e-6 * (1.0 + cap.mem_mb)) {
      violations.push_back("node " + std::to_string(h.value()) +
                           ": negative residual memory");
    }
    if (stor[h.index()] > cap.stor_gb + 1e-6 * (1.0 + cap.stor_gb)) {
      violations.push_back("node " + std::to_string(h.value()) +
                           ": negative residual storage");
    }
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    const double cap = cluster.link(id).bandwidth_mbps;
    if (bw[e] > cap + 1e-6 * (1.0 + cap)) {
      violations.push_back("edge " + std::to_string(e) +
                           ": negative residual bandwidth");
    }
  }
  return violations;
}

}  // namespace hmn::orchestrator
