// Background defragmentation of a multi-tenant cluster.
//
// Tenant departures carve random holes into the placement; over time the
// cluster drifts toward a state where aggregate capacity is plentiful but
// no single host can take the next tenant's largest guest (classic bin
// fragmentation), and physical links carry detours routed around
// since-departed traffic.  A defrag pass treats the *aggregate* placement
// — every guest of every tenant — as one environment and
//
//   1. runs the paper's Migration stage (core::run_migration) on it,
//      reducing the cluster-wide load-balance factor (Eq. 10) subject to
//      memory/storage fits, and
//   2. re-routes every inter-host virtual link from scratch in descending
//      bandwidth order (the Networking stage's global order, which a
//      sequence of independent per-tenant admissions cannot achieve).
//
// The pass is transactional: the new placement is committed through
// TenancyManager::update_mappings only when every link routes; otherwise
// nothing changes.  Schaffrath et al. (PAPERS.md) show migration-aware
// re-embedding is the lever for efficiency under churn — this is that
// lever built from the paper's own stages.
#pragma once

#include <cstddef>
#include <string>

#include "core/migration.h"
#include "emulator/tenancy.h"

namespace hmn::orchestrator {

struct DefragOptions {
  core::MigrationOptions migration{
      .victim = core::VictimPolicy::kBestImprovement};
  /// Re-route all virtual links globally after the moves.  Disabling this
  /// also disables guest moves (a moved guest's links must be re-routed),
  /// turning the pass into a no-op — exposed for ablations.
  bool reroute_links = true;
};

struct DefragResult {
  bool committed = false;
  std::size_t migrations = 0;       // guests moved by the Migration stage
  std::size_t links_rerouted = 0;   // inter-host links routed afresh
  double lbf_before = 0.0;          // Eq. 10 over all hosts, pre-pass
  double lbf_after = 0.0;           // post-pass (== before when !committed)
  std::string detail;               // why the pass did not commit
};

/// Runs one defragmentation pass over every tenant of `mgr`.  Running
/// tenants are never *lost*: on any infeasibility the pass aborts and the
/// manager is untouched.
[[nodiscard]] DefragResult run_defrag(emulator::TenancyManager& mgr,
                                      const DefragOptions& opts = {});

}  // namespace hmn::orchestrator
