// The online control plane: an event-driven orchestrator for a
// continuously shared emulation testbed.
//
// The paper's mapper answers one question — "where does this virtual
// environment go?" — for a single tester on an idle cluster.  The
// Orchestrator asks it continuously: it consumes a time-ordered stream of
// tenant events (workload::ChurnGenerator or a recorded trace) against one
// shared cluster and emits a decision per event:
//
//   ARRIVE  admission through the TenancyManager's heuristic pool; a
//           tenant that does not fit is parked in the deferred-retry
//           queue rather than lost;
//   GROW    in-place extension via core::extend_mapping, falling back to
//           a full remap of that tenant when the increment does not fit;
//   DEPART  release, then — capacity just freed — an optional background
//           defragmentation pass (orchestrator::run_defrag) and a drain
//           of the retry queue in FIFO order.
//   *_FAIL / *_RECOVER
//           substrate failures are applied to the shared cluster and
//           handed to the Healer (orchestrator/healer.h): impacted
//           tenants are repaired in place, kept Degraded, or evicted
//           into a backoff healing queue; recoveries re-heal Degraded
//           tenants and re-admit parked ones.  An independent invariant
//           auditor runs after every event.
//
// Every mapping decision is seeded from the event stream, so a recorded
// trace replays to bit-identical decisions and placements; only the
// wall-clock decision latencies differ between runs.  The report carries
// the longitudinal series a capacity planner wants: acceptance rate,
// time-in-queue, utilization-over-time, and decision-latency percentiles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "availability/availability_tracker.h"
#include "core/map_result.h"
#include "emulator/tenancy.h"
#include "extensions/heuristic_pool.h"
#include "orchestrator/defrag.h"
#include "orchestrator/healer.h"
#include "orchestrator/retry_queue.h"
#include "workload/churn.h"

namespace hmn::orchestrator {

enum class Decision : std::uint8_t {
  kAdmitted,           // ARRIVE mapped immediately
  kQueued,             // ARRIVE rejected, parked for retry
  kRejected,           // ARRIVE rejected with the queue full
  kAdmittedFromQueue,  // backfill admission after a departure
  kDropped,            // left the queue after exhausting retry attempts
  kAbandoned,          // departed while still queued (never admitted)
  kGrown,              // GROW absorbed in place by extend_mapping
  kGrownByRemap,       // GROW needed a full remap of the tenant
  kGrowthRejected,     // GROW infeasible; tenant keeps its old size
  kDeparted,           // DEPART of a running tenant
  kNoOp,               // event for an unknown/finished tenant

  kHostFailed,     // HOST_FAIL applied to the cluster
  kLinkFailed,     // LINK_FAIL applied to the cluster
  kHostRecovered,  // HOST_RECOVER applied to the cluster
  kLinkRecovered,  // LINK_RECOVER applied to the cluster
  kHealed,         // tenant fully repaired in place
  kDegraded,       // tenant kept with >= 1 dark link
  kRestored,       // previously Degraded tenant fully routed again
  kParked,         // tenant evicted into the healing queue
  kReadmitted,     // parked tenant re-admitted
  kHealDropped,    // healing budget exhausted; tenant lost

  kBlastFailed,     // BLAST_FAIL: a correlated group went dark
  kBlastRecovered,  // BLAST_RECOVER: the group returned to service

  kPowerFailed,      // POWER_FAIL: a power domain went dark
  kPowerRecovered,   // POWER_RECOVER: the repair crew finished the domain
  kReplicaDeferred,  // dead replicas, quorum holds: repair deferred

  kPreempted,  // left the queue after too many backfills jumped it
};

[[nodiscard]] constexpr const char* to_string(Decision d) {
  switch (d) {
    case Decision::kAdmitted: return "admitted";
    case Decision::kQueued: return "queued";
    case Decision::kRejected: return "rejected";
    case Decision::kAdmittedFromQueue: return "admitted-from-queue";
    case Decision::kDropped: return "dropped";
    case Decision::kAbandoned: return "abandoned";
    case Decision::kGrown: return "grown";
    case Decision::kGrownByRemap: return "grown-by-remap";
    case Decision::kGrowthRejected: return "growth-rejected";
    case Decision::kDeparted: return "departed";
    case Decision::kNoOp: return "no-op";
    case Decision::kHostFailed: return "host-failed";
    case Decision::kLinkFailed: return "link-failed";
    case Decision::kHostRecovered: return "host-recovered";
    case Decision::kLinkRecovered: return "link-recovered";
    case Decision::kHealed: return "healed";
    case Decision::kDegraded: return "degraded";
    case Decision::kRestored: return "restored";
    case Decision::kParked: return "parked";
    case Decision::kReadmitted: return "readmitted";
    case Decision::kHealDropped: return "heal-dropped";
    case Decision::kBlastFailed: return "blast-failed";
    case Decision::kBlastRecovered: return "blast-recovered";
    case Decision::kPowerFailed: return "power-failed";
    case Decision::kPowerRecovered: return "power-recovered";
    case Decision::kReplicaDeferred: return "replica-deferred";
    case Decision::kPreempted: return "preempted";
  }
  return "?";
}

/// One decision record.  `placement_hash` fingerprints the admitted/moved
/// tenant's guest placement (FNV-1a over host ids; 0 when no placement
/// resulted) so replay equality checks cover *where* guests landed, not
/// just whether they did.  For failure/recovery events `tenant` carries
/// the failed element id instead of a tenant key.
struct EventDecision {
  double time = 0.0;
  workload::EventKind kind = workload::EventKind::kArrive;
  std::uint32_t tenant = 0;
  Decision decision = Decision::kNoOp;
  core::MapErrorCode error = core::MapErrorCode::kNone;
  double queue_wait = 0.0;    // backfill/abandon/drop: time spent queued
  double latency_us = 0.0;    // wall-clock decision latency (not replayed)
  std::uint64_t placement_hash = 0;
};

/// Cluster state sampled after every event.
struct UtilizationSample {
  double time = 0.0;
  double mem_fraction = 0.0;
  double lbf = 0.0;  // Eq. 10 across all hosts, all tenants
  std::size_t live_tenants = 0;
  std::size_t queued = 0;
};

struct DefragSummary {
  std::size_t passes = 0;      // passes attempted
  std::size_t committed = 0;   // passes that changed the placement
  std::size_t migrations = 0;  // guests moved, total
  double lbf_reduction = 0.0;  // sum of (before - after) over committed
  double total_seconds = 0.0;  // wall clock spent defragmenting
};

struct OrchestratorReport {
  std::vector<EventDecision> decisions;
  std::vector<UtilizationSample> timeline;
  DefragSummary defrag;

  std::size_t arrivals = 0;
  std::size_t admitted_immediately = 0;
  std::size_t admitted_from_queue = 0;
  std::size_t rejected = 0;   // queue-full rejections
  std::size_t dropped = 0;    // retry attempts exhausted
  std::size_t preempted = 0;  // passover budget exhausted
  std::size_t abandoned = 0;  // departed while queued
  std::size_t growths = 0;
  std::size_t grown_in_place = 0;
  std::size_t grown_by_remap = 0;
  std::size_t growth_rejected = 0;

  // Failure / healing accounting.
  std::size_t host_failures = 0;
  std::size_t link_failures = 0;
  std::size_t blast_failures = 0;  // correlated groups, counted once each
  std::size_t power_failures = 0;  // power domains, counted once each
  std::size_t recoveries = 0;
  std::size_t healed = 0;          // in-place repairs that fully routed
  std::size_t degraded = 0;        // transitions into Degraded
  std::size_t restored = 0;        // Degraded/Deferred -> whole again
  std::size_t replica_deferred = 0;  // repairs deferred on quorate groups
  std::size_t parked = 0;          // evictions into the healing queue
  std::size_t readmitted = 0;      // parked tenants admitted again
  std::size_t heal_dropped = 0;    // healing budget exhausted
  /// Event time running tenants spent evicted (parked/dropped windows,
  /// closed at re-admission or departure).
  double tenant_minutes_lost = 0.0;
  /// The same loss, attributed to the departed/readmitted tenant's SLA
  /// tier — the series the E17 gate compares across placement policies.
  double tenant_minutes_lost_gold = 0.0;
  double tenant_minutes_lost_standard = 0.0;
  double tenant_minutes_lost_best_effort = 0.0;
  /// Event time tenants spent in the Degraded state.
  double degraded_minutes = 0.0;
  /// One message per invariant-auditor violation ("<time>: <what>");
  /// empty on a healthy run.
  std::vector<std::string> invariant_violations;

  std::vector<double> queue_waits;            // of backfill admissions
  std::vector<double> decision_latencies_us;  // one per decision
  std::vector<double> heal_latencies_us;      // per in-place heal attempt

  /// Fraction of arrivals eventually admitted (immediately or backfilled).
  [[nodiscard]] double acceptance_rate() const;
  [[nodiscard]] double mean_queue_wait() const;
  [[nodiscard]] double latency_percentile_us(double p) const;

  /// Canonical string over (time, kind, tenant, decision, error,
  /// placement_hash) of every decision — two runs replayed the same
  /// workload identically iff their signatures match.  Latencies are
  /// deliberately excluded.
  [[nodiscard]] std::string decision_signature() const;
};

struct OrchestratorOptions {
  /// Run a defrag pass after every k-th departure (0 = never).
  std::size_t defrag_every_departures = 1;
  DefragOptions defrag;
  /// Retry-queue policy (see RetryQueue).
  std::size_t retry_max_attempts = 8;
  std::size_t max_queue = 0;
  /// Preemption budget: abandon a queued tenant (Decision::kPreempted)
  /// once this many backfills have been admitted by drains that failed it
  /// (0 = never preempt).  Bounds the starvation the non-FIFO queue
  /// policies can inflict on a giant that never fits.
  std::size_t retry_max_passovers = 0;
  /// Backfill drain order; every policy is deterministic and every drain
  /// decision is logged, so any choice replays byte-identically.
  QueuePolicy queue_policy = QueuePolicy::kFifo;
  /// Healing policy and backoff (see Healer).
  HealerOptions healer;
  /// Run the independent invariant auditor after every event, appending
  /// violations to the report.  Cheap on bench-scale clusters; disable
  /// for large production sweeps.
  bool audit_invariants = true;

  /// Availability-aware admission (ROADMAP: repair-aware admission).  When
  /// true, the orchestrator keeps a per-element EWMA AvailabilityTracker
  /// from the observed failure stream, scales each host's admission weight
  /// by its availability, and withholds `spare_headroom` of every host's
  /// memory/storage from new-tenant admissions so healing has somewhere to
  /// land.  Strictly invisible until the first failure: the bias is only
  /// installed once the tracker has history, so a failure-free run is
  /// byte-identical to availability_aware = false.
  bool availability_aware = false;
  double spare_headroom = 0.1;
  availability::AvailabilityOptions availability;
};

/// FNV-1a offset basis — the run fingerprint of an orchestrator that has
/// recorded no decisions yet.
inline constexpr std::uint64_t kFingerprintSeed = 14695981039346656037ULL;

/// State-mutating transaction classes the orchestrator announces to its
/// TxnObserver.  One txn record per committed (or explicitly aborted)
/// mutation, in execution order, between an event's begin/end markers —
/// the write-ahead journal (src/recovery) persists exactly this stream.
enum class TxnKind : std::uint8_t {
  kAdmitCommit = 1,  // arrival admission committed
  kQueuePush,        // rejected arrival parked for retry
  kQueueReject,      // rejected arrival bounced off a full queue
  kGrowCommit,       // growth committed (in place or by remap)
  kGrowAbort,        // growth infeasible; tenant rolled back
  kReleaseCommit,    // running tenant released
  kQueueAbandon,     // queued/parked tenant departed before admission
  kFailureApplied,   // failure/recovery mask flip applied to the cluster
  kHealAction,       // one healer outcome (heal/degrade/park/readmit/...)
  kDefragCommit,     // defrag pass committed a migration batch
  kBackfillCommit,   // retry-queue drain admitted a tenant
  kQueueDrop,        // drain dropped a tenant (attempts exhausted)
  kQueuePreempt,     // drain abandoned a tenant (passovers exhausted)
};

/// One journalable transaction.  `key` is the churn tenant key (or the
/// failed element id for kFailureApplied); `detail` carries the
/// kind-specific payload: placement hash for commits, error/action codes
/// for aborts and heals, migration count for defrag.
struct TxnRecord {
  TxnKind kind = TxnKind::kAdmitCommit;
  double time = 0.0;
  std::uint32_t key = 0;
  std::uint64_t detail = 0;
};

/// Observer of the orchestrator's transaction stream.  The recovery
/// subsystem implements this (recovery::WalManager) to journal every
/// mutation; the orchestrator itself stays recovery-agnostic, which keeps
/// the include graph acyclic (recovery -> orchestrator only).  Callbacks
/// may throw — a crash-injection harness uses exactly that to kill the
/// run at any journaling site — so every callback fires *after* the
/// in-memory mutation it describes: the journal can only ever lag the
/// truth, never lead it, and a torn tail loses decisions, not invariants.
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;
  /// `event_index` is the 0-based position of `ev` in the handled stream.
  virtual void on_event_begin(std::uint64_t event_index,
                              const workload::TenantEvent& ev) = 0;
  virtual void on_txn(const TxnRecord& txn) = 0;
  /// Fired after the event is fully processed (audit + sample included);
  /// `fingerprint` is the running decision fingerprint including every
  /// decision this event produced.
  virtual void on_event_end(std::uint64_t event_index, double time,
                            std::uint64_t fingerprint) = 0;
};

class Orchestrator {
 public:
  /// Uses the default admission pool (HMN, RA fallback).
  Orchestrator(model::PhysicalCluster cluster, workload::GuestProfile profile,
               OrchestratorOptions opts = {});
  Orchestrator(model::PhysicalCluster cluster, workload::GuestProfile profile,
               extensions::HeuristicPool pool, OrchestratorOptions opts = {});

  /// Feeds one event; returns the primary decision.  Secondary decisions a
  /// departure triggers (backfill admissions, drops) are appended to the
  /// report only.  Events must be fed in non-decreasing time order.
  EventDecision handle(const workload::TenantEvent& ev);

  /// Convenience: feeds every event of a trace built with this
  /// orchestrator's profile.  One trace per orchestrator — construct a
  /// fresh instance to replay.
  const OrchestratorReport& run(const workload::ChurnTrace& trace);

  [[nodiscard]] const emulator::TenancyManager& tenancy() const {
    return mgr_;
  }
  [[nodiscard]] const Healer& healer() const { return healer_; }
  [[nodiscard]] const OrchestratorReport& report() const { return report_; }
  [[nodiscard]] const availability::AvailabilityTracker& availability() const {
    return avail_;
  }
  [[nodiscard]] const RetryQueue& retry_queue() const { return queue_; }

  /// Installs (or clears, with nullptr) the transaction observer.  Not
  /// owned; must outlive the orchestrator or be cleared first.
  void set_txn_observer(TxnObserver* observer) { observer_ = observer; }

  /// Events handled so far — the index the next event will get.
  [[nodiscard]] std::uint64_t events_handled() const { return event_index_; }

  /// Running FNV-1a chain over the canonical form of every decision
  /// recorded so far (same fields as OrchestratorReport::
  /// decision_signature, which it matches decision-for-decision without
  /// retaining the vector).  Checkpoints persist it and replay continues
  /// it, so a recovered run proves byte-identity with the uninterrupted
  /// run by comparing one u64.
  [[nodiscard]] std::uint64_t run_fingerprint() const {
    return run_fingerprint_;
  }

  /// Checkpoint support (src/recovery): the orchestrator's complete
  /// logical state as plain values.  The report travels with its scalar
  /// counters only — the decision/timeline/latency vectors are
  /// deliberately excluded (with them a checkpoint would grow with run
  /// length and recovery time would stop being bounded by the journal
  /// tail); a recovered report therefore carries post-recovery vectors
  /// only, while run_fingerprint covers the full history.
  struct State {
    emulator::TenancyManager::State tenancy;
    Healer::State healer;
    std::vector<PendingTenant> queue;  // retry queue, queue order
    availability::AvailabilityTracker::Snapshot availability;
    std::map<std::uint32_t, emulator::TenantId> live;
    std::map<std::uint32_t, double> degraded_since;
    std::map<std::uint32_t, double> lost_since;
    std::map<std::uint32_t, model::SlaTier> tier_of;
    std::uint64_t departures = 0;
    std::uint64_t events_handled = 0;
    std::uint64_t run_fingerprint = kFingerprintSeed;
    OrchestratorReport report;  // scalar counters only; vectors empty
  };
  [[nodiscard]] State export_state() const;
  /// Restores into an orchestrator constructed with the same cluster,
  /// profile, pool, and options.  Anything currently running is discarded.
  void restore_state(State state);

 private:
  void observe_failure_event(const workload::TenantEvent& ev);
  void drain_queue(double now);
  void maybe_defrag(double now);
  void sample(double time);
  void emit_txn(TxnKind kind, double time, std::uint32_t key,
                std::uint64_t detail);
  void record(EventDecision decision);
  void record_heals(const std::vector<HealRecord>& records, double now,
                    workload::EventKind kind);
  void close_degraded_window(std::uint32_t key, double now);
  void run_audit(double now);
  [[nodiscard]] std::uint64_t placement_hash(emulator::TenantId id) const;
  /// Accrues lost time to the total and to the tenant's tier bucket.
  void add_lost(std::uint32_t key, double amount);

  emulator::TenancyManager mgr_;
  workload::GuestProfile profile_;
  OrchestratorOptions opts_;
  RetryQueue queue_;
  Healer healer_;
  availability::AvailabilityTracker avail_;
  std::map<std::uint32_t, emulator::TenantId> live_;  // churn key -> tenant
  std::map<std::uint32_t, double> degraded_since_;    // key -> entry time
  std::map<std::uint32_t, double> lost_since_;        // dropped key -> park time
  std::map<std::uint32_t, model::SlaTier> tier_of_;   // key -> declared tier
  std::size_t departures_ = 0;
  std::uint64_t event_index_ = 0;
  std::uint64_t run_fingerprint_ = kFingerprintSeed;
  TxnObserver* observer_ = nullptr;  // not owned
  OrchestratorReport report_;
};

}  // namespace hmn::orchestrator
