// Sharded placement router: flat admission latency on a growing fabric.
//
// bench E10 shows the mapper's Networking stage growing superlinearly with
// fabric size — a single TenancyManager spends seconds per admission at
// hundreds of hosts.  The PlacementRouter keeps admission latency flat by
// partitioning the fabric (topology::partition_cluster) and owning one
// TenancyManager per shard; every tenant is confined to a single shard (the
// "subtree confinement" heuristic of the VNE literature, see PAPERS.md), so
// per-admission work scales with the shard, not the fabric, and independent
// arrivals land on disjoint shards concurrently.
//
// Shard selection is power-of-two-choices on residual-CPU headroom: each
// request probes `probe_choices` shards drawn from its own derived seed,
// admits into the probe with the most headroom (deterministic tie-break on
// shard index), and on rejection falls back through the remaining shards in
// score order.  P2C keeps shards balanced without a global scan per
// request while staying fully deterministic.  With set_availability() the
// score becomes headroom × mean host availability of the shard, steering
// new tenants away from blast-scarred racks; the tracker reports 1.0
// everywhere until the first failure, so a failure-free run routes
// byte-identically with or without the bias.
//
// Determinism under parallelism: admit_batch resolves each request's full
// shard try-order up front from a headroom snapshot taken at batch start,
// then executes in rounds — round r sends every still-pending request to
// its r-th choice, grouped per shard, and each shard processes its group in
// ascending request order under its own lock.  Shard managers share no
// state, so the decision log and `placement_hash` sequence are byte-
// identical for threads=1 and threads=N; only wall-clock latencies differ.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "availability/availability_tracker.h"
#include "core/map_result.h"
#include "emulator/tenancy.h"
#include "extensions/heuristic_pool.h"
#include "model/physical_cluster.h"
#include "multilevel/multilevel_mapper.h"
#include "topology/partition.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hmn::orchestrator {

/// Builds the admission pool for one shard (each TenancyManager needs its
/// own Mapper instances).  Defaults to extensions::default_pool.
using PoolFactory = std::function<extensions::HeuristicPool()>;

struct RouterOptions {
  /// Upper bound on the shard count (clamped to the fabric's rack units;
  /// see topology::partition_cluster).  1 degenerates to flat admission
  /// through the identical code path — the E14 baseline.
  std::size_t shards = 4;
  /// Worker threads for admit_batch; <= 1 runs serially.  Decisions are
  /// identical either way.
  std::size_t threads = 1;
  /// Shards probed per request before falling back (power-of-two-choices).
  std::size_t probe_choices = 2;
  /// Try every remaining shard in score order after the probes fail; when
  /// false a request is rejected once its probes reject it.
  bool exhaustive_fallback = true;
  /// Bucket count / upper bound (us) of the admission-latency histogram.
  double latency_histogram_upper_us = 1e6;
  std::size_t latency_histogram_buckets = 256;
  /// Shards with at least this many hosts get their admission pool fronted
  /// by the multilevel coarsen–map–refine mapper (src/multilevel), with a
  /// structural hierarchy prebuilt per shard; the regular pool remains as
  /// the fallback chain.  0 disables multilevel delegation.
  std::size_t multilevel_min_hosts = 0;
  /// Tuning for the delegated multilevel mapper (its min_hosts is
  /// overridden by multilevel_min_hosts above).
  multilevel::MultilevelOptions multilevel;
  /// Wrap every mapper in each shard's pool with the anti-affinity
  /// replica-spread pass (extensions::replica_aware).  The wrapper is
  /// byte-invisible for tenants without replica groups and clusters
  /// without failure-domain annotation, so enabling it on a legacy
  /// workload replays identically; it is off by default so mapper names
  /// in shard stats stay unchanged for existing consumers.
  bool replica_spread = false;
};

/// One independent arrival handed to admit_batch.
struct AdmissionRequest {
  std::uint32_t key = 0;  // caller's tenant key, unique among live tenants
  model::VirtualEnvironment venv;
  std::uint64_t seed = 0;  // admission seed; per-shard seeds derive from it
};

/// One routing decision, in request order.  Everything except `latency_us`
/// is replay-stable (identical for threads=1 vs threads=N).
struct RouterDecision {
  std::uint32_t key = 0;
  bool admitted = false;
  std::int32_t shard = -1;      // winning shard; -1 when rejected
  std::uint32_t attempts = 0;   // shards tried (>= 1)
  core::MapErrorCode error = core::MapErrorCode::kNone;  // last rejection
  /// FNV-1a over the guest placement in *parent-fabric* host ids, so hashes
  /// are comparable across shard counts (and to the flat baseline).
  std::uint64_t placement_hash = 0;
  double latency_us = 0.0;  // wall clock inside the owning shard's lock
};

class PlacementRouter {
 public:
  PlacementRouter(const model::PhysicalCluster& fabric, RouterOptions opts);
  PlacementRouter(const model::PhysicalCluster& fabric, RouterOptions opts,
                  const PoolFactory& make_pool);
  ~PlacementRouter();  // out of line: ShardState is incomplete here

  PlacementRouter(const PlacementRouter&) = delete;
  PlacementRouter& operator=(const PlacementRouter&) = delete;

  /// Admits a batch of independent arrivals; returns one decision per
  /// request, in request order.  `batch_seed` drives shard probing (derive
  /// a fresh one per batch).  Decisions are appended to the router log.
  std::vector<RouterDecision> admit_batch(
      const std::vector<AdmissionRequest>& batch, std::uint64_t batch_seed);

  /// Single-request convenience wrapper over admit_batch.
  RouterDecision admit(AdmissionRequest request, std::uint64_t batch_seed);

  /// Releases the tenant admitted under `key`; false if unknown.
  bool release(std::uint32_t key);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const emulator::TenancyManager& shard_manager(
      std::size_t s) const;
  [[nodiscard]] const topology::ClusterShard& shard(std::size_t s) const;
  /// Live tenants across all shards.
  [[nodiscard]] std::size_t tenant_count() const;
  /// Current residual-CPU headroom of a shard (the P2C score).
  [[nodiscard]] double headroom(std::size_t s) const;

  /// Installs an availability view (non-owning; caller keeps it alive and
  /// updated).  Subsequent batches score each shard as headroom × mean
  /// availability of its hosts in the parent fabric.  nullptr — and a
  /// tracker with no failure history — leave routing byte-identical to the
  /// unbiased router.
  void set_availability(const availability::AvailabilityTracker* tracker) {
    avail_ = tracker;
  }
  /// The multiplier set_availability applies to shard `s` right now.
  [[nodiscard]] double shard_availability(std::size_t s) const;

  [[nodiscard]] const std::vector<RouterDecision>& decision_log() const {
    return log_;
  }
  /// Canonical string over (key, admitted, shard, attempts, error,
  /// placement_hash) of every logged decision; latencies excluded.  Two
  /// runs routed identically iff their signatures match.
  [[nodiscard]] std::string decision_signature() const;
  /// Admission latencies across all logged decisions.
  [[nodiscard]] const util::LatencyHistogram& latency_histogram() const {
    return latency_;
  }

 private:
  struct ShardState;

  /// Full shard try-order for one request from the batch-start headroom
  /// snapshot: P2C winner, remaining probes, then the rest by score.
  [[nodiscard]] std::vector<std::size_t> try_order(
      const std::vector<double>& headroom_snapshot, std::uint64_t seed) const;
  void refresh_headroom(std::size_t s);

  RouterOptions opts_;
  topology::ClusterPartition partition_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads <= 1
  const availability::AvailabilityTracker* avail_ = nullptr;

  struct Placement {
    std::size_t shard = 0;
    emulator::TenantId tenant{};
  };
  std::map<std::uint32_t, Placement> placements_;
  std::vector<RouterDecision> log_;
  util::LatencyHistogram latency_;
};

}  // namespace hmn::orchestrator
