#include "orchestrator/defrag.h"

#include <utility>
#include <vector>

#include "core/networking.h"
#include "core/objective.h"
#include "core/residual.h"

namespace hmn::orchestrator {

DefragResult run_defrag(emulator::TenancyManager& mgr,
                        const DefragOptions& opts) {
  DefragResult result;
  result.lbf_before = core::load_balance_factor(mgr.residual_host_proc());
  result.lbf_after = result.lbf_before;
  const std::vector<emulator::TenantId> ids = mgr.tenant_ids();
  if (ids.empty()) {
    result.detail = "no tenants";
    return result;
  }
  if (!opts.reroute_links) {
    result.detail = "rerouting disabled";
    return result;
  }

  // Aggregate every tenant into one environment; guests and links keep
  // their per-tenant order, offset by the tenants before them.
  model::VirtualEnvironment combined;
  std::vector<NodeId> guest_host;
  struct Slice {
    emulator::TenantId id;
    std::size_t guest_begin = 0, guest_end = 0;
    std::size_t link_begin = 0, link_end = 0;
  };
  std::vector<Slice> slices;
  slices.reserve(ids.size());
  for (const emulator::TenantId id : ids) {
    const emulator::Tenant* tenant = mgr.tenant(id);
    Slice slice;
    slice.id = id;
    slice.guest_begin = combined.guest_count();
    slice.link_begin = combined.link_count();
    const auto offset =
        static_cast<GuestId::underlying_type>(combined.guest_count());
    for (std::size_t g = 0; g < tenant->venv.guest_count(); ++g) {
      combined.add_guest(tenant->venv.guest(
          GuestId{static_cast<GuestId::underlying_type>(g)}));
      guest_host.push_back(tenant->mapping.guest_host[g]);
    }
    for (std::size_t l = 0; l < tenant->venv.link_count(); ++l) {
      const auto lid = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
      const auto ep = tenant->venv.endpoints(lid);
      combined.add_link(GuestId{offset + ep.src.value()},
                        GuestId{offset + ep.dst.value()},
                        tenant->venv.link(lid));
    }
    slice.guest_end = combined.guest_count();
    slice.link_end = combined.link_count();
    slices.push_back(slice);
  }

  // Migration stage over the aggregate placement (memory/storage fits are
  // enforced per move; bandwidth is resolved by the global re-route below).
  core::ResidualState state(mgr.cluster());
  for (std::size_t g = 0; g < guest_host.size(); ++g) {
    state.place(
        combined.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
        guest_host[g]);
  }
  const core::MigrationResult moved =
      core::run_migration(combined, state, guest_host, opts.migration);
  result.migrations = moved.migrations;

  // Global routing pass: every inter-host link afresh, heaviest first.
  core::ResidualState net_state(mgr.cluster());
  for (std::size_t g = 0; g < guest_host.size(); ++g) {
    net_state.place(
        combined.guest(GuestId{static_cast<GuestId::underlying_type>(g)}),
        guest_host[g]);
  }
  const core::NetworkingResult net =
      core::run_networking(combined, net_state, guest_host);
  if (!net.ok) {
    result.detail = "re-route failed: " + net.detail;
    return result;
  }
  result.links_rerouted = net.links_routed;

  std::vector<std::pair<emulator::TenantId, core::Mapping>> updates;
  updates.reserve(slices.size());
  for (const Slice& slice : slices) {
    core::Mapping mapping;
    mapping.guest_host.assign(
        guest_host.begin() + static_cast<std::ptrdiff_t>(slice.guest_begin),
        guest_host.begin() + static_cast<std::ptrdiff_t>(slice.guest_end));
    mapping.link_paths.assign(
        net.link_paths.begin() + static_cast<std::ptrdiff_t>(slice.link_begin),
        net.link_paths.begin() + static_cast<std::ptrdiff_t>(slice.link_end));
    updates.emplace_back(slice.id, std::move(mapping));
  }
  if (!mgr.update_mappings(updates)) {
    result.detail = "commit rejected by TenancyManager";
    return result;
  }
  result.committed = true;
  result.lbf_after = core::load_balance_factor(mgr.residual_host_proc());
  return result;
}

}  // namespace hmn::orchestrator
