#include "orchestrator/retry_queue.h"

#include <algorithm>

namespace hmn::orchestrator {

bool RetryQueue::push(PendingTenant tenant) {
  if (full()) return false;
  entries_.push_back(std::move(tenant));
  return true;
}

std::optional<PendingTenant> RetryQueue::erase(std::uint32_t key) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [key](const PendingTenant& t) { return t.key == key; });
  if (it == entries_.end()) return std::nullopt;
  PendingTenant out = std::move(*it);
  entries_.erase(it);
  return out;
}

std::vector<PendingTenant> RetryQueue::export_entries() const {
  return {entries_.begin(), entries_.end()};
}

void RetryQueue::restore_entries(std::vector<PendingTenant> entries) {
  entries_.assign(std::make_move_iterator(entries.begin()),
                  std::make_move_iterator(entries.end()));
}

}  // namespace hmn::orchestrator
