#include "orchestrator/retry_queue.h"

#include <algorithm>
#include <cassert>

namespace hmn::orchestrator {

void RetryQueue::push(PendingTenant tenant) {
  assert(!full());
  entries_.push_back(std::move(tenant));
}

std::optional<PendingTenant> RetryQueue::erase(std::uint32_t key) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [key](const PendingTenant& t) { return t.key == key; });
  if (it == entries_.end()) return std::nullopt;
  PendingTenant out = std::move(*it);
  entries_.erase(it);
  return out;
}

}  // namespace hmn::orchestrator
