#include "orchestrator/retry_queue.h"

#include <algorithm>

namespace hmn::orchestrator {

bool RetryQueue::push(PendingTenant tenant) {
  if (full()) return false;
  entries_.push_back(std::move(tenant));
  return true;
}

std::optional<PendingTenant> RetryQueue::erase(std::uint32_t key) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [key](const PendingTenant& t) { return t.key == key; });
  if (it == entries_.end()) return std::nullopt;
  PendingTenant out = std::move(*it);
  entries_.erase(it);
  return out;
}

}  // namespace hmn::orchestrator
