#include "orchestrator/router.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <sstream>
#include <utility>

#include "extensions/replica_spread.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hmn::orchestrator {

struct PlacementRouter::ShardState {
  std::size_t index = 0;
  const topology::ClusterShard* shard = nullptr;  // owned by partition_
  emulator::TenancyManager mgr;
  std::mutex mutex;
  double headroom = 0.0;

  ShardState(std::size_t i, const topology::ClusterShard& sh,
             extensions::HeuristicPool pool)
      : index(i), shard(&sh), mgr(sh.cluster, std::move(pool)) {}
};

namespace {

/// FNV-1a over the guest placement translated to parent-fabric host ids —
/// the same fingerprint the orchestrator logs, so sharded and flat runs
/// hash comparably.
std::uint64_t parent_placement_hash(const topology::ClusterShard& shard,
                                    const std::vector<NodeId>& local_hosts) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const NodeId local : local_hosts) {
    h ^= shard.parent_node(local).value();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PlacementRouter::~PlacementRouter() = default;

PlacementRouter::PlacementRouter(const model::PhysicalCluster& fabric,
                                 RouterOptions opts)
    : PlacementRouter(fabric, opts,
                      [] { return extensions::default_pool(); }) {}

PlacementRouter::PlacementRouter(const model::PhysicalCluster& fabric,
                                 RouterOptions opts,
                                 const PoolFactory& make_pool)
    : opts_(opts),
      partition_(topology::partition_cluster(
          fabric, opts.shards == 0 ? 1 : opts.shards)),
      latency_(opts.latency_histogram_upper_us,
               opts.latency_histogram_buckets) {
  shards_.reserve(partition_.shard_count());
  for (std::size_t s = 0; s < partition_.shard_count(); ++s) {
    extensions::HeuristicPool pool = make_pool();
    const topology::ClusterShard& sh = partition_.shards[s];
    if (opts_.multilevel_min_hosts > 0 &&
        sh.cluster.host_count() >= opts_.multilevel_min_hosts) {
      // Large shard: front the pool with the multilevel mapper, prebuilding
      // the structural hierarchy once — TenancyManager hands the mapper a
      // fresh residual-view cluster per admission, which stays compatible()
      // with the prebuilt levels, so only capacities re-aggregate per call.
      multilevel::MultilevelOptions mo = opts_.multilevel;
      mo.min_hosts = opts_.multilevel_min_hosts;
      auto hier = std::make_shared<const multilevel::PhysicalHierarchy>(
          multilevel::build_hierarchy(sh.cluster, mo.phys));
      pool.add_front(std::make_unique<multilevel::MultilevelMapper>(
          std::move(mo), std::move(hier)));
    }
    if (opts_.replica_spread) {
      // Anti-affinity post-pass over every chain entry (multilevel mapper
      // included): spread k-of-n replica groups across the shard's failure
      // domains.  No-op unless the shard cluster is domain-annotated and
      // the tenant declares groups.
      pool = extensions::replica_aware(std::move(pool));
    }
    shards_.push_back(std::make_unique<ShardState>(s, sh, std::move(pool)));
    refresh_headroom(s);
  }
  if (opts_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.threads);
  }
}

const emulator::TenancyManager& PlacementRouter::shard_manager(
    std::size_t s) const {
  return shards_[s]->mgr;
}

const topology::ClusterShard& PlacementRouter::shard(std::size_t s) const {
  return partition_.shards[s];
}

std::size_t PlacementRouter::tenant_count() const {
  std::size_t total = 0;
  for (const auto& st : shards_) total += st->mgr.tenant_count();
  return total;
}

double PlacementRouter::headroom(std::size_t s) const {
  return shards_[s]->headroom;
}

double PlacementRouter::shard_availability(std::size_t s) const {
  if (avail_ == nullptr || !avail_->has_history()) return 1.0;
  const topology::ClusterShard& sh = partition_.shards[s];
  double sum = 0.0;
  std::size_t count = 0;
  for (const NodeId local : sh.cluster.hosts()) {
    sum += avail_->node_availability(sh.parent_node(local).value());
    ++count;
  }
  return count == 0 ? 1.0 : sum / static_cast<double>(count);
}

void PlacementRouter::refresh_headroom(std::size_t s) {
  ShardState& st = *shards_[s];
  std::lock_guard lock(st.mutex);
  double sum = 0.0;
  for (const double r : st.mgr.residual_host_proc()) sum += r;
  st.headroom = sum;
}

// Scoring runs once per admission batch entry; probe vectors stay reserved.
// hmn-lint: hot-path
std::vector<std::size_t> PlacementRouter::try_order(
    const std::vector<double>& headroom_snapshot, std::uint64_t seed) const {
  const std::size_t k = shards_.size();
  auto better = [&](std::size_t a, std::size_t b) {
    if (headroom_snapshot[a] != headroom_snapshot[b]) {
      return headroom_snapshot[a] > headroom_snapshot[b];
    }
    return a < b;  // deterministic tie-break
  };

  util::Rng rng(seed);
  const std::size_t probes =
      std::min(std::max<std::size_t>(1, opts_.probe_choices), k);
  std::vector<std::size_t> order;
  order.reserve(opts_.exhaustive_fallback ? k : probes);
  while (order.size() < probes) {
    const std::size_t c = rng.index(k);
    if (std::find(order.begin(), order.end(), c) == order.end()) {
      order.push_back(c);
    }
  }
  // The P2C winner leads; losing probes follow, still by score.
  std::sort(order.begin(), order.end(), better);
  if (opts_.exhaustive_fallback) {
    std::vector<std::size_t> rest;
    rest.reserve(k - probes);
    for (std::size_t s = 0; s < k; ++s) {
      if (std::find(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(
                                       probes),
                    s) == order.begin() + static_cast<std::ptrdiff_t>(probes)) {
        rest.push_back(s);
      }
    }
    std::sort(rest.begin(), rest.end(), better);
    order.insert(order.end(), rest.begin(), rest.end());
  }
  return order;
}

std::vector<RouterDecision> PlacementRouter::admit_batch(
    const std::vector<AdmissionRequest>& batch, std::uint64_t batch_seed) {
  const std::size_t n = batch.size();
  std::vector<RouterDecision> decisions(n);
  if (n == 0) return decisions;

  // Headroom snapshot and per-request try-orders, resolved serially before
  // any admission: the scores every request routes on are those at batch
  // start, independent of intra-batch completion order.  The availability
  // multiplier is 1.0 everywhere until a failure has been observed, so a
  // failure-free biased run scores — and routes — identically to blind.
  std::vector<double> snapshot(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snapshot[s] = shards_[s]->headroom * shard_availability(s);
  }

  std::vector<std::vector<std::size_t>> order(n);
  std::vector<emulator::TenantId> admitted_id(n);
  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    decisions[i].key = batch[i].key;
    if (placements_.count(batch[i].key) != 0 ||
        std::any_of(batch.begin(),
                    batch.begin() + static_cast<std::ptrdiff_t>(i),
                    [&](const AdmissionRequest& r) {
                      return r.key == batch[i].key;
                    })) {
      decisions[i].error = core::MapErrorCode::kInvalidInput;  // dup key
      continue;
    }
    order[i] = try_order(snapshot, util::derive_seed(batch_seed, i));
    pending.push_back(i);
  }

  const std::size_t max_attempts =
      pending.empty() ? 0 : order[pending.front()].size();
  for (std::size_t attempt = 0;
       attempt < max_attempts && !pending.empty(); ++attempt) {
    // Round r: every still-pending request goes to its r-th choice.
    // Groups are built by one ascending scan, so each shard sees its
    // requests in request order — the property that makes the decision
    // log independent of the thread count.
    std::vector<std::vector<std::size_t>> per_shard(shards_.size());
    for (const std::size_t i : pending) {
      per_shard[order[i][attempt]].push_back(i);
    }

    auto run_shard = [&](std::size_t s) {
      const auto& list = per_shard[s];
      if (list.empty()) return;
      ShardState& st = *shards_[s];
      std::lock_guard lock(st.mutex);
      for (const std::size_t i : list) {
        const AdmissionRequest& req = batch[i];
        util::Timer timer;
        auto res = st.mgr.admit("t" + std::to_string(req.key), req.venv,
                                util::derive_seed(req.seed, s));
        decisions[i].latency_us += timer.elapsed_us();
        decisions[i].attempts = static_cast<std::uint32_t>(attempt + 1);
        if (res.ok()) {
          decisions[i].admitted = true;
          decisions[i].shard = static_cast<std::int32_t>(s);
          admitted_id[i] = *res.tenant;
          decisions[i].placement_hash = parent_placement_hash(
              *st.shard, st.mgr.tenant(*res.tenant)->mapping.guest_host);
        } else {
          decisions[i].error = res.error;
        }
      }
    };

    if (pool_ != nullptr) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (per_shard[s].empty()) continue;
        pool_->submit([&run_shard, s] { run_shard(s); });
      }
      pool_->wait_idle();
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) run_shard(s);
    }

    std::vector<std::size_t> still;
    still.reserve(pending.size());
    for (const std::size_t i : pending) {
      if (!decisions[i].admitted) still.push_back(i);
    }
    pending = std::move(still);
  }

  // Serial epilogue: registry, log, latency accounting, fresh headroom.
  for (std::size_t i = 0; i < n; ++i) {
    if (decisions[i].admitted) {
      placements_[batch[i].key] = {static_cast<std::size_t>(decisions[i].shard),
                                   admitted_id[i]};
    }
    latency_.add(decisions[i].latency_us);
    log_.push_back(decisions[i]);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) refresh_headroom(s);
  return decisions;
}

RouterDecision PlacementRouter::admit(AdmissionRequest request,
                                      std::uint64_t batch_seed) {
  std::vector<AdmissionRequest> batch;
  batch.push_back(std::move(request));
  return admit_batch(batch, batch_seed).front();
}

bool PlacementRouter::release(std::uint32_t key) {
  const auto it = placements_.find(key);
  if (it == placements_.end()) return false;
  const std::size_t s = it->second.shard;
  {
    ShardState& st = *shards_[s];
    std::lock_guard lock(st.mutex);
    st.mgr.release(it->second.tenant);
  }
  refresh_headroom(s);
  placements_.erase(it);
  return true;
}

std::string PlacementRouter::decision_signature() const {
  std::ostringstream out;
  char buf[96];
  for (const RouterDecision& d : log_) {
    std::snprintf(buf, sizeof(buf), "%u|%d|%d|%u|%d|%016" PRIx64 ";", d.key,
                  d.admitted ? 1 : 0, d.shard, d.attempts,
                  static_cast<int>(d.error), d.placement_hash);
    out << buf;
  }
  return out.str();
}

}  // namespace hmn::orchestrator
