#include "model/physical_cluster.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace hmn::model {

PhysicalCluster PhysicalCluster::build(topology::Topology topo,
                                       std::vector<HostCapacity> host_caps,
                                       LinkProps uniform_link) {
  const std::size_t edges = topo.graph.edge_count();
  return build(std::move(topo), std::move(host_caps),
               std::vector<LinkProps>(edges, uniform_link));
}

PhysicalCluster PhysicalCluster::build(topology::Topology topo,
                                       std::vector<HostCapacity> host_caps,
                                       std::vector<LinkProps> link_props) {
  if (host_caps.size() != topo.host_count()) {
    throw std::invalid_argument(
        "PhysicalCluster::build: one capacity per host node required");
  }
  if (link_props.size() != topo.graph.edge_count()) {
    throw std::invalid_argument(
        "PhysicalCluster::build: one LinkProps per edge required");
  }

  PhysicalCluster c;
  c.hosts_ = topo.host_nodes();
  c.capacity_.assign(topo.graph.node_count(), HostCapacity{});
  for (std::size_t i = 0; i < c.hosts_.size(); ++i) {
    c.capacity_[c.hosts_[i].index()] = host_caps[i];
  }
  c.links_ = std::move(link_props);
  c.topo_ = std::move(topo);
  return c;
}

void PhysicalCluster::deduct_vmm_overhead(const HostCapacity& overhead) {
  for (const NodeId h : hosts_) {
    capacity_[h.index()] = capacity_[h.index()].minus(overhead);
  }
}

void PhysicalCluster::fail_node(NodeId node) {
  capacity_[node.index()] = HostCapacity{};
  for (const graph::Adjacency& adj : topo_.graph.neighbors(node)) {
    links_[adj.edge.index()].bandwidth_mbps = 0.0;
    links_[adj.edge.index()].latency_ms =
        std::numeric_limits<double>::infinity();
  }
}

void PhysicalCluster::fail_link(EdgeId edge) {
  links_[edge.index()].bandwidth_mbps = 0.0;
  links_[edge.index()].latency_ms = std::numeric_limits<double>::infinity();
}

void PhysicalCluster::set_failure_domains(FailureDomains domains) {
  const std::size_t n = node_count();
  if ((!domains.blast_domain.empty() && domains.blast_domain.size() != n) ||
      (!domains.power_domain.empty() && domains.power_domain.size() != n)) {
    throw std::invalid_argument(
        "set_failure_domains: vectors must be empty or sized node_count()");
  }
  domains_ = std::move(domains);
}

double PhysicalCluster::total_proc_mips() const {
  double sum = 0.0;
  for (const NodeId h : hosts_) sum += capacity_[h.index()].proc_mips;
  return sum;
}

}  // namespace hmn::model
