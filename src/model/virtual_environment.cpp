#include "model/virtual_environment.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hmn::model {
namespace {

NodeId to_node(GuestId g) { return NodeId{g.value()}; }
GuestId to_guest(NodeId n) { return GuestId{n.value()}; }
EdgeId to_edge(VirtLinkId l) { return EdgeId{l.value()}; }
VirtLinkId to_vlink(EdgeId e) { return VirtLinkId{e.value()}; }

}  // namespace

GuestId VirtualEnvironment::add_guest(const GuestRequirements& req) {
  guests_.push_back(req);
  return to_guest(graph_.add_node());
}

VirtLinkId VirtualEnvironment::add_link(GuestId a, GuestId b,
                                        const VirtualLinkDemand& demand) {
  assert(a.index() < guest_count() && b.index() < guest_count());
  demands_.push_back(demand);
  return to_vlink(graph_.add_edge(to_node(a), to_node(b)));
}

VirtualLinkEndpoints VirtualEnvironment::endpoints(VirtLinkId l) const {
  const graph::EdgeEndpoints ep = graph_.endpoints(to_edge(l));
  return {to_guest(ep.a), to_guest(ep.b)};
}

std::vector<VirtLinkId> VirtualEnvironment::links_of(GuestId g) const {
  std::vector<VirtLinkId> out;
  for (const graph::Adjacency& adj : graph_.neighbors(to_node(g))) {
    out.push_back(to_vlink(adj.edge));
  }
  return out;
}

void VirtualEnvironment::add_replica_group(std::vector<GuestId> members,
                                           std::size_t required) {
  if (members.empty()) {
    throw std::invalid_argument("replica group needs at least one member");
  }
  if (required < 1 || required > members.size()) {
    throw std::invalid_argument("replica group quorum out of range");
  }
  std::sort(members.begin(), members.end(),
            [](GuestId a, GuestId b) { return a.value() < b.value(); });
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].index() >= guest_count()) {
      throw std::invalid_argument("replica group member out of range");
    }
    if (i > 0 && members[i] == members[i - 1]) {
      throw std::invalid_argument("replica group members must be distinct");
    }
    if (group_of(members[i]) != npos) {
      throw std::invalid_argument("guest already in a replica group");
    }
  }
  replica_groups_.push_back(ReplicaGroup{std::move(members), required});
}

std::size_t VirtualEnvironment::group_of(GuestId g) const {
  for (std::size_t i = 0; i < replica_groups_.size(); ++i) {
    const auto& m = replica_groups_[i].members;
    if (std::find(m.begin(), m.end(), g) != m.end()) return i;
  }
  return npos;
}

double VirtualEnvironment::total_vproc_mips() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.proc_mips;
  return s;
}

double VirtualEnvironment::total_vmem_mb() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.mem_mb;
  return s;
}

double VirtualEnvironment::total_vstor_gb() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.stor_gb;
  return s;
}

}  // namespace hmn::model
