#include "model/virtual_environment.h"

#include <cassert>

namespace hmn::model {
namespace {

NodeId to_node(GuestId g) { return NodeId{g.value()}; }
GuestId to_guest(NodeId n) { return GuestId{n.value()}; }
EdgeId to_edge(VirtLinkId l) { return EdgeId{l.value()}; }
VirtLinkId to_vlink(EdgeId e) { return VirtLinkId{e.value()}; }

}  // namespace

GuestId VirtualEnvironment::add_guest(const GuestRequirements& req) {
  guests_.push_back(req);
  return to_guest(graph_.add_node());
}

VirtLinkId VirtualEnvironment::add_link(GuestId a, GuestId b,
                                        const VirtualLinkDemand& demand) {
  assert(a.index() < guest_count() && b.index() < guest_count());
  demands_.push_back(demand);
  return to_vlink(graph_.add_edge(to_node(a), to_node(b)));
}

VirtualLinkEndpoints VirtualEnvironment::endpoints(VirtLinkId l) const {
  const graph::EdgeEndpoints ep = graph_.endpoints(to_edge(l));
  return {to_guest(ep.a), to_guest(ep.b)};
}

std::vector<VirtLinkId> VirtualEnvironment::links_of(GuestId g) const {
  std::vector<VirtLinkId> out;
  for (const graph::Adjacency& adj : graph_.neighbors(to_node(g))) {
    out.push_back(to_vlink(adj.edge));
  }
  return out;
}

double VirtualEnvironment::total_vproc_mips() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.proc_mips;
  return s;
}

double VirtualEnvironment::total_vmem_mb() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.mem_mb;
  return s;
}

double VirtualEnvironment::total_vstor_gb() const {
  double s = 0.0;
  for (const auto& g : guests_) s += g.stor_gb;
  return s;
}

}  // namespace hmn::model
