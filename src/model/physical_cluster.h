// The physical cluster: topology + per-node capacities + per-link
// properties (the paper's graph c = (C, E_c) with proc/mem/stor and bw/lat).
//
// The cluster is immutable once built; mutable residual bookkeeping during
// mapping lives in core::ResidualState so that a cluster can be shared by
// many concurrent mapping runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/resources.h"
#include "model/topology.h"

namespace hmn::model {

/// Optional failure-domain annotation: for every node, the id of the
/// network blast group (the switch whose loss takes this node down, PR 5's
/// correlated failures) and of the power domain (the PDU feeding it, which
/// may span racks).  `kNone` marks nodes outside any domain (switches, or
/// clusters built before annotation).  Mappers use this to spread replica
/// groups anti-affinely; the annotation carries no behavior by itself.
struct FailureDomains {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  std::vector<std::uint32_t> blast_domain;  // per node; kNone = unassigned
  std::vector<std::uint32_t> power_domain;  // per node; kNone = unassigned

  [[nodiscard]] bool empty() const {
    return blast_domain.empty() && power_domain.empty();
  }
};

class PhysicalCluster {
 public:
  PhysicalCluster() = default;

  /// Builds a cluster over `topo`.  `host_caps` gives the capacity of each
  /// host node in topology host order (host_caps.size() must equal
  /// topo.host_count()); switches get zero capacity.  Every link receives
  /// `uniform_link` (the paper's clusters use uniform 1 Gbps / 5 ms links).
  static PhysicalCluster build(topology::Topology topo,
                               std::vector<HostCapacity> host_caps,
                               LinkProps uniform_link);

  /// As above but with per-link properties, indexed by EdgeId.
  static PhysicalCluster build(topology::Topology topo,
                               std::vector<HostCapacity> host_caps,
                               std::vector<LinkProps> link_props);

  /// Deducts the VMM's own consumption from every host (Section 3.1:
  /// "the amount of it used by the VMM is deducted from that resource
  /// availability prior the mapping").
  void deduct_vmm_overhead(const HostCapacity& overhead);

  /// Marks a node as failed: capacity drops to zero and every incident
  /// link becomes unusable (zero bandwidth, infinite latency), so every
  /// subsequent mapping, extension, and routing pass naturally avoids it.
  /// The topology itself is unchanged (ids remain stable).
  void fail_node(NodeId node);

  /// Marks a single physical link as failed (zero bandwidth, infinite
  /// latency); both endpoints keep their capacity.
  void fail_link(EdgeId edge);

  [[nodiscard]] const graph::Graph& graph() const { return topo_.graph; }
  [[nodiscard]] const topology::Topology& topology() const { return topo_; }

  [[nodiscard]] std::size_t node_count() const {
    return topo_.graph.node_count();
  }
  [[nodiscard]] std::size_t link_count() const {
    return topo_.graph.edge_count();
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Host nodes in ascending NodeId order.
  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }
  [[nodiscard]] bool is_host(NodeId n) const { return topo_.is_host(n); }

  /// Capacity of a node (zero for switches).
  [[nodiscard]] const HostCapacity& capacity(NodeId n) const {
    return capacity_[n.index()];
  }

  [[nodiscard]] const LinkProps& link(EdgeId e) const {
    return links_[e.index()];
  }

  /// Sum of host processing capacity — used by load metrics.
  [[nodiscard]] double total_proc_mips() const;

  /// Installs the failure-domain annotation (vectors must be empty or sized
  /// node_count()).  Copied through TenancyManager::residual_view so the
  /// replica-spread mapper sees domains on every residual snapshot.
  void set_failure_domains(FailureDomains domains);
  [[nodiscard]] const FailureDomains& failure_domains() const {
    return domains_;
  }

 private:
  topology::Topology topo_;
  std::vector<HostCapacity> capacity_;  // per node
  std::vector<LinkProps> links_;        // per edge
  std::vector<NodeId> hosts_;
  FailureDomains domains_;  // empty unless annotated
};

}  // namespace hmn::model
