// The virtual environment: the tester-described distributed system to be
// emulated (the paper's graph v = (V, E_v) with vproc/vmem/vstor and
// vbw/vlat).
//
// Guests and virtual links are addressed by GuestId / VirtLinkId, distinct
// types from the cluster's NodeId / EdgeId so a guest index can never be
// used to subscript cluster arrays by accident.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/resources.h"

namespace hmn::model {

/// Endpoints of a virtual link.
struct VirtualLinkEndpoints {
  GuestId src;
  GuestId dst;

  [[nodiscard]] GuestId other(GuestId g) const { return g == src ? dst : src; }
};

/// Tenant service level, declared at admission and honored by the
/// orchestrator's tier-aware healing: gold tenants get first claim on the
/// spare-capacity healing headroom and are repaired first after a failure;
/// best-effort tenants are healed last and park first under pressure.
/// The numeric order IS the priority order (lower heals earlier).
enum class SlaTier : std::uint8_t {
  kGold = 0,
  kStandard = 1,
  kBestEffort = 2,
};

[[nodiscard]] constexpr const char* to_string(SlaTier t) {
  switch (t) {
    case SlaTier::kGold: return "gold";
    case SlaTier::kStandard: return "standard";
    case SlaTier::kBestEffort: return "best-effort";
  }
  return "?";
}

/// A k-of-n replica declaration: the tenant runs `members.size()` replicas
/// of one service and stays healthy while at least `required` of them are
/// alive.  The mapper spreads the members anti-affinely across failure
/// domains; the healer defers migrating a dead member while the group still
/// meets its quorum (graceful degradation instead of emergency surgery).
struct ReplicaGroup {
  std::vector<GuestId> members;  // n distinct guests, ascending ids
  std::size_t required = 1;      // k: alive members needed for health

  [[nodiscard]] std::size_t size() const { return members.size(); }
};

class VirtualEnvironment {
 public:
  VirtualEnvironment() = default;

  /// Adds a guest; returns its id.
  GuestId add_guest(const GuestRequirements& req);

  /// Adds a virtual link between existing guests; returns its id.
  VirtLinkId add_link(GuestId a, GuestId b, const VirtualLinkDemand& demand);

  [[nodiscard]] std::size_t guest_count() const { return guests_.size(); }
  [[nodiscard]] std::size_t link_count() const { return demands_.size(); }

  [[nodiscard]] const GuestRequirements& guest(GuestId g) const {
    return guests_[g.index()];
  }
  [[nodiscard]] const VirtualLinkDemand& link(VirtLinkId l) const {
    return demands_[l.index()];
  }
  [[nodiscard]] VirtualLinkEndpoints endpoints(VirtLinkId l) const;

  /// Virtual links incident to guest g (as VirtLinkIds).
  [[nodiscard]] std::vector<VirtLinkId> links_of(GuestId g) const;

  /// The underlying topology graph (guest i == graph node i,
  /// virtual link j == graph edge j).
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

  /// Aggregate demand — used in feasibility pre-checks and reports.
  [[nodiscard]] double total_vproc_mips() const;
  [[nodiscard]] double total_vmem_mb() const;
  [[nodiscard]] double total_vstor_gb() const;

  /// Service tier; defaults to kStandard for every tenant that never calls
  /// set_sla_tier, so pre-existing workloads are unaffected.
  void set_sla_tier(SlaTier tier) { sla_tier_ = tier; }
  [[nodiscard]] SlaTier sla_tier() const { return sla_tier_; }

  /// Declares a k-of-n replica group over existing guests.  Members must be
  /// distinct, in range, and disjoint from every previously declared group;
  /// `required` must satisfy 1 <= required <= members.size().  Members are
  /// stored sorted ascending.  Throws std::invalid_argument on violation.
  void add_replica_group(std::vector<GuestId> members, std::size_t required);

  [[nodiscard]] std::size_t replica_group_count() const {
    return replica_groups_.size();
  }
  [[nodiscard]] const ReplicaGroup& replica_group(std::size_t i) const {
    return replica_groups_[i];
  }
  [[nodiscard]] const std::vector<ReplicaGroup>& replica_groups() const {
    return replica_groups_;
  }
  /// Index of the replica group containing guest g, or npos.
  [[nodiscard]] std::size_t group_of(GuestId g) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  graph::Graph graph_;
  std::vector<GuestRequirements> guests_;
  std::vector<VirtualLinkDemand> demands_;
  SlaTier sla_tier_ = SlaTier::kStandard;
  std::vector<ReplicaGroup> replica_groups_;
};

}  // namespace hmn::model
