// The virtual environment: the tester-described distributed system to be
// emulated (the paper's graph v = (V, E_v) with vproc/vmem/vstor and
// vbw/vlat).
//
// Guests and virtual links are addressed by GuestId / VirtLinkId, distinct
// types from the cluster's NodeId / EdgeId so a guest index can never be
// used to subscript cluster arrays by accident.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "model/resources.h"

namespace hmn::model {

/// Endpoints of a virtual link.
struct VirtualLinkEndpoints {
  GuestId src;
  GuestId dst;

  [[nodiscard]] GuestId other(GuestId g) const { return g == src ? dst : src; }
};

class VirtualEnvironment {
 public:
  VirtualEnvironment() = default;

  /// Adds a guest; returns its id.
  GuestId add_guest(const GuestRequirements& req);

  /// Adds a virtual link between existing guests; returns its id.
  VirtLinkId add_link(GuestId a, GuestId b, const VirtualLinkDemand& demand);

  [[nodiscard]] std::size_t guest_count() const { return guests_.size(); }
  [[nodiscard]] std::size_t link_count() const { return demands_.size(); }

  [[nodiscard]] const GuestRequirements& guest(GuestId g) const {
    return guests_[g.index()];
  }
  [[nodiscard]] const VirtualLinkDemand& link(VirtLinkId l) const {
    return demands_[l.index()];
  }
  [[nodiscard]] VirtualLinkEndpoints endpoints(VirtLinkId l) const;

  /// Virtual links incident to guest g (as VirtLinkIds).
  [[nodiscard]] std::vector<VirtLinkId> links_of(GuestId g) const;

  /// The underlying topology graph (guest i == graph node i,
  /// virtual link j == graph edge j).
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

  /// Aggregate demand — used in feasibility pre-checks and reports.
  [[nodiscard]] double total_vproc_mips() const;
  [[nodiscard]] double total_vmem_mb() const;
  [[nodiscard]] double total_vstor_gb() const;

 private:
  graph::Graph graph_;
  std::vector<GuestRequirements> guests_;
  std::vector<VirtualLinkDemand> demands_;
};

}  // namespace hmn::model
