#include "model/topology.h"

#include <algorithm>

namespace hmn::topology {

std::size_t Topology::host_count() const {
  return static_cast<std::size_t>(
      std::count(role.begin(), role.end(), NodeRole::kHost));
}

std::size_t Topology::switch_count() const {
  return role.size() - host_count();
}

std::vector<NodeId> Topology::host_nodes() const {
  std::vector<NodeId> out;
  out.reserve(role.size());
  for (std::size_t i = 0; i < role.size(); ++i) {
    if (role[i] == NodeRole::kHost) {
      out.push_back(NodeId{static_cast<NodeId::underlying_type>(i)});
    }
  }
  return out;
}

}  // namespace hmn::topology
