// Resource quantities for hosts and guests.
//
// Unit conventions, used consistently across the library and matching the
// paper's Table 1 scales:
//   * processing capacity  — MIPS
//   * memory               — MB
//   * storage              — GB
//   * bandwidth            — Mbps
//   * latency              — ms
#pragma once

namespace hmn::model {

// Named unit multipliers for readable workload definitions.
inline constexpr double kGB_in_MB = 1024.0;   // memory: GB expressed in MB
inline constexpr double kTB_in_GB = 1024.0;   // storage: TB expressed in GB
inline constexpr double kGbps_in_Mbps = 1000.0;
inline constexpr double kMbps_in_kbps = 1000.0;

/// Capacity of a physical host (Section 3.2: proc, mem, stor).
struct HostCapacity {
  double proc_mips = 0.0;
  double mem_mb = 0.0;
  double stor_gb = 0.0;

  /// Element-wise subtraction, clamped at zero; used to deduct the VMM's
  /// own consumption before mapping (Section 3.1).
  [[nodiscard]] HostCapacity minus(const HostCapacity& other) const {
    auto sub = [](double a, double b) { return a > b ? a - b : 0.0; };
    return {sub(proc_mips, other.proc_mips), sub(mem_mb, other.mem_mb),
            sub(stor_gb, other.stor_gb)};
  }
};

/// Requirements of a guest VM (Section 3.2: vproc, vmem, vstor).
struct GuestRequirements {
  double proc_mips = 0.0;
  double mem_mb = 0.0;
  double stor_gb = 0.0;
};

/// Properties of a physical link (bw, lat).
struct LinkProps {
  double bandwidth_mbps = 0.0;
  double latency_ms = 0.0;
};

/// Demands of a virtual link (vbw, vlat).  `critical` is the tenant's SLA
/// declaration: a critical link must stay routable or the tenant cannot
/// run (the healer evicts); a best-effort link may go dark during repair
/// (Degraded tenancy) without forcing eviction.
struct VirtualLinkDemand {
  double bandwidth_mbps = 0.0;
  double max_latency_ms = 0.0;
  bool critical = false;
};

}  // namespace hmn::model
