// The topology *type*: a cluster graph plus a host/switch role per node.
//
// This lives in model (layer 1) rather than topology/ so that the cluster
// model can store a Topology without depending on the builder catalogue —
// topology/topologies.h provides the torus/switched/fat-tree/... builders
// and includes this header for the type.  The namespace stays
// hmn::topology: the type belongs to the topology vocabulary even though
// its home module is model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hmn::topology {

/// Role of a cluster node.  Switches forward traffic but cannot run guests.
enum class NodeRole : std::uint8_t { kHost, kSwitch };

/// A topology: graph structure plus per-node role.
struct Topology {
  graph::Graph graph;
  std::vector<NodeRole> role;

  [[nodiscard]] std::size_t host_count() const;
  [[nodiscard]] std::size_t switch_count() const;
  [[nodiscard]] std::vector<NodeId> host_nodes() const;
  [[nodiscard]] bool is_host(NodeId n) const {
    return role[n.index()] == NodeRole::kHost;
  }
};

}  // namespace hmn::topology
