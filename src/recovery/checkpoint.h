// Binary checkpoint codec for the orchestrator's logical state.
//
// A checkpoint is the serialized Orchestrator::State — every committed
// tenant with its venv and mapping, the failure masks, the healer's
// degraded/deferred/parked bookkeeping, the retry queue, the availability
// trackers, and the report's scalar counters — encoded with the io/binfmt
// primitives so every double travels as its IEEE-754 bit pattern and a
// restored orchestrator is *bit*-equal to the one that exported it (the
// byte-identical-fingerprint recovery gate depends on exactly this).
//
// The longitudinal report vectors (decisions, timeline, latencies) are
// deliberately not part of the format: with them a checkpoint would grow
// with run length, and recovery time would stop being bounded by the
// journal tail.  DefragSummary::total_seconds is also excluded — it is
// wall clock, the one thing replay is allowed to change.
//
// Versioned: the payload leads with kCheckpointVersion and decode rejects
// anything else loudly (a crash must never be "recovered" through a codec
// skew).
#pragma once

#include <string>
#include <string_view>

#include "orchestrator/orchestrator.h"

namespace hmn::recovery {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Serializes a state export.  Total size is O(committed state), never
/// O(run length).
[[nodiscard]] std::string encode_state(
    const orchestrator::Orchestrator::State& state);

/// Decodes a checkpoint payload (the bytes encode_state produced; the
/// frame CRC has already vouched for their integrity).  Throws
/// RecoveryError (journal.h) with a descriptive offset-bearing message on
/// version skew or a malformed payload.
[[nodiscard]] orchestrator::Orchestrator::State decode_state(
    std::string_view payload);

}  // namespace hmn::recovery
