#include "recovery/checkpoint.h"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "io/binfmt.h"
#include "recovery/journal.h"

namespace hmn::recovery {
namespace {

using orchestrator::Orchestrator;

[[noreturn]] void fail(const io::BinReader& r, const std::string& what) {
  throw RecoveryError("checkpoint decode failed at payload offset " +
                      std::to_string(r.position()) + ": " + what);
}

/// Unwraps a take_* result or fails with the field name — every truncation
/// points at the exact offset and field, never a silent default.
template <typename T>
T need(std::optional<T> v, const io::BinReader& r, const char* field) {
  if (!v.has_value()) fail(r, std::string("truncated field '") + field + "'");
  return *std::move(v);
}

// ---- field-group helpers, encode and decode kept adjacent ----------------

void put_bool_vec(std::string& out, const std::vector<bool>& v) {
  io::put_u64(out, v.size());
  for (const bool b : v) io::put_u8(out, b ? 1 : 0);
}

std::vector<bool> take_bool_vec(io::BinReader& r, const char* field) {
  const std::uint64_t n = need(r.take_u64(), r, field);
  std::vector<bool> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = need(r.take_u8(), r, field) != 0;
  return v;
}

void put_f64_vec(std::string& out, const std::vector<double>& v) {
  io::put_u64(out, v.size());
  for (const double d : v) io::put_f64(out, d);
}

std::vector<double> take_f64_vec(io::BinReader& r, const char* field) {
  const std::uint64_t n = need(r.take_u64(), r, field);
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = need(r.take_f64(), r, field);
  return v;
}

void put_venv(std::string& out, const model::VirtualEnvironment& venv) {
  io::put_u64(out, venv.guest_count());
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    const model::GuestRequirements& req =
        venv.guest(GuestId{static_cast<std::uint32_t>(g)});
    io::put_f64(out, req.proc_mips);
    io::put_f64(out, req.mem_mb);
    io::put_f64(out, req.stor_gb);
  }
  io::put_u64(out, venv.link_count());
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const VirtLinkId id{static_cast<std::uint32_t>(l)};
    const model::VirtualLinkEndpoints ep = venv.endpoints(id);
    const model::VirtualLinkDemand& demand = venv.link(id);
    io::put_u32(out, ep.src.value());
    io::put_u32(out, ep.dst.value());
    io::put_f64(out, demand.bandwidth_mbps);
    io::put_f64(out, demand.max_latency_ms);
    io::put_u8(out, demand.critical ? 1 : 0);
  }
  io::put_u8(out, static_cast<std::uint8_t>(venv.sla_tier()));
  io::put_u64(out, venv.replica_group_count());
  for (const model::ReplicaGroup& group : venv.replica_groups()) {
    std::vector<std::uint32_t> members;
    members.reserve(group.members.size());
    for (const GuestId g : group.members) members.push_back(g.value());
    io::put_u32_vec(out, members);
    io::put_u64(out, group.required);
  }
}

model::VirtualEnvironment take_venv(io::BinReader& r) {
  model::VirtualEnvironment venv;
  const std::uint64_t guests = need(r.take_u64(), r, "venv.guest_count");
  for (std::uint64_t g = 0; g < guests; ++g) {
    model::GuestRequirements req;
    req.proc_mips = need(r.take_f64(), r, "venv.guest.proc");
    req.mem_mb = need(r.take_f64(), r, "venv.guest.mem");
    req.stor_gb = need(r.take_f64(), r, "venv.guest.stor");
    venv.add_guest(req);
  }
  const std::uint64_t links = need(r.take_u64(), r, "venv.link_count");
  for (std::uint64_t l = 0; l < links; ++l) {
    const std::uint32_t src = need(r.take_u32(), r, "venv.link.src");
    const std::uint32_t dst = need(r.take_u32(), r, "venv.link.dst");
    if (src >= guests || dst >= guests) {
      fail(r, "venv link endpoint out of range");
    }
    model::VirtualLinkDemand demand;
    demand.bandwidth_mbps = need(r.take_f64(), r, "venv.link.bw");
    demand.max_latency_ms = need(r.take_f64(), r, "venv.link.lat");
    demand.critical = need(r.take_u8(), r, "venv.link.critical") != 0;
    venv.add_link(GuestId{src}, GuestId{dst}, demand);
  }
  const std::uint8_t tier = need(r.take_u8(), r, "venv.sla_tier");
  if (tier > static_cast<std::uint8_t>(model::SlaTier::kBestEffort)) {
    fail(r, "venv sla tier out of range");
  }
  venv.set_sla_tier(static_cast<model::SlaTier>(tier));
  const std::uint64_t groups = need(r.take_u64(), r, "venv.replica_groups");
  for (std::uint64_t i = 0; i < groups; ++i) {
    const std::vector<std::uint32_t> raw =
        need(r.take_u32_vec(), r, "venv.replica_group.members");
    std::vector<GuestId> members;
    members.reserve(raw.size());
    for (const std::uint32_t m : raw) members.push_back(GuestId{m});
    const std::uint64_t required =
        need(r.take_u64(), r, "venv.replica_group.required");
    try {
      venv.add_replica_group(std::move(members), required);
    } catch (const std::invalid_argument& e) {
      fail(r, std::string("invalid replica group: ") + e.what());
    }
  }
  return venv;
}

void put_mapping(std::string& out, const core::Mapping& mapping) {
  std::vector<std::uint32_t> hosts;
  hosts.reserve(mapping.guest_host.size());
  for (const NodeId h : mapping.guest_host) hosts.push_back(h.value());
  io::put_u32_vec(out, hosts);
  io::put_u64(out, mapping.link_paths.size());
  for (const graph::Path& path : mapping.link_paths) {
    std::vector<std::uint32_t> edges;
    edges.reserve(path.size());
    for (const EdgeId e : path) edges.push_back(e.value());
    io::put_u32_vec(out, edges);
  }
}

core::Mapping take_mapping(io::BinReader& r) {
  core::Mapping mapping;
  const std::vector<std::uint32_t> hosts =
      need(r.take_u32_vec(), r, "mapping.guest_host");
  mapping.guest_host.reserve(hosts.size());
  for (const std::uint32_t h : hosts) mapping.guest_host.push_back(NodeId{h});
  const std::uint64_t paths = need(r.take_u64(), r, "mapping.link_paths");
  mapping.link_paths.reserve(paths);
  for (std::uint64_t p = 0; p < paths; ++p) {
    const std::vector<std::uint32_t> raw =
        need(r.take_u32_vec(), r, "mapping.path");
    graph::Path path;
    path.reserve(raw.size());
    for (const std::uint32_t e : raw) path.push_back(EdgeId{e});
    mapping.link_paths.push_back(std::move(path));
  }
  return mapping;
}

void put_tenancy(std::string& out, const emulator::TenancyManager::State& s) {
  io::put_u64(out, s.tenants.size());
  for (const emulator::Tenant& t : s.tenants) {
    io::put_u32(out, t.id);
    io::put_bytes(out, t.name);
    put_venv(out, t.venv);
    put_mapping(out, t.mapping);
  }
  io::put_u32(out, s.next_id);
  put_bool_vec(out, s.node_down);
  put_bool_vec(out, s.edge_down);
  put_f64_vec(out, s.host_weights);
  io::put_f64(out, s.admission_headroom);
  // Exact aggregates: restore verifies them against the mappings, then
  // installs them verbatim so a recovered run sees bit-identical residuals.
  put_f64_vec(out, s.used_proc);
  put_f64_vec(out, s.used_mem);
  put_f64_vec(out, s.used_stor);
  put_f64_vec(out, s.used_bw);
}

emulator::TenancyManager::State take_tenancy(io::BinReader& r) {
  emulator::TenancyManager::State s;
  const std::uint64_t n = need(r.take_u64(), r, "tenancy.tenant_count");
  s.tenants.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    emulator::Tenant t;
    t.id = need(r.take_u32(), r, "tenant.id");
    t.name = std::string(need(r.take_bytes(), r, "tenant.name"));
    t.venv = take_venv(r);
    t.mapping = take_mapping(r);
    if (t.mapping.guest_host.size() != t.venv.guest_count() ||
        t.mapping.link_paths.size() != t.venv.link_count()) {
      fail(r, "tenant mapping does not cover its venv");
    }
    s.tenants.push_back(std::move(t));
  }
  s.next_id = need(r.take_u32(), r, "tenancy.next_id");
  s.node_down = take_bool_vec(r, "tenancy.node_down");
  s.edge_down = take_bool_vec(r, "tenancy.edge_down");
  s.host_weights = take_f64_vec(r, "tenancy.host_weights");
  s.admission_headroom = need(r.take_f64(), r, "tenancy.admission_headroom");
  s.used_proc = take_f64_vec(r, "tenancy.used_proc");
  s.used_mem = take_f64_vec(r, "tenancy.used_mem");
  s.used_stor = take_f64_vec(r, "tenancy.used_stor");
  s.used_bw = take_f64_vec(r, "tenancy.used_bw");
  return s;
}

void put_healer(std::string& out, const orchestrator::Healer::State& s) {
  io::put_u64(out, s.degraded.size());
  for (const auto& [key, links] : s.degraded) {
    io::put_u32(out, key);
    std::vector<std::uint32_t> raw;
    raw.reserve(links.size());
    for (const VirtLinkId l : links) raw.push_back(l.value());
    io::put_u32_vec(out, raw);
  }
  io::put_u64(out, s.deferred.size());
  for (const auto& [key, guests] : s.deferred) {
    io::put_u32(out, key);
    std::vector<std::uint32_t> raw;
    raw.reserve(guests.size());
    for (const GuestId g : guests) raw.push_back(g.value());
    io::put_u32_vec(out, raw);
  }
  io::put_u64(out, s.parked.size());
  for (const orchestrator::ParkedTenant& p : s.parked) {
    io::put_u32(out, p.key);
    io::put_bytes(out, p.name);
    put_venv(out, p.venv);
    io::put_f64(out, p.parked_at);
    io::put_u64(out, p.attempts);
    io::put_f64(out, p.next_attempt);
  }
}

orchestrator::Healer::State take_healer(io::BinReader& r) {
  orchestrator::Healer::State s;
  const std::uint64_t degraded = need(r.take_u64(), r, "healer.degraded");
  for (std::uint64_t i = 0; i < degraded; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "healer.degraded.key");
    const std::vector<std::uint32_t> raw =
        need(r.take_u32_vec(), r, "healer.degraded.links");
    std::vector<VirtLinkId>& links = s.degraded[key];
    links.reserve(raw.size());
    for (const std::uint32_t l : raw) links.push_back(VirtLinkId{l});
  }
  const std::uint64_t deferred = need(r.take_u64(), r, "healer.deferred");
  for (std::uint64_t i = 0; i < deferred; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "healer.deferred.key");
    const std::vector<std::uint32_t> raw =
        need(r.take_u32_vec(), r, "healer.deferred.guests");
    std::vector<GuestId>& guests = s.deferred[key];
    guests.reserve(raw.size());
    for (const std::uint32_t g : raw) guests.push_back(GuestId{g});
  }
  const std::uint64_t parked = need(r.take_u64(), r, "healer.parked");
  s.parked.reserve(parked);
  for (std::uint64_t i = 0; i < parked; ++i) {
    orchestrator::ParkedTenant p;
    p.key = need(r.take_u32(), r, "parked.key");
    p.name = std::string(need(r.take_bytes(), r, "parked.name"));
    p.venv = take_venv(r);
    p.parked_at = need(r.take_f64(), r, "parked.parked_at");
    p.attempts = need(r.take_u64(), r, "parked.attempts");
    p.next_attempt = need(r.take_f64(), r, "parked.next_attempt");
    s.parked.push_back(std::move(p));
  }
  return s;
}

void put_queue(std::string& out,
               const std::vector<orchestrator::PendingTenant>& queue) {
  io::put_u64(out, queue.size());
  for (const orchestrator::PendingTenant& p : queue) {
    io::put_u32(out, p.key);
    io::put_bytes(out, p.name);
    put_venv(out, p.venv);
    io::put_u64(out, p.seed);
    io::put_f64(out, p.enqueued_at);
    io::put_u64(out, p.attempts);
    io::put_u64(out, p.passed_over);
  }
}

std::vector<orchestrator::PendingTenant> take_queue(io::BinReader& r) {
  const std::uint64_t n = need(r.take_u64(), r, "queue.count");
  std::vector<orchestrator::PendingTenant> queue;
  queue.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    orchestrator::PendingTenant p;
    p.key = need(r.take_u32(), r, "queue.key");
    p.name = std::string(need(r.take_bytes(), r, "queue.name"));
    p.venv = take_venv(r);
    p.seed = need(r.take_u64(), r, "queue.seed");
    p.enqueued_at = need(r.take_f64(), r, "queue.enqueued_at");
    p.attempts = need(r.take_u64(), r, "queue.attempts");
    p.passed_over = need(r.take_u64(), r, "queue.passed_over");
    queue.push_back(std::move(p));
  }
  return queue;
}

void put_elements(std::string& out,
                  const std::vector<availability::ElementSnapshot>& v) {
  io::put_u64(out, v.size());
  for (const availability::ElementSnapshot& e : v) {
    io::put_f64(out, e.avail);
    io::put_f64(out, e.since);
    io::put_u8(out, e.down ? 1 : 0);
    io::put_u8(out, e.ever_failed ? 1 : 0);
  }
}

std::vector<availability::ElementSnapshot> take_elements(io::BinReader& r,
                                                         const char* field) {
  const std::uint64_t n = need(r.take_u64(), r, field);
  std::vector<availability::ElementSnapshot> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    availability::ElementSnapshot e;
    e.avail = need(r.take_f64(), r, field);
    e.since = need(r.take_f64(), r, field);
    e.down = need(r.take_u8(), r, field) != 0;
    e.ever_failed = need(r.take_u8(), r, field) != 0;
    v.push_back(e);
  }
  return v;
}

void put_report(std::string& out, const orchestrator::OrchestratorReport& rep) {
  // Scalar counters only, fixed order; the longitudinal vectors and the
  // wall-clock defrag.total_seconds stay out of the format by design.
  for (const std::size_t c :
       {rep.arrivals, rep.admitted_immediately, rep.admitted_from_queue,
        rep.rejected, rep.dropped, rep.preempted, rep.abandoned, rep.growths,
        rep.grown_in_place, rep.grown_by_remap, rep.growth_rejected,
        rep.host_failures, rep.link_failures, rep.blast_failures,
        rep.power_failures, rep.recoveries, rep.healed, rep.degraded,
        rep.restored, rep.replica_deferred, rep.parked, rep.readmitted,
        rep.heal_dropped}) {
    io::put_u64(out, c);
  }
  for (const double d :
       {rep.tenant_minutes_lost, rep.tenant_minutes_lost_gold,
        rep.tenant_minutes_lost_standard, rep.tenant_minutes_lost_best_effort,
        rep.degraded_minutes}) {
    io::put_f64(out, d);
  }
  io::put_u64(out, rep.defrag.passes);
  io::put_u64(out, rep.defrag.committed);
  io::put_u64(out, rep.defrag.migrations);
  io::put_f64(out, rep.defrag.lbf_reduction);
}

orchestrator::OrchestratorReport take_report(io::BinReader& r) {
  orchestrator::OrchestratorReport rep;
  for (std::size_t* c :
       {&rep.arrivals, &rep.admitted_immediately, &rep.admitted_from_queue,
        &rep.rejected, &rep.dropped, &rep.preempted, &rep.abandoned,
        &rep.growths, &rep.grown_in_place, &rep.grown_by_remap,
        &rep.growth_rejected, &rep.host_failures, &rep.link_failures,
        &rep.blast_failures, &rep.power_failures, &rep.recoveries,
        &rep.healed, &rep.degraded, &rep.restored, &rep.replica_deferred,
        &rep.parked, &rep.readmitted, &rep.heal_dropped}) {
    *c = need(r.take_u64(), r, "report.counter");
  }
  for (double* d :
       {&rep.tenant_minutes_lost, &rep.tenant_minutes_lost_gold,
        &rep.tenant_minutes_lost_standard,
        &rep.tenant_minutes_lost_best_effort, &rep.degraded_minutes}) {
    *d = need(r.take_f64(), r, "report.accrued");
  }
  rep.defrag.passes = need(r.take_u64(), r, "report.defrag.passes");
  rep.defrag.committed = need(r.take_u64(), r, "report.defrag.committed");
  rep.defrag.migrations = need(r.take_u64(), r, "report.defrag.migrations");
  rep.defrag.lbf_reduction =
      need(r.take_f64(), r, "report.defrag.lbf_reduction");
  return rep;
}

}  // namespace

std::string encode_state(const Orchestrator::State& state) {
  std::string out;
  io::put_u32(out, kCheckpointVersion);
  put_tenancy(out, state.tenancy);
  put_healer(out, state.healer);
  put_queue(out, state.queue);
  put_elements(out, state.availability.nodes);
  put_elements(out, state.availability.links);
  io::put_u8(out, state.availability.has_history ? 1 : 0);
  io::put_u64(out, state.live.size());
  for (const auto& [key, id] : state.live) {
    io::put_u32(out, key);
    io::put_u32(out, id);
  }
  io::put_u64(out, state.degraded_since.size());
  for (const auto& [key, t] : state.degraded_since) {
    io::put_u32(out, key);
    io::put_f64(out, t);
  }
  io::put_u64(out, state.lost_since.size());
  for (const auto& [key, t] : state.lost_since) {
    io::put_u32(out, key);
    io::put_f64(out, t);
  }
  io::put_u64(out, state.tier_of.size());
  for (const auto& [key, tier] : state.tier_of) {
    io::put_u32(out, key);
    io::put_u8(out, static_cast<std::uint8_t>(tier));
  }
  io::put_u64(out, state.departures);
  io::put_u64(out, state.events_handled);
  io::put_u64(out, state.run_fingerprint);
  put_report(out, state.report);
  return out;
}

Orchestrator::State decode_state(std::string_view payload) {
  io::BinReader r(payload);
  const std::uint32_t version = need(r.take_u32(), r, "version");
  if (version != kCheckpointVersion) {
    fail(r, "unsupported checkpoint version " + std::to_string(version) +
                " (expected " + std::to_string(kCheckpointVersion) + ")");
  }
  Orchestrator::State state;
  state.tenancy = take_tenancy(r);
  state.healer = take_healer(r);
  state.queue = take_queue(r);
  state.availability.nodes = take_elements(r, "availability.nodes");
  state.availability.links = take_elements(r, "availability.links");
  state.availability.has_history =
      need(r.take_u8(), r, "availability.has_history") != 0;
  const std::uint64_t live = need(r.take_u64(), r, "live.count");
  for (std::uint64_t i = 0; i < live; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "live.key");
    state.live[key] = need(r.take_u32(), r, "live.tenant");
  }
  const std::uint64_t degraded = need(r.take_u64(), r, "degraded_since.count");
  for (std::uint64_t i = 0; i < degraded; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "degraded_since.key");
    state.degraded_since[key] = need(r.take_f64(), r, "degraded_since.time");
  }
  const std::uint64_t lost = need(r.take_u64(), r, "lost_since.count");
  for (std::uint64_t i = 0; i < lost; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "lost_since.key");
    state.lost_since[key] = need(r.take_f64(), r, "lost_since.time");
  }
  const std::uint64_t tiers = need(r.take_u64(), r, "tier_of.count");
  for (std::uint64_t i = 0; i < tiers; ++i) {
    const std::uint32_t key = need(r.take_u32(), r, "tier_of.key");
    const std::uint8_t tier = need(r.take_u8(), r, "tier_of.tier");
    if (tier > static_cast<std::uint8_t>(model::SlaTier::kBestEffort)) {
      fail(r, "tier_of value out of range");
    }
    state.tier_of[key] = static_cast<model::SlaTier>(tier);
  }
  state.departures = need(r.take_u64(), r, "departures");
  state.events_handled = need(r.take_u64(), r, "events_handled");
  state.run_fingerprint = need(r.take_u64(), r, "run_fingerprint");
  state.report = take_report(r);
  if (!r.exhausted()) {
    fail(r, std::to_string(payload.size() - r.position()) +
                " trailing bytes after a complete state");
  }
  return state;
}

}  // namespace hmn::recovery
