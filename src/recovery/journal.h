// The write-ahead journal: crash consistency for the orchestrator.
//
// Every event the orchestrator handles becomes one *group* of CRC-framed
// binary records (io/binfmt) appended to a byte buffer the caller owns
// (typically backing a file; the harnesses keep it in memory so a "crash"
// is just destroying the orchestrator object):
//
//   EVENT_BEGIN(index, full event payload)   -- write-ahead marker
//   TXN(kind, time, key, detail)*            -- one per committed mutation
//   EVENT_END(index, time, fingerprint)      -- group commit marker
//
// plus, every checkpoint_every_events events, a CHECKPOINT record carrying
// the complete serialized orchestrator state (recovery/checkpoint.h).
// EVENT_BEGIN embeds the whole TenantEvent, so recovery needs no external
// trace: restore the newest intact checkpoint, then re-handle the event of
// every *complete* group after it.  A group without its END marker is a
// crash artifact and is discarded — its in-memory mutations died with the
// process, so dropping it is exactly consistent.
//
// Crash injection is built into the writer, not bolted on: arm_crash(seq,
// torn_seed) makes the append of record `seq` persist only a torn prefix
// of its frame (torn_seed % (frame size + 1) bytes) and then throw
// CrashError, which is precisely what a power cut mid-write leaves on
// disk.  Recovery's frame scanner classifies that torn tail and truncates
// it; the same scanner turns *mid-stream* damage (bit rot, a bad sector)
// into a loud RecoveryError instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "orchestrator/orchestrator.h"
#include "workload/churn.h"
#include "workload/crashes.h"

namespace hmn::recovery {

/// Unrecoverable journal damage or replay divergence.  Always descriptive:
/// what failed, where (byte offset / record seq), and why.
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by an armed JournalWriter at its designated crash site, after
/// persisting the torn prefix.  The harness treats it as process death:
/// the orchestrator and writer objects are abandoned and a fresh pair is
/// recovered from the journal bytes.
class CrashError : public std::runtime_error {
 public:
  CrashError(std::uint64_t seq, std::size_t persisted_bytes,
             std::size_t frame_bytes)
      : std::runtime_error("injected crash at journal record " +
                           std::to_string(seq) + " (" +
                           std::to_string(persisted_bytes) + "/" +
                           std::to_string(frame_bytes) +
                           " frame bytes persisted)"),
        seq_(seq),
        persisted_bytes_(persisted_bytes) {}

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] std::size_t persisted_bytes() const {
    return persisted_bytes_;
  }

 private:
  std::uint64_t seq_;
  std::size_t persisted_bytes_;
};

enum class RecordType : std::uint8_t {
  kEventBegin = 1,
  kTxn = 2,
  kEventEnd = 3,
  kCheckpoint = 4,
};

[[nodiscard]] constexpr const char* to_string(RecordType t) {
  switch (t) {
    case RecordType::kEventBegin: return "event-begin";
    case RecordType::kTxn: return "txn";
    case RecordType::kEventEnd: return "event-end";
    case RecordType::kCheckpoint: return "checkpoint";
  }
  return "?";
}

/// One decoded journal record.  Which fields are meaningful depends on
/// `type` (see the grammar above); `checkpoint` holds the still-encoded
/// state payload — recovery decodes only the newest one it needs.
struct JournalRecord {
  RecordType type = RecordType::kTxn;
  std::uint64_t event_index = 0;            // begin / end / checkpoint
  workload::TenantEvent event;              // begin
  orchestrator::TxnRecord txn;              // txn
  double time = 0.0;                        // end
  std::uint64_t fingerprint = 0;            // end / checkpoint
  std::string checkpoint;                   // checkpoint: encoded state
};

/// Appends framed records to a caller-owned buffer, one frame per record,
/// with optional one-shot crash injection.  `start_seq` continues the
/// record numbering of a journal being resumed after recovery.
class JournalWriter {
 public:
  explicit JournalWriter(std::string& buffer, std::uint64_t start_seq = 0)
      : out_(&buffer), seq_(start_seq) {}

  /// Arms a one-shot crash at the append of record `record_seq`.  A seq
  /// already written (< next_seq()) never fires.
  void arm_crash(std::uint64_t record_seq, std::uint64_t torn_seed) {
    armed_ = true;
    crash_seq_ = record_seq;
    torn_seed_ = torn_seed;
  }

  /// Sequence number the next appended record will get == records written
  /// so far (plus start_seq).
  [[nodiscard]] std::uint64_t next_seq() const { return seq_; }

  void event_begin(std::uint64_t event_index,
                   const workload::TenantEvent& ev);
  void txn(const orchestrator::TxnRecord& txn);
  void event_end(std::uint64_t event_index, double time,
                 std::uint64_t fingerprint);
  /// `events_handled` is the export-time Orchestrator::events_handled();
  /// `encoded_state` comes from recovery::encode_state.
  void checkpoint(std::uint64_t events_handled, std::uint64_t fingerprint,
                  std::string_view encoded_state);

 private:
  void append(std::string_view payload);

  std::string* out_;
  std::uint64_t seq_;
  bool armed_ = false;
  std::uint64_t crash_seq_ = 0;
  std::uint64_t torn_seed_ = 0;
};

/// A fully scanned journal: every intact record in order, plus what the
/// frame scan learned about the tail.
struct JournalParse {
  std::vector<JournalRecord> records;
  /// Byte offset just past the last intact frame — truncate the journal
  /// here before appending further records.
  std::size_t valid_bytes = 0;
  /// The final frame was torn mid-append (expected crash artifact).
  bool torn_tail = false;
};

/// Parses a journal byte stream.  A torn tail is truncated and reported;
/// mid-stream corruption or a malformed record payload throws
/// RecoveryError with the byte offset and cause.
[[nodiscard]] JournalParse parse_journal(std::string_view data);

/// Renders a journal as JSONL for humans — one object per record, with a
/// final {"type":"torn-tail",...} line when the tail was torn.  Checkpoint
/// records render as size + metadata, not the full state.  Throws
/// RecoveryError exactly where parse_journal would.
[[nodiscard]] std::string journal_to_jsonl(std::string_view data);

struct WalOptions {
  /// Append a checkpoint after every N-th event (0 = journal only, never
  /// checkpoint).  Smaller N bounds replay work tighter; each checkpoint
  /// costs O(committed state) journal bytes.
  std::uint64_t checkpoint_every_events = 64;
};

/// Journal-keeper for one orchestrator: implements the TxnObserver
/// callbacks by appending the matching journal records, and cuts a
/// checkpoint every checkpoint_every_events events.  Installs itself as
/// the orchestrator's observer on construction and detaches on
/// destruction (the orchestrator must outlive it or be destroyed with
/// it, as the chaos harness does).
class WalManager final : public orchestrator::TxnObserver {
 public:
  /// Resuming after recovery: pass the recovered journal buffer (already
  /// truncated to valid_bytes) and RecoveredRun::next_seq.
  WalManager(orchestrator::Orchestrator& orch, std::string& journal,
             WalOptions opts = {}, std::uint64_t start_seq = 0);
  ~WalManager() override;

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// One-shot crash injection (see JournalWriter::arm_crash).
  void arm_crash(const workload::CrashPoint& point) {
    writer_.arm_crash(point.record_seq, point.torn_seed);
  }

  [[nodiscard]] std::uint64_t next_seq() const { return writer_.next_seq(); }

  void on_event_begin(std::uint64_t event_index,
                      const workload::TenantEvent& ev) override;
  void on_txn(const orchestrator::TxnRecord& txn) override;
  void on_event_end(std::uint64_t event_index, double time,
                    std::uint64_t fingerprint) override;

 private:
  orchestrator::Orchestrator* orch_;
  JournalWriter writer_;
  WalOptions opts_;
};

}  // namespace hmn::recovery
