#include "recovery/recovery.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "recovery/checkpoint.h"

namespace hmn::recovery {

RecoveredRun recover(orchestrator::Orchestrator& orch,
                     std::string_view journal, const RecoveryOptions& opts) {
  JournalParse parse = parse_journal(journal);
  RecoveredRun out;
  out.next_seq = parse.records.size();
  out.valid_bytes = parse.valid_bytes;
  out.torn_tail = parse.torn_tail;

  // Newest intact checkpoint wins; everything the journal holds before the
  // state it captures is skipped below by event index, not by position.
  const JournalRecord* newest_checkpoint = nullptr;
  for (const JournalRecord& rec : parse.records) {
    if (rec.type == RecordType::kCheckpoint) newest_checkpoint = &rec;
  }
  if (newest_checkpoint != nullptr) {
    orchestrator::Orchestrator::State state =
        decode_state(newest_checkpoint->checkpoint);
    if (state.events_handled != newest_checkpoint->event_index) {
      throw RecoveryError(
          "checkpoint header claims " +
          std::to_string(newest_checkpoint->event_index) +
          " events but its state encodes " +
          std::to_string(state.events_handled));
    }
    if (opts.verify_fingerprints &&
        state.run_fingerprint != newest_checkpoint->fingerprint) {
      throw RecoveryError("checkpoint fingerprint mismatch: header says " +
                          std::to_string(newest_checkpoint->fingerprint) +
                          ", state says " +
                          std::to_string(state.run_fingerprint));
    }
    out.used_checkpoint = true;
    out.checkpoint_event_index = state.events_handled;
    try {
      orch.restore_state(std::move(state));
    } catch (const std::invalid_argument& e) {
      // Structurally valid bytes whose semantics the orchestrator refuses
      // (e.g. aggregates the mappings don't back) are a recovery failure.
      throw RecoveryError(std::string("checkpoint state rejected: ") +
                          e.what());
    }
  }

  // Replay complete groups in order.  A group is (begin, matching end);
  // txn records inside it are observability only — the fingerprint at the
  // end vouches for every decision the re-handled event produced.
  std::optional<workload::TenantEvent> pending_event;
  std::uint64_t pending_index = 0;
  for (std::size_t i = 0; i < parse.records.size(); ++i) {
    const JournalRecord& rec = parse.records[i];
    switch (rec.type) {
      case RecordType::kEventBegin:
        if (pending_event.has_value() &&
            rec.event_index > orch.events_handled()) {
          throw RecoveryError(
              "journal record " + std::to_string(i) + ": event group " +
              std::to_string(pending_index) +
              " was never closed before group " +
              std::to_string(rec.event_index) + " began");
        }
        pending_event = rec.event;
        pending_index = rec.event_index;
        break;
      case RecordType::kEventEnd: {
        if (rec.event_index < orch.events_handled()) {
          // Covered by the checkpoint already; nothing to replay.
          pending_event.reset();
          break;
        }
        if (!pending_event.has_value() || pending_index != rec.event_index) {
          throw RecoveryError("journal record " + std::to_string(i) +
                              ": EVENT_END for group " +
                              std::to_string(rec.event_index) +
                              " without its EVENT_BEGIN");
        }
        if (rec.event_index != orch.events_handled()) {
          throw RecoveryError(
              "journal record " + std::to_string(i) + ": group " +
              std::to_string(rec.event_index) +
              " does not follow the recovered state (expected group " +
              std::to_string(orch.events_handled()) + ")");
        }
        orch.handle(*pending_event);
        pending_event.reset();
        ++out.replayed_events;
        if (opts.verify_fingerprints &&
            orch.run_fingerprint() != rec.fingerprint) {
          throw RecoveryError(
              "replay diverged at event " + std::to_string(rec.event_index) +
              ": journal fingerprint " + std::to_string(rec.fingerprint) +
              " != replayed " + std::to_string(orch.run_fingerprint()) +
              " (different binary, options, or a tampered journal)");
        }
        break;
      }
      case RecordType::kTxn:
      case RecordType::kCheckpoint:
        break;
    }
  }
  // A pending group without its END marker is the crash's half-finished
  // event: its mutations died in memory, so it is deliberately dropped and
  // the caller re-feeds the event itself.
  out.next_event_index = orch.events_handled();
  return out;
}

}  // namespace hmn::recovery
