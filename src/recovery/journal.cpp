#include "recovery/journal.h"

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <utility>

#include "io/binfmt.h"
#include "recovery/checkpoint.h"

namespace hmn::recovery {
namespace {

[[noreturn]] void fail_record(std::size_t index, const std::string& what) {
  throw RecoveryError("journal record " + std::to_string(index) +
                      " is malformed: " + what);
}

template <typename T>
T need(std::optional<T> v, std::size_t index, const char* field) {
  if (!v.has_value()) {
    fail_record(index, std::string("truncated field '") + field + "'");
  }
  return *std::move(v);
}

void put_event(std::string& out, const workload::TenantEvent& ev) {
  io::put_f64(out, ev.time);
  io::put_u8(out, static_cast<std::uint8_t>(ev.kind));
  io::put_u32(out, ev.tenant);
  io::put_u64(out, ev.guest_count);
  io::put_f64(out, ev.density);
  io::put_u64(out, ev.add_guests);
  io::put_u64(out, ev.add_links);
  io::put_u64(out, ev.seed);
  io::put_u32(out, ev.element);
  io::put_u8(out, static_cast<std::uint8_t>(ev.sla_tier));
  io::put_u32(out, ev.replica_n);
  io::put_u32(out, ev.replica_k);
  io::put_u32_vec(out, ev.group_hosts);
  io::put_u32_vec(out, ev.group_links);
}

workload::TenantEvent take_event(io::BinReader& r, std::size_t index) {
  workload::TenantEvent ev;
  ev.time = need(r.take_f64(), index, "event.time");
  const std::uint8_t kind = need(r.take_u8(), index, "event.kind");
  if (kind > static_cast<std::uint8_t>(workload::EventKind::kPowerRecover)) {
    fail_record(index, "event kind " + std::to_string(kind) + " out of range");
  }
  ev.kind = static_cast<workload::EventKind>(kind);
  ev.tenant = need(r.take_u32(), index, "event.tenant");
  ev.guest_count = need(r.take_u64(), index, "event.guest_count");
  ev.density = need(r.take_f64(), index, "event.density");
  ev.add_guests = need(r.take_u64(), index, "event.add_guests");
  ev.add_links = need(r.take_u64(), index, "event.add_links");
  ev.seed = need(r.take_u64(), index, "event.seed");
  ev.element = need(r.take_u32(), index, "event.element");
  const std::uint8_t tier = need(r.take_u8(), index, "event.sla_tier");
  if (tier > static_cast<std::uint8_t>(model::SlaTier::kBestEffort)) {
    fail_record(index, "event sla tier out of range");
  }
  ev.sla_tier = static_cast<model::SlaTier>(tier);
  ev.replica_n = need(r.take_u32(), index, "event.replica_n");
  ev.replica_k = need(r.take_u32(), index, "event.replica_k");
  ev.group_hosts = need(r.take_u32_vec(), index, "event.group_hosts");
  ev.group_links = need(r.take_u32_vec(), index, "event.group_links");
  return ev;
}

JournalRecord decode_record(std::string_view payload, std::size_t index) {
  io::BinReader r(payload);
  JournalRecord rec;
  const std::uint8_t type = need(r.take_u8(), index, "type");
  switch (type) {
    case static_cast<std::uint8_t>(RecordType::kEventBegin):
      rec.type = RecordType::kEventBegin;
      rec.event_index = need(r.take_u64(), index, "event_index");
      rec.event = take_event(r, index);
      break;
    case static_cast<std::uint8_t>(RecordType::kTxn): {
      rec.type = RecordType::kTxn;
      const std::uint8_t kind = need(r.take_u8(), index, "txn.kind");
      if (kind < static_cast<std::uint8_t>(
                     orchestrator::TxnKind::kAdmitCommit) ||
          kind > static_cast<std::uint8_t>(
                     orchestrator::TxnKind::kQueuePreempt)) {
        fail_record(index,
                    "txn kind " + std::to_string(kind) + " out of range");
      }
      rec.txn.kind = static_cast<orchestrator::TxnKind>(kind);
      rec.txn.time = need(r.take_f64(), index, "txn.time");
      rec.txn.key = need(r.take_u32(), index, "txn.key");
      rec.txn.detail = need(r.take_u64(), index, "txn.detail");
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kEventEnd):
      rec.type = RecordType::kEventEnd;
      rec.event_index = need(r.take_u64(), index, "event_index");
      rec.time = need(r.take_f64(), index, "time");
      rec.fingerprint = need(r.take_u64(), index, "fingerprint");
      break;
    case static_cast<std::uint8_t>(RecordType::kCheckpoint):
      rec.type = RecordType::kCheckpoint;
      rec.event_index = need(r.take_u64(), index, "event_index");
      rec.fingerprint = need(r.take_u64(), index, "fingerprint");
      rec.checkpoint =
          std::string(need(r.take_bytes(), index, "checkpoint state"));
      break;
    default:
      fail_record(index,
                  "unknown record type " + std::to_string(type));
  }
  if (!r.exhausted()) {
    fail_record(index, "trailing bytes after a complete record");
  }
  return rec;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void JournalWriter::append(std::string_view payload) {
  const std::uint64_t seq = seq_++;
  if (armed_ && seq == crash_seq_) {
    armed_ = false;
    // A power cut persists some prefix of the frame — possibly none of it,
    // possibly all of it (the crash then hit after the write but before
    // the next one).  torn_seed picks which, deterministically.
    const std::string frame = io::encode_frame(payload);
    const std::size_t persisted = torn_seed_ % (frame.size() + 1);
    out_->append(frame.data(), persisted);
    throw CrashError(seq, persisted, frame.size());
  }
  io::append_frame(*out_, payload);
}

void JournalWriter::event_begin(std::uint64_t event_index,
                                const workload::TenantEvent& ev) {
  std::string payload;
  io::put_u8(payload, static_cast<std::uint8_t>(RecordType::kEventBegin));
  io::put_u64(payload, event_index);
  put_event(payload, ev);
  append(payload);
}

void JournalWriter::txn(const orchestrator::TxnRecord& txn) {
  std::string payload;
  io::put_u8(payload, static_cast<std::uint8_t>(RecordType::kTxn));
  io::put_u8(payload, static_cast<std::uint8_t>(txn.kind));
  io::put_f64(payload, txn.time);
  io::put_u32(payload, txn.key);
  io::put_u64(payload, txn.detail);
  append(payload);
}

void JournalWriter::event_end(std::uint64_t event_index, double time,
                              std::uint64_t fingerprint) {
  std::string payload;
  io::put_u8(payload, static_cast<std::uint8_t>(RecordType::kEventEnd));
  io::put_u64(payload, event_index);
  io::put_f64(payload, time);
  io::put_u64(payload, fingerprint);
  append(payload);
}

void JournalWriter::checkpoint(std::uint64_t events_handled,
                               std::uint64_t fingerprint,
                               std::string_view encoded_state) {
  std::string payload;
  payload.reserve(encoded_state.size() + 64);
  io::put_u8(payload, static_cast<std::uint8_t>(RecordType::kCheckpoint));
  io::put_u64(payload, events_handled);
  io::put_u64(payload, fingerprint);
  io::put_bytes(payload, encoded_state);
  append(payload);
}

JournalParse parse_journal(std::string_view data) {
  io::FrameScan scan;
  if (const auto err = io::scan_frames(data, scan)) {
    throw RecoveryError("journal corrupted at byte offset " +
                        std::to_string(err->offset) + ": " + err->message);
  }
  JournalParse parse;
  parse.valid_bytes = scan.valid_bytes;
  parse.torn_tail = scan.torn_tail;
  parse.records.reserve(scan.frames.size());
  for (std::size_t i = 0; i < scan.frames.size(); ++i) {
    parse.records.push_back(decode_record(scan.frames[i], i));
  }
  return parse;
}

std::string journal_to_jsonl(std::string_view data) {
  const JournalParse parse = parse_journal(data);
  std::string out;
  char buf[256];
  for (std::size_t i = 0; i < parse.records.size(); ++i) {
    const JournalRecord& rec = parse.records[i];
    out += "{\"seq\":" + std::to_string(i) + ",\"type\":\"";
    out += to_string(rec.type);
    out += '"';
    switch (rec.type) {
      case RecordType::kEventBegin:
        std::snprintf(buf, sizeof(buf),
                      ",\"event\":%" PRIu64
                      ",\"time\":%.17g,\"kind\":\"%s\",\"tenant\":%u",
                      rec.event_index, rec.event.time,
                      workload::to_string(rec.event.kind), rec.event.tenant);
        out += buf;
        if (rec.event.kind == workload::EventKind::kArrive) {
          std::snprintf(buf, sizeof(buf),
                        ",\"guests\":%zu,\"tier\":\"%s\"",
                        rec.event.guest_count,
                        model::to_string(rec.event.sla_tier));
          out += buf;
        }
        break;
      case RecordType::kTxn:
        std::snprintf(buf, sizeof(buf),
                      ",\"txn\":%d,\"time\":%.17g,\"key\":%u,"
                      "\"detail\":\"%016" PRIx64 "\"",
                      static_cast<int>(rec.txn.kind), rec.txn.time,
                      rec.txn.key, rec.txn.detail);
        out += buf;
        break;
      case RecordType::kEventEnd:
        std::snprintf(buf, sizeof(buf),
                      ",\"event\":%" PRIu64
                      ",\"time\":%.17g,\"fingerprint\":\"%016" PRIx64 "\"",
                      rec.event_index, rec.time, rec.fingerprint);
        out += buf;
        break;
      case RecordType::kCheckpoint:
        std::snprintf(buf, sizeof(buf),
                      ",\"events_handled\":%" PRIu64
                      ",\"fingerprint\":\"%016" PRIx64
                      "\",\"state_bytes\":%zu",
                      rec.event_index, rec.fingerprint,
                      rec.checkpoint.size());
        out += buf;
        break;
    }
    out += "}\n";
  }
  if (parse.torn_tail) {
    out += "{\"type\":\"torn-tail\",\"valid_bytes\":" +
           std::to_string(parse.valid_bytes) + ",\"dropped_bytes\":" +
           std::to_string(data.size() - parse.valid_bytes) + "}\n";
  }
  return out;
}

WalManager::WalManager(orchestrator::Orchestrator& orch, std::string& journal,
                       WalOptions opts, std::uint64_t start_seq)
    : orch_(&orch), writer_(journal, start_seq), opts_(opts) {
  orch_->set_txn_observer(this);
}

WalManager::~WalManager() { orch_->set_txn_observer(nullptr); }

void WalManager::on_event_begin(std::uint64_t event_index,
                                const workload::TenantEvent& ev) {
  writer_.event_begin(event_index, ev);
}

void WalManager::on_txn(const orchestrator::TxnRecord& txn) {
  writer_.txn(txn);
}

void WalManager::on_event_end(std::uint64_t event_index, double time,
                              std::uint64_t fingerprint) {
  writer_.event_end(event_index, time, fingerprint);
  const std::uint64_t every = opts_.checkpoint_every_events;
  if (every != 0 && (event_index + 1) % every == 0) {
    writer_.checkpoint(event_index + 1, fingerprint,
                       encode_state(orch_->export_state()));
  }
}

}  // namespace hmn::recovery
