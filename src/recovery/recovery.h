// Crash recovery: rebuild a crashed orchestrator from its journal.
//
// recover() takes a freshly constructed orchestrator (same cluster,
// profile, heuristic pool, and options as the crashed one — the control
// plane's static configuration is the operator's job, the journal carries
// only dynamic state) and the journal bytes the crash left behind, and
// restores the exact pre-crash trajectory:
//
//   1. scan + parse the journal (a torn tail is truncated; mid-stream
//      corruption is a loud RecoveryError — bit rot must never be
//      "recovered" silently);
//   2. restore the newest intact CHECKPOINT record, if any;
//   3. re-handle the event of every *complete* [EVENT_BEGIN .. EVENT_END]
//      group past the checkpoint, verifying after each that the replayed
//      running fingerprint equals the journaled one — replay divergence
//      (wrong binary, wrong options, tampered journal) aborts recovery
//      rather than continuing from a silently different state;
//   4. discard the trailing group without an END marker: its in-memory
//      mutations died with the process, so the journal tail and the
//      recovered state agree exactly.
//
// Work is O(checkpoint size + journal tail), independent of run length —
// the E18 gate measures exactly that bound.
#pragma once

#include <cstdint>
#include <string_view>

#include "orchestrator/orchestrator.h"
#include "recovery/journal.h"

namespace hmn::recovery {

struct RecoveryOptions {
  /// Verify the replayed fingerprint against every journaled EVENT_END
  /// (and the checkpoint's).  Leave on; exists so a forensic tool can
  /// deliberately replay a diverging journal to inspect the divergence.
  bool verify_fingerprints = true;
};

struct RecoveredRun {
  /// Index of the next event to feed — everything before it is replayed.
  std::uint64_t next_event_index = 0;
  /// Sequence number for the next journal record (JournalWriter/WalManager
  /// start_seq when resuming this journal).
  std::uint64_t next_seq = 0;
  /// Truncate the journal buffer to this length before resuming appends.
  std::size_t valid_bytes = 0;
  bool torn_tail = false;           // a torn final frame was dropped
  bool used_checkpoint = false;     // a checkpoint seeded the replay
  std::uint64_t checkpoint_event_index = 0;  // events covered by it
  std::uint64_t replayed_events = 0;         // groups re-handled from the tail
};

/// Recovers `orch` (freshly constructed, nothing handled yet) from
/// `journal`.  Throws RecoveryError on corruption, malformed records, or
/// replay divergence; on return the orchestrator is byte-equivalent to the
/// uninterrupted run through `next_event_index` events.
[[nodiscard]] RecoveredRun recover(orchestrator::Orchestrator& orch,
                                   std::string_view journal,
                                   const RecoveryOptions& opts = {});

}  // namespace hmn::recovery
