// Validation tests for k-of-n replica groups and SLA tiers on the
// VirtualEnvironment: member canonicalization, quorum bounds, and the
// disjointness rule (a guest replicates in at most one group).
#include <gtest/gtest.h>

#include <stdexcept>

#include "model/virtual_environment.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;

TEST(ReplicaGroupTest, TierDefaultsToStandardAndRoundTrips) {
  model::VirtualEnvironment venv;
  EXPECT_EQ(venv.sla_tier(), model::SlaTier::kStandard);
  venv.set_sla_tier(model::SlaTier::kGold);
  EXPECT_EQ(venv.sla_tier(), model::SlaTier::kGold);
  EXPECT_STREQ(model::to_string(model::SlaTier::kGold), "gold");
  EXPECT_STREQ(model::to_string(model::SlaTier::kBestEffort), "best-effort");
}

TEST(ReplicaGroupTest, MembersAreSortedAndLookupWorks) {
  model::VirtualEnvironment venv = chain_venv(5);
  venv.add_replica_group({g(3), g(0), g(2)}, 2);
  ASSERT_EQ(venv.replica_group_count(), 1u);
  const model::ReplicaGroup& grp = venv.replica_group(0);
  ASSERT_EQ(grp.size(), 3u);
  EXPECT_EQ(grp.members[0], g(0));  // canonicalized ascending
  EXPECT_EQ(grp.members[1], g(2));
  EXPECT_EQ(grp.members[2], g(3));
  EXPECT_EQ(grp.required, 2u);

  EXPECT_EQ(venv.group_of(g(0)), 0u);
  EXPECT_EQ(venv.group_of(g(3)), 0u);
  EXPECT_EQ(venv.group_of(g(1)), model::VirtualEnvironment::npos);
}

TEST(ReplicaGroupTest, QuorumBoundsAreEnforced) {
  model::VirtualEnvironment venv = chain_venv(4);
  // required must sit in [1, size]; 0 and size+1 are both nonsense.
  EXPECT_THROW(venv.add_replica_group({g(0), g(1)}, 0),
               std::invalid_argument);
  EXPECT_THROW(venv.add_replica_group({g(0), g(1)}, 3),
               std::invalid_argument);
  EXPECT_THROW(venv.add_replica_group({}, 1), std::invalid_argument);
  venv.add_replica_group({g(0), g(1)}, 2);  // k == n is legal (all-alive)
  EXPECT_EQ(venv.replica_group(0).required, 2u);
}

TEST(ReplicaGroupTest, OutOfRangeAndDuplicateMembersAreRejected) {
  model::VirtualEnvironment venv = chain_venv(3);
  EXPECT_THROW(venv.add_replica_group({g(0), g(7)}, 1),
               std::invalid_argument);
  EXPECT_THROW(venv.add_replica_group({g(1), g(1)}, 1),
               std::invalid_argument);
}

TEST(ReplicaGroupTest, OverlappingGroupsAreRejected) {
  model::VirtualEnvironment venv = chain_venv(6);
  venv.add_replica_group({g(0), g(1), g(2)}, 2);
  // g(2) already replicates in group 0 — a guest has one group at most.
  EXPECT_THROW(venv.add_replica_group({g(2), g(3)}, 1),
               std::invalid_argument);
  // Disjoint second group is fine.
  venv.add_replica_group({g(3), g(4)}, 1);
  EXPECT_EQ(venv.replica_group_count(), 2u);
  EXPECT_EQ(venv.group_of(g(4)), 1u);
}

}  // namespace
