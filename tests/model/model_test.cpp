// Tests for the domain model: resources, physical cluster, virtual
// environment.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using model::GuestRequirements;
using model::HostCapacity;
using model::LinkProps;
using model::PhysicalCluster;
using model::VirtualEnvironment;
using model::VirtualLinkDemand;

NodeId n(unsigned v) { return NodeId{v}; }

TEST(Resources, MinusClampsAtZero) {
  const HostCapacity cap{100.0, 50.0, 10.0};
  const HostCapacity big{200.0, 10.0, 5.0};
  const HostCapacity r = cap.minus(big);
  EXPECT_DOUBLE_EQ(r.proc_mips, 0.0);
  EXPECT_DOUBLE_EQ(r.mem_mb, 40.0);
  EXPECT_DOUBLE_EQ(r.stor_gb, 5.0);
}

TEST(Resources, UnitConstants) {
  EXPECT_DOUBLE_EQ(model::kGB_in_MB, 1024.0);
  EXPECT_DOUBLE_EQ(model::kTB_in_GB, 1024.0);
  EXPECT_DOUBLE_EQ(model::kGbps_in_Mbps, 1000.0);
}

PhysicalCluster small_cluster() {
  auto topo = topology::star(3);  // 3 hosts + 1 switch
  std::vector<HostCapacity> caps{{1000, 1024, 512},
                                 {2000, 2048, 1024},
                                 {3000, 3072, 2048}};
  return PhysicalCluster::build(std::move(topo), std::move(caps),
                                LinkProps{1000.0, 5.0});
}

TEST(PhysicalCluster, BuildBasics) {
  const auto c = small_cluster();
  EXPECT_EQ(c.node_count(), 4u);
  EXPECT_EQ(c.host_count(), 3u);
  EXPECT_EQ(c.link_count(), 3u);
  EXPECT_TRUE(c.is_host(n(0)));
  EXPECT_FALSE(c.is_host(n(3)));
  EXPECT_DOUBLE_EQ(c.capacity(n(1)).proc_mips, 2000.0);
  EXPECT_DOUBLE_EQ(c.capacity(n(3)).proc_mips, 0.0);  // switch
  EXPECT_DOUBLE_EQ(c.link(EdgeId{0}).bandwidth_mbps, 1000.0);
  EXPECT_DOUBLE_EQ(c.link(EdgeId{0}).latency_ms, 5.0);
}

TEST(PhysicalCluster, HostsEnumeration) {
  const auto c = small_cluster();
  ASSERT_EQ(c.hosts().size(), 3u);
  EXPECT_EQ(c.hosts()[0], n(0));
  EXPECT_EQ(c.hosts()[2], n(2));
}

TEST(PhysicalCluster, TotalProc) {
  EXPECT_DOUBLE_EQ(small_cluster().total_proc_mips(), 6000.0);
}

TEST(PhysicalCluster, CapacityCountMismatchThrows) {
  auto topo = topology::star(3);
  std::vector<HostCapacity> caps(2);
  EXPECT_THROW(
      PhysicalCluster::build(std::move(topo), caps, LinkProps{1, 1}),
      std::invalid_argument);
}

TEST(PhysicalCluster, LinkPropsCountMismatchThrows) {
  auto topo = topology::star(3);
  std::vector<HostCapacity> caps(3);
  std::vector<LinkProps> links(1);
  EXPECT_THROW(PhysicalCluster::build(std::move(topo), caps, links),
               std::invalid_argument);
}

TEST(PhysicalCluster, PerLinkProps) {
  auto topo = topology::line(2);
  std::vector<HostCapacity> caps(2, {1000, 1000, 1000});
  std::vector<LinkProps> links{{123.0, 4.5}};
  const auto c = PhysicalCluster::build(std::move(topo), caps, links);
  EXPECT_DOUBLE_EQ(c.link(EdgeId{0}).bandwidth_mbps, 123.0);
  EXPECT_DOUBLE_EQ(c.link(EdgeId{0}).latency_ms, 4.5);
}

TEST(PhysicalCluster, VmmOverheadDeduction) {
  auto c = small_cluster();
  c.deduct_vmm_overhead({100.0, 256.0, 8.0});
  EXPECT_DOUBLE_EQ(c.capacity(n(0)).proc_mips, 900.0);
  EXPECT_DOUBLE_EQ(c.capacity(n(0)).mem_mb, 768.0);
  EXPECT_DOUBLE_EQ(c.capacity(n(0)).stor_gb, 504.0);
  // Switches are untouched (they had zero anyway).
  EXPECT_DOUBLE_EQ(c.capacity(n(3)).proc_mips, 0.0);
}

TEST(PhysicalCluster, VmmOverheadCannotGoNegative) {
  auto c = small_cluster();
  c.deduct_vmm_overhead({99999.0, 99999.0, 99999.0});
  for (const NodeId h : c.hosts()) {
    EXPECT_DOUBLE_EQ(c.capacity(h).proc_mips, 0.0);
    EXPECT_DOUBLE_EQ(c.capacity(h).mem_mb, 0.0);
  }
}

TEST(PhysicalCluster, FailNodeZeroesCapacityAndKillsLinks) {
  auto c = small_cluster();
  c.fail_node(n(1));
  EXPECT_DOUBLE_EQ(c.capacity(n(1)).proc_mips, 0.0);
  EXPECT_DOUBLE_EQ(c.capacity(n(1)).mem_mb, 0.0);
  // Host 1's uplink (edge 1 in the star) is dead; others untouched.
  const EdgeId dead = c.graph().find_edge(n(1), n(3));
  EXPECT_DOUBLE_EQ(c.link(dead).bandwidth_mbps, 0.0);
  EXPECT_TRUE(std::isinf(c.link(dead).latency_ms));
  const EdgeId alive = c.graph().find_edge(n(0), n(3));
  EXPECT_DOUBLE_EQ(c.link(alive).bandwidth_mbps, 1000.0);
  // Topology is structurally unchanged.
  EXPECT_EQ(c.link_count(), 3u);
  EXPECT_EQ(c.host_count(), 3u);
}

TEST(VirtualEnvironment, AddGuestsAndLinks) {
  VirtualEnvironment v;
  const GuestId a = v.add_guest({75, 192, 150});
  const GuestId b = v.add_guest({50, 128, 100});
  EXPECT_EQ(v.guest_count(), 2u);
  EXPECT_DOUBLE_EQ(v.guest(a).proc_mips, 75.0);
  EXPECT_DOUBLE_EQ(v.guest(b).mem_mb, 128.0);

  const VirtLinkId l = v.add_link(a, b, {0.75, 45.0});
  EXPECT_EQ(v.link_count(), 1u);
  EXPECT_DOUBLE_EQ(v.link(l).bandwidth_mbps, 0.75);
  const auto ep = v.endpoints(l);
  EXPECT_EQ(ep.src, a);
  EXPECT_EQ(ep.dst, b);
  EXPECT_EQ(ep.other(a), b);
  EXPECT_EQ(ep.other(b), a);
}

TEST(VirtualEnvironment, LinksOf) {
  VirtualEnvironment v;
  const GuestId a = v.add_guest({});
  const GuestId b = v.add_guest({});
  const GuestId c = v.add_guest({});
  const VirtLinkId ab = v.add_link(a, b, {});
  const VirtLinkId ac = v.add_link(a, c, {});
  const auto links_a = v.links_of(a);
  EXPECT_EQ(links_a.size(), 2u);
  EXPECT_EQ(links_a[0], ab);
  EXPECT_EQ(links_a[1], ac);
  EXPECT_EQ(v.links_of(b).size(), 1u);
}

TEST(VirtualEnvironment, Totals) {
  VirtualEnvironment v;
  v.add_guest({10, 100, 1000});
  v.add_guest({20, 200, 2000});
  EXPECT_DOUBLE_EQ(v.total_vproc_mips(), 30.0);
  EXPECT_DOUBLE_EQ(v.total_vmem_mb(), 300.0);
  EXPECT_DOUBLE_EQ(v.total_vstor_gb(), 3000.0);
}

TEST(VirtualEnvironment, EmptyTotalsZero) {
  const VirtualEnvironment v;
  EXPECT_DOUBLE_EQ(v.total_vproc_mips(), 0.0);
  EXPECT_EQ(v.guest_count(), 0u);
  EXPECT_EQ(v.link_count(), 0u);
}

TEST(VirtualEnvironment, GraphMirrorsStructure) {
  VirtualEnvironment v;
  const GuestId a = v.add_guest({});
  const GuestId b = v.add_guest({});
  v.add_link(a, b, {});
  EXPECT_EQ(v.graph().node_count(), 2u);
  EXPECT_EQ(v.graph().edge_count(), 1u);
  EXPECT_TRUE(v.graph().connected());
}

}  // namespace
