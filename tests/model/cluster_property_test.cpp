// Property sweep: PhysicalCluster invariants across every topology builder.
#include <gtest/gtest.h>

#include <functional>

#include "model/physical_cluster.h"
#include "topology/topologies.h"
#include "util/rng.h"
#include "workload/host_generator.h"
#include "workload/presets.h"

namespace {

using namespace hmn;

struct Builder {
  const char* name;
  std::function<topology::Topology(util::Rng&)> build;
};

std::vector<Builder> builders() {
  return {
      {"torus_2d", [](util::Rng&) { return topology::torus_2d(4, 5); }},
      {"torus_3d", [](util::Rng&) { return topology::torus_3d(3, 3, 2); }},
      {"mesh_2d", [](util::Rng&) { return topology::mesh_2d(4, 5); }},
      {"switched", [](util::Rng&) { return topology::switched(20, 8); }},
      {"switch_tree",
       [](util::Rng&) { return topology::switch_tree(12, 3, 2); }},
      {"ring", [](util::Rng&) { return topology::ring(12); }},
      {"line", [](util::Rng&) { return topology::line(12); }},
      {"star", [](util::Rng&) { return topology::star(12); }},
      {"full_mesh", [](util::Rng&) { return topology::full_mesh(8); }},
      {"hypercube", [](util::Rng&) { return topology::hypercube(4); }},
      {"fat_tree", [](util::Rng&) { return topology::fat_tree(4); }},
      {"dragonfly", [](util::Rng&) { return topology::dragonfly(3, 4); }},
      {"random",
       [](util::Rng& rng) { return topology::random_cluster(15, 0.3, rng); }},
  };
}

TEST(ClusterProperty, EveryBuilderYieldsConsistentCluster) {
  util::Rng rng(404);
  for (const Builder& builder : builders()) {
    auto topo = builder.build(rng);
    const std::size_t hosts = topo.host_count();
    const std::size_t nodes = topo.graph.node_count();
    const std::size_t edges = topo.graph.edge_count();
    ASSERT_GT(hosts, 0u) << builder.name;
    EXPECT_TRUE(topo.graph.connected()) << builder.name;
    EXPECT_EQ(topo.role.size(), nodes) << builder.name;

    auto caps = workload::generate_hosts(
        hosts, workload::paper_host_profile(), rng);
    const auto cluster = model::PhysicalCluster::build(
        std::move(topo), caps, model::LinkProps{1000.0, 5.0});

    // Host enumeration is consistent with roles and capacities.
    EXPECT_EQ(cluster.host_count(), hosts) << builder.name;
    EXPECT_EQ(cluster.node_count(), nodes) << builder.name;
    EXPECT_EQ(cluster.link_count(), edges) << builder.name;
    std::size_t idx = 0;
    double total = 0.0;
    for (const NodeId h : cluster.hosts()) {
      EXPECT_TRUE(cluster.is_host(h)) << builder.name;
      EXPECT_DOUBLE_EQ(cluster.capacity(h).proc_mips, caps[idx].proc_mips)
          << builder.name << " host " << idx;
      total += cluster.capacity(h).proc_mips;
      ++idx;
    }
    EXPECT_DOUBLE_EQ(cluster.total_proc_mips(), total) << builder.name;
    // Switches carry no capacity.
    for (std::size_t v = 0; v < cluster.node_count(); ++v) {
      const auto node = NodeId{static_cast<NodeId::underlying_type>(v)};
      if (!cluster.is_host(node)) {
        EXPECT_DOUBLE_EQ(cluster.capacity(node).mem_mb, 0.0) << builder.name;
      }
    }
    // Every link got the uniform properties.
    for (std::size_t e = 0; e < cluster.link_count(); ++e) {
      const auto edge = EdgeId{static_cast<EdgeId::underlying_type>(e)};
      EXPECT_DOUBLE_EQ(cluster.link(edge).bandwidth_mbps, 1000.0)
          << builder.name;
    }
  }
}

TEST(ClusterProperty, VmmOverheadAppliesToHostsOnly) {
  util::Rng rng(405);
  for (const Builder& builder : builders()) {
    auto topo = builder.build(rng);
    const std::size_t hosts = topo.host_count();
    std::vector<model::HostCapacity> caps(hosts, {2000.0, 2048.0, 1024.0});
    auto cluster = model::PhysicalCluster::build(
        std::move(topo), caps, model::LinkProps{1000.0, 5.0});
    cluster.deduct_vmm_overhead({100.0, 256.0, 16.0});
    for (const NodeId h : cluster.hosts()) {
      EXPECT_DOUBLE_EQ(cluster.capacity(h).mem_mb, 1792.0) << builder.name;
    }
  }
}

}  // namespace
