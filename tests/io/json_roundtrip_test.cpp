// Writer-parser consistency: everything the writers emit must parse with
// the library's own parser and carry the expected fields — the guarantee
// external tooling (and grid_tool's records.json consumers) rely on.
#include <gtest/gtest.h>

#include <chrono>

#include "expfw/report.h"
#include "core/hmn_mapper.h"
#include "emulator/session.h"
#include "expfw/runner.h"
#include "io/json.h"
#include "io/json_parser.h"
#include "testing/fixtures.h"
#include "util/timer.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using io::JsonValue;
using io::parse_json_or_throw;

TEST(JsonRoundTrip, RunRecordsParseWithExpectedFields) {
  const core::HmnMapper mapper;
  expfw::GridSpec spec;
  spec.scenarios = {{2.5, 0.02, workload::WorkloadKind::kHighLevel}};
  spec.clusters = {workload::ClusterKind::kSwitched};
  spec.repetitions = 2;
  const auto records = expfw::run_grid(spec, {&mapper});

  const JsonValue root = parse_json_or_throw(expfw::to_json(records));
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.as_array().size(), 2u);
  for (const JsonValue& rec : root.as_array()) {
    EXPECT_EQ(rec.find("mapper")->as_string(), "HMN");
    EXPECT_TRUE(rec.find("ok")->as_bool());
    EXPECT_GT(rec.number_or("objective", -1.0), 0.0);
    EXPECT_DOUBLE_EQ(rec.number_or("guests", 0.0), 100.0);
    EXPECT_GE(rec.number_or("map_seconds", -1.0), 0.0);
    EXPECT_EQ(rec.find("cluster")->as_string(), "Switched");
  }
}

TEST(JsonRoundTrip, MapOutcomeParses) {
  const auto cluster = test::line_cluster(3);
  auto venv = test::chain_venv(5);
  const auto out = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  const JsonValue root = parse_json_or_throw(io::to_json(out));
  EXPECT_TRUE(root.find("ok")->as_bool());
  const JsonValue* mapping = root.find("mapping");
  ASSERT_NE(mapping, nullptr);
  EXPECT_EQ(mapping->find("guest_host")->as_array().size(), 5u);
  EXPECT_EQ(mapping->find("link_paths")->as_array().size(), 4u);
  const JsonValue* stats = root.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->number_or("total_s", -1.0), 0.0);
}

TEST(JsonRoundTrip, SessionTimelineParses) {
  emulator::EmulationSession session(test::line_cluster(3), {});
  const GuestId a = session.add_guest({75, 192, 150});
  const GuestId b = session.add_guest({75, 192, 150});
  session.add_link(a, b, {0.75, 45.0});
  ASSERT_TRUE(session.map());
  ASSERT_TRUE(session.deploy());
  ASSERT_TRUE(session.run());

  const JsonValue root = parse_json_or_throw(emulator::to_json(session.timeline()));
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.as_array().size(), 3u);
  EXPECT_EQ(root.as_array()[0].find("phase")->as_string(), "map");
  EXPECT_EQ(root.as_array()[1].find("phase")->as_string(), "deploy");
  EXPECT_GT(root.as_array()[1].number_or("simulated_seconds", -1.0), 0.0);
  EXPECT_EQ(root.as_array()[2].find("phase")->as_string(), "run");
}

TEST(JsonRoundTrip, ClusterVenvMappingTripleConsistent) {
  // The full artifact set a tool exchange consists of: parse all three and
  // cross-check the shape relationships.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 5);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 6);
  const auto out = core::HmnMapper().map(cluster, venv, 7);
  ASSERT_TRUE(out.ok());

  const JsonValue jc = parse_json_or_throw(io::to_json(cluster));
  const JsonValue jv = parse_json_or_throw(io::to_json(venv));
  const JsonValue jm = parse_json_or_throw(io::to_json(*out.mapping));
  EXPECT_EQ(jc.find("nodes")->as_array().size(), cluster.node_count());
  EXPECT_EQ(jv.find("guests")->as_array().size(), venv.guest_count());
  EXPECT_EQ(jm.find("guest_host")->as_array().size(), venv.guest_count());
  EXPECT_EQ(jm.find("link_paths")->as_array().size(), venv.link_count());
  // Every guest_host entry indexes a host-role node.
  for (const JsonValue& h : jm.find("guest_host")->as_array()) {
    const auto idx = static_cast<std::size_t>(h.as_number());
    ASSERT_LT(idx, jc.find("nodes")->as_array().size());
    EXPECT_EQ(jc.find("nodes")->as_array()[idx].find("role")->as_string(),
              "host");
  }
}

TEST(TimerSanity, MonotoneAndRestartable) {
  util::Timer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.restart();
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
  EXPECT_GE(t.elapsed_us(), 0.0);
}

}  // namespace
