// Tests for DOT and JSON serialization.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "expfw/report.h"
#include "io/dot.h"
#include "io/json.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;

struct IoFixture : testing::Test {
  model::PhysicalCluster cluster =
      model::PhysicalCluster::build(topology::star(2),
                                    {{1000, 1024, 512}, {2000, 2048, 1024}},
                                    model::LinkProps{100.0, 5.0});
  model::VirtualEnvironment venv;
  core::Mapping mapping;

  void SetUp() override {
    const GuestId a = venv.add_guest({75, 192, 150});
    const GuestId b = venv.add_guest({50, 128, 100});
    venv.add_link(a, b, {0.75, 45.0});
    mapping.guest_host = {n(0), n(1)};
    mapping.link_paths = {{EdgeId{0}, EdgeId{1}}};
  }
};

TEST_F(IoFixture, ClusterDotHasNodesAndEdges) {
  const std::string dot = io::to_dot(cluster);
  EXPECT_NE(dot.find("graph cluster {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("n2 [shape=diamond"), std::string::npos);  // switch
  EXPECT_NE(dot.find("n0 -- n2"), std::string::npos);
  EXPECT_NE(dot.find("100Mbps/5ms"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(IoFixture, VenvDotHasGuestsAndLinks) {
  const std::string dot = io::to_dot(venv);
  EXPECT_NE(dot.find("g0"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("0.75"), std::string::npos);
}

TEST_F(IoFixture, MappingDotGroupsGuestsByHost) {
  const std::string dot = io::to_dot(cluster, venv, mapping);
  EXPECT_NE(dot.find("subgraph cluster_h0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_h1"), std::string::npos);
  EXPECT_NE(dot.find("1 vlinks"), std::string::npos);
}

TEST_F(IoFixture, ClusterJsonWellFormedFields) {
  const std::string j = io::to_json(cluster);
  EXPECT_NE(j.find("\"role\":\"host\""), std::string::npos);
  EXPECT_NE(j.find("\"role\":\"switch\""), std::string::npos);
  EXPECT_NE(j.find("\"proc_mips\":1000"), std::string::npos);
  EXPECT_NE(j.find("\"bw_mbps\":100"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST_F(IoFixture, VenvJsonHasGuestsAndLinks) {
  const std::string j = io::to_json(venv);
  EXPECT_NE(j.find("\"vproc_mips\":75"), std::string::npos);
  EXPECT_NE(j.find("\"vbw_mbps\":0.75"), std::string::npos);
  EXPECT_NE(j.find("\"src\":0"), std::string::npos);
}

TEST_F(IoFixture, MappingJsonRoundStructure) {
  const std::string j = io::to_json(mapping);
  EXPECT_EQ(j, "{\"guest_host\":[0,1],\"link_paths\":[[0,1]]}");
}

TEST_F(IoFixture, OutcomeJsonSuccess) {
  core::MapOutcome out;
  out.mapping = mapping;
  out.stats.links_routed = 1;
  const std::string j = io::to_json(out);
  EXPECT_NE(j.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(j.find("\"links_routed\":1"), std::string::npos);
  EXPECT_NE(j.find("\"mapping\":{"), std::string::npos);
}

TEST_F(IoFixture, OutcomeJsonFailure) {
  const auto out = core::MapOutcome::failure(
      core::MapErrorCode::kHostingFailed, "detail \"quoted\"");
  const std::string j = io::to_json(out);
  EXPECT_NE(j.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(j.find("hosting failed"), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(j.find("\"mapping\""), std::string::npos);
}

TEST_F(IoFixture, RecordsJsonIsArray) {
  std::vector<expfw::RunRecord> records(2);
  records[0].mapper = "HMN";
  records[0].ok = true;
  records[0].objective = 42.5;
  records[1].mapper = "R";
  records[1].ok = false;
  const std::string j = expfw::to_json(records);
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), ']');
  EXPECT_NE(j.find("\"mapper\":\"HMN\""), std::string::npos);
  EXPECT_NE(j.find("\"objective\":42.5"), std::string::npos);
  EXPECT_NE(j.find("\"ok\":false"), std::string::npos);
}

TEST_F(IoFixture, EmptyRecordsIsEmptyArray) {
  EXPECT_EQ(expfw::to_json(std::vector<expfw::RunRecord>{}), "[]");
}

}  // namespace
