// Malformed-input corpus for the trace parser: every line here must come
// back as a descriptive TraceParseError carrying the offending line (and,
// for JSON-level damage, the byte offset) — never UB, never a silently
// wrapped number.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "io/trace.h"
#include "testing/fixtures.h"
#include "workload/churn.h"

namespace {

using namespace hmn;

std::string header() {
  return io::write_trace({workload::high_level_profile(), {}});
}

/// Parses `text`, requires a parse error, and returns it for inspection.
io::TraceParseError must_fail(const std::string& text) {
  auto parsed = io::read_trace(text);
  if (!std::holds_alternative<io::TraceParseError>(parsed)) {
    ADD_FAILURE() << "expected a parse error for: " << text;
    return {};
  }
  return std::get<io::TraceParseError>(std::move(parsed));
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TraceMalformed, SeedOverflowing64BitsIsRejected) {
  // 2^64 exactly: strtoull would saturate silently without the ERANGE check.
  const auto e = must_fail(
      header() +
      "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":4,"
      "\"density\":0.5,\"seed\":\"18446744073709551616\"}");
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "overflows 64 bits")) << e.message;
}

TEST(TraceMalformed, SeedWithNonDigitsIsRejected) {
  for (const char* seed : {"-1", "0x10", "12 34", ""}) {
    const auto e = must_fail(
        header() +
        "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":4,"
        "\"density\":0.5,\"seed\":\"" + std::string(seed) + "\"}");
    EXPECT_EQ(e.line, 2u) << seed;
    EXPECT_TRUE(contains(e.message, "decimal digit string")) << e.message;
  }
}

TEST(TraceMalformed, NegativeAndNonFiniteTimesAreRejected) {
  const auto neg = must_fail(header() +
                             "{\"t\":-0.5,\"ev\":\"depart\",\"tenant\":1}");
  EXPECT_EQ(neg.line, 2u);
  EXPECT_TRUE(contains(neg.message, "finite and non-negative"))
      << neg.message;
  // 1e999 overflows double to infinity; a bare NaN is not JSON at all.
  // Both must fail on line 2, whichever layer catches them.
  EXPECT_EQ(
      must_fail(header() + "{\"t\":1e999,\"ev\":\"depart\",\"tenant\":1}")
          .line,
      2u);
  EXPECT_EQ(
      must_fail(header() + "{\"t\":nan,\"ev\":\"depart\",\"tenant\":1}").line,
      2u);
}

TEST(TraceMalformed, CountOverflowIsRejectedNotWrapped) {
  // 2^32, a fraction, a negative, and an astronomically large double: all
  // must fail the integer-in-[0, 2^32) gate, none may wrap to a size_t.
  for (const char* guests : {"4294967296", "2.5", "-3", "1e300"}) {
    const auto e = must_fail(
        header() +
        "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":" +
        std::string(guests) + ",\"density\":0.5,\"seed\":\"7\"}");
    EXPECT_EQ(e.line, 2u) << guests;
    EXPECT_TRUE(contains(e.message, "[0, 2^32)")) << e.message;
  }
}

TEST(TraceMalformed, DuplicateTenantArrivalIsRejected) {
  const std::string arrive =
      "{\"t\":0,\"ev\":\"arrive\",\"tenant\":5,\"guests\":4,"
      "\"density\":0.5,\"seed\":\"7\"}";
  const auto e = must_fail(header() + arrive + "\n" + arrive);
  EXPECT_EQ(e.line, 3u);
  EXPECT_TRUE(contains(e.message, "duplicate arrive for tenant 5"))
      << e.message;
}

TEST(TraceMalformed, TruncatedLineReportsLineAndOffset) {
  // A line cut mid-token, as if the recording process died: the JSON error
  // surfaces with the line number and the byte offset inside it.
  const auto e = must_fail(header() + "{\"t\":0.5,\"ev\":\"arr");
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "line offset")) << e.message;
}

TEST(TraceMalformed, FailureEventNeedsSaneElement) {
  const auto missing =
      must_fail(header() + "{\"t\":1,\"ev\":\"host-fail\"}");
  EXPECT_EQ(missing.line, 2u);
  EXPECT_TRUE(contains(missing.message, "element")) << missing.message;
  for (const char* element : {"-1", "1.5", "4294967296", "\"zero\""}) {
    const auto e = must_fail(header() +
                             "{\"t\":1,\"ev\":\"link-fail\",\"element\":" +
                             std::string(element) + "}");
    EXPECT_EQ(e.line, 2u) << element;
  }
}

TEST(TraceMalformed, DensityOutsideUnitIntervalIsRejected) {
  for (const char* density : {"1.5", "-0.2"}) {
    const auto e = must_fail(
        header() +
        "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":4,"
        "\"density\":" + std::string(density) + ",\"seed\":\"7\"}");
    EXPECT_EQ(e.line, 2u) << density;
    EXPECT_TRUE(contains(e.message, "density")) << e.message;
  }
  // An overflowing density dies at the JSON layer; still line 2, not UB.
  EXPECT_EQ(must_fail(header() +
                      "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":4,"
                      "\"density\":1e999,\"seed\":\"7\"}")
                .line,
            2u);
}

TEST(TraceMalformed, FailureEventsRoundTripByteIdentical) {
  // The healthy-path counterpart: a merged churn + failure stream survives
  // write -> read -> write byte-for-byte (current v3 format).
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.6;
  copts.horizon = 25.0;
  copts.profile = workload::high_level_profile();
  workload::ChurnTrace trace = workload::generate_churn(copts, 404);

  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.host_mttf = 10.0;
  fopts.link_mttf = 8.0;
  workload::merge_events(
      trace,
      workload::generate_failures(fopts, hmn::test::line_cluster(4), 405));

  const std::string once = io::write_trace(trace);
  EXPECT_TRUE(contains(once, "\"version\":4"));
  const auto parsed = io::read_trace_or_throw(once);
  EXPECT_EQ(parsed.events, trace.events);
  EXPECT_EQ(io::write_trace(parsed), once);
}

// --- v3 fuzz corpus: blast groups and header tags ------------------------

std::string blast_line(const std::string& hosts, const std::string& links) {
  return "{\"t\":1,\"ev\":\"blast-fail\",\"element\":9" +
         (hosts.empty() ? std::string() : ",\"hosts\":" + hosts) +
         (links.empty() ? std::string() : ",\"links\":" + links) + "}";
}

TEST(TraceMalformed, TruncatedBlastGroupIsRejected) {
  // A blast line without both member arrays is a truncated group, and the
  // reason names the missing array.
  const auto no_hosts = must_fail(header() + blast_line("", "[0,1]"));
  EXPECT_EQ(no_hosts.line, 2u);
  EXPECT_TRUE(contains(no_hosts.message, "truncated blast group"))
      << no_hosts.message;
  EXPECT_TRUE(contains(no_hosts.message, "'hosts'")) << no_hosts.message;

  const auto no_links = must_fail(header() + blast_line("[2,3]", ""));
  EXPECT_EQ(no_links.line, 2u);
  EXPECT_TRUE(contains(no_links.message, "'links'")) << no_links.message;

  // Non-array member lists count as truncation too.
  const auto scalar = must_fail(header() + blast_line("7", "[0]"));
  EXPECT_TRUE(contains(scalar.message, "truncated blast group"))
      << scalar.message;
}

TEST(TraceMalformed, DuplicateOrUnsortedBlastMemberIsRejected) {
  const auto dup = must_fail(header() + blast_line("[2,2]", "[0]"));
  EXPECT_EQ(dup.line, 2u);
  EXPECT_TRUE(contains(dup.message, "duplicate or unsorted member 2"))
      << dup.message;
  EXPECT_TRUE(contains(dup.message, "offset 1")) << dup.message;

  const auto unsorted = must_fail(header() + blast_line("[0]", "[5,1]"));
  EXPECT_TRUE(contains(unsorted.message, "duplicate or unsorted member 1"))
      << unsorted.message;
  EXPECT_TRUE(contains(unsorted.message, "'links'")) << unsorted.message;
}

TEST(TraceMalformed, NonIntegerBlastMemberIsRejected) {
  for (const char* hosts : {"[1.5]", "[-1]", "[4294967296]", "[\"x\"]"}) {
    const auto e =
        must_fail(header() + blast_line(std::string(hosts), "[0]"));
    EXPECT_EQ(e.line, 2u) << hosts;
    EXPECT_TRUE(contains(e.message, "integer in [0, 2^32)")) << e.message;
  }
}

TEST(TraceMalformed, UnknownMttfDistTagIsRejected) {
  std::string h = header();
  const auto pos = h.find("exponential");
  ASSERT_NE(pos, std::string::npos);
  h.replace(pos, std::string("exponential").size(), "gamma");
  const auto e = must_fail(h);
  EXPECT_EQ(e.line, 1u);
  EXPECT_TRUE(contains(e.message, "unknown mttf_dist tag 'gamma'"))
      << e.message;
}

TEST(TraceMalformed, UnsupportedVersionIsRejected) {
  std::string h = header();
  const auto pos = h.find("\"version\":4");
  ASSERT_NE(pos, std::string::npos);
  h.replace(pos, std::string("\"version\":4").size(), "\"version\":5");
  const auto e = must_fail(h);
  EXPECT_EQ(e.line, 1u);
  EXPECT_TRUE(contains(e.message, "unsupported trace version 5"))
      << e.message;
  EXPECT_TRUE(contains(e.message, "1-4")) << e.message;
}

TEST(TraceMalformed, BlastStreamRoundTripsByteIdentical) {
  // Healthy v3 path: a blast-laden trace with a non-default MTTF tag and
  // critical-link fraction survives write -> read -> write bytewise.
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.5;
  copts.horizon = 30.0;
  copts.profile = workload::high_level_profile();
  copts.profile.critical_link_fraction = 0.4;
  workload::ChurnTrace trace = workload::generate_churn(copts, 512);
  trace.mttf_dist = workload::MttfDistribution::kLognormal;

  const auto cluster = model::PhysicalCluster::build(
      topology::star(4),
      std::vector<model::HostCapacity>(4, {1000, 4096, 4096}), {1000.0, 5.0});
  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.blast_mttf = 10.0;
  fopts.mttf_dist = workload::MttfDistribution::kLognormal;
  workload::merge_events(trace,
                         workload::generate_failures(fopts, cluster, 513));

  const std::string once = io::write_trace(trace);
  EXPECT_TRUE(contains(once, "\"mttf_dist\":\"lognormal\""));
  EXPECT_TRUE(contains(once, "\"critical_link_fraction\":0.4"));
  EXPECT_TRUE(contains(once, "blast-fail"));
  const auto parsed = io::read_trace_or_throw(once);
  EXPECT_EQ(parsed.events, trace.events);
  EXPECT_EQ(parsed.mttf_dist, trace.mttf_dist);
  EXPECT_EQ(parsed.profile.critical_link_fraction, 0.4);
  EXPECT_EQ(io::write_trace(parsed), once);
}

// --- v4 corpus: SLA tiers, replica specs, power-domain events ------------

std::string arrive_line(const std::string& extra) {
  return "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"guests\":4,"
         "\"density\":0.5,\"seed\":\"7\"" +
         extra + "}";
}

TEST(TraceMalformed, UnknownTierTagIsRejected) {
  const auto e = must_fail(header() + arrive_line(",\"tier\":\"platinum\""));
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "unknown tier tag 'platinum'"))
      << e.message;
  // Non-string tiers are shape errors, not unknown tags.
  const auto num = must_fail(header() + arrive_line(",\"tier\":1"));
  EXPECT_TRUE(contains(num.message, "tier must be a string")) << num.message;
}

TEST(TraceMalformed, LoneReplicaMemberIsRejected) {
  // replica_n and replica_k only make sense as a pair; a lone member is a
  // truncated spec, whichever half survived.
  for (const char* extra : {",\"replica_n\":3", ",\"replica_k\":2"}) {
    const auto e = must_fail(header() + arrive_line(extra));
    EXPECT_EQ(e.line, 2u) << extra;
    EXPECT_TRUE(contains(e.message, "must appear together")) << e.message;
  }
}

TEST(TraceMalformed, DegenerateReplicaSpecIsRejected) {
  // n < 2 is not replication, k = 0 is vacuous, k > n is unsatisfiable.
  for (const char* extra :
       {",\"replica_n\":1,\"replica_k\":1", ",\"replica_n\":3,\"replica_k\":0",
        ",\"replica_n\":2,\"replica_k\":3"}) {
    const auto e = must_fail(header() + arrive_line(extra));
    EXPECT_EQ(e.line, 2u) << extra;
    EXPECT_TRUE(contains(e.message, "n >= 2 and 1 <= k <= n")) << e.message;
  }
}

TEST(TraceMalformed, TruncatedPowerGroupIsRejected) {
  // Power events share the blast group shape: element + both member arrays.
  const auto e = must_fail(
      header() + "{\"t\":1,\"ev\":\"power-fail\",\"element\":0,"
                 "\"links\":[0]}");
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "power-fail event")) << e.message;
  EXPECT_TRUE(contains(e.message, "'hosts'")) << e.message;
}

TEST(TraceMalformed, TierReplicaPowerStreamRoundTripsByteIdentical) {
  // Healthy v4 path: tiers, replica specs, and one-crew power events all
  // survive write -> read -> write bytewise.
  workload::ChurnOptions copts;
  copts.arrival_rate = 0.6;
  copts.horizon = 30.0;
  copts.profile = workload::high_level_profile();
  copts.replica_probability = 0.5;
  copts.gold_fraction = 0.3;
  copts.best_effort_fraction = 0.3;
  workload::ChurnTrace trace = workload::generate_churn(copts, 640);

  const auto cluster = hmn::test::line_cluster(6);
  workload::FailureOptions fopts;
  fopts.horizon = copts.horizon;
  fopts.power_mttf = 8.0;
  fopts.power_domains = 3;
  workload::merge_events(trace,
                         workload::generate_failures(fopts, cluster, 641));

  const std::string once = io::write_trace(trace);
  EXPECT_TRUE(contains(once, "\"version\":4"));
  EXPECT_TRUE(contains(once, "\"tier\":\"gold\""));
  EXPECT_TRUE(contains(once, "\"replica_n\":"));
  EXPECT_TRUE(contains(once, "power-fail"));
  const auto parsed = io::read_trace_or_throw(once);
  EXPECT_EQ(parsed.events, trace.events);
  EXPECT_EQ(io::write_trace(parsed), once);
}

std::string v3_header() {
  std::string h = header();
  const auto pos = h.find("\"version\":4");
  EXPECT_NE(pos, std::string::npos);
  h.replace(pos, std::string("\"version\":4").size(), "\"version\":3");
  return h;
}

TEST(TraceMalformed, TierOnNonArriveLineIsRejected) {
  // v4 field discipline: tier/replica declarations belong to arrive lines
  // only.  Anywhere else is a mangled trace and the field is named.
  const auto on_grow = must_fail(
      header() +
      "{\"t\":1,\"ev\":\"grow\",\"tenant\":1,\"add_guests\":1,"
      "\"add_links\":0,\"seed\":\"9\",\"tier\":\"gold\"}");
  EXPECT_EQ(on_grow.line, 2u);
  EXPECT_TRUE(contains(on_grow.message,
                       "'tier' is only valid on arrive events"))
      << on_grow.message;
  EXPECT_TRUE(contains(on_grow.message, "grow line")) << on_grow.message;

  const auto on_depart = must_fail(
      header() +
      "{\"t\":1,\"ev\":\"depart\",\"tenant\":1,\"replica_n\":3}");
  EXPECT_EQ(on_depart.line, 2u);
  EXPECT_TRUE(contains(on_depart.message, "'replica_n'"))
      << on_depart.message;

  const auto on_fail = must_fail(
      header() +
      "{\"t\":1,\"ev\":\"host-fail\",\"element\":0,\"replica_k\":2}");
  EXPECT_TRUE(contains(on_fail.message, "'replica_k'")) << on_fail.message;
}

TEST(TraceMalformed, TierFieldsNeedAVersion4Header) {
  // A v3 trace carrying v4 fields is version skew, not a silent default.
  const auto e =
      must_fail(v3_header() + arrive_line(",\"tier\":\"gold\""));
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "'tier' requires trace version 4"))
      << e.message;
  EXPECT_TRUE(contains(e.message, "declares 3")) << e.message;

  const auto r = must_fail(
      v3_header() + arrive_line(",\"replica_n\":3,\"replica_k\":2"));
  EXPECT_TRUE(contains(r.message, "'replica_n' requires trace version 4"))
      << r.message;
}

TEST(TraceMalformed, PowerEventsNeedAVersion4Header) {
  const auto e = must_fail(
      v3_header() +
      "{\"t\":1,\"ev\":\"power-fail\",\"element\":0,\"hosts\":[0],"
      "\"links\":[0]}");
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "power-fail events require trace version 4"))
      << e.message;
  EXPECT_TRUE(contains(e.message, "declares 3")) << e.message;
  // Blast events are v3 vocabulary and stay legal under a v3 header.
  const auto ok = io::read_trace_or_throw(
      v3_header() +
      "{\"t\":1,\"ev\":\"blast-fail\",\"element\":9,\"hosts\":[0],"
      "\"links\":[0]}");
  ASSERT_EQ(ok.events.size(), 1u);
  EXPECT_EQ(ok.events[0].kind, workload::EventKind::kBlastFail);
}

TEST(TraceMalformed, EmptyPowerGroupIsRejected) {
  // A power domain that feeds nothing cannot exist: both member arrays
  // empty means a truncated writer, not a degenerate-but-valid event.
  const auto e = must_fail(
      header() +
      "{\"t\":1,\"ev\":\"power-recover\",\"element\":0,\"hosts\":[],"
      "\"links\":[]}");
  EXPECT_EQ(e.line, 2u);
  EXPECT_TRUE(contains(e.message, "empty correlated group")) << e.message;
  // One-sided groups are fine — a leaf domain may feed only hosts.
  const auto ok = io::read_trace_or_throw(
      header() +
      "{\"t\":1,\"ev\":\"power-fail\",\"element\":0,\"hosts\":[0,1],"
      "\"links\":[]}");
  ASSERT_EQ(ok.events.size(), 1u);
  EXPECT_EQ(ok.events[0].group_hosts.size(), 2u);
}

TEST(TraceMalformed, V3TraceWithoutTierOrReplicasStillParses) {
  // The v3-reader shim in reverse: a hand-written v3 header + plain arrive
  // line parses with standard tier and no replica spec.
  std::string h = header();
  const auto pos = h.find("\"version\":4");
  ASSERT_NE(pos, std::string::npos);
  h.replace(pos, std::string("\"version\":4").size(), "\"version\":3");
  const auto parsed = io::read_trace_or_throw(h + arrive_line(""));
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].sla_tier, model::SlaTier::kStandard);
  EXPECT_EQ(parsed.events[0].replica_n, 0u);
  EXPECT_EQ(parsed.events[0].replica_k, 0u);
}

}  // namespace
