// The binary frame layer under the write-ahead journal: primitive codecs
// must round-trip bit-exactly, and the frame scanner must classify every
// defect — torn tail (truncate, usable prefix) vs mid-stream corruption
// (loud error) — exactly as the recovery contract promises.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "io/binfmt.h"
#include "util/crc32.h"

namespace {

using namespace hmn;

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0u);
  // Chunked checksumming composes: crc(b, crc(a)) == crc(ab).
  const std::string ab = "hello, journal";
  EXPECT_EQ(util::crc32(ab.substr(6), util::crc32(ab.substr(0, 6))),
            util::crc32(ab));
}

TEST(BinfmtTest, PrimitivesRoundTripBitExact) {
  std::string buf;
  io::put_u8(buf, 0xAB);
  io::put_u32(buf, 0xDEADBEEFu);
  io::put_u64(buf, 0x0123456789ABCDEFull);
  io::put_f64(buf, -0.1);  // not representable exactly: bit pattern matters
  io::put_f64(buf, std::numeric_limits<double>::infinity());
  io::put_bytes(buf, std::string("raw\0bytes", 9));
  io::put_u32_vec(buf, {7, 0, 4294967295u});

  io::BinReader r(buf);
  EXPECT_EQ(r.take_u8(), 0xAB);
  EXPECT_EQ(r.take_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.take_u64(), 0x0123456789ABCDEFull);
  const auto f = r.take_f64();
  ASSERT_TRUE(f.has_value());
  std::uint64_t bits = 0, want = 0;
  const double neg_tenth = -0.1;
  std::memcpy(&bits, &*f, sizeof(bits));
  std::memcpy(&want, &neg_tenth, sizeof(want));
  EXPECT_EQ(bits, want);
  EXPECT_EQ(r.take_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.take_bytes(), std::string_view("raw\0bytes", 9));
  EXPECT_EQ(r.take_u32_vec(),
            (std::vector<std::uint32_t>{7, 0, 4294967295u}));
  EXPECT_TRUE(r.exhausted());
  // Past the end every take_* reports exhaustion, never UB.
  EXPECT_FALSE(r.take_u8().has_value());
}

TEST(BinfmtTest, TruncatedLengthPrefixIsNullopt) {
  std::string buf;
  io::put_bytes(buf, "0123456789");
  // Cut inside the declared payload: the length prefix overruns.
  io::BinReader r(std::string_view(buf).substr(0, buf.size() - 3));
  EXPECT_FALSE(r.take_bytes().has_value());
}

TEST(BinfmtTest, FrameStreamScansClean) {
  // Empty payloads are deliberately NOT legal: every journal record opens
  // with a type byte, so a zero declared length can only be damage.
  std::string stream;
  io::append_frame(stream, "first");
  io::append_frame(stream, "second record");
  io::append_frame(stream, std::string("\0binary\xFF", 8));

  io::FrameScan scan;
  EXPECT_FALSE(io::scan_frames(stream, scan).has_value());
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[0], "first");
  EXPECT_EQ(scan.frames[1], "second record");
  EXPECT_EQ(scan.frames[2], std::string_view("\0binary\xFF", 8));
  EXPECT_EQ(scan.valid_bytes, stream.size());
  EXPECT_FALSE(scan.torn_tail);
}

TEST(BinfmtTest, EncodeFrameMatchesAppendFrame) {
  std::string appended;
  io::append_frame(appended, "payload");
  EXPECT_EQ(io::encode_frame("payload"), appended);
}

TEST(BinfmtTest, TornTailIsTruncatedNotFatal) {
  std::string intact;
  io::append_frame(intact, "alpha");
  io::append_frame(intact, "beta");
  const std::size_t intact_bytes = intact.size();

  std::string torn = intact;
  io::append_frame(torn, "gamma-never-finished");
  // Every possible torn length of the final frame — header cut short,
  // payload cut short, even zero extra bytes — must scan back to the same
  // intact prefix.
  for (std::size_t keep = intact_bytes; keep < torn.size(); ++keep) {
    io::FrameScan scan;
    const auto err = io::scan_frames(std::string_view(torn).substr(0, keep),
                                     scan);
    EXPECT_FALSE(err.has_value()) << "torn at " << keep;
    EXPECT_EQ(scan.frames.size(), 2u) << "torn at " << keep;
    EXPECT_EQ(scan.valid_bytes, intact_bytes) << "torn at " << keep;
    EXPECT_EQ(scan.torn_tail, keep != intact_bytes) << "torn at " << keep;
  }
}

TEST(BinfmtTest, MidStreamBitFlipIsLoudCorruption) {
  std::string stream;
  io::append_frame(stream, "alpha");
  const std::size_t first_frame = stream.size();
  io::append_frame(stream, "beta");

  // Flip one payload bit of the *first* frame: bytes follow, so this can
  // never be a crash artifact and must be an error naming the offset.
  std::string corrupt = stream;
  corrupt[first_frame - 2] ^= 0x01;
  io::FrameScan scan;
  const auto err = io::scan_frames(corrupt, scan);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->offset, 0u);
  EXPECT_NE(err->message.find("CRC-32"), std::string::npos)
      << err->message;
}

TEST(BinfmtTest, ChecksumFailureAtExactEofIsTornTail) {
  // A frame whose CRC fails but which ends exactly at EOF is the signature
  // of a torn final write that happened to persist its full length with a
  // garbage tail — still a crash artifact, still truncated.
  std::string stream;
  io::append_frame(stream, "alpha");
  const std::size_t first_frame = stream.size();
  io::append_frame(stream, "beta");
  stream.back() ^= 0x40;

  io::FrameScan scan;
  EXPECT_FALSE(io::scan_frames(stream, scan).has_value());
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_frame);
  EXPECT_TRUE(scan.torn_tail);
}

TEST(BinfmtTest, AbsurdDeclaredLengthClassifiesByWhatFollows) {
  std::string stream;
  io::append_frame(stream, "alpha");
  const std::size_t offset = stream.size();

  // A zero declared length with bytes following can never be a crash
  // artifact (records always carry at least a type byte): loud error.
  std::string zero_len = stream;
  zero_len += std::string(8, '\0');       // len=0, crc=0
  zero_len += std::string(60, 'x');       // ...and the stream continues
  io::FrameScan scan;
  const auto err = io::scan_frames(zero_len, scan);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->offset, offset);
  EXPECT_NE(err->message.find("declares length 0"), std::string::npos)
      << err->message;

  // An over-cap length whose payload never materializes is just a torn
  // header full of garbage: truncate back to the intact prefix.
  std::string torn = stream;
  const std::uint32_t absurd = io::kMaxFramePayload + 1;
  for (std::size_t i = 0; i < 4; ++i) {
    torn.push_back(static_cast<char>((absurd >> (8 * i)) & 0xFF));
  }
  torn += std::string(64, 'x');  // far less than the declared payload
  EXPECT_FALSE(io::scan_frames(torn, scan).has_value());
  EXPECT_EQ(scan.valid_bytes, offset);
  EXPECT_TRUE(scan.torn_tail);

  // A zero length that is itself the final header at EOF is equally a torn
  // artifact, not an error.
  std::string zero_at_eof = stream;
  zero_at_eof += std::string(8, '\0');
  EXPECT_FALSE(io::scan_frames(zero_at_eof, scan).has_value());
  EXPECT_EQ(scan.valid_bytes, offset);
  EXPECT_TRUE(scan.torn_tail);
}

}  // namespace
