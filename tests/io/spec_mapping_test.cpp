// Tests for the mapping loader and its round-trip with the writer.
#include <gtest/gtest.h>

#include <fstream>

#include "core/hmn_mapper.h"
#include "core/validator.h"
#include "io/json.h"
#include "io/spec.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;

TEST(MappingLoader, RoundTripsBareMapping) {
  core::Mapping m;
  m.guest_host = {n(0), n(3), n(1)};
  m.link_paths = {{EdgeId{0}, EdgeId{2}}, {}};
  auto loaded_or = io::load_mapping_json(io::to_json(m));
  ASSERT_TRUE(std::holds_alternative<core::Mapping>(loaded_or))
      << std::get<io::SpecError>(loaded_or).message;
  const auto& loaded = std::get<core::Mapping>(loaded_or);
  EXPECT_EQ(loaded.guest_host, m.guest_host);
  EXPECT_EQ(loaded.link_paths, m.link_paths);
}

TEST(MappingLoader, AcceptsWrappedOutcome) {
  const auto cluster = line_cluster(3);
  auto venv = chain_venv(5);
  const auto out = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  auto loaded_or = io::load_mapping_json(io::to_json(out));
  ASSERT_TRUE(std::holds_alternative<core::Mapping>(loaded_or))
      << std::get<io::SpecError>(loaded_or).message;
  const auto& loaded = std::get<core::Mapping>(loaded_or);
  EXPECT_EQ(loaded.guest_host, out.mapping->guest_host);
  EXPECT_EQ(loaded.link_paths, out.mapping->link_paths);
  // The reloaded mapping still validates against the instance.
  EXPECT_TRUE(core::validate_mapping(cluster, venv, loaded).ok());
}

TEST(MappingLoader, FullInstanceRoundTripThroughFiles) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kSwitched, 71);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 72);
  const auto out = core::HmnMapper().map(cluster, venv, 73);
  ASSERT_TRUE(out.ok());

  const std::string dir = testing::TempDir();
  {
    std::ofstream(dir + "/c.json") << io::to_json(cluster);
    std::ofstream(dir + "/v.json") << io::to_json(venv);
    std::ofstream(dir + "/m.json") << io::to_json(*out.mapping);
  }
  auto c = io::load_cluster_file(dir + "/c.json");
  auto v = io::load_venv_file(dir + "/v.json");
  auto m = io::load_mapping_file(dir + "/m.json");
  ASSERT_TRUE(std::holds_alternative<model::PhysicalCluster>(c));
  ASSERT_TRUE(std::holds_alternative<model::VirtualEnvironment>(v));
  ASSERT_TRUE(std::holds_alternative<core::Mapping>(m));
  EXPECT_TRUE(core::validate_mapping(std::get<model::PhysicalCluster>(c),
                                     std::get<model::VirtualEnvironment>(v),
                                     std::get<core::Mapping>(m))
                  .ok());
}

TEST(MappingLoader, RejectsMalformed) {
  auto is_err = [](auto&& v) {
    return std::holds_alternative<io::SpecError>(v);
  };
  EXPECT_TRUE(is_err(io::load_mapping_json("{")));
  EXPECT_TRUE(is_err(io::load_mapping_json("{}")));
  EXPECT_TRUE(is_err(io::load_mapping_json(R"({"guest_host":[0]})")));
  EXPECT_TRUE(is_err(io::load_mapping_json(
      R"({"guest_host":["a"],"link_paths":[]})")));
  EXPECT_TRUE(is_err(io::load_mapping_json(
      R"({"guest_host":[-1],"link_paths":[]})")));
  EXPECT_TRUE(is_err(io::load_mapping_json(
      R"({"guest_host":[0],"link_paths":[0]})")));
  EXPECT_TRUE(is_err(io::load_mapping_json(
      R"({"guest_host":[0],"link_paths":[["x"]]})")));
  EXPECT_TRUE(is_err(io::load_mapping_file("/no/such/file.json")));
}

TEST(MappingLoader, LoadedGarbageFailsValidationNotLoading) {
  // Shape-valid but semantically wrong mappings load fine and are caught
  // by the validator — the intended division of labor.
  const auto cluster = line_cluster(2);
  auto venv = chain_venv(2);
  auto loaded_or = io::load_mapping_json(
      R"({"guest_host":[0,99],"link_paths":[[]]})");
  ASSERT_TRUE(std::holds_alternative<core::Mapping>(loaded_or));
  EXPECT_FALSE(core::validate_mapping(cluster, venv,
                                      std::get<core::Mapping>(loaded_or))
                   .ok());
}

}  // namespace
