// Tests for the JSON parser and the cluster/venv spec loaders, including
// round-trips through the writers.
#include <gtest/gtest.h>

#include "io/json.h"
#include "io/json_parser.h"
#include "io/spec.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using io::JsonParseError;
using io::JsonValue;
using io::parse_json;
using io::parse_json_or_throw;

JsonValue ok(std::string_view text) {
  auto result = parse_json(text);
  EXPECT_TRUE(std::holds_alternative<JsonValue>(result))
      << std::get<JsonParseError>(result).message;
  return std::get<JsonValue>(std::move(result));
}

std::string err(std::string_view text) {
  auto result = parse_json(text);
  EXPECT_TRUE(std::holds_alternative<JsonParseError>(result)) << text;
  return std::holds_alternative<JsonParseError>(result)
             ? std::get<JsonParseError>(result).message
             : std::string{};
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(ok("null").is_null());
  EXPECT_TRUE(ok("true").as_bool());
  EXPECT_FALSE(ok("false").as_bool());
  EXPECT_DOUBLE_EQ(ok("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ok("-3.5e2").as_number(), -350.0);
  EXPECT_DOUBLE_EQ(ok("0.125").as_number(), 0.125);
  EXPECT_EQ(ok("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, WhitespaceTolerated) {
  const auto v = ok("  {\n\t\"a\" : [ 1 , 2 ] \r\n} ");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(ok(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(ok(R"("Aé中")").as_string(), "A\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParser, NestedStructures) {
  const auto v = ok(R"({"a":{"b":[1,{"c":true}]},"d":null})");
  const JsonValue* b = v.find("a")->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->as_array()[0].as_number(), 1.0);
  EXPECT_TRUE(b->as_array()[1].find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
}

TEST(JsonParser, EmptyContainers) {
  EXPECT_TRUE(ok("[]").as_array().empty());
  EXPECT_TRUE(ok("{}").as_object().empty());
}

TEST(JsonParser, Errors) {
  EXPECT_FALSE(err("").empty());
  EXPECT_FALSE(err("{").empty());
  EXPECT_FALSE(err("[1,").empty());
  EXPECT_FALSE(err("[1 2]").empty());
  EXPECT_FALSE(err("{\"a\" 1}").empty());
  EXPECT_FALSE(err("\"unterminated").empty());
  EXPECT_FALSE(err("nul").empty());
  EXPECT_FALSE(err("1.2.3").empty());
  EXPECT_FALSE(err("{} trailing").empty());
  EXPECT_FALSE(err(R"("\q")").empty());
  EXPECT_FALSE(err(R"("\ud800")").empty());  // surrogate rejected
}

TEST(JsonParser, ErrorCarriesOffset) {
  auto result = parse_json("[1, x]");
  ASSERT_TRUE(std::holds_alternative<JsonParseError>(result));
  EXPECT_EQ(std::get<JsonParseError>(result).offset, 4u);
}

TEST(JsonParser, ThrowingWrapper) {
  EXPECT_NO_THROW(parse_json_or_throw("[1,2,3]"));
  EXPECT_THROW(parse_json_or_throw("{"), std::runtime_error);
}

TEST(JsonParser, DuplicateKeysLastWins) {
  const auto v = ok(R"({"a":1,"a":2})");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 2.0);
}

TEST(JsonParser, NumberOrFallback) {
  const auto v = ok(R"({"a":5,"b":"x"})");
  EXPECT_DOUBLE_EQ(v.number_or("a", -1), 5.0);
  EXPECT_DOUBLE_EQ(v.number_or("b", -1), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7), 7.0);
}

// ---- Spec loading and round-trips.

TEST(SpecLoader, ClusterRoundTrip) {
  const auto original =
      workload::make_paper_cluster(workload::ClusterKind::kSwitched, 17);
  auto loaded_or = io::load_cluster_json(io::to_json(original));
  ASSERT_TRUE(std::holds_alternative<model::PhysicalCluster>(loaded_or))
      << std::get<io::SpecError>(loaded_or).message;
  const auto& loaded = std::get<model::PhysicalCluster>(loaded_or);
  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.link_count(), original.link_count());
  ASSERT_EQ(loaded.host_count(), original.host_count());
  for (std::size_t i = 0; i < loaded.node_count(); ++i) {
    const auto node = NodeId{static_cast<NodeId::underlying_type>(i)};
    EXPECT_EQ(loaded.is_host(node), original.is_host(node));
    EXPECT_DOUBLE_EQ(loaded.capacity(node).proc_mips,
                     original.capacity(node).proc_mips);
    EXPECT_DOUBLE_EQ(loaded.capacity(node).mem_mb,
                     original.capacity(node).mem_mb);
  }
  for (std::size_t e = 0; e < loaded.link_count(); ++e) {
    const auto edge = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    EXPECT_EQ(loaded.graph().endpoints(edge).a,
              original.graph().endpoints(edge).a);
    EXPECT_DOUBLE_EQ(loaded.link(edge).bandwidth_mbps,
                     original.link(edge).bandwidth_mbps);
    EXPECT_DOUBLE_EQ(loaded.link(edge).latency_ms,
                     original.link(edge).latency_ms);
  }
  // The reloaded cluster serializes identically.
  EXPECT_EQ(io::to_json(loaded), io::to_json(original));
}

TEST(SpecLoader, VenvRoundTrip) {
  const auto cluster =
      workload::make_paper_cluster(workload::ClusterKind::kTorus2D, 18);
  const workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
  const auto original = workload::make_scenario_venv(sc, cluster, 19);
  auto loaded_or = io::load_venv_json(io::to_json(original));
  ASSERT_TRUE(std::holds_alternative<model::VirtualEnvironment>(loaded_or))
      << std::get<io::SpecError>(loaded_or).message;
  const auto& loaded = std::get<model::VirtualEnvironment>(loaded_or);
  ASSERT_EQ(loaded.guest_count(), original.guest_count());
  ASSERT_EQ(loaded.link_count(), original.link_count());
  EXPECT_EQ(io::to_json(loaded), io::to_json(original));
}

TEST(SpecLoader, HandWrittenMinimalCluster) {
  const char* spec = R"({
    "nodes": [
      {"role": "host", "proc_mips": 1000, "mem_mb": 2048, "stor_gb": 512},
      {"role": "host", "proc_mips": 2000, "mem_mb": 4096, "stor_gb": 1024},
      {"role": "switch"}
    ],
    "links": [
      {"a": 0, "b": 2, "bw_mbps": 1000, "lat_ms": 5},
      {"a": 1, "b": 2, "bw_mbps": 1000, "lat_ms": 5}
    ]
  })";
  auto loaded_or = io::load_cluster_json(spec);
  ASSERT_TRUE(std::holds_alternative<model::PhysicalCluster>(loaded_or))
      << std::get<io::SpecError>(loaded_or).message;
  const auto& c = std::get<model::PhysicalCluster>(loaded_or);
  EXPECT_EQ(c.host_count(), 2u);
  EXPECT_FALSE(c.is_host(NodeId{2}));
}

TEST(SpecLoader, RejectsMalformedSpecs) {
  auto is_err = [](auto&& v) {
    return std::holds_alternative<io::SpecError>(v);
  };
  EXPECT_TRUE(is_err(io::load_cluster_json("not json")));
  EXPECT_TRUE(is_err(io::load_cluster_json("{}")));  // missing arrays
  EXPECT_TRUE(is_err(io::load_cluster_json(
      R"({"nodes":[{"role":"host"}],"links":[]})")));  // missing capacities
  EXPECT_TRUE(is_err(io::load_cluster_json(
      R"({"nodes":[{"role":"boat","proc_mips":1,"mem_mb":1,"stor_gb":1}],"links":[]})")));
  EXPECT_TRUE(is_err(io::load_cluster_json(
      R"({"nodes":[{"role":"host","proc_mips":1,"mem_mb":1,"stor_gb":1}],)"
      R"("links":[{"a":0,"b":5,"bw_mbps":1,"lat_ms":1}]})")));  // range
  EXPECT_TRUE(is_err(io::load_venv_json("{}")));
  EXPECT_TRUE(is_err(io::load_venv_json(
      R"({"guests":[{"vproc_mips":1,"vmem_mb":1,"vstor_gb":1}],)"
      R"("links":[{"src":0,"dst":3,"vbw_mbps":1,"vlat_ms":1}]})")));
}

TEST(SpecLoader, MissingFileReported) {
  auto result = io::load_cluster_file("/nonexistent/path.json");
  ASSERT_TRUE(std::holds_alternative<io::SpecError>(result));
  EXPECT_NE(std::get<io::SpecError>(result).message.find("/nonexistent"),
            std::string::npos);
}

TEST(SpecLoader, OutOfOrderIdsRejected) {
  const char* spec = R"({
    "nodes": [{"id": 3, "role": "host", "proc_mips": 1, "mem_mb": 1,
               "stor_gb": 1}],
    "links": []
  })";
  EXPECT_TRUE(std::holds_alternative<io::SpecError>(
      io::load_cluster_json(spec)));
}

}  // namespace
