// Tests for the JSONL churn-trace format: byte-for-byte round trip, seed
// precision, and parse-error reporting.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <variant>

#include "io/trace.h"
#include "workload/churn.h"

namespace {

using namespace hmn;
using workload::EventKind;

workload::ChurnTrace sample_trace() {
  workload::ChurnOptions opts;
  opts.arrival_rate = 0.8;
  opts.horizon = 30.0;
  opts.profile = workload::high_level_profile();
  opts.grow_probability = 0.6;
  return workload::generate_churn(opts, 20090922);
}

TEST(Trace, RoundTripIsByteIdentical) {
  const auto trace = sample_trace();
  ASSERT_FALSE(trace.events.empty());
  const std::string once = io::write_trace(trace);
  const auto parsed = io::read_trace_or_throw(once);
  EXPECT_EQ(parsed.events, trace.events);
  EXPECT_EQ(io::write_trace(parsed), once);
}

TEST(Trace, SeedsSurvive64Bits) {
  workload::ChurnTrace trace;
  trace.profile = workload::high_level_profile();
  workload::TenantEvent ev;
  ev.time = 1.25;
  ev.kind = EventKind::kArrive;
  ev.tenant = 0;
  ev.guest_count = 4;
  ev.density = 0.2;
  ev.seed = 0xFFFFFFFFFFFFFFFFULL;  // would be mangled as a JSON double
  trace.events.push_back(ev);
  const auto parsed = io::read_trace_or_throw(io::write_trace(trace));
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].seed, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(Trace, BlankLinesAreIgnored) {
  const auto trace = sample_trace();
  const std::string text = "\n" + io::write_trace(trace) + "\n\n";
  EXPECT_EQ(io::read_trace_or_throw(text).events, trace.events);
}

TEST(Trace, ReportsErrorsWithLineNumbers) {
  auto expect_error = [](const std::string& text, std::size_t line) {
    const auto parsed = io::read_trace(text);
    ASSERT_TRUE(std::holds_alternative<io::TraceParseError>(parsed)) << text;
    EXPECT_EQ(std::get<io::TraceParseError>(parsed).line, line) << text;
  };
  expect_error("", 0);                             // no header at all
  expect_error("{\"type\":\"other\"}", 1);         // wrong header type
  expect_error("not json", 1);                     // malformed first line
  const std::string header =
      io::write_trace({workload::high_level_profile(), {}});
  expect_error(header + "{\"t\":0}", 2);           // event missing fields
  expect_error(header + "{\"t\":0,\"ev\":\"warp\",\"tenant\":1}", 2);
  expect_error(
      header + "{\"t\":0,\"ev\":\"arrive\",\"tenant\":1,\"seed\":7}",
      2);  // numeric seed rejected: must be a string
}

TEST(Trace, FileRoundTrip) {
  const auto trace = sample_trace();
  const auto path =
      std::filesystem::temp_directory_path() / "hmn_trace_test.jsonl";
  ASSERT_TRUE(io::save_trace(path, trace));
  const auto loaded = io::load_trace(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->events, trace.events);
}

TEST(Trace, LoadRejectsMissingFile) {
  EXPECT_FALSE(io::load_trace("/nonexistent/hmn_trace.jsonl").has_value());
}

}  // namespace
