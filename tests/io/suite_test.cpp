// Tests for the evaluation-suite JSON loader and the mapper registry.
#include <gtest/gtest.h>

#include "extensions/mapper_registry.h"
#include "expfw/suite.h"

namespace {

using namespace hmn;
using extensions::known_mapper_names;
using extensions::make_named_mapper;
using expfw::load_suite_json;
using io::SpecError;
using expfw::SuiteSpec;

SuiteSpec ok(std::string_view text) {
  auto result = load_suite_json(text);
  EXPECT_TRUE(std::holds_alternative<SuiteSpec>(result))
      << std::get<SpecError>(result).message;
  return std::get<SuiteSpec>(std::move(result));
}

bool fails(std::string_view text) {
  return std::holds_alternative<SpecError>(load_suite_json(text));
}

TEST(SuiteLoader, MinimalSuiteGetsPaperDefaults) {
  const auto suite = ok(
      R"({"scenarios":[{"ratio":2.5,"density":0.02,"workload":"high"}]})");
  EXPECT_EQ(suite.grid.repetitions, 30u);
  EXPECT_EQ(suite.grid.master_seed, 20090922u);
  EXPECT_EQ(suite.grid.clusters.size(), 2u);
  EXPECT_EQ(suite.mapper_names,
            (std::vector<std::string>{"hmn", "r", "ra", "hs"}));
  ASSERT_EQ(suite.grid.scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(suite.grid.scenarios[0].ratio, 2.5);
  EXPECT_EQ(suite.grid.scenarios[0].workload,
            workload::WorkloadKind::kHighLevel);
  EXPECT_DOUBLE_EQ(suite.grid.scenarios[0].vproc_scale, 1.0);
}

TEST(SuiteLoader, FullSuiteParsed) {
  const auto suite = ok(R"({
    "repetitions": 5, "seed": 7,
    "clusters": ["switched"],
    "mappers": ["hmn", "minhosts"],
    "scenarios": [
      {"ratio": 20, "density": 0.01, "workload": "low", "vproc_scale": 6}
    ]
  })");
  EXPECT_EQ(suite.grid.repetitions, 5u);
  EXPECT_EQ(suite.grid.master_seed, 7u);
  ASSERT_EQ(suite.grid.clusters.size(), 1u);
  EXPECT_EQ(suite.grid.clusters[0], workload::ClusterKind::kSwitched);
  EXPECT_EQ(suite.mapper_names,
            (std::vector<std::string>{"hmn", "minhosts"}));
  EXPECT_EQ(suite.grid.scenarios[0].workload,
            workload::WorkloadKind::kLowLevel);
  EXPECT_DOUBLE_EQ(suite.grid.scenarios[0].vproc_scale, 6.0);
}

TEST(SuiteLoader, RejectsMalformed) {
  EXPECT_TRUE(fails("[]"));
  EXPECT_TRUE(fails("{}"));  // no scenarios
  EXPECT_TRUE(fails(R"({"scenarios":[]})"));
  EXPECT_TRUE(fails(R"({"scenarios":[{"density":0.02,"workload":"high"}]})"));
  EXPECT_TRUE(fails(R"({"scenarios":[{"ratio":2,"density":0.02}]})"));
  EXPECT_TRUE(
      fails(R"({"scenarios":[{"ratio":2,"density":0.02,"workload":"mid"}]})"));
  EXPECT_TRUE(fails(
      R"({"clusters":["mesh"],)"
      R"("scenarios":[{"ratio":2,"density":0.02,"workload":"high"}]})"));
  EXPECT_TRUE(fails(
      R"({"repetitions":0,)"
      R"("scenarios":[{"ratio":2,"density":0.02,"workload":"high"}]})"));
}

TEST(MapperRegistry, AllKnownNamesConstruct) {
  for (const auto& name : known_mapper_names()) {
    const auto mapper = make_named_mapper(name);
    ASSERT_NE(mapper, nullptr) << name;
    EXPECT_FALSE(mapper->name().empty());
  }
}

TEST(MapperRegistry, NamesMatchTableColumns) {
  EXPECT_EQ(make_named_mapper("hmn")->name(), "HMN");
  EXPECT_EQ(make_named_mapper("hn")->name(), "HN");
  EXPECT_EQ(make_named_mapper("r")->name(), "R");
  EXPECT_EQ(make_named_mapper("ra")->name(), "RA");
  EXPECT_EQ(make_named_mapper("hs")->name(), "HS");
  EXPECT_EQ(make_named_mapper("minhosts")->name(), "MinHosts");
  EXPECT_EQ(make_named_mapper("greedyrank")->name(), "GreedyRank");
}

TEST(MapperRegistry, UnknownNameIsNull) {
  EXPECT_EQ(make_named_mapper("HMN"), nullptr);  // case-sensitive
  EXPECT_EQ(make_named_mapper("bogus"), nullptr);
  EXPECT_EQ(make_named_mapper(""), nullptr);
}

}  // namespace
