// Structured fuzzing of the JSON parser: random documents are generated,
// serialized, and re-parsed; the round trip must be lossless.  Random byte
// mutations of valid documents must never crash the parser (they may
// legitimately parse or fail).
#include <gtest/gtest.h>

#include <sstream>

#include "io/json_parser.h"
#include "util/rng.h"

namespace {

using hmn::io::JsonArray;
using hmn::io::JsonObject;
using hmn::io::JsonParseError;
using hmn::io::JsonValue;
using hmn::io::parse_json;
using hmn::util::Rng;

/// Random JSON value of bounded depth.
JsonValue random_value(Rng& rng, int depth) {
  const std::size_t kind = depth <= 0 ? rng.index(4) : rng.index(6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.chance(0.5));
    case 2: {
      // Round-trippable numbers: printed with %.17g below.
      return JsonValue(rng.uniform(-1e6, 1e6));
    }
    case 3: {
      std::string s;
      const std::size_t len = rng.index(12);
      for (std::size_t i = 0; i < len; ++i) {
        const char* alphabet =
            "abcXYZ 019_-\"\\\n\t/";  // includes escape-needing chars
        s += alphabet[rng.index(17)];
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonArray arr;
      const std::size_t len = rng.index(5);
      for (std::size_t i = 0; i < len; ++i) {
        arr.push_back(random_value(rng, depth - 1));
      }
      return JsonValue(std::move(arr));
    }
    default: {
      JsonObject obj;
      const std::size_t len = rng.index(5);
      for (std::size_t i = 0; i < len; ++i) {
        obj.insert_or_assign("k" + std::to_string(rng.index(100)),
                             random_value(rng, depth - 1));
      }
      return JsonValue(std::move(obj));
    }
  }
}

/// Serializer matching the parser's accepted grammar.
void write(const JsonValue& v, std::ostringstream& out) {
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.as_number());
    out << buf;
  } else if (v.is_string()) {
    out << '"';
    for (const char ch : v.as_string()) {
      switch (ch) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << ch;
      }
    }
    out << '"';
  } else if (v.is_array()) {
    out << '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out << ',';
      first = false;
      write(e, out);
    }
    out << ']';
  } else {
    out << '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out << ',';
      first = false;
      out << '"' << k << "\":";
      write(e, out);
    }
    out << '}';
  }
}

bool equal(const JsonValue& a, const JsonValue& b) {
  if (a.is_null()) return b.is_null();
  if (a.is_bool()) return b.is_bool() && a.as_bool() == b.as_bool();
  if (a.is_number()) return b.is_number() && a.as_number() == b.as_number();
  if (a.is_string()) return b.is_string() && a.as_string() == b.as_string();
  if (a.is_array()) {
    if (!b.is_array() || a.as_array().size() != b.as_array().size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.as_array().size(); ++i) {
      if (!equal(a.as_array()[i], b.as_array()[i])) return false;
    }
    return true;
  }
  if (!b.is_object() || a.as_object().size() != b.as_object().size()) {
    return false;
  }
  for (const auto& [k, v] : a.as_object()) {
    const JsonValue* other = b.find(k);
    if (other == nullptr || !equal(v, *other)) return false;
  }
  return true;
}

class JsonFuzz : public testing::TestWithParam<int> {};

TEST_P(JsonFuzz, SerializeParseRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 50; ++trial) {
    const JsonValue original = random_value(rng, 4);
    std::ostringstream out;
    write(original, out);
    auto parsed = parse_json(out.str());
    ASSERT_TRUE(std::holds_alternative<JsonValue>(parsed))
        << "failed to parse own serialization: " << out.str() << " ("
        << std::get<JsonParseError>(parsed).message << ")";
    EXPECT_TRUE(equal(original, std::get<JsonValue>(parsed)))
        << "round trip mismatch for: " << out.str();
  }
}

TEST_P(JsonFuzz, MutatedInputNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    std::ostringstream out;
    write(random_value(rng, 3), out);
    std::string text = out.str();
    // A handful of random byte mutations.
    const std::size_t mutations = 1 + rng.index(4);
    for (std::size_t m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = rng.index(text.size());
      switch (rng.index(3)) {
        case 0: text[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: text.erase(pos, 1); break;
        default: text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
      }
    }
    // Must return *something* without crashing; content is unspecified.
    const auto result = parse_json(text);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, testing::Range(1, 7));

}  // namespace
