// Tests for the multi-tenant testbed manager.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "emulator/tenancy.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using emulator::TenancyManager;

model::VirtualEnvironment pair_venv(double mem_mb = 192.0,
                                    double bw_mbps = 0.75) {
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({75, mem_mb, 150});
  const GuestId b = venv.add_guest({75, mem_mb, 150});
  venv.add_link(a, b, {bw_mbps, 45.0});
  return venv;
}

TEST(Tenancy, AdmitsAndTracksTenant) {
  TenancyManager mgr(line_cluster(3));
  const auto result = mgr.admit("alice", pair_venv(), 1);
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(mgr.tenant_count(), 1u);
  const auto* tenant = mgr.tenant(*result.tenant);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->name, "alice");
  EXPECT_TRUE(core::validate_mapping(mgr.cluster(), tenant->venv,
                                     tenant->mapping)
                  .ok());
}

TEST(Tenancy, DistinctIdsPerTenant) {
  TenancyManager mgr(line_cluster(3));
  const auto a = mgr.admit("a", pair_venv(), 1);
  const auto b = mgr.admit("b", pair_venv(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a.tenant, *b.tenant);
  EXPECT_EQ(mgr.tenant_count(), 2u);
}

TEST(Tenancy, RejectsWhenResidualExhausted) {
  // Each host holds 4096 MB; tenants of 2 x 1500 MB guests: two tenants
  // fill a 1-host... use a 1-host cluster for determinism.
  TenancyManager mgr(line_cluster(1, {1000, 4096, 99999}));
  ASSERT_TRUE(mgr.admit("a", pair_venv(1500), 1).ok());
  const auto second = mgr.admit("b", pair_venv(1500), 2);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error, core::MapErrorCode::kTriesExhausted);  // pool's
  // last mapper (RA) exhausts tries after HMN's hosting failure.
  EXPECT_EQ(mgr.tenant_count(), 1u);
}

TEST(Tenancy, ReleaseReturnsCapacity) {
  TenancyManager mgr(line_cluster(1, {1000, 4096, 99999}));
  const auto a = mgr.admit("a", pair_venv(1500), 1);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(mgr.admit("b", pair_venv(1500), 2).ok());
  EXPECT_TRUE(mgr.release(*a.tenant));
  EXPECT_EQ(mgr.tenant_count(), 0u);
  EXPECT_TRUE(mgr.admit("b", pair_venv(1500), 3).ok());
}

TEST(Tenancy, ReleaseUnknownIdIsFalse) {
  TenancyManager mgr(line_cluster(2));
  EXPECT_FALSE(mgr.release(42));
}

TEST(Tenancy, ResidualClusterShrinksAndGrows) {
  TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  const double before = mgr.residual_cluster().capacity(n(0)).mem_mb +
                        mgr.residual_cluster().capacity(n(1)).mem_mb;
  const auto a = mgr.admit("a", pair_venv(500), 1);
  ASSERT_TRUE(a.ok());
  const auto view = mgr.residual_cluster();
  const double after =
      view.capacity(n(0)).mem_mb + view.capacity(n(1)).mem_mb;
  EXPECT_DOUBLE_EQ(before - after, 1000.0);
  mgr.release(*a.tenant);
  const auto restored = mgr.residual_cluster();
  EXPECT_DOUBLE_EQ(restored.capacity(n(0)).mem_mb +
                       restored.capacity(n(1)).mem_mb,
                   before);
}

TEST(Tenancy, BandwidthReservationsVisibleToLaterTenants) {
  // Single physical link of 10 Mbps; first tenant takes 8, second needs 5
  // across hosts and must be rejected; after release it fits.
  auto cluster = line_cluster(2, {1000, 250, 4096}, {10.0, 5.0});
  TenancyManager mgr(std::move(cluster));
  // Guests of 200 MB cannot co-locate on 250 MB hosts: the link crosses.
  model::VirtualEnvironment heavy;
  const GuestId a = heavy.add_guest({10, 200, 10});
  const GuestId b = heavy.add_guest({10, 200, 10});
  heavy.add_link(a, b, {8.0, 60.0});
  const auto first = mgr.admit("first", std::move(heavy), 1);
  ASSERT_TRUE(first.ok()) << first.detail;

  // Second tenant: small guests (fit anywhere)... but to require crossing,
  // make them not co-locatable either (50 MB residual per host).
  model::VirtualEnvironment second;
  const GuestId c = second.add_guest({10, 40, 10});
  const GuestId d = second.add_guest({10, 40, 10});
  second.add_link(c, d, {5.0, 60.0});
  // Residual memory per host = 50 MB; both 40-MB guests cannot share one
  // host, so the 5 Mbps link must cross the 2 Mbps residual fabric: reject.
  const auto rejected = mgr.admit("second", second, 2);
  EXPECT_FALSE(rejected.ok());

  mgr.release(*first.tenant);
  EXPECT_TRUE(mgr.admit("second again", second, 3).ok());
}

TEST(Tenancy, UtilizationAggregates) {
  TenancyManager mgr(line_cluster(2, {1000, 4096, 4096}));
  EXPECT_DOUBLE_EQ(mgr.utilization().mem_fraction, 0.0);
  ASSERT_TRUE(mgr.admit("a", pair_venv(1024), 1).ok());
  const auto u = mgr.utilization();
  EXPECT_EQ(u.tenants, 1u);
  EXPECT_EQ(u.guests, 2u);
  EXPECT_NEAR(u.mem_fraction, 2048.0 / 8192.0, 1e-9);
  EXPECT_GT(u.proc_fraction, 0.0);
}

TEST(Tenancy, ManyTenantsShareThePaperCluster) {
  // Fill the paper's torus with 1:1-ratio tenants until rejection; all
  // admitted mappings must be valid and disjointly within capacity.
  TenancyManager mgr(workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 77));
  std::size_t admitted = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const workload::Scenario sc{1.0, 0.05, workload::WorkloadKind::kHighLevel};
    auto venv = workload::make_scenario_venv(sc, mgr.cluster(), 100 + i);
    const auto result = mgr.admit("tenant" + std::to_string(i),
                                  std::move(venv), i);
    if (!result.ok()) break;
    ++admitted;
  }
  EXPECT_GE(admitted, 3u);
  const auto u = mgr.utilization();
  EXPECT_LE(u.mem_fraction, 1.0 + 1e-9);
  EXPECT_LE(u.stor_fraction, 1.0 + 1e-9);
  EXPECT_LE(u.peak_link_fraction, 1.0 + 1e-9);

  // Combined load per host must respect the real capacities: validate each
  // tenant against its own residual-view is already done at admit; here
  // check the aggregate by releasing all and confirming full restoration.
  std::vector<emulator::TenantId> ids;
  for (std::size_t i = 1; i <= admitted; ++i) {
    ids.push_back(static_cast<emulator::TenantId>(i));
  }
  for (const auto id : ids) EXPECT_TRUE(mgr.release(id));
  // Release restores capacity up to floating-point cancellation noise.
  EXPECT_NEAR(mgr.utilization().mem_fraction, 0.0, 1e-12);
  EXPECT_NEAR(mgr.utilization().peak_link_fraction, 0.0, 1e-12);
}

}  // namespace
