// Tests for the emulation session state machine.
#include <gtest/gtest.h>

#include "core/repair.h"
#include "emulator/session.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using emulator::EmulationSession;
using emulator::Phase;
using emulator::SessionConfig;

EmulationSession small_session(SessionConfig cfg = {}) {
  return EmulationSession(line_cluster(3), cfg);
}

void define_pair(EmulationSession& s) {
  const GuestId a = s.add_guest({75, 192, 150});
  const GuestId b = s.add_guest({75, 192, 150});
  s.add_link(a, b, {0.75, 45.0});
}

TEST(Session, HappyPathLifecycle) {
  auto s = small_session();
  EXPECT_EQ(s.phase(), Phase::kDefining);
  define_pair(s);
  ASSERT_TRUE(s.map()) << s.last_error();
  EXPECT_EQ(s.phase(), Phase::kMapped);
  EXPECT_TRUE(s.has_mapping());
  ASSERT_TRUE(s.deploy()) << s.last_error();
  EXPECT_EQ(s.phase(), Phase::kDeployed);
  ASSERT_TRUE(s.run()) << s.last_error();
  EXPECT_EQ(s.phase(), Phase::kDone);
  EXPECT_GT(s.experiment_result().makespan_seconds, 0.0);
  EXPECT_GT(s.simulated_seconds(), 0.0);
  // Timeline: map, deploy, run.
  ASSERT_EQ(s.timeline().size(), 3u);
  EXPECT_EQ(s.timeline()[0].phase, "map");
  EXPECT_EQ(s.timeline()[1].phase, "deploy");
  EXPECT_EQ(s.timeline()[2].phase, "run");
}

TEST(Session, DeployBeforeMapRefused) {
  auto s = small_session();
  define_pair(s);
  EXPECT_FALSE(s.deploy());
  EXPECT_EQ(s.phase(), Phase::kDefining);  // not fatal
  EXPECT_FALSE(s.last_error().empty());
}

TEST(Session, RunBeforeDeployRefused) {
  auto s = small_session();
  define_pair(s);
  ASSERT_TRUE(s.map());
  EXPECT_FALSE(s.run());
  EXPECT_EQ(s.phase(), Phase::kMapped);
}

TEST(Session, RepeatedMapIsIdempotent) {
  auto s = small_session();
  define_pair(s);
  ASSERT_TRUE(s.map());
  const auto placement = s.mapping().guest_host;
  EXPECT_TRUE(s.map());  // no growth: no-op
  EXPECT_EQ(s.mapping().guest_host, placement);
  EXPECT_EQ(s.timeline().size(), 1u);
}

TEST(Session, GrowthReopensDefinitionAndExtends) {
  auto s = small_session();
  define_pair(s);
  ASSERT_TRUE(s.map());
  const auto placement = s.mapping().guest_host;

  const GuestId c = s.add_guest({75, 192, 150});
  EXPECT_EQ(s.phase(), Phase::kDefining);
  s.add_link(GuestId{0}, c, {0.5, 45.0});
  ASSERT_TRUE(s.map()) << s.last_error();
  EXPECT_EQ(s.phase(), Phase::kMapped);
  // Old guests kept their hosts (incremental extension).
  for (std::size_t g = 0; g < placement.size(); ++g) {
    EXPECT_EQ(s.mapping().guest_host[g], placement[g]);
  }
  ASSERT_EQ(s.timeline().size(), 2u);
  EXPECT_EQ(s.timeline()[1].phase, "extend");
}

TEST(Session, GrowthAfterRunRestartsPipeline) {
  auto s = small_session();
  define_pair(s);
  ASSERT_TRUE(s.map());
  ASSERT_TRUE(s.deploy());
  ASSERT_TRUE(s.run());
  s.add_guest({75, 192, 150});
  EXPECT_EQ(s.phase(), Phase::kDefining);
  ASSERT_TRUE(s.map());
  ASSERT_TRUE(s.deploy());
  ASSERT_TRUE(s.run());
  EXPECT_EQ(s.phase(), Phase::kDone);
}

TEST(Session, FirstMapFailureLeavesSessionDefinable) {
  auto s = EmulationSession(line_cluster(2, {1000, 100, 100}), {});
  s.add_guest({10, 5000, 10});  // fits nowhere
  EXPECT_FALSE(s.map());
  EXPECT_EQ(s.phase(), Phase::kDefining);
  EXPECT_FALSE(s.last_error().empty());
  // The tester trims the environment... (cannot remove guests; but can add
  // capacity-friendly ones and the failed state is not sticky).
}

TEST(Session, VmmOverheadShrinksCapacity) {
  SessionConfig cfg;
  cfg.vmm_overhead = {0.0, 4000.0, 0.0};  // eat almost all memory
  auto s = EmulationSession(line_cluster(2, {1000, 4096, 4096}), cfg);
  s.add_guest({10, 200, 10});  // 200 MB > 96 MB residual
  EXPECT_FALSE(s.map());
}

TEST(Session, WithoutFallbackPoolOnlyHmnRuns) {
  SessionConfig cfg;
  cfg.use_fallback_pool = false;
  auto s = small_session(cfg);
  define_pair(s);
  EXPECT_TRUE(s.map());
}

TEST(Session, ReportMentionsPhasesAndCounts) {
  auto s = small_session();
  define_pair(s);
  ASSERT_TRUE(s.map());
  ASSERT_TRUE(s.deploy());
  ASSERT_TRUE(s.run());
  const std::string report = s.report();
  EXPECT_NE(report.find("2 guests"), std::string::npos);
  EXPECT_NE(report.find("deploy"), std::string::npos);
  EXPECT_NE(report.find("run"), std::string::npos);
  EXPECT_NE(report.find("done"), std::string::npos);
}

TEST(Session, FailureInjectionRepairsAndRequiresRerun) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 57);
  emulator::EmulationSession s(cluster, {});
  util::Rng rng(58);
  std::vector<GuestId> guests;
  for (int i = 0; i < 80; ++i) {
    guests.push_back(s.add_guest({rng.uniform(50, 100),
                                  rng.uniform(128, 256),
                                  rng.uniform(100, 200)}));
  }
  for (std::size_t i = 1; i < guests.size(); ++i) {
    s.add_link(guests[i], guests[rng.index(i)],
               {rng.uniform(0.5, 1.0), rng.uniform(30, 60)});
  }
  ASSERT_TRUE(s.map()) << s.last_error();
  ASSERT_TRUE(s.deploy()) << s.last_error();
  ASSERT_TRUE(s.run()) << s.last_error();

  // Kill a host used by the mapping.
  const NodeId victim = s.mapping().guest_host[0];
  ASSERT_TRUE(s.inject_host_failure(victim)) << s.last_error();
  EXPECT_EQ(s.phase(), emulator::Phase::kDeployed);  // stale run dropped
  EXPECT_TRUE(core::mapping_avoids_node(s.cluster(), s.mapping(), victim));
  // The repair phase is on the timeline with redeployment cost.
  const auto& last = s.timeline().back();
  EXPECT_EQ(last.phase, "repair");
  EXPECT_GT(last.simulated_seconds, 0.0);
  // The experiment can run again on the repaired mapping.
  ASSERT_TRUE(s.run()) << s.last_error();
  EXPECT_EQ(s.phase(), emulator::Phase::kDone);
}

TEST(Session, GrowthAfterFailureAvoidsDeadHost) {
  // Regression (found by the lifecycle fuzz): new guests added after a
  // host failure must not be placed on the dead host, and new links must
  // not route through it.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 59);
  emulator::EmulationSession s(cluster, {});
  util::Rng rng(60);
  std::vector<GuestId> guests;
  guests.push_back(s.add_guest({75, 192, 150}));
  for (int i = 0; i < 40; ++i) {
    const GuestId g = s.add_guest({75, 192, 150});
    s.add_link(g, guests[rng.index(guests.size())], {0.75, 45.0});
    guests.push_back(g);
  }
  ASSERT_TRUE(s.map()) << s.last_error();
  const NodeId victim = s.mapping().guest_host[0];
  ASSERT_TRUE(s.inject_host_failure(victim)) << s.last_error();

  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      const GuestId g = s.add_guest({75, 192, 150});
      s.add_link(g, guests[rng.index(guests.size())], {0.75, 45.0});
      guests.push_back(g);
    }
    ASSERT_TRUE(s.map()) << s.last_error();
    EXPECT_TRUE(core::mapping_avoids_node(s.cluster(), s.mapping(), victim))
        << "wave " << wave;
  }
}

TEST(Session, FailureInjectionBeforeMapRefused) {
  auto s = small_session();
  define_pair(s);
  EXPECT_FALSE(s.inject_host_failure(n(0)));
  EXPECT_EQ(s.phase(), emulator::Phase::kDefining);
}

TEST(Session, UnrepairableFailureIsFatal) {
  // Two hosts, one guest per host, second host too small to take both.
  auto s = emulator::EmulationSession(
      line_cluster({{1000, 300, 4096}, {1000, 250, 4096}}), {});
  const GuestId a = s.add_guest({10, 200, 10});
  const GuestId b = s.add_guest({10, 200, 10});
  s.add_link(a, b, {1.0, 60.0});
  ASSERT_TRUE(s.map()) << s.last_error();
  // Guests are on different hosts (no host fits 400 MB); killing either
  // leaves the refugee with nowhere to go.
  const NodeId victim = s.mapping().guest_host[a.index()];
  EXPECT_FALSE(s.inject_host_failure(victim));
  EXPECT_EQ(s.phase(), emulator::Phase::kFailed);
  EXPECT_FALSE(s.last_error().empty());
}

TEST(Session, PaperScaleSessionCompletes) {
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 55);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 56);
  EmulationSession s(cluster, {});
  for (std::size_t g = 0; g < venv.guest_count(); ++g) {
    s.add_guest(venv.guest(GuestId{static_cast<GuestId::underlying_type>(g)}));
  }
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    const auto ep = venv.endpoints(id);
    s.add_link(ep.src, ep.dst, venv.link(id));
  }
  ASSERT_TRUE(s.map()) << s.last_error();
  ASSERT_TRUE(s.deploy()) << s.last_error();
  ASSERT_TRUE(s.run()) << s.last_error();
  // Simulated testbed time dwarfs the mapping wall time (paper §5.2).
  EXPECT_GT(s.simulated_seconds(), 100.0 * s.timeline()[0].wall_seconds);
}

}  // namespace
