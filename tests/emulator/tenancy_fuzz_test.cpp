// Randomized interleavings of admit / release / grow / defrag against the
// TenancyManager, checking the conservation invariants the orchestrator
// relies on: residual capacity stays within [0, pristine], aggregate
// utilization fractions stay sane, and releasing everything restores the
// cluster exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/validator.h"
#include "emulator/tenancy.h"
#include "orchestrator/defrag.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using emulator::TenancyManager;
using emulator::TenantId;

model::VirtualEnvironment random_venv(util::Rng& rng) {
  model::VirtualEnvironment venv;
  const std::size_t guests = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<GuestId> ids;
  for (std::size_t i = 0; i < guests; ++i) {
    ids.push_back(venv.add_guest({rng.uniform(50.0, 400.0),
                                  rng.uniform(256.0, 1536.0),
                                  rng.uniform(20.0, 200.0)}));
  }
  for (std::size_t i = 1; i < guests; ++i) {
    venv.add_link(ids[i - 1], ids[i],
                  {rng.uniform(1.0, 20.0), rng.uniform(40.0, 120.0)});
  }
  return venv;
}

void check_invariants(const TenancyManager& mgr) {
  const model::PhysicalCluster residual = mgr.residual_cluster();
  const model::PhysicalCluster& pristine = mgr.cluster();
  for (const NodeId h : pristine.hosts()) {
    const auto& left = residual.capacity(h);
    const auto& cap = pristine.capacity(h);
    // residual_cluster() clamps at zero; the upper bound is the real check:
    // releases may never hand back more than was taken.
    EXPECT_GE(left.mem_mb, 0.0);
    EXPECT_LE(left.mem_mb, cap.mem_mb + 1e-6);
    EXPECT_GE(left.stor_gb, 0.0);
    EXPECT_LE(left.stor_gb, cap.stor_gb + 1e-6);
    EXPECT_GE(left.proc_mips, 0.0);
    EXPECT_LE(left.proc_mips, cap.proc_mips + 1e-6);
  }
  for (std::size_t e = 0; e < pristine.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    EXPECT_GE(residual.link(id).bandwidth_mbps, 0.0);
    EXPECT_LE(residual.link(id).bandwidth_mbps,
              pristine.link(id).bandwidth_mbps + 1e-6);
  }
  const auto u = mgr.utilization();
  EXPECT_GE(u.mem_fraction, 0.0);
  EXPECT_LE(u.mem_fraction, 1.0 + 1e-9);
  EXPECT_LE(u.stor_fraction, 1.0 + 1e-9);
  EXPECT_LE(u.peak_link_fraction, 1.0 + 1e-6);
}

void expect_pristine(const TenancyManager& mgr) {
  ASSERT_EQ(mgr.tenant_count(), 0u);
  const model::PhysicalCluster residual = mgr.residual_cluster();
  const model::PhysicalCluster& pristine = mgr.cluster();
  for (const NodeId h : pristine.hosts()) {
    EXPECT_NEAR(residual.capacity(h).proc_mips,
                pristine.capacity(h).proc_mips, 1e-6);
    EXPECT_NEAR(residual.capacity(h).mem_mb, pristine.capacity(h).mem_mb,
                1e-6);
    EXPECT_NEAR(residual.capacity(h).stor_gb, pristine.capacity(h).stor_gb,
                1e-6);
  }
  for (std::size_t e = 0; e < pristine.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    EXPECT_NEAR(residual.link(id).bandwidth_mbps,
                pristine.link(id).bandwidth_mbps, 1e-6);
  }
  const auto u = mgr.utilization();
  EXPECT_NEAR(u.mem_fraction, 0.0, 1e-12);
  EXPECT_NEAR(u.peak_link_fraction, 0.0, 1e-12);
  EXPECT_EQ(u.guests, 0u);
}

TEST(TenancyFuzz, RandomInterleavingsKeepResidualConsistent) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    TenancyManager mgr(ring_cluster(5, {2000, 8192, 8192}));
    util::Rng rng(seed);
    std::vector<TenantId> live;
    std::size_t admitted = 0, rejected = 0, released = 0;

    for (int op = 0; op < 120; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.55 || live.empty()) {
        const auto result =
            mgr.admit("f" + std::to_string(op), random_venv(rng),
                      util::derive_seed(seed, static_cast<std::uint64_t>(op)));
        if (result.ok()) {
          live.push_back(*result.tenant);
          ++admitted;
        } else {
          ++rejected;
        }
      } else if (dice < 0.85) {
        const std::size_t pick = rng.index(live.size());
        ASSERT_TRUE(mgr.release(live[pick]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ++released;
      } else if (dice < 0.95) {
        const std::size_t pick = rng.index(live.size());
        const emulator::Tenant* tenant = mgr.tenant(live[pick]);
        ASSERT_NE(tenant, nullptr);
        model::VirtualEnvironment grown = tenant->venv;
        const GuestId added = grown.add_guest(
            {rng.uniform(50.0, 300.0), rng.uniform(256.0, 1024.0), 50.0});
        grown.add_link(GuestId{0}, added, {rng.uniform(1.0, 10.0), 60.0});
        // Either outcome is fine; the invariants must hold regardless.
        (void)mgr.grow(live[pick], std::move(grown),
                       util::derive_seed(seed, static_cast<std::uint64_t>(op),
                                         7));
      } else {
        const auto pass = orchestrator::run_defrag(mgr);
        if (pass.committed) {
          EXPECT_LE(pass.lbf_after, pass.lbf_before + 1e-9);
        }
      }
      check_invariants(mgr);
    }
    // The run must have exercised all three outcomes to mean anything.
    EXPECT_GT(admitted, 0u);
    EXPECT_GT(released, 0u);

    // Every mapping still validates against the full cluster per-tenant
    // before teardown (aggregate feasibility is checked above).
    for (const TenantId id : mgr.tenant_ids()) {
      const emulator::Tenant* tenant = mgr.tenant(id);
      EXPECT_TRUE(
          core::validate_mapping(mgr.cluster(), tenant->venv, tenant->mapping)
              .ok());
    }

    // Full release restores the pristine cluster.
    for (const TenantId id : mgr.tenant_ids()) {
      EXPECT_TRUE(mgr.release(id));
    }
    expect_pristine(mgr);
  }
}

TEST(TenancyFuzz, ReleaseInRandomOrderRestoresPristine) {
  TenancyManager mgr(line_cluster(4, {1500, 6144, 6144}));
  util::Rng rng(99);
  std::vector<TenantId> live;
  for (int i = 0; i < 20; ++i) {
    const auto result = mgr.admit("r" + std::to_string(i), random_venv(rng),
                                  util::derive_seed(99, static_cast<std::uint64_t>(i)));
    if (result.ok()) live.push_back(*result.tenant);
  }
  ASSERT_GT(live.size(), 2u);
  rng.shuffle(live.begin(), live.end());
  for (const TenantId id : live) {
    ASSERT_TRUE(mgr.release(id));
    check_invariants(mgr);
  }
  expect_pristine(mgr);
  // Double release reports failure and changes nothing.
  EXPECT_FALSE(mgr.release(live.front()));
  expect_pristine(mgr);
}

}  // namespace
