// Shared builders for core-layer tests: tiny clusters and virtual
// environments with hand-checkable numbers.
#pragma once

#include <vector>

#include "model/physical_cluster.h"
#include "model/virtual_environment.h"
#include "topology/topologies.h"

namespace hmn::test {

inline NodeId n(unsigned v) { return NodeId{v}; }
inline GuestId g(unsigned v) { return GuestId{v}; }
inline VirtLinkId vl(unsigned v) { return VirtLinkId{v}; }

/// Line of `count` hosts with identical capacities and uniform links.
inline model::PhysicalCluster line_cluster(
    std::size_t count, model::HostCapacity cap = {1000, 4096, 4096},
    model::LinkProps link = {1000.0, 5.0}) {
  return model::PhysicalCluster::build(
      topology::line(count), std::vector<model::HostCapacity>(count, cap),
      link);
}

/// Line of hosts with explicit capacities.
inline model::PhysicalCluster line_cluster(
    std::vector<model::HostCapacity> caps,
    model::LinkProps link = {1000.0, 5.0}) {
  const std::size_t count = caps.size();
  return model::PhysicalCluster::build(topology::line(count), std::move(caps),
                                       link);
}

/// Ring cluster with identical capacities.
inline model::PhysicalCluster ring_cluster(
    std::size_t count, model::HostCapacity cap = {1000, 4096, 4096},
    model::LinkProps link = {1000.0, 5.0}) {
  return model::PhysicalCluster::build(
      topology::ring(count), std::vector<model::HostCapacity>(count, cap),
      link);
}

/// A chain virtual environment: guests 0-1-2-...-k.
inline model::VirtualEnvironment chain_venv(
    std::size_t guests, model::GuestRequirements req = {75, 192, 150},
    model::VirtualLinkDemand demand = {1.0, 60.0}) {
  model::VirtualEnvironment venv;
  std::vector<GuestId> ids;
  for (std::size_t i = 0; i < guests; ++i) ids.push_back(venv.add_guest(req));
  for (std::size_t i = 1; i < guests; ++i) {
    venv.add_link(ids[i - 1], ids[i], demand);
  }
  return venv;
}

}  // namespace hmn::test
