// Tests for the deployment-time estimator.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "sim/deployment.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using sim::DeploymentSpec;
using sim::estimate_deployment;

TEST(Deployment, EmptyVenvIsZero) {
  const auto cluster = line_cluster(2);
  const model::VirtualEnvironment venv;
  core::Mapping m;
  const auto r = estimate_deployment(cluster, venv, m);
  EXPECT_DOUBLE_EQ(r.total_seconds, 0.0);
  EXPECT_EQ(r.bytes_moved_gb, 0u);
}

TEST(Deployment, LocalGuestsOnlyBoot) {
  // All guests on the repository host: no transfer, only boots.
  const auto cluster = line_cluster(2);
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.boot_seconds = 30.0;
  const auto r = estimate_deployment(cluster, venv, m, spec);
  EXPECT_DOUBLE_EQ(r.total_seconds, 60.0);
  EXPECT_DOUBLE_EQ(r.transfer_seconds, 0.0);
}

TEST(Deployment, TransferTimeMatchesVolumeOverBandwidth) {
  // One remote guest, 1 GB image over a 1000 Mbps edge:
  // 8192 Mb / 1000 Mbps = 8.192 s, plus one boot.
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {1000.0, 5.0});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(1)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.base_image_gb = 1.0;
  spec.boot_seconds = 10.0;
  const auto r = estimate_deployment(cluster, venv, m, spec);
  EXPECT_NEAR(r.transfer_seconds, 8.192, 1e-9);
  EXPECT_NEAR(r.total_seconds, 18.192, 1e-9);
  EXPECT_EQ(r.bytes_moved_gb, 1u);
}

TEST(Deployment, SharedEdgeSplitsBandwidth) {
  // Line 0-1-2: both hosts 1 and 2 pull through edge (0,1), so each gets
  // half of it; host 2's path bottleneck is 500 Mbps.
  const auto cluster = line_cluster(3, {1000, 4096, 4096}, {1000.0, 5.0});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(1), n(2)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.base_image_gb = 1.0;
  spec.boot_seconds = 0.0;
  const auto r = estimate_deployment(cluster, venv, m, spec);
  // Host 2: 8192 Mb at 500 Mbps = 16.384 s (the makespan).
  EXPECT_NEAR(r.total_seconds, 16.384, 1e-9);
}

TEST(Deployment, ImageScalesWithStorage) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {1000.0, 5.0});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 200});  // 200 GB storage
  core::Mapping m;
  m.guest_host = {n(1)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.base_image_gb = 1.0;
  spec.image_fraction_of_storage = 0.01;  // +2 GB
  spec.boot_seconds = 0.0;
  const auto r = estimate_deployment(cluster, venv, m, spec);
  EXPECT_EQ(r.bytes_moved_gb, 3u);
  EXPECT_NEAR(r.transfer_seconds, 3.0 * 8192.0 / 1000.0, 1e-9);
}

TEST(Deployment, DefaultRepositoryIsFirstHost) {
  const auto cluster = line_cluster(2);
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(0)};  // on default repo: zero transfer
  m.link_paths = {};
  const auto r = estimate_deployment(cluster, venv, m);
  EXPECT_DOUBLE_EQ(r.transfer_seconds, 0.0);
}

TEST(Deployment, FirstGuestSkipsAlreadyDeployed) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {1000.0, 5.0});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(1), n(1)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.base_image_gb = 1.0;
  spec.boot_seconds = 10.0;

  const auto full = estimate_deployment(cluster, venv, m, spec);
  spec.first_guest = 1;  // guest 0 already deployed
  const auto incremental = estimate_deployment(cluster, venv, m, spec);
  EXPECT_EQ(full.bytes_moved_gb, 2u);
  EXPECT_EQ(incremental.bytes_moved_gb, 1u);
  EXPECT_LT(incremental.total_seconds, full.total_seconds);
  // Exactly one transfer + one boot.
  EXPECT_NEAR(incremental.total_seconds, 8.192 + 10.0, 1e-9);

  spec.first_guest = 2;  // everything deployed: nothing to do
  const auto noop = estimate_deployment(cluster, venv, m, spec);
  EXPECT_DOUBLE_EQ(noop.total_seconds, 0.0);
}

TEST(Deployment, BootOnlyGuestsStillCounted) {
  // Zero-size images (pre-staged) still cost boots.
  const auto cluster = line_cluster(2);
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(1)};
  m.link_paths = {};
  DeploymentSpec spec;
  spec.repository = n(0);
  spec.base_image_gb = 0.0;
  spec.boot_seconds = 25.0;
  const auto r = estimate_deployment(cluster, venv, m, spec);
  EXPECT_DOUBLE_EQ(r.total_seconds, 25.0);
}

TEST(Deployment, PaperScaleDeploymentDwarfsMappingTime) {
  // The paper's Section 5.2 argument: deployment time exceeds mapping
  // time.  2000 slim guests on the torus: mapping ~0.1 s, deployment
  // (0.5 GB images + 20 s boots) is minutes.
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, 91);
  const workload::Scenario sc{50.0, 0.01, workload::WorkloadKind::kLowLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, 92);
  const auto out = core::HmnMapper().map(cluster, venv, 93);
  ASSERT_TRUE(out.ok());
  const auto r = estimate_deployment(cluster, venv, *out.mapping);
  EXPECT_GT(r.total_seconds, 100.0 * out.stats.total_seconds);
}

}  // namespace
