// Tests for the master-worker application simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/master_worker.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using sim::MasterWorkerSpec;
using sim::run_master_worker;

struct FarmFixture : testing::Test {
  model::PhysicalCluster cluster = line_cluster(3, {1000, 4096, 4096});
  model::VirtualEnvironment venv;
  core::Mapping m;

  /// Master (guest 0) with `workers` workers, all colocated with it unless
  /// placed elsewhere later.
  void build(std::size_t workers, double worker_mips = 100.0) {
    const GuestId master = venv.add_guest({50, 64, 64});
    for (std::size_t i = 0; i < workers; ++i) {
      const GuestId w = venv.add_guest({worker_mips, 64, 64});
      venv.add_link(master, w, {10.0, 60.0});
    }
    m.guest_host.assign(venv.guest_count(), n(0));
    m.link_paths.assign(venv.link_count(), {});
  }

  static MasterWorkerSpec spec(std::size_t tasks) {
    MasterWorkerSpec s;
    s.tasks = tasks;
    s.task_seconds = 1.0;
    s.jitter_fraction = 0.0;
    s.task_kb = 0.0;  // pure-compute farm unless a test says otherwise
    s.result_kb = 0.0;
    return s;
  }
};

TEST_F(FarmFixture, EmptyVenvInstant) {
  const model::VirtualEnvironment empty;
  const auto r = run_master_worker(cluster, empty, core::Mapping{});
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
}

TEST_F(FarmFixture, NoWorkersInstant) {
  venv.add_guest({50, 64, 64});
  m.guest_host = {n(0)};
  const auto r = run_master_worker(cluster, venv, m, spec(10));
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
  EXPECT_EQ(r.workers, 0u);
  EXPECT_EQ(r.tasks_completed, 0u);
}

TEST_F(FarmFixture, AllTasksComplete) {
  build(4);
  const auto r = run_master_worker(cluster, venv, m, spec(13));
  EXPECT_EQ(r.tasks_completed, 13u);
  EXPECT_EQ(r.workers, 4u);
  EXPECT_EQ(std::accumulate(r.tasks_per_worker.begin(),
                            r.tasks_per_worker.end(), std::size_t{0}),
            13u);
}

TEST_F(FarmFixture, DefaultTaskCountIsFourPerWorker) {
  build(3);
  MasterWorkerSpec s = spec(0);
  const auto r = run_master_worker(cluster, venv, m, s);
  EXPECT_EQ(r.tasks_completed, 12u);
}

TEST_F(FarmFixture, PerfectFarmMakespan) {
  // 4 identical colocated workers, 8 unit tasks, no transfers/jitter:
  // exactly two rounds.
  build(4);
  const auto r = run_master_worker(cluster, venv, m, spec(8));
  EXPECT_NEAR(r.makespan_seconds, 2.0, 1e-9);
  for (const std::size_t t : r.tasks_per_worker) EXPECT_EQ(t, 2u);
}

TEST_F(FarmFixture, OversubscribedWorkersStretchMakespan) {
  // Same farm but crammed with CPU demand 4x capacity: 4 workers x 100
  // MIPS + master on a 1000-MIPS host is fine; instead pile the workers
  // onto a tiny host by giving them big demand.
  build(4, 1000.0);  // 4 x 1000 + 50 > 1000: heavy oversubscription
  const auto balanced_like = run_master_worker(cluster, venv, m, spec(8));
  EXPECT_GT(balanced_like.makespan_seconds, 2.0 * 2.0);
}

TEST_F(FarmFixture, FasterWorkersCompleteMoreTasks) {
  // Two workers; one on an oversubscribed host runs at half speed.
  const GuestId master = venv.add_guest({50, 64, 64});
  const GuestId fast = venv.add_guest({100, 64, 64});
  const GuestId slow = venv.add_guest({2000, 64, 64});  // 2x host capacity
  venv.add_link(master, fast, {10.0, 60.0});
  venv.add_link(master, slow, {10.0, 60.0});
  m.guest_host = {n(0), n(1), n(2)};
  m.link_paths = {{EdgeId{0}}, {EdgeId{0}, EdgeId{1}}};
  auto s = spec(12);
  const auto r = run_master_worker(cluster, venv, m, s);
  EXPECT_EQ(r.tasks_completed, 12u);
  EXPECT_GT(r.tasks_per_worker[0], r.tasks_per_worker[1]);
}

TEST_F(FarmFixture, TransferTimeCountsForRemoteWorkers) {
  const GuestId master = venv.add_guest({50, 64, 64});
  const GuestId worker = venv.add_guest({100, 64, 64});
  venv.add_link(master, worker, {1.0, 60.0});  // 1 Mbps virtual link
  m.guest_host = {n(0), n(1)};
  m.link_paths = {{EdgeId{0}}};
  MasterWorkerSpec s = spec(1);
  s.task_kb = 100.0;
  s.result_kb = 100.0;
  const auto r = run_master_worker(cluster, venv, m, s);
  // 1 task: send (5 ms + 800 kbit / 1000 kbps) + compute 1 s + reply same.
  const double transfer = 0.005 + 0.8;
  EXPECT_NEAR(r.makespan_seconds, 1.0 + 2 * transfer, 1e-9);
}

TEST_F(FarmFixture, DeterministicWithJitter) {
  build(5);
  MasterWorkerSpec s = spec(20);
  s.jitter_fraction = 0.3;
  s.seed = 99;
  const auto a = run_master_worker(cluster, venv, m, s);
  const auto b = run_master_worker(cluster, venv, m, s);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.tasks_per_worker, b.tasks_per_worker);
}

}  // namespace
