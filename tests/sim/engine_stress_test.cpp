// Stress and ordering tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace {

using hmn::sim::Engine;
using hmn::sim::EventQueue;

TEST(EngineStress, HundredThousandRandomEventsExecuteInOrder) {
  Engine engine;
  hmn::util::Rng rng(55);
  constexpr int kEvents = 100000;
  int executed = 0;
  double last_time = -1.0;
  for (int i = 0; i < kEvents; ++i) {
    engine.schedule(rng.uniform(0.0, 1000.0), [&] {
      EXPECT_GE(engine.now(), last_time);
      last_time = engine.now();
      ++executed;
    });
  }
  engine.run();
  EXPECT_EQ(executed, kEvents);
  EXPECT_EQ(engine.events_processed(), static_cast<std::uint64_t>(kEvents));
}

TEST(EngineStress, CascadedSchedulingChain) {
  // Each event schedules the next; a deep chain must neither overflow nor
  // drift the clock.
  Engine engine;
  constexpr int kDepth = 50000;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < kDepth) engine.schedule(0.001, step);
  };
  engine.schedule(0.001, step);
  const double end = engine.run();
  EXPECT_EQ(count, kDepth);
  EXPECT_NEAR(end, kDepth * 0.001, 1e-6);
}

TEST(EngineStress, SimultaneousEventsFifoAtScale) {
  EventQueue q;
  constexpr int kN = 10000;
  std::vector<int> order;
  order.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    q.push(7.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "FIFO broken at " << i;
  }
}

TEST(EngineStress, InterleavedHorizonRuns) {
  // Alternating run(horizon) calls must process each event exactly once.
  Engine engine;
  hmn::util::Rng rng(77);
  int executed = 0;
  for (int i = 0; i < 1000; ++i) {
    engine.schedule(rng.uniform(0.0, 100.0), [&] { ++executed; });
  }
  for (double horizon = 10.0; horizon <= 100.0; horizon += 10.0) {
    engine.run(horizon);
  }
  EXPECT_EQ(executed, 1000);
}

TEST(EngineStress, EventsScheduledDuringRunWithinHorizonExecute) {
  Engine engine;
  int late = 0;
  engine.schedule(1.0, [&] {
    engine.schedule(2.0, [&] { ++late; });  // fires at t=3
  });
  engine.run(5.0);
  EXPECT_EQ(late, 1);

  Engine engine2;
  int beyond = 0;
  engine2.schedule(1.0, [&] {
    engine2.schedule(10.0, [&] { ++beyond; });  // t=11 > horizon
  });
  engine2.run(5.0);
  EXPECT_EQ(beyond, 0);
}

}  // namespace
