// Tests for the discrete-event engine, CPU/network models, and the
// emulation-experiment simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu_model.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/network_model.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fn = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsHead) {
  sim::EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Engine, ClockAdvancesMonotonically) {
  sim::Engine e;
  std::vector<double> stamps;
  e.schedule(2.0, [&] { stamps.push_back(e.now()); });
  e.schedule(1.0, [&] {
    stamps.push_back(e.now());
    e.schedule(0.5, [&] { stamps.push_back(e.now()); });
  });
  const double end = e.run();
  EXPECT_EQ(stamps, (std::vector<double>{1.0, 1.5, 2.0}));
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, HorizonStopsExecution) {
  sim::Engine e;
  int ran = 0;
  e.schedule(1.0, [&] { ++ran; });
  e.schedule(10.0, [&] { ++ran; });
  e.run(5.0);
  EXPECT_EQ(ran, 1);
  // Remaining event still fires when run again with a larger horizon.
  e.run(20.0);
  EXPECT_EQ(ran, 2);
}

TEST(Engine, ScheduleAtAbsoluteTime) {
  sim::Engine e;
  double seen = -1.0;
  e.schedule_at(4.0, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

TEST(Engine, EmptyRunReturnsZero) {
  sim::Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
}

// ---- CPU model.

TEST(CpuModel, UndersubscribedGuestsGetFullRate) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  model::VirtualEnvironment venv;
  venv.add_guest({300, 64, 64});
  venv.add_guest({400, 64, 64});
  core::Mapping m;
  m.guest_host = {n(0), n(0)};  // 700 <= 1000
  m.link_paths = {};
  const auto rate = sim::effective_guest_mips(cluster, venv, m);
  EXPECT_DOUBLE_EQ(rate[0], 300.0);
  EXPECT_DOUBLE_EQ(rate[1], 400.0);
}

TEST(CpuModel, OversubscriptionScalesProportionally) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  model::VirtualEnvironment venv;
  venv.add_guest({1500, 64, 64});
  venv.add_guest({500, 64, 64});
  core::Mapping m;
  m.guest_host = {n(0), n(0)};  // demand 2000 on 1000 MIPS: half rate
  m.link_paths = {};
  const auto rate = sim::effective_guest_mips(cluster, venv, m);
  EXPECT_DOUBLE_EQ(rate[0], 750.0);
  EXPECT_DOUBLE_EQ(rate[1], 250.0);
}

TEST(CpuModel, HostLoadFactors) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  model::VirtualEnvironment venv;
  venv.add_guest({500, 64, 64});
  venv.add_guest({2000, 64, 64});
  core::Mapping m;
  m.guest_host = {n(0), n(1)};
  m.link_paths = {};
  const auto load = sim::host_cpu_load(cluster, venv, m);
  EXPECT_DOUBLE_EQ(load[0], 0.5);
  EXPECT_DOUBLE_EQ(load[1], 2.0);
}

// ---- Network model.

TEST(NetworkModel, TransferTimeLatencyPlusSerialization) {
  const auto cluster = line_cluster(3, {1000, 4096, 4096}, {100.0, 5.0});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const VirtLinkId l = venv.add_link(a, b, {10.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};
  const sim::NetworkModel net(cluster, venv, m);
  EXPECT_DOUBLE_EQ(net.path_latency_ms(l), 10.0);
  // 100 kB over 10 Mbps: 800 kbit / 10000 kbit/s = 0.08 s; plus 0.01 s.
  EXPECT_NEAR(net.transfer_seconds(l, 100.0), 0.09, 1e-12);
}

TEST(NetworkModel, ColocatedIsNearInstant) {
  const auto cluster = line_cluster(2);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const VirtLinkId l = venv.add_link(a, b, {0.001, 60.0});  // tiny vbw
  core::Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{}};
  const sim::NetworkModel net(cluster, venv, m);
  EXPECT_DOUBLE_EQ(net.path_latency_ms(l), 0.0);
  EXPECT_LT(net.transfer_seconds(l, 100.0), 1e-3);  // VMM-internal speed
}

// ---- Experiment simulator.

struct ExperimentFixture : testing::Test {
  model::PhysicalCluster cluster = line_cluster(2, {1000, 4096, 4096});

  static sim::ExperimentSpec spec(std::size_t iters = 3) {
    sim::ExperimentSpec s;
    s.iterations = iters;
    s.compute_seconds = 1.0;
    s.jitter_fraction = 0.0;
    s.message_kb = 8.0;
    s.seed = 7;
    return s;
  }
};

TEST_F(ExperimentFixture, EmptyVenvZeroMakespan) {
  model::VirtualEnvironment venv;
  core::Mapping m;
  const auto r = sim::run_experiment(cluster, venv, m, spec());
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
  EXPECT_EQ(r.messages_delivered, 0u);
}

TEST_F(ExperimentFixture, LoneGuestComputesExactly) {
  model::VirtualEnvironment venv;
  venv.add_guest({100, 64, 64});
  core::Mapping m;
  m.guest_host = {n(0)};
  m.link_paths = {};
  const auto r = sim::run_experiment(cluster, venv, m, spec(4));
  // No contention, no jitter: 4 iterations x 1 s.
  EXPECT_NEAR(r.makespan_seconds, 4.0, 1e-9);
  EXPECT_EQ(r.messages_delivered, 0u);
}

TEST_F(ExperimentFixture, OversubscriptionStretchesMakespan) {
  model::VirtualEnvironment venv;
  for (int i = 0; i < 4; ++i) venv.add_guest({500, 64, 64});
  core::Mapping balanced;
  balanced.guest_host = {n(0), n(0), n(1), n(1)};  // 1000 per host: exact
  balanced.link_paths = {};
  core::Mapping skewed;
  skewed.guest_host = {n(0), n(0), n(0), n(0)};  // 2000 on host 0: 2x slow
  skewed.link_paths = {};
  const auto r_bal = sim::run_experiment(cluster, venv, balanced, spec());
  const auto r_skew = sim::run_experiment(cluster, venv, skewed, spec());
  EXPECT_NEAR(r_bal.makespan_seconds, 3.0, 1e-9);
  EXPECT_NEAR(r_skew.makespan_seconds, 6.0, 1e-9);
}

TEST_F(ExperimentFixture, NeighborsExchangeMessages) {
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({100, 64, 64});
  const GuestId b = venv.add_guest({100, 64, 64});
  venv.add_link(a, b, {10.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(1)};
  m.link_paths = {{EdgeId{0}}};
  const auto r = sim::run_experiment(cluster, venv, m, spec(2));
  // 2 guests x 2 iterations x 1 message each way.
  EXPECT_EQ(r.messages_delivered, 4u);
  // Makespan = iterations x (compute + transfer).
  const double transfer = 0.005 + 8.0 * 8.0 / (10.0 * 1e3);
  EXPECT_NEAR(r.makespan_seconds, 2.0 * (1.0 + transfer), 1e-9);
  EXPECT_GT(r.events_processed, 0u);
}

TEST_F(ExperimentFixture, BspBarrierWaitsForSlowNeighbor) {
  // A fast guest linked to a slow (oversubscribed) one finishes at the slow
  // guest's pace.
  model::VirtualEnvironment venv;
  const GuestId fast = venv.add_guest({100, 64, 64});
  const GuestId slow1 = venv.add_guest({800, 64, 64});
  venv.add_guest({800, 64, 64});  // second co-located CPU hog
  venv.add_link(fast, slow1, {10.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(1), n(1)};  // host 1 oversubscribed 1.6x
  m.link_paths = {{EdgeId{0}}, {}};
  m.link_paths.resize(venv.link_count());
  const auto r = sim::run_experiment(cluster, venv, m, spec(1));
  EXPECT_GT(r.makespan_seconds, 1.5);  // fast guest alone would take ~1 s
}


TEST_F(ExperimentFixture, DeterministicForSameSeed) {
  auto venv = chain_venv(6, {300, 64, 64}, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(0), n(0), n(1), n(1), n(1)};
  m.link_paths.assign(venv.link_count(), {});
  m.link_paths[2] = {EdgeId{0}};  // the 2-3 link crosses hosts
  auto s = spec();
  s.jitter_fraction = 0.3;
  const auto r1 = sim::run_experiment(cluster, venv, m, s);
  const auto r2 = sim::run_experiment(cluster, venv, m, s);
  EXPECT_DOUBLE_EQ(r1.makespan_seconds, r2.makespan_seconds);
  EXPECT_EQ(r1.events_processed, r2.events_processed);
}

TEST_F(ExperimentFixture, StragglerIsOnOversubscribedHost) {
  model::VirtualEnvironment venv;
  const GuestId fast = venv.add_guest({100, 64, 64});
  const GuestId slow1 = venv.add_guest({900, 64, 64});
  const GuestId slow2 = venv.add_guest({900, 64, 64});
  (void)fast;
  (void)slow1;
  core::Mapping m;
  m.guest_host = {n(0), n(1), n(1)};  // host 1 at 1.8x capacity
  m.link_paths = {};
  const auto r = sim::run_experiment(cluster, venv, m, spec(2));
  ASSERT_EQ(r.guest_finish_seconds.size(), 3u);
  const GuestId worst = sim::straggler(r);
  EXPECT_EQ(m.guest_host[worst.index()], n(1));
  EXPECT_DOUBLE_EQ(r.guest_finish_seconds[worst.index()],
                   r.makespan_seconds);
  (void)slow2;
}

TEST_F(ExperimentFixture, StragglerOfEmptyResultInvalid) {
  EXPECT_FALSE(sim::straggler(sim::ExperimentResult{}).valid());
}

TEST_F(ExperimentFixture, MeanGuestTimeBelowMakespan) {
  auto venv = chain_venv(5, {200, 64, 64}, {1.0, 60.0});
  core::Mapping m;
  m.guest_host.assign(5, n(0));
  m.link_paths.assign(venv.link_count(), {});
  auto s = spec();
  s.jitter_fraction = 0.4;
  const auto r = sim::run_experiment(cluster, venv, m, s);
  EXPECT_GT(r.mean_guest_seconds, 0.0);
  EXPECT_LE(r.mean_guest_seconds, r.makespan_seconds + 1e-9);
}

}  // namespace
