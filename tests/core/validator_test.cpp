// Tests for the independent mapping validator (Eqs. 1-9).
#include <gtest/gtest.h>

#include "core/validator.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::ConstraintId;
using core::Mapping;
using core::validate_mapping;
using model::VirtualEnvironment;

bool has_violation(const core::ValidationReport& report, ConstraintId id) {
  for (const auto& v : report.violations) {
    if (v.constraint == id) return true;
  }
  return false;
}

struct ValidatorFixture : testing::Test {
  model::PhysicalCluster cluster = line_cluster(3, {1000, 1000, 1000},
                                                {100.0, 5.0});
  VirtualEnvironment venv;
  GuestId a, b;
  VirtLinkId ab;

  void SetUp() override {
    a = venv.add_guest({100, 400, 400});
    b = venv.add_guest({100, 400, 400});
    ab = venv.add_link(a, b, {50.0, 20.0});
  }

  Mapping valid_mapping() const {
    Mapping m;
    m.guest_host = {n(0), n(1)};
    m.link_paths = {{EdgeId{0}}};
    return m;
  }
};

TEST_F(ValidatorFixture, ValidMappingPasses) {
  const auto report = validate_mapping(cluster, venv, valid_mapping());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "valid");
}

TEST_F(ValidatorFixture, WrongGuestCountRejected) {
  Mapping m = valid_mapping();
  m.guest_host.pop_back();
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_violation(report, ConstraintId::kGuestMappedOnce));
}

TEST_F(ValidatorFixture, UnmappedGuestRejected) {
  Mapping m = valid_mapping();
  m.guest_host[1] = NodeId::invalid();
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kGuestMappedOnce));
}

TEST_F(ValidatorFixture, WrongPathCountRejected) {
  Mapping m = valid_mapping();
  m.link_paths.clear();
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_FALSE(report.ok());
}

TEST_F(ValidatorFixture, MemoryOvercommitDetected) {
  // Both guests (400 MB each) on a 1000-MB host is fine; tripling the
  // guest memory breaks Eq. 2.
  VirtualEnvironment fat;
  const GuestId x = fat.add_guest({1, 600, 1});
  const GuestId y = fat.add_guest({1, 600, 1});
  fat.add_link(x, y, {1.0, 60.0});
  Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{}};
  const auto report = validate_mapping(cluster, fat, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kMemoryCapacity));
  EXPECT_FALSE(has_violation(report, ConstraintId::kStorageCapacity));
}

TEST_F(ValidatorFixture, StorageOvercommitDetected) {
  VirtualEnvironment fat;
  const GuestId x = fat.add_guest({1, 1, 800});
  const GuestId y = fat.add_guest({1, 1, 800});
  fat.add_link(x, y, {1.0, 60.0});
  Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{}};
  const auto report = validate_mapping(cluster, fat, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kStorageCapacity));
}

TEST_F(ValidatorFixture, CpuOvercommitIsNotAViolation) {
  VirtualEnvironment hungry;
  const GuestId x = hungry.add_guest({5000, 1, 1});  // 5x the host CPU
  const GuestId y = hungry.add_guest({5000, 1, 1});
  hungry.add_link(x, y, {1.0, 60.0});
  Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{}};
  EXPECT_TRUE(validate_mapping(cluster, hungry, m).ok());
}

TEST_F(ValidatorFixture, ColocatedWithNonEmptyPathRejected) {
  Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{EdgeId{0}}};
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kPathEndpoints));
}

TEST_F(ValidatorFixture, SeparatedWithEmptyPathRejected) {
  Mapping m;
  m.guest_host = {n(0), n(1)};
  m.link_paths = {{}};
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kPathEndpoints));
}

TEST_F(ValidatorFixture, PathToWrongHostRejected) {
  Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}}};  // reaches node 1, not node 2
  const auto report = validate_mapping(cluster, venv, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kPathChains));
}

TEST_F(ValidatorFixture, ReversedPathAccepted) {
  // Links are undirected: a path expressed from the destination's side is
  // still valid.
  Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{1}, EdgeId{0}}};  // 2->1->0 orientation
  EXPECT_TRUE(validate_mapping(cluster, venv, m).ok());
}

TEST_F(ValidatorFixture, LatencyViolationDetected) {
  // Demand allows 20 ms = 4 hops of 5 ms; use a longer venv bound instead:
  // place endpoints 2 hops apart but set bound to 5 ms (one hop).
  VirtualEnvironment tight;
  const GuestId x = tight.add_guest({1, 1, 1});
  const GuestId y = tight.add_guest({1, 1, 1});
  tight.add_link(x, y, {1.0, 5.0});
  Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};  // 10 ms > 5 ms
  const auto report = validate_mapping(cluster, tight, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kLatencyBound));
}

TEST_F(ValidatorFixture, AggregateBandwidthViolationDetected) {
  // Three 50-Mbps links through one 100-Mbps edge.
  VirtualEnvironment heavy;
  std::vector<GuestId> gs;
  for (int i = 0; i < 6; ++i) gs.push_back(heavy.add_guest({1, 1, 1}));
  for (int i = 0; i < 3; ++i) {
    heavy.add_link(gs[static_cast<std::size_t>(2 * i)],
                   gs[static_cast<std::size_t>(2 * i + 1)], {50.0, 60.0});
  }
  Mapping m;
  m.guest_host = {n(0), n(1), n(0), n(1), n(0), n(1)};
  m.link_paths = {{EdgeId{0}}, {EdgeId{0}}, {EdgeId{0}}};
  const auto report = validate_mapping(cluster, heavy, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kBandwidthCapacity));
  // Exactly at capacity (two links) passes.
  m.link_paths = {{EdgeId{0}}, {EdgeId{0}}, {EdgeId{1}, EdgeId{0}}};
  // Third path is invalid anyway (wrong chain); rebuild as two links only.
  VirtualEnvironment two;
  std::vector<GuestId> g2;
  for (int i = 0; i < 4; ++i) g2.push_back(two.add_guest({1, 1, 1}));
  two.add_link(g2[0], g2[1], {50.0, 60.0});
  two.add_link(g2[2], g2[3], {50.0, 60.0});
  Mapping m2;
  m2.guest_host = {n(0), n(1), n(0), n(1)};
  m2.link_paths = {{EdgeId{0}}, {EdgeId{0}}};
  EXPECT_TRUE(validate_mapping(cluster, two, m2).ok());
}

TEST_F(ValidatorFixture, GuestOnSwitchRejected) {
  auto topo = topology::star(2);
  std::vector<model::HostCapacity> caps(2, {1000, 1000, 1000});
  const auto star_cluster = model::PhysicalCluster::build(
      std::move(topo), std::move(caps), model::LinkProps{100, 5});
  VirtualEnvironment v;
  const GuestId x = v.add_guest({1, 1, 1});
  (void)x;
  Mapping m;
  m.guest_host = {n(2)};  // the switch
  m.link_paths = {};
  const auto report = validate_mapping(star_cluster, v, m);
  EXPECT_TRUE(has_violation(report, ConstraintId::kGuestOnHostNode));
}

TEST_F(ValidatorFixture, LoopPathRejected) {
  // Ring cluster: a path that circles and revisits a node.
  const auto ring = ring_cluster(4, {1000, 1000, 1000}, {100.0, 5.0});
  VirtualEnvironment v;
  const GuestId x = v.add_guest({1, 1, 1});
  const GuestId y = v.add_guest({1, 1, 1});
  v.add_link(x, y, {1.0, 100.0});
  Mapping m;
  m.guest_host = {n(0), n(1)};
  // Edges of ring(4): (0,1) (1,2) (2,3) (3,0).  Path 0->1->2->3->0->1
  // revisits 0 and 1.
  m.link_paths = {{EdgeId{0}, EdgeId{1}, EdgeId{2}, EdgeId{3}, EdgeId{0}}};
  const auto report = validate_mapping(ring, v, m);
  EXPECT_FALSE(report.ok());
}

TEST_F(ValidatorFixture, MultipleViolationsAllCollected) {
  VirtualEnvironment v;
  const GuestId x = v.add_guest({1, 5000, 5000});  // overcommits both
  const GuestId y = v.add_guest({1, 5000, 5000});
  v.add_link(x, y, {1.0, 60.0});
  Mapping m;
  m.guest_host = {n(0), n(0)};
  m.link_paths = {{}};
  const auto report = validate_mapping(cluster, v, m);
  EXPECT_GE(report.violations.size(), 2u);
  EXPECT_NE(report.summary().find("violation"), std::string::npos);
}

}  // namespace
