// Failure-injection tests: kill a host, repair the mapping, verify the
// result avoids the corpse and still satisfies every constraint.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/repair.h"
#include "core/validator.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::mapping_avoids_node;
using core::repair_mapping;
using core::RepairStats;

TEST(Repair, AvoidanceCheckerDetectsGuestsAndPaths) {
  const auto cluster = line_cluster(3);
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};  // passes through node 1
  EXPECT_FALSE(mapping_avoids_node(cluster, m, n(0)));  // guest on it
  EXPECT_FALSE(mapping_avoids_node(cluster, m, n(1)));  // path through it
  core::Mapping colocated;
  colocated.guest_host = {n(0), n(0)};
  colocated.link_paths = {{}};
  EXPECT_TRUE(mapping_avoids_node(cluster, colocated, n(1)));
  EXPECT_TRUE(mapping_avoids_node(cluster, colocated, n(2)));
}

TEST(Repair, MovesEvictedGuestAndReroutes) {
  // Ring of 4, guests on hosts 0 and 2, path through 1.  Kill host 1: the
  // path must re-route the other way; guests stay.
  const auto cluster = ring_cluster(4);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};  // 0-1-2

  RepairStats stats;
  const auto out = repair_mapping(cluster, venv, m, n(1), &stats);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(stats.guests_moved, 0u);
  EXPECT_EQ(stats.links_rerouted, 1u);
  EXPECT_TRUE(mapping_avoids_node(cluster, *out.mapping, n(1)));
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
  // Untouched placements.
  EXPECT_EQ(out.mapping->guest_host[a.index()], n(0));
  EXPECT_EQ(out.mapping->guest_host[b.index()], n(2));
}

TEST(Repair, EvictsGuestsFromFailedHost) {
  const auto cluster = ring_cluster(4);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(1), n(2)};
  m.link_paths = {{EdgeId{1}}};  // edge (1,2)

  RepairStats stats;
  const auto out = repair_mapping(cluster, venv, m, n(1), &stats);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(stats.guests_moved, 1u);
  EXPECT_NE(out.mapping->guest_host[a.index()], n(1));
  EXPECT_TRUE(mapping_avoids_node(cluster, *out.mapping, n(1)));
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(Repair, RefugeeJoinsAffinityNeighbor) {
  // Evicted guest has a heavy link to a survivor with room: it co-locates.
  const auto cluster = ring_cluster(4);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {9.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(1), n(3)};
  m.link_paths = {{EdgeId{1}, EdgeId{2}}};  // 1-2-3

  const auto out = repair_mapping(cluster, venv, m, n(1));
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(out.mapping->guest_host[a.index()], n(3));
  EXPECT_TRUE(out.mapping->link_paths[0].empty());  // now intra-host
}

TEST(Repair, FailsWhenNoSurvivorFits) {
  const auto cluster = line_cluster({{1000, 4096, 4096}, {1000, 50, 4096}});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(0)};
  m.link_paths = {};
  const auto out = repair_mapping(cluster, venv, m, n(0));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(Repair, FailsWhenSurvivingFabricCannotRoute) {
  // Line 0-1-2: killing the middle host disconnects the ends.
  const auto cluster = line_cluster(3);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};
  // Big guests so the refugees cannot just co-locate... here no guest is
  // evicted (failure is mid-path) but re-routing 0->2 without node 1 is
  // impossible on a line.
  const auto out = repair_mapping(cluster, venv, m, n(1));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kNetworkingFailed);
}

TEST(Repair, InvalidHostRejected) {
  const auto cluster = line_cluster(2);
  const model::VirtualEnvironment venv;
  core::Mapping m;
  EXPECT_EQ(repair_mapping(cluster, venv, m, NodeId::invalid()).error,
            core::MapErrorCode::kInvalidInput);
  EXPECT_EQ(repair_mapping(cluster, venv, m, n(99)).error,
            core::MapErrorCode::kInvalidInput);
}

class RepairSweep : public testing::TestWithParam<int> {};

TEST_P(RepairSweep, PaperInstanceSurvivesAnyHostFailure) {
  // Map a paper-scale instance, then kill each of several hosts in turn;
  // every successful repair must avoid the corpse, keep every untouched
  // placement, and satisfy the validator.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto cluster = workload::make_paper_cluster(
      workload::ClusterKind::kTorus2D, seed);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, seed + 1);
  const auto base = core::HmnMapper().map(cluster, venv, seed);
  ASSERT_TRUE(base.ok());

  for (unsigned h = 0; h < 40; h += 7) {
    RepairStats stats;
    const auto out =
        repair_mapping(cluster, venv, *base.mapping, n(h), &stats);
    ASSERT_TRUE(out.ok()) << "host " << h << ": " << out.detail;
    EXPECT_TRUE(mapping_avoids_node(cluster, *out.mapping, n(h)));
    EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok())
        << "host " << h;
    // Guests not on the failed host are untouched.
    for (std::size_t g = 0; g < venv.guest_count(); ++g) {
      if (base.mapping->guest_host[g] != n(h)) {
        EXPECT_EQ(out.mapping->guest_host[g], base.mapping->guest_host[g]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairSweep, testing::Range(100, 104));

// --- FailureSet-based repair: link failures, dark links, transit-only ---

TEST(Repair, LinkFailureReroutesWithoutEviction) {
  // Ring of 4, path 0-1-2 over edges {0,1}.  Kill edge 0: the path must go
  // the long way round (0-3-2) and no guest may move.
  const auto cluster = ring_cluster(4);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};
  EXPECT_FALSE(core::mapping_avoids_edge(m, EdgeId{0}));

  core::RepairOptions opts;
  opts.failed.links = {EdgeId{0}};
  RepairStats stats;
  const auto out = repair_mapping(cluster, venv, m, opts, &stats);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(stats.guests_moved, 0u);
  EXPECT_EQ(stats.links_rerouted, 1u);
  EXPECT_TRUE(stats.dark_links.empty());
  EXPECT_TRUE(core::mapping_avoids_edge(*out.mapping, EdgeId{0}));
  EXPECT_EQ(out.mapping->guest_host, m.guest_host);
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *out.mapping).ok());
}

TEST(Repair, TransitOnlyHostFailureViaFailureSet) {
  // The failed host carries a transit path but no guests: repair must
  // re-route without evicting anyone.
  const auto cluster = ring_cluster(4);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};  // transits host 1

  core::RepairOptions opts;
  opts.failed.nodes = {n(1)};
  RepairStats stats;
  const auto out = repair_mapping(cluster, venv, m, opts, &stats);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(stats.guests_moved, 0u);
  EXPECT_EQ(stats.links_rerouted, 1u);
  EXPECT_TRUE(mapping_avoids_node(cluster, *out.mapping, n(1)));
}

TEST(Repair, UnroutableLinkGoesDarkOnlyWhenAllowed) {
  // Line 0-1-2 with guests on the ends: killing edge (0,1) strands host 0,
  // so the virtual link cannot route.  Without dark links that is a clean
  // kNetworkingFailed; with them the link is returned dark (empty path).
  const auto cluster = line_cluster(3);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};

  core::RepairOptions strict;
  strict.failed.links = {EdgeId{0}};
  const auto refused = repair_mapping(cluster, venv, m, strict);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.error, core::MapErrorCode::kNetworkingFailed);

  core::RepairOptions lenient = strict;
  lenient.allow_dark_links = true;
  RepairStats stats;
  const auto out = repair_mapping(cluster, venv, m, lenient, &stats);
  ASSERT_TRUE(out.ok()) << out.detail;
  ASSERT_EQ(stats.dark_links.size(), 1u);
  EXPECT_EQ(stats.dark_links[0], vl(0));
  EXPECT_TRUE(out.mapping->link_paths[0].empty());

  // Once the failure clears, the dark link counts as damage: a repair with
  // no failed elements routes it again.
  RepairStats healed;
  const auto rerouted =
      repair_mapping(cluster, venv, *out.mapping, core::RepairOptions{},
                     &healed);
  ASSERT_TRUE(rerouted.ok()) << rerouted.detail;
  EXPECT_EQ(healed.links_rerouted, 1u);
  EXPECT_TRUE(healed.dark_links.empty());
  EXPECT_FALSE(rerouted.mapping->link_paths[0].empty());
  EXPECT_TRUE(core::validate_mapping(cluster, venv, *rerouted.mapping).ok());
}

TEST(Repair, CriticalLinkNeverGoesDark) {
  // Same stranding as above, but the virtual link carries the critical
  // SLA flag: allow_dark_links must NOT excuse it — the repair fails and
  // the caller has to evict (degraded-SLA scheduling).
  const auto cluster = line_cluster(3);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60.0, /*critical=*/true});
  core::Mapping m;
  m.guest_host = {n(0), n(2)};
  m.link_paths = {{EdgeId{0}, EdgeId{1}}};

  core::RepairOptions lenient;
  lenient.failed.links = {EdgeId{0}};
  lenient.allow_dark_links = true;
  const auto out = repair_mapping(cluster, venv, m, lenient);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kNetworkingFailed);
  EXPECT_NE(out.detail.find("critical"), std::string::npos) << out.detail;
}

TEST(Repair, CapacityExhaustionFailsCleanlyViaFailureSet) {
  // The only survivor has 50 MB of memory: eviction cannot re-place the
  // guest and must fall back with kHostingFailed, not a partial mapping.
  const auto cluster = line_cluster({{1000, 4096, 4096}, {1000, 50, 4096}});
  model::VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});
  core::Mapping m;
  m.guest_host = {n(0)};
  m.link_paths = {};
  core::RepairOptions opts;
  opts.failed.nodes = {n(0)};
  opts.allow_dark_links = true;  // dark links never excuse a homeless guest
  const auto out = repair_mapping(cluster, venv, m, opts);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, core::MapErrorCode::kHostingFailed);
}

TEST(Repair, AvoidanceCheckersHandleIntraHostLinks) {
  // Co-located guests have an empty (intra-host) path: it transits no node
  // and no edge, so only the hosting node itself is "touched".
  const auto cluster = line_cluster(3);
  core::Mapping m;
  m.guest_host = {n(1), n(1)};
  m.link_paths = {{}};
  EXPECT_FALSE(mapping_avoids_node(cluster, m, n(1)));
  EXPECT_TRUE(mapping_avoids_node(cluster, m, n(0)));
  EXPECT_TRUE(mapping_avoids_node(cluster, m, n(2)));
  EXPECT_TRUE(core::mapping_avoids_edge(m, EdgeId{0}));
  EXPECT_TRUE(core::mapping_avoids_edge(m, EdgeId{1}));
}

TEST(Repair, OutOfRangeFailedElementsRejected) {
  const auto cluster = line_cluster(2);
  const model::VirtualEnvironment venv;
  core::Mapping m;
  core::RepairOptions bad_node;
  bad_node.failed.nodes = {n(99)};
  EXPECT_EQ(repair_mapping(cluster, venv, m, bad_node).error,
            core::MapErrorCode::kInvalidInput);
  core::RepairOptions bad_link;
  bad_link.failed.links = {EdgeId{99}};
  EXPECT_EQ(repair_mapping(cluster, venv, m, bad_link).error,
            core::MapErrorCode::kInvalidInput);
}

}  // namespace
