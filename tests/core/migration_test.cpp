// Tests for the Migration stage (Section 4.2).
#include <gtest/gtest.h>

#include "core/migration.h"
#include "core/objective.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::MigrationOptions;
using core::ResidualState;
using core::run_migration;
using model::VirtualEnvironment;

TEST(Migration, MovesGuestFromLoadedToIdleHost) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({400, 100, 100});
  const GuestId b = venv.add_guest({400, 100, 100});
  std::vector<NodeId> placement{n(0), n(0)};  // both on host 0
  ResidualState st(cluster);
  st.place(venv.guest(a), n(0));
  st.place(venv.guest(b), n(0));

  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 1u);
  EXPECT_LT(r.final_lbf, r.initial_lbf);
  EXPECT_DOUBLE_EQ(r.final_lbf, 0.0);  // 400/400 split is perfectly balanced
  EXPECT_NE(placement[a.index()], placement[b.index()]);
}

TEST(Migration, NoMoveWhenAlreadyBalanced) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({400, 100, 100});
  const GuestId b = venv.add_guest({400, 100, 100});
  std::vector<NodeId> placement{n(0), n(1)};
  ResidualState st(cluster);
  st.place(venv.guest(a), n(0));
  st.place(venv.guest(b), n(1));

  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_DOUBLE_EQ(r.final_lbf, r.initial_lbf);
}

TEST(Migration, RespectsMemoryConstraint) {
  // Target host has no memory headroom: the balancing move is impossible.
  const auto cluster = line_cluster({{1000, 4096, 4096}, {1000, 50, 4096}});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({400, 100, 100});
  const GuestId b = venv.add_guest({400, 100, 100});
  std::vector<NodeId> placement{n(0), n(0)};
  ResidualState st(cluster);
  st.place(venv.guest(a), n(0));
  st.place(venv.guest(b), n(0));

  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(placement[a.index()], n(0));
  EXPECT_EQ(placement[b.index()], n(0));
}

TEST(Migration, PicksGuestWithSmallestColocatedBandwidth) {
  // Guests a,b form a heavy pair on host 0; guest c (no colocated links)
  // should be the one migrated.
  const auto cluster = line_cluster(2, {1000, 4096, 4096});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({200, 100, 100});
  const GuestId b = venv.add_guest({200, 100, 100});
  const GuestId c = venv.add_guest({200, 100, 100});
  venv.add_link(a, b, {10.0, 60.0});
  std::vector<NodeId> placement{n(0), n(0), n(0)};
  ResidualState st(cluster);
  for (const GuestId g : {a, b, c}) st.place(venv.guest(g), n(0));

  const auto r = run_migration(venv, st, placement);
  EXPECT_GE(r.migrations, 1u);
  EXPECT_EQ(placement[a.index()], n(0));
  EXPECT_EQ(placement[b.index()], n(0));
  EXPECT_EQ(placement[c.index()], n(1));
}

TEST(Migration, IteratesUntilNoImprovement) {
  // Four identical guests on one of four hosts: full balancing takes three
  // consecutive migrations.
  const auto cluster = line_cluster(4, {1000, 4096, 4096});
  VirtualEnvironment venv;
  std::vector<GuestId> gs;
  for (int i = 0; i < 4; ++i) gs.push_back(venv.add_guest({300, 100, 100}));
  std::vector<NodeId> placement(4, n(0));
  ResidualState st(cluster);
  for (const GuestId g : gs) st.place(venv.guest(g), n(0));

  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 3u);
  EXPECT_DOUBLE_EQ(r.final_lbf, 0.0);
  std::set<NodeId> used(placement.begin(), placement.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(Migration, MaxMigrationsCapRespected) {
  const auto cluster = line_cluster(4, {1000, 4096, 4096});
  VirtualEnvironment venv;
  for (int i = 0; i < 4; ++i) venv.add_guest({300, 100, 100});
  std::vector<NodeId> placement(4, n(0));
  ResidualState st(cluster);
  for (unsigned i = 0; i < 4; ++i) st.place(venv.guest(g(i)), n(0));

  MigrationOptions opts;
  opts.max_migrations = 1;
  const auto r = run_migration(venv, st, placement, opts);
  EXPECT_EQ(r.migrations, 1u);
}

TEST(Migration, SingleHostClusterNoop) {
  const auto cluster = line_cluster(1);
  VirtualEnvironment venv;
  venv.add_guest({100, 100, 100});
  std::vector<NodeId> placement{n(0)};
  ResidualState st(cluster);
  st.place(venv.guest(g(0)), n(0));
  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(Migration, EmptyPlacementNoop) {
  const auto cluster = line_cluster(3);
  VirtualEnvironment venv;
  std::vector<NodeId> placement;
  ResidualState st(cluster);
  const auto r = run_migration(venv, st, placement);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_DOUBLE_EQ(r.initial_lbf, r.final_lbf);
}

TEST(Migration, NeverIncreasesLoadBalanceFactor) {
  // Property over random instances: the stage's objective is monotone.
  hmn::util::Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t hosts = 3 + rng.index(5);
    std::vector<model::HostCapacity> caps;
    for (std::size_t i = 0; i < hosts; ++i) {
      caps.push_back({rng.uniform(500, 3000), 4096, 4096});
    }
    const auto cluster = line_cluster(std::move(caps));
    VirtualEnvironment venv;
    const std::size_t guests = 5 + rng.index(15);
    std::vector<NodeId> placement;
    ResidualState st(cluster);
    for (std::size_t i = 0; i < guests; ++i) {
      const GuestId id = venv.add_guest({rng.uniform(10, 400), 64, 64});
      const NodeId host = cluster.hosts()[rng.index(hosts)];
      st.place(venv.guest(id), host);
      placement.push_back(host);
    }
    const auto r = run_migration(venv, st, placement);
    EXPECT_LE(r.final_lbf, r.initial_lbf + 1e-9) << "trial " << trial;
    // The reported final factor matches the state.
    EXPECT_NEAR(r.final_lbf, core::load_balance_factor(st), 1e-9);
  }
}

TEST(Migration, StateAndPlacementStayConsistent) {
  const auto cluster = line_cluster(3, {1000, 4096, 4096});
  auto venv = chain_venv(6, {200, 100, 100}, {1.0, 60.0});
  std::vector<NodeId> placement(6, n(0));
  ResidualState st(cluster);
  for (unsigned i = 0; i < 6; ++i) st.place(venv.guest(g(i)), n(0));

  (void)run_migration(venv, st, placement);
  // Rebuild residuals from scratch; they must agree with the mutated state.
  core::Mapping m;
  m.guest_host = placement;
  m.link_paths.assign(venv.link_count(), {});
  const ResidualState fresh(cluster, venv, m);
  for (const NodeId h : cluster.hosts()) {
    EXPECT_NEAR(fresh.residual_proc(h), st.residual_proc(h), 1e-9);
    EXPECT_NEAR(fresh.residual_mem(h), st.residual_mem(h), 1e-9);
  }
}

}  // namespace
