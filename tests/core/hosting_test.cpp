// Tests for the Hosting stage (Section 4.1).
#include <gtest/gtest.h>

#include "core/hosting.h"
#include "core/networking.h"
#include "core/residual.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::HostingOptions;
using core::LinkOrder;
using core::ResidualState;
using core::ordered_links;
using core::run_hosting;
using model::VirtualEnvironment;

TEST(OrderedLinks, DescendingBandwidth) {
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const GuestId c = venv.add_guest({});
  venv.add_link(a, b, {1.0, 60});   // link 0
  venv.add_link(b, c, {5.0, 60});   // link 1
  venv.add_link(a, c, {3.0, 60});   // link 2
  const auto order =
      ordered_links(venv, LinkOrder::kBandwidthDescending, 0);
  EXPECT_EQ(order, (std::vector<VirtLinkId>{vl(1), vl(2), vl(0)}));
}

TEST(OrderedLinks, AscendingBandwidth) {
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {5.0, 60});
  venv.add_link(a, b, {1.0, 60});
  const auto order = ordered_links(venv, LinkOrder::kBandwidthAscending, 0);
  EXPECT_EQ(order, (std::vector<VirtLinkId>{vl(1), vl(0)}));
}

TEST(OrderedLinks, TiesKeepInsertionOrder) {
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {2.0, 60});
  venv.add_link(a, b, {2.0, 60});
  venv.add_link(a, b, {2.0, 60});
  const auto order =
      ordered_links(venv, LinkOrder::kBandwidthDescending, 0);
  EXPECT_EQ(order, (std::vector<VirtLinkId>{vl(0), vl(1), vl(2)}));
}

TEST(OrderedLinks, RandomIsSeededPermutation) {
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  for (int i = 0; i < 20; ++i) venv.add_link(a, b, {1.0, 60});
  const auto o1 = ordered_links(venv, LinkOrder::kRandom, 7);
  const auto o2 = ordered_links(venv, LinkOrder::kRandom, 7);
  const auto o3 = ordered_links(venv, LinkOrder::kRandom, 8);
  EXPECT_EQ(o1, o2);
  EXPECT_NE(o1, o3);
  auto sorted = o1;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], vl(static_cast<unsigned>(i)));
  }
}

TEST(Hosting, CoLocatesLinkedGuestsWhenTheyFit) {
  const auto cluster = line_cluster(3);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[a.index()], r.guest_host[b.index()]);
}

TEST(Hosting, SplitsWhenPairDoesNotFitTogether) {
  // Each guest needs 3000 MB; hosts hold 4096 MB: one fits, two do not.
  const auto cluster = line_cluster(3);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({20, 3000, 100});
  const GuestId b = venv.add_guest({10, 3000, 100});
  venv.add_link(a, b, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_NE(r.guest_host[a.index()], r.guest_host[b.index()]);
}

TEST(Hosting, MostCpuIntensiveGuestPlacedFirstOnSplit) {
  // Hosts with distinct CPU: 2000 and 1000.  When the pair must split, the
  // more CPU-hungry guest takes the first (highest-CPU) host.
  auto cluster = line_cluster({{2000, 4096, 4096}, {1000, 4096, 4096}});
  VirtualEnvironment venv;
  const GuestId weak = venv.add_guest({10, 3000, 100});
  const GuestId strong = venv.add_guest({500, 3000, 100});
  venv.add_link(weak, strong, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[strong.index()], n(0));
  EXPECT_EQ(r.guest_host[weak.index()], n(1));
}

TEST(Hosting, UnassignedEndpointJoinsPeerHost) {
  const auto cluster = line_cluster(3);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  const GuestId c = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {5.0, 60});  // processed first
  venv.add_link(b, c, {1.0, 60});  // c joins b's host
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[c.index()], r.guest_host[b.index()]);
}

TEST(Hosting, PeerHostFullFallsBackToFirstFitting) {
  // Host memory 4096; a+b consume 4000, so c (200 MB) cannot join them.
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 2000, 100});
  const GuestId b = venv.add_guest({10, 2000, 100});
  const GuestId c = venv.add_guest({10, 200, 100});
  venv.add_link(a, b, {5.0, 60});
  venv.add_link(b, c, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[a.index()], r.guest_host[b.index()]);
  EXPECT_NE(r.guest_host[c.index()], r.guest_host[b.index()]);
}

TEST(Hosting, HighestResidualCpuHostChosenFirst) {
  auto cluster = line_cluster({{500, 4096, 4096}, {3000, 4096, 4096},
                               {1000, 4096, 4096}});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  const GuestId b = venv.add_guest({10, 100, 100});
  venv.add_link(a, b, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[a.index()], n(1));  // the 3000-MIPS host
}

TEST(Hosting, IsolatedGuestsStillPlaced) {
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  venv.add_guest({10, 100, 100});  // no links at all
  venv.add_guest({10, 100, 100});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  for (const NodeId h : r.guest_host) EXPECT_TRUE(h.valid());
}

TEST(Hosting, FailsWhenGuestFitsNowhere) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  VirtualEnvironment venv;
  venv.add_guest({10, 500, 10});  // needs 500 MB; hosts have 100
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Hosting, FailsWhenAggregateExceeded) {
  const auto cluster = line_cluster(2, {1000, 1000, 1000});
  model::VirtualEnvironment venv = chain_venv(4, {10, 600, 10});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);  // 4 x 600 MB > 2 x 1000 MB
  EXPECT_FALSE(r.ok);
}

TEST(Hosting, EmptyVenvSucceedsTrivially) {
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.guest_host.empty());
}

TEST(Hosting, SelfLoopLinkPlacesSingleGuest) {
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 100, 100});
  venv.add_link(a, a, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.guest_host[a.index()].valid());
}

TEST(Hosting, BalanceOnlyIgnoresAffinity) {
  // Two heavy-linked guests; memory allows co-location but balance-only
  // hosting spreads them (two equal hosts: second guest goes to the less
  // loaded one).
  const auto cluster = line_cluster(2);
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({100, 100, 100});
  const GuestId b = venv.add_guest({100, 100, 100});
  venv.add_link(a, b, {9.0, 60.0});
  ResidualState st(cluster);
  HostingOptions opts;
  opts.policy = core::HostingPolicy::kBalanceOnly;
  const auto r = run_hosting(venv, st, opts);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_NE(r.guest_host[a.index()], r.guest_host[b.index()]);
  // Affinity hosting co-locates the same pair.
  ResidualState st2(cluster);
  const auto r2 = run_hosting(venv, st2);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.guest_host[a.index()], r2.guest_host[b.index()]);
}

TEST(Hosting, BalanceOnlyStillRespectsCapacity) {
  const auto cluster = line_cluster(2, {1000, 300, 4096});
  auto venv = chain_venv(4, {10, 200, 10});
  ResidualState st(cluster);
  HostingOptions opts;
  opts.policy = core::HostingPolicy::kBalanceOnly;
  const auto r = run_hosting(venv, st, opts);  // 4 x 200 MB > 2 x 300 MB
  EXPECT_FALSE(r.ok);
}

TEST(Hosting, AffinityMapsOverCapacityLinks) {
  // Section 5.2's claim: a virtual link demanding *more bandwidth than any
  // physical link offers* is mappable by affinity hosting (the endpoints
  // co-locate; the link lives inside the host), while link-blind placement
  // leaves it on the fabric where no path can carry it.
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {1000.0, 5.0});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({100, 100, 100});
  const GuestId b = venv.add_guest({100, 100, 100});
  venv.add_link(a, b, {2500.0, 60.0});  // 2.5x the physical capacity

  // Affinity: hosting co-locates, networking sees no inter-host links.
  {
    ResidualState st(cluster);
    const auto hosted = run_hosting(venv, st);
    ASSERT_TRUE(hosted.ok);
    const auto routed = core::run_networking(venv, st, hosted.guest_host);
    ASSERT_TRUE(routed.ok) << routed.detail;
    EXPECT_EQ(routed.links_routed, 0u);
  }
  // Balance-only: guests split; the 2.5 Gbps link cannot be routed.
  {
    ResidualState st(cluster);
    HostingOptions opts;
    opts.policy = core::HostingPolicy::kBalanceOnly;
    const auto hosted = run_hosting(venv, st, opts);
    ASSERT_TRUE(hosted.ok);
    ASSERT_NE(hosted.guest_host[a.index()], hosted.guest_host[b.index()]);
    const auto routed = core::run_networking(venv, st, hosted.guest_host);
    EXPECT_FALSE(routed.ok);
  }
}

TEST(Hosting, ResidualStateReflectsAllPlacements) {
  const auto cluster = line_cluster(2);
  auto venv = chain_venv(4, {100, 500, 200});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  double placed_mem = 0.0;
  for (const NodeId h : cluster.hosts()) {
    placed_mem += 4096.0 - st.residual_mem(h);
  }
  EXPECT_DOUBLE_EQ(placed_mem, 2000.0);
}

TEST(Hosting, HighBandwidthPairsGetPriorityForCoLocation) {
  // Memory allows only one pair per host.  The high-bw pair is processed
  // first and must be co-located; the low-bw pair lands wherever remains.
  const auto cluster = line_cluster(2, {1000, 1000, 4096});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 450, 100});
  const GuestId b = venv.add_guest({10, 450, 100});
  const GuestId c = venv.add_guest({10, 450, 100});
  const GuestId d = venv.add_guest({10, 450, 100});
  venv.add_link(c, d, {9.0, 60});  // heavy: co-locate first
  venv.add_link(a, b, {1.0, 60});
  ResidualState st(cluster);
  const auto r = run_hosting(venv, st);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.guest_host[c.index()], r.guest_host[d.index()]);
}

}  // namespace
