// Tests for the load-balance factor (Eqs. 10-12) and its incremental
// what-if variant used by the Migration stage.
#include <gtest/gtest.h>

#include "core/objective.h"
#include "topology/topologies.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace hmn;
using core::Mapping;
using core::ResidualState;
using core::load_balance_factor;
using core::load_balance_factor_if_moved;
using model::HostCapacity;
using model::LinkProps;
using model::PhysicalCluster;
using model::VirtualEnvironment;

NodeId n(unsigned v) { return NodeId{v}; }

TEST(Objective, PerfectBalanceIsZero) {
  const std::vector<double> rproc{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(load_balance_factor(rproc), 0.0);
}

TEST(Objective, PopulationStddevSemantics) {
  // {2, 4}: population stddev 1 (not the sample value sqrt(2)).
  const std::vector<double> rproc{2.0, 4.0};
  EXPECT_DOUBLE_EQ(load_balance_factor(rproc), 1.0);
}

TEST(Objective, NegativeResidualsHandled) {
  const std::vector<double> rproc{-10.0, 10.0};
  EXPECT_DOUBLE_EQ(load_balance_factor(rproc), 10.0);
}

TEST(Objective, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(load_balance_factor(std::vector<double>{}), 0.0);
}

TEST(Objective, FromResidualState) {
  auto topo = topology::line(2);
  std::vector<HostCapacity> caps{{1000, 9999, 9999}, {3000, 9999, 9999}};
  const auto c = PhysicalCluster::build(std::move(topo), caps,
                                        LinkProps{100, 1});
  ResidualState st(c);
  EXPECT_DOUBLE_EQ(load_balance_factor(st), 1000.0);  // {1000,3000}
  st.place({2000, 1, 1}, n(1));
  EXPECT_DOUBLE_EQ(load_balance_factor(st), 0.0);  // {1000,1000}
}

TEST(Objective, FromMappingRecomputesEq11) {
  auto topo = topology::line(2);
  std::vector<HostCapacity> caps{{1000, 9999, 9999}, {3000, 9999, 9999}};
  const auto c = PhysicalCluster::build(std::move(topo), caps,
                                        LinkProps{100, 1});
  VirtualEnvironment venv;
  venv.add_guest({500, 1, 1});
  venv.add_guest({1500, 1, 1});
  Mapping m;
  m.guest_host = {n(0), n(1)};  // residuals {500, 1500}
  m.link_paths = {};
  EXPECT_DOUBLE_EQ(load_balance_factor(c, venv, m), 500.0);
  m.guest_host = {n(1), n(1)};  // residuals {1000, 1000}
  EXPECT_DOUBLE_EQ(load_balance_factor(c, venv, m), 0.0);
}

TEST(Objective, SwitchesExcludedFromFactor) {
  auto topo = topology::star(2);  // node 2 is a switch
  std::vector<HostCapacity> caps{{1000, 9999, 9999}, {1000, 9999, 9999}};
  const auto c = PhysicalCluster::build(std::move(topo), caps,
                                        LinkProps{100, 1});
  const ResidualState st(c);
  // If the zero-capacity switch were counted, the stddev would be ~471.
  EXPECT_DOUBLE_EQ(load_balance_factor(st), 0.0);
}

TEST(Objective, IfMovedMatchesRecomputation) {
  hmn::util::Rng rng(15);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> rproc(10);
    for (auto& x : rproc) x = rng.uniform(-500, 3000);
    const auto from = rng.index(10);
    auto to = rng.index(10);
    const double vproc = rng.uniform(1, 500);

    const double incremental =
        load_balance_factor_if_moved(rproc, from, to, vproc);
    auto moved = rproc;
    moved[from] += vproc;
    moved[to] -= vproc;
    EXPECT_NEAR(incremental, load_balance_factor(moved), 1e-9)
        << "trial " << trial;
  }
}

TEST(Objective, IfMovedToSameHostIsIdentity) {
  const std::vector<double> rproc{100.0, 200.0, 300.0};
  EXPECT_NEAR(load_balance_factor_if_moved(rproc, 1, 1, 50.0),
              load_balance_factor(rproc), 1e-12);
}

TEST(Objective, MovingTowardBalanceReducesFactor) {
  const std::vector<double> rproc{0.0, 1000.0};  // host 0 loaded
  // Moving 500 MIPS of guest from host 0 to host 1 balances perfectly.
  EXPECT_DOUBLE_EQ(load_balance_factor_if_moved(rproc, 0, 1, 500.0), 0.0);
  // Moving in the wrong direction makes it worse.
  EXPECT_GT(load_balance_factor_if_moved(rproc, 1, 0, 500.0),
            load_balance_factor(rproc));
}

}  // namespace
