// Tests for the composed HMN mapper.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/objective.h"
#include "core/validator.h"
#include "testing/fixtures.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::HmnMapper;
using core::HmnOptions;
using core::MapErrorCode;

TEST(HmnMapper, NameReflectsConfiguration) {
  EXPECT_EQ(HmnMapper().name(), "HMN");
  HmnOptions no_mig;
  no_mig.enable_migration = false;
  EXPECT_EQ(HmnMapper(no_mig).name(), "HN");
  HmnOptions named;
  named.display_name = "custom";
  EXPECT_EQ(HmnMapper(named).name(), "custom");
}

TEST(HmnMapper, EmptyClusterIsInvalidInput) {
  const model::PhysicalCluster cluster;
  const model::VirtualEnvironment venv;
  const auto out = HmnMapper().map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, MapErrorCode::kInvalidInput);
}

TEST(HmnMapper, EmptyVenvMapsTrivially) {
  const auto cluster = line_cluster(2);
  const model::VirtualEnvironment venv;
  const auto out = HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.mapping->guest_host.empty());
  EXPECT_EQ(out.stats.links_routed, 0u);
}

TEST(HmnMapper, HostingFailurePropagates) {
  const auto cluster = line_cluster(2, {1000, 100, 100});
  auto venv = chain_venv(2, {10, 500, 10});
  const auto out = HmnMapper().map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, MapErrorCode::kHostingFailed);
  EXPECT_FALSE(out.detail.empty());
}

TEST(HmnMapper, NetworkingFailurePropagates) {
  // Two guests too large to co-locate, connected by an unroutable link
  // (latency bound below one hop).
  const auto cluster = line_cluster(2, {1000, 1000, 1000});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({10, 700, 10});
  const GuestId b = venv.add_guest({10, 700, 10});
  venv.add_link(a, b, {1.0, 2.0});  // 2 ms < 5 ms per hop
  const auto out = HmnMapper().map(cluster, venv, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, MapErrorCode::kNetworkingFailed);
}

TEST(HmnMapper, StatsTimingsConsistent) {
  const auto cluster = line_cluster(4);
  auto venv = chain_venv(12);
  const auto out = HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out.stats.total_seconds, 0.0);
  EXPECT_LE(out.stats.hosting_seconds + out.stats.migration_seconds +
                out.stats.networking_seconds,
            out.stats.total_seconds + 0.05);
}

TEST(HmnMapper, LinksRoutedCountsOnlyInterHost) {
  const auto cluster = line_cluster(2, {1000, 400, 4096});
  // 4 guests of 192 MB: two per host at most; the chain forces some links
  // across hosts and keeps some within.
  auto venv = chain_venv(4, {75, 192, 10});
  const auto out = HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok()) << out.detail;
  EXPECT_EQ(out.stats.links_routed,
            out.mapping->inter_host_link_count(venv));
  EXPECT_LT(out.stats.links_routed, venv.link_count());
}

TEST(HmnMapper, DeterministicForSameSeed) {
  const auto cluster = line_cluster(4);
  auto venv = chain_venv(16);
  const auto o1 = HmnMapper().map(cluster, venv, 5);
  const auto o2 = HmnMapper().map(cluster, venv, 5);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1.mapping->guest_host, o2.mapping->guest_host);
  EXPECT_EQ(o1.mapping->link_paths, o2.mapping->link_paths);
}

TEST(HmnMapper, MigrationNeverWorsensObjective) {
  HmnOptions no_mig;
  no_mig.enable_migration = false;
  const HmnMapper with_migration;
  const HmnMapper without_migration(no_mig);

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto cluster = workload::make_paper_cluster(
        workload::ClusterKind::kSwitched, seed);
    workload::Scenario sc{2.5, 0.02, workload::WorkloadKind::kHighLevel};
    const auto venv = workload::make_scenario_venv(sc, cluster, seed + 100);
    const auto a = with_migration.map(cluster, venv, seed);
    const auto b = without_migration.map(cluster, venv, seed);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const double with_lbf =
        core::load_balance_factor(cluster, venv, *a.mapping);
    const double without_lbf =
        core::load_balance_factor(cluster, venv, *b.mapping);
    EXPECT_LE(with_lbf, without_lbf + 1e-9) << "seed " << seed;
  }
}

TEST(HmnMapper, MigrationCountReported) {
  // Heavily skewed CPU capacities force migrations after affinity hosting.
  auto cluster = line_cluster({{3000, 4096, 4096}, {2000, 4096, 4096},
                               {1000, 4096, 4096}});
  auto venv = chain_venv(9, {300, 64, 64});
  const auto out = HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.stats.migrations, 0u);
}

TEST(HmnMapper, ValidOnPaperScenarios) {
  // Integration sweep: every paper scenario on both clusters, one rep,
  // validated against Eqs. 1-9.
  const HmnMapper mapper;
  const auto scenarios = workload::paper_scenarios();
  for (const auto kind : {workload::ClusterKind::kTorus2D,
                          workload::ClusterKind::kSwitched}) {
    const auto cluster = workload::make_paper_cluster(kind, 77);
    for (std::size_t s = 0; s < scenarios.size(); s += 5) {
      const auto venv =
          workload::make_scenario_venv(scenarios[s], cluster, 1234 + s);
      const auto out = mapper.map(cluster, venv, 42);
      ASSERT_TRUE(out.ok())
          << scenarios[s].label() << " on " << to_string(kind) << ": "
          << out.detail;
      const auto report = core::validate_mapping(cluster, venv, *out.mapping);
      EXPECT_TRUE(report.ok())
          << scenarios[s].label() << ": " << report.summary();
    }
  }
}

}  // namespace
