// Direct unit tests for the Mapping value type's helpers.
#include <gtest/gtest.h>

#include "core/mapping.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::Mapping;

struct MappingFixture : testing::Test {
  model::VirtualEnvironment venv;
  Mapping m;

  void SetUp() override {
    const GuestId a = venv.add_guest({});
    const GuestId b = venv.add_guest({});
    const GuestId c = venv.add_guest({});
    venv.add_link(a, b, {});  // link 0
    venv.add_link(b, c, {});  // link 1
    m.guest_host = {n(0), n(0), n(2)};
    m.link_paths = {{}, {EdgeId{0}, EdgeId{1}}};
  }
};

TEST_F(MappingFixture, HostOfAndPathOf) {
  EXPECT_EQ(m.host_of(g(0)), n(0));
  EXPECT_EQ(m.host_of(g(2)), n(2));
  EXPECT_TRUE(m.path_of(vl(0)).empty());
  EXPECT_EQ(m.path_of(vl(1)).size(), 2u);
}

TEST_F(MappingFixture, Colocated) {
  EXPECT_TRUE(m.colocated(venv, vl(0)));
  EXPECT_FALSE(m.colocated(venv, vl(1)));
}

TEST_F(MappingFixture, GuestsPerNode) {
  const auto groups = m.guests_per_node(4);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<GuestId>{g(0), g(1)}));
  EXPECT_TRUE(groups[1].empty());
  EXPECT_EQ(groups[2], std::vector<GuestId>{g(2)});
  EXPECT_TRUE(groups[3].empty());
}

TEST_F(MappingFixture, GuestsPerNodeSkipsUnmapped) {
  m.guest_host[1] = NodeId::invalid();
  const auto groups = m.guests_per_node(4);
  EXPECT_EQ(groups[0], std::vector<GuestId>{g(0)});
}

TEST_F(MappingFixture, InterHostLinkCount) {
  EXPECT_EQ(m.inter_host_link_count(venv), 1u);
  m.guest_host = {n(0), n(0), n(0)};
  EXPECT_EQ(m.inter_host_link_count(venv), 0u);
  m.guest_host = {n(0), n(1), n(2)};
  EXPECT_EQ(m.inter_host_link_count(venv), 2u);
}

TEST(MappingEmpty, TrivialHelpers) {
  const model::VirtualEnvironment venv;
  const Mapping m;
  EXPECT_EQ(m.inter_host_link_count(venv), 0u);
  EXPECT_TRUE(m.guests_per_node(3)[0].empty());
}

}  // namespace
