// Tests for the Networking stage (Section 4.3).
#include <gtest/gtest.h>

#include "core/networking.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::NetworkingOptions;
using core::PathAlgorithm;
using core::ResidualState;
using core::run_networking;
using model::VirtualEnvironment;

TEST(Networking, IntraHostLinksGetEmptyPaths) {
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {10.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(0)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_TRUE(r.link_paths[0].empty());
  EXPECT_EQ(r.links_routed, 0u);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 1000.0);  // nothing reserved
}

TEST(Networking, RoutesInterHostLink) {
  const auto cluster = line_cluster(3);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {10.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(2)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.link_paths[0].size(), 2u);
  EXPECT_EQ(r.links_routed, 1u);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 990.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{1}), 990.0);
}

TEST(Networking, FailsWhenLatencyUnreachable) {
  // 3 hops x 5 ms = 15 ms; demand allows only 10 ms.
  const auto cluster = line_cluster(4);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 10.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(3)};
  const auto r = run_networking(venv, st, placement);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Networking, FailsWhenBandwidthExhausted) {
  // Physical capacity 15 Mbps; two links of 10 Mbps cannot share one edge.
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {15.0, 5.0});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const GuestId c = venv.add_guest({});
  const GuestId d = venv.add_guest({});
  venv.add_link(a, b, {10.0, 60.0});
  venv.add_link(c, d, {10.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(1), n(0), n(1)};
  const auto r = run_networking(venv, st, placement);
  EXPECT_FALSE(r.ok);
}

TEST(Networking, BandwidthSharingWithinCapacity) {
  const auto cluster = line_cluster(2, {1000, 4096, 4096}, {25.0, 5.0});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const GuestId c = venv.add_guest({});
  const GuestId d = venv.add_guest({});
  venv.add_link(a, b, {10.0, 60.0});
  venv.add_link(c, d, {10.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(1), n(0), n(1)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 5.0);
  EXPECT_EQ(r.links_routed, 2u);
}

TEST(Networking, AStarSpreadsLoadAcrossRing) {
  // Ring of 4: two disjoint 2-hop routes between opposite corners.  With
  // bottleneck-maximizing A*Prune the second link must avoid the first
  // link's (now narrower) side.
  const auto cluster = ring_cluster(4, {1000, 4096, 4096}, {100.0, 5.0});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  const GuestId c = venv.add_guest({});
  const GuestId d = venv.add_guest({});
  venv.add_link(a, b, {60.0, 60.0});
  venv.add_link(c, d, {60.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(2), n(0), n(2)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  // Both routes placed, necessarily on disjoint sides (each side carries at
  // most one 60 Mbps link on 100 Mbps edges).
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    EXPECT_GE(st.residual_bw(EdgeId{static_cast<EdgeId::underlying_type>(e)}),
              0.0);
  }
  std::set<EdgeId> first(r.link_paths[0].begin(), r.link_paths[0].end());
  for (const EdgeId e : r.link_paths[1]) {
    EXPECT_FALSE(first.contains(e)) << "routes share edge " << e.value();
  }
}

TEST(Networking, DescendingOrderRoutesHeaviestFirst) {
  // One wide path and one narrow path; the heavy link must claim the wide
  // one.  Ring of 4 with asymmetric capacities.
  auto topo = topology::ring(4);
  std::vector<model::HostCapacity> caps(4, {1000, 4096, 4096});
  // Edges in ring order: (0,1), (1,2), (2,3), (3,0).
  std::vector<model::LinkProps> links{{100.0, 5.0}, {100.0, 5.0},
                                      {30.0, 5.0}, {30.0, 5.0}};
  const auto cluster = model::PhysicalCluster::build(std::move(topo),
                                                     std::move(caps),
                                                     std::move(links));
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {50.0, 60.0});  // only fits the 100-Mbps side
  venv.add_link(a, b, {20.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(2)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  // The heavy link goes 0-1-2 (wide side).
  EXPECT_EQ(r.link_paths[0], (graph::Path{EdgeId{0}, EdgeId{1}}));
}

TEST(Networking, PrunedDfsFindsFeasibleWhereNaiveMayNot) {
  // Line of 5 hosts, tight latency: the only feasible path is direct.  The
  // pruned DFS always finds it; the naive DFS on a line also finds it (no
  // wrong turns possible), so both succeed here — this guards the pruned
  // variant's correctness.
  const auto cluster = line_cluster(5);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 20.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(4)};
  NetworkingOptions opts;
  opts.algorithm = PathAlgorithm::kDfsPruned;
  const auto r = run_networking(venv, st, placement, opts);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.link_paths[0].size(), 4u);
}

TEST(Networking, NaiveDfsRejectsConstraintViolatingPath) {
  // Naive DFS on a line finds the unique path; with an impossible latency
  // bound the stage must fail (the post-check rejects it).
  const auto cluster = line_cluster(4);
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 10.0});  // needs 15 ms
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(3)};
  NetworkingOptions opts;
  opts.algorithm = PathAlgorithm::kDfsNaive;
  const auto r = run_networking(venv, st, placement, opts);
  EXPECT_FALSE(r.ok);
}

TEST(Networking, SwitchedClusterRoutesThroughSwitch) {
  auto topo = topology::switched(4, 64);
  std::vector<model::HostCapacity> caps(4, {1000, 4096, 4096});
  const auto cluster = model::PhysicalCluster::build(
      std::move(topo), std::move(caps), model::LinkProps{1000.0, 5.0});
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 60.0});
  ResidualState st(cluster);
  const std::vector<NodeId> placement{n(0), n(3)};
  const auto r = run_networking(venv, st, placement);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.link_paths[0].size(), 2u);  // host-switch-host
}

TEST(Networking, MinLatencyPicksFastestFeasiblePath) {
  // Ring of 4 with one slow side: min-latency takes the fast side even
  // though both are feasible.
  auto topo = topology::ring(4);
  std::vector<model::HostCapacity> caps(4, {1000, 4096, 4096});
  // Edges: (0,1) (1,2) (2,3) (3,0); make the 0-1-2 side slow.
  std::vector<model::LinkProps> links{{100.0, 20.0}, {100.0, 20.0},
                                      {100.0, 5.0}, {100.0, 5.0}};
  const auto cluster = model::PhysicalCluster::build(std::move(topo),
                                                     std::move(caps),
                                                     std::move(links));
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 60.0});
  ResidualState st(cluster);
  NetworkingOptions opts;
  opts.algorithm = PathAlgorithm::kMinLatency;
  const auto r = run_networking(venv, st, {n(0), n(2)}, opts);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.link_paths[0], (graph::Path{EdgeId{3}, EdgeId{2}}));
}

TEST(Networking, MinLatencyRespectsBandwidthFilter) {
  // The fast side lacks bandwidth for the demand; min-latency must route
  // around it.
  auto topo = topology::ring(4);
  std::vector<model::HostCapacity> caps(4, {1000, 4096, 4096});
  std::vector<model::LinkProps> links{{100.0, 20.0}, {100.0, 20.0},
                                      {5.0, 5.0}, {5.0, 5.0}};
  const auto cluster = model::PhysicalCluster::build(std::move(topo),
                                                     std::move(caps),
                                                     std::move(links));
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {50.0, 60.0});  // too wide for the 5 Mbps side
  ResidualState st(cluster);
  NetworkingOptions opts;
  opts.algorithm = PathAlgorithm::kMinLatency;
  const auto r = run_networking(venv, st, {n(0), n(2)}, opts);
  ASSERT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.link_paths[0], (graph::Path{EdgeId{0}, EdgeId{1}}));
}

TEST(Networking, MinLatencyFailsWhenBoundUnreachable) {
  const auto cluster = line_cluster(4);  // 3 hops x 5 ms
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {1.0, 10.0});
  ResidualState st(cluster);
  NetworkingOptions opts;
  opts.algorithm = PathAlgorithm::kMinLatency;
  const auto r = run_networking(venv, st, {n(0), n(3)}, opts);
  EXPECT_FALSE(r.ok);
}

TEST(Networking, MinLatencySpendsBottleneckGreedily) {
  // Two links over a ring where one side is both fastest and narrow:
  // min-latency stacks both on it (succeeding only if capacity allows),
  // while A*Prune splits them.  With capacity for exactly one, the second
  // min-latency link is forced to the slow side anyway — but the *first*
  // link's choice shows the greed: A*Prune picks the wide slow side for
  // neither... simply verify both algorithms succeed and A*Prune's worst
  // residual edge is no tighter than min-latency's.
  const auto cluster = ring_cluster(4, {1000, 4096, 4096}, {100.0, 5.0});
  model::VirtualEnvironment venv;
  const GuestId a = venv.add_guest({});
  const GuestId b = venv.add_guest({});
  venv.add_link(a, b, {60.0, 60.0});
  venv.add_link(a, b, {30.0, 60.0});
  const std::vector<NodeId> placement{n(0), n(2)};

  auto worst_residual = [&](PathAlgorithm algo) {
    ResidualState st(cluster);
    NetworkingOptions opts;
    opts.algorithm = algo;
    const auto r = run_networking(venv, st, placement, opts);
    EXPECT_TRUE(r.ok) << r.detail;
    double worst = 1e18;
    for (std::size_t e = 0; e < cluster.link_count(); ++e) {
      worst = std::min(worst, st.residual_bw(EdgeId{
          static_cast<EdgeId::underlying_type>(e)}));
    }
    return worst;
  };
  EXPECT_GE(worst_residual(PathAlgorithm::kAStarPrune),
            worst_residual(PathAlgorithm::kMinLatency));
}

TEST(Networking, EmptyVenvTrivialSuccess) {
  const auto cluster = line_cluster(2);
  VirtualEnvironment venv;
  ResidualState st(cluster);
  const auto r = run_networking(venv, st, {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.links_routed, 0u);
}

}  // namespace
