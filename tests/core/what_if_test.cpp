// Tests for the non-committing what-if planning queries.
#include <gtest/gtest.h>

#include "core/hmn_mapper.h"
#include "core/incremental.h"
#include "core/what_if.h"
#include "testing/fixtures.h"

namespace {

using namespace hmn;
using namespace hmn::test;
using core::hosts_fitting_guest;
using core::link_route_available;

struct WhatIfFixture : testing::Test {
  model::PhysicalCluster cluster =
      line_cluster({{3000, 1000, 4096}, {1000, 1000, 4096},
                    {2000, 300, 4096}});
  model::VirtualEnvironment venv;
  core::Mapping mapping;

  void SetUp() override {
    const GuestId a = venv.add_guest({100, 400, 100});
    const GuestId b = venv.add_guest({100, 400, 100});
    venv.add_link(a, b, {500.0, 60.0});
    mapping.guest_host = {n(0), n(1)};
    mapping.link_paths = {{EdgeId{0}}};
  }
};

TEST_F(WhatIfFixture, FittingHostsSortedByResidualCpu) {
  // Residual mem: host0 600, host1 600, host2 300; a 500-MB guest fits on
  // hosts 0 and 1 only; host0 has more residual CPU (2900 vs 900).
  const auto fitting =
      hosts_fitting_guest(cluster, venv, mapping, {10, 500, 10});
  EXPECT_EQ(fitting, (std::vector<NodeId>{n(0), n(1)}));
}

TEST_F(WhatIfFixture, NoHostFitsOversizedGuest) {
  EXPECT_TRUE(
      hosts_fitting_guest(cluster, venv, mapping, {10, 5000, 10}).empty());
}

TEST_F(WhatIfFixture, QueriesDoNotMutateAnything) {
  const auto before = mapping.guest_host;
  (void)hosts_fitting_guest(cluster, venv, mapping, {10, 100, 10});
  (void)link_route_available(cluster, venv, mapping, GuestId{0}, GuestId{1},
                             {100.0, 60.0});
  EXPECT_EQ(mapping.guest_host, before);
}

TEST_F(WhatIfFixture, ColocatedLinkIsFree) {
  mapping.guest_host = {n(0), n(0)};
  mapping.link_paths = {{}};
  const auto route = link_route_available(cluster, venv, mapping, GuestId{0},
                                          GuestId{1}, {99999.0, 0.1});
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->empty());
}

TEST_F(WhatIfFixture, RouteRespectsResidualBandwidth) {
  // The existing link reserves 500 of the 1000 Mbps on edge 0; a new
  // 400-Mbps demand fits, a 600-Mbps demand does not.
  EXPECT_TRUE(link_route_available(cluster, venv, mapping, GuestId{0},
                                   GuestId{1}, {400.0, 60.0})
                  .has_value());
  EXPECT_FALSE(link_route_available(cluster, venv, mapping, GuestId{0},
                                    GuestId{1}, {600.0, 60.0})
                   .has_value());
}

TEST_F(WhatIfFixture, RouteRespectsLatencyBound) {
  mapping.guest_host = {n(0), n(2)};
  mapping.link_paths = {{EdgeId{0}, EdgeId{1}}};
  EXPECT_TRUE(link_route_available(cluster, venv, mapping, GuestId{0},
                                   GuestId{1}, {1.0, 10.0})
                  .has_value());  // 2 hops x 5 ms = 10 ms exactly
  EXPECT_FALSE(link_route_available(cluster, venv, mapping, GuestId{0},
                                    GuestId{1}, {1.0, 9.0})
                   .has_value());
}

TEST_F(WhatIfFixture, UnmappedGuestYieldsNoRoute) {
  mapping.guest_host[1] = NodeId::invalid();
  EXPECT_FALSE(link_route_available(cluster, venv, mapping, GuestId{0},
                                    GuestId{1}, {1.0, 60.0})
                   .has_value());
}

TEST(WhatIfConsistency, PositiveQueryMeansExtendSucceeds) {
  // If the what-if says a guest fits and its link routes, extending the
  // environment by exactly that guest+link must succeed.
  const auto cluster = line_cluster(3);
  auto venv = chain_venv(6);
  auto base = core::HmnMapper().map(cluster, venv, 1);
  ASSERT_TRUE(base.ok());

  const model::GuestRequirements req{75, 192, 150};
  const auto fitting =
      hosts_fitting_guest(cluster, venv, *base.mapping, req);
  ASSERT_FALSE(fitting.empty());

  const GuestId g = venv.add_guest(req);
  venv.add_link(GuestId{0}, g, {0.75, 45.0});
  const auto grown = core::extend_mapping(cluster, venv, *base.mapping);
  EXPECT_TRUE(grown.ok()) << grown.detail;
}

}  // namespace
