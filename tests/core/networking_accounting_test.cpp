// Bandwidth-accounting invariant: after a successful Networking run, the
// residual state's per-edge deduction must equal an independent recount of
// the virtual bandwidth routed over that edge — the bookkeeping the
// validator's Eq. 9 check and every later stage (extension, repair,
// tenancy) rely on.
#include <gtest/gtest.h>

#include "core/hosting.h"
#include "core/networking.h"
#include "core/residual.h"
#include "workload/scenario.h"

namespace {

using namespace hmn;

class NetworkingAccounting : public testing::TestWithParam<int> {};

TEST_P(NetworkingAccounting, ResidualMatchesRecount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto kind = GetParam() % 2 == 0 ? workload::ClusterKind::kTorus2D
                                        : workload::ClusterKind::kSwitched;
  const auto cluster = workload::make_paper_cluster(kind, seed);
  const workload::Scenario sc{5.0, 0.02, workload::WorkloadKind::kHighLevel};
  const auto venv = workload::make_scenario_venv(sc, cluster, seed + 1);

  core::ResidualState state(cluster);
  const auto hosted = core::run_hosting(venv, state);
  ASSERT_TRUE(hosted.ok) << hosted.detail;
  const auto routed = core::run_networking(venv, state, hosted.guest_host);
  ASSERT_TRUE(routed.ok) << routed.detail;

  // Independent recount of per-edge virtual bandwidth.
  std::vector<double> used(cluster.link_count(), 0.0);
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    for (const EdgeId e : routed.link_paths[l]) {
      used[e.index()] += venv.link(id).bandwidth_mbps;
    }
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    const double deducted =
        cluster.link(id).bandwidth_mbps - state.residual_bw(id);
    EXPECT_NEAR(deducted, used[e], 1e-6) << "edge " << e;
    EXPECT_GE(state.residual_bw(id), -1e-6);
  }

  // Releasing every reservation restores the pristine state exactly.
  for (std::size_t l = 0; l < venv.link_count(); ++l) {
    const auto id = VirtLinkId{static_cast<VirtLinkId::underlying_type>(l)};
    state.release_bw(routed.link_paths[l], venv.link(id).bandwidth_mbps);
  }
  for (std::size_t e = 0; e < cluster.link_count(); ++e) {
    const auto id = EdgeId{static_cast<EdgeId::underlying_type>(e)};
    EXPECT_NEAR(state.residual_bw(id), cluster.link(id).bandwidth_mbps, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkingAccounting, testing::Range(1, 9));

}  // namespace
