// Tests for residual-capacity bookkeeping.
#include <gtest/gtest.h>

#include "core/residual.h"
#include "topology/topologies.h"

namespace {

using namespace hmn;
using core::Mapping;
using core::ResidualState;
using model::GuestRequirements;
using model::HostCapacity;
using model::LinkProps;
using model::PhysicalCluster;
using model::VirtualEnvironment;

NodeId n(unsigned v) { return NodeId{v}; }

PhysicalCluster two_host_cluster() {
  auto topo = topology::line(2);
  std::vector<HostCapacity> caps{{1000, 1024, 512}, {2000, 2048, 1024}};
  return PhysicalCluster::build(std::move(topo), std::move(caps),
                                LinkProps{100.0, 5.0});
}

TEST(ResidualState, InitialResidualsEqualCapacity) {
  const auto c = two_host_cluster();
  const ResidualState st(c);
  EXPECT_DOUBLE_EQ(st.residual_proc(n(0)), 1000.0);
  EXPECT_DOUBLE_EQ(st.residual_mem(n(1)), 2048.0);
  EXPECT_DOUBLE_EQ(st.residual_stor(n(0)), 512.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 100.0);
}

TEST(ResidualState, FitsChecksMemAndStorOnly) {
  const auto c = two_host_cluster();
  const ResidualState st(c);
  // CPU demand above capacity is *not* a constraint.
  EXPECT_TRUE(st.fits({99999.0, 100.0, 100.0}, n(0)));
  EXPECT_FALSE(st.fits({1.0, 2000.0, 1.0}, n(0)));   // memory
  EXPECT_FALSE(st.fits({1.0, 1.0, 600.0}, n(0)));    // storage
  EXPECT_TRUE(st.fits({1.0, 1024.0, 512.0}, n(0)));  // exact fit
}

TEST(ResidualState, FitsBothIsAggregate) {
  const auto c = two_host_cluster();
  const ResidualState st(c);
  const GuestRequirements half{1, 512, 256};
  EXPECT_TRUE(st.fits_both(half, half, n(0)));
  const GuestRequirements big{1, 700, 1};
  EXPECT_FALSE(st.fits_both(big, big, n(0)));  // 1400 > 1024 combined
  EXPECT_TRUE(st.fits(big, n(0)));             // though one alone fits
}

TEST(ResidualState, PlaceAndRemoveRoundTrip) {
  const auto c = two_host_cluster();
  ResidualState st(c);
  const GuestRequirements req{100, 256, 64};
  st.place(req, n(0));
  EXPECT_DOUBLE_EQ(st.residual_proc(n(0)), 900.0);
  EXPECT_DOUBLE_EQ(st.residual_mem(n(0)), 768.0);
  EXPECT_DOUBLE_EQ(st.residual_stor(n(0)), 448.0);
  st.remove(req, n(0));
  EXPECT_DOUBLE_EQ(st.residual_proc(n(0)), 1000.0);
  EXPECT_DOUBLE_EQ(st.residual_mem(n(0)), 1024.0);
}

TEST(ResidualState, CpuMayGoNegative) {
  const auto c = two_host_cluster();
  ResidualState st(c);
  st.place({1500.0, 10.0, 10.0}, n(0));
  EXPECT_DOUBLE_EQ(st.residual_proc(n(0)), -500.0);
}

TEST(ResidualState, ResidualProcOfHostsOrder) {
  const auto c = two_host_cluster();
  ResidualState st(c);
  st.place({100, 1, 1}, n(1));
  const auto rproc = st.residual_proc_of_hosts();
  ASSERT_EQ(rproc.size(), 2u);
  EXPECT_DOUBLE_EQ(rproc[0], 1000.0);
  EXPECT_DOUBLE_EQ(rproc[1], 1900.0);
}

TEST(ResidualState, BandwidthReserveRelease) {
  const auto c = two_host_cluster();
  ResidualState st(c);
  const graph::Path path{EdgeId{0}};
  st.reserve_bw(path, 30.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 70.0);
  st.reserve_bw(path, 70.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 0.0);
  st.release_bw(path, 100.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 100.0);
}

TEST(ResidualState, RebuildFromMapping) {
  const auto c = two_host_cluster();
  VirtualEnvironment venv;
  const GuestId a = venv.add_guest({100, 256, 64});
  const GuestId b = venv.add_guest({200, 512, 128});
  venv.add_link(a, b, {25.0, 100.0});

  Mapping m;
  m.guest_host = {n(0), n(1)};
  m.link_paths = {{EdgeId{0}}};

  const ResidualState st(c, venv, m);
  EXPECT_DOUBLE_EQ(st.residual_proc(n(0)), 900.0);
  EXPECT_DOUBLE_EQ(st.residual_proc(n(1)), 1800.0);
  EXPECT_DOUBLE_EQ(st.residual_mem(n(1)), 1536.0);
  EXPECT_DOUBLE_EQ(st.residual_bw(EdgeId{0}), 75.0);
}

TEST(ResidualState, SwitchNodesHaveZeroResiduals) {
  auto topo = topology::star(2);
  std::vector<HostCapacity> caps(2, {1000, 1000, 1000});
  const auto c = PhysicalCluster::build(std::move(topo), caps,
                                        LinkProps{100, 1});
  const ResidualState st(c);
  EXPECT_DOUBLE_EQ(st.residual_proc(n(2)), 0.0);
  EXPECT_DOUBLE_EQ(st.residual_mem(n(2)), 0.0);
}

}  // namespace
